"""Figure 11: run time of changing A,B,C -> A,C,B with three methods —
segmented sorting only, merging pre-existing runs only, and the
combination — across segment counts (hypothesis 9).

Paper result: segment-sort-only is slowest for large segments and
improves as segments shrink; merge-only beats it for few segments but
degrades again when runs get too short; the combination is consistently
best.  One pytest-benchmark entry per (segments, method) cell plus
shape assertions over collected wall times.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.figures import FIG11_METHODS, run_fig11_cell
from repro.bench.harness import format_table
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import fig11_table


def segment_counts(n_rows: int) -> list[int]:
    return [s for s in (2, 8, 32, 128, 512, 2048, 8192, 32768) if 2 * s <= n_rows]


@pytest.mark.parametrize("method", FIG11_METHODS)
@pytest.mark.parametrize("n_segments", (2, 32, 512))
def test_fig11_runtime(benchmark, n_rows_default, n_segments, method):
    n_segments = min(n_segments, n_rows_default // 2)
    table = fig11_table(n_rows_default, n_segments, seed=0)
    benchmark.group = f"fig11 segments={n_segments}"
    result = benchmark(run_fig11_cell, table, method)
    assert len(result) == len(table)


@pytest.mark.parametrize("method", FIG11_METHODS)
@pytest.mark.parametrize("n_segments", (2, 32, 512))
def test_fig11_runtime_fast_engine(benchmark, n_rows_default, n_segments, method):
    """The packed-code kernels on the same cells (no counters)."""
    n_segments = min(n_segments, n_rows_default // 2)
    table = fig11_table(n_rows_default, n_segments, seed=0)
    benchmark.group = f"fig11 segments={n_segments}"
    result = benchmark(run_fig11_cell, table, method, None, 8, "fast")
    assert len(result) == len(table)


def test_fig11_shape(n_rows_small):
    """The qualitative claims of Figure 11, on measured wall time and
    row comparisons."""
    timings: dict[tuple, float] = {}
    comparisons: dict[tuple, int] = {}
    counts = segment_counts(n_rows_small)
    for n_segments in counts:
        table = fig11_table(n_rows_small, n_segments, seed=0)
        for method in FIG11_METHODS:
            stats = ComparisonStats()
            start = time.perf_counter()
            run_fig11_cell(table, method, stats)
            timings[(n_segments, method)] = time.perf_counter() - start
            comparisons[(n_segments, method)] = stats.row_comparisons

    print()
    print(
        format_table(
            [
                {
                    "segments": s,
                    **{
                        m: round(timings[(s, m)], 4)
                        for m in FIG11_METHODS
                    },
                }
                for s in counts
            ],
            f"Figure 11: seconds per method, {n_rows_small:,} rows",
        )
    )

    few, many = counts[0], counts[-1]
    # Segment-sort-only is the worst method for few, large segments.
    assert timings[(few, "segment_sort")] == max(
        timings[(few, m)] for m in FIG11_METHODS
    )
    # Its effort shrinks as segments shrink (fewer comparisons per sort).
    assert (
        comparisons[(many, "segment_sort")]
        < comparisons[(few, "segment_sort")] / 2
    )
    # Merge-only degrades at the many-segments end relative to combined.
    assert (
        comparisons[(many, "merge_runs")]
        > comparisons[(many, "combined")]
    )
    # Hypothesis 9: the combination is never beaten on comparisons...
    for s in counts:
        assert comparisons[(s, "combined")] <= min(
            comparisons[(s, "segment_sort")], comparisons[(s, "merge_runs")]
        ) + s  # segment bookkeeping tolerance
    # ... and wins overall wall time in aggregate.
    total = {
        m: sum(timings[(s, m)] for s in counts) for m in FIG11_METHODS
    }
    assert total["combined"] == min(total.values())
