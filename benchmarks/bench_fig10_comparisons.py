"""Figure 10 (bottom): counts of column value comparisons for changing
A,B -> B,A — the machine-independent metric.

Paper results at 2^20 rows, 512 runs (log scale in the figure):

* first column decides, no codes: 9.5e6 .. 112e6 (list length 1..16);
* first column decides, with codes: 0 at length 1, then 0.66e6 .. 9.9e6;
* last column decides, no codes: 9.5e6 .. 151e6;
* last column decides, with codes: 0 .. just under 4,000.

This bench regenerates the grid at the configured scale, prints it in
the paper's layout, and asserts the qualitative claims (ratios, zeros,
orders of magnitude).  Wall time is not measured here; run once.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import run_fig10_cell
from repro.bench.harness import format_table
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import fig10_table

LIST_LENGTHS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def grid(n_rows_default):
    """Comparison counts for the whole Figure 10 grid."""
    n_runs = min(512, n_rows_default // 2)
    cells = {}
    for decide in ("first", "last"):
        for list_len in LIST_LENGTHS:
            table = fig10_table(
                n_rows_default, list_len, decide=decide, n_runs=n_runs, seed=0
            )
            for use_ovc in (False, True):
                stats = ComparisonStats()
                run_fig10_cell(table, list_len, use_ovc, stats)
                cells[(decide, list_len, use_ovc)] = stats.snapshot()
    return cells


def test_fig10_comparison_counts_table(grid, n_rows_default):
    rows = [
        {
            "decide": decide,
            "list_len": list_len,
            "ovc": use_ovc,
            "column_comparisons": grid[(decide, list_len, use_ovc)].column_comparisons,
            "row_comparisons": grid[(decide, list_len, use_ovc)].row_comparisons,
        }
        for decide in ("first", "last")
        for list_len in LIST_LENGTHS
        for use_ovc in (False, True)
    ]
    print()
    print(
        format_table(
            rows,
            f"Figure 10 (bottom): column comparisons, {n_rows_default:,} rows",
        )
    )


def test_single_column_lists_need_no_comparisons_with_codes(grid):
    """With list length 1, input codes already capture everything: the
    merge performs zero column comparisons (both variants coincide)."""
    assert grid[("first", 1, True)].column_comparisons == 0
    assert grid[("last", 1, True)].column_comparisons == 0


def test_last_decides_with_codes_stays_tiny(grid, n_rows_default):
    """Paper: 0 to "just under 4,000" — comparisons are bounded by run
    bookkeeping (runs x list length), orders below the baseline, which
    scales with the row count."""
    n_runs = min(512, n_rows_default // 2)
    for list_len in LIST_LENGTHS[1:]:
        with_codes = grid[("last", list_len, True)].column_comparisons
        without = grid[("last", list_len, False)].column_comparisons
        assert with_codes <= 2 * n_runs * (list_len + 2)
        # The gap scales with the run length (with-codes work is per
        # run, baseline work is per row).
        assert with_codes * (n_rows_default // n_runs) < without


def test_first_decides_with_codes_comes_from_merge_key_resumes(grid):
    """First-decides leaves real work only when deciding values collide
    across runs; still far below the baseline."""
    for list_len in LIST_LENGTHS[1:]:
        with_codes = grid[("first", list_len, True)].column_comparisons
        without = grid[("first", list_len, False)].column_comparisons
        assert with_codes < without / 5
        # And more comparisons than the last-decides variant, as in the
        # paper's bottom-left vs bottom-right diagrams.
        assert with_codes > grid[("last", list_len, True)].column_comparisons


def test_baseline_grows_with_list_length(grid):
    for decide in ("first", "last"):
        counts = [
            grid[(decide, ll, False)].column_comparisons for ll in LIST_LENGTHS
        ]
        assert counts == sorted(counts)
        assert counts[-1] > 3 * counts[0]


def test_ovc_reduces_row_comparison_count_too(grid):
    """Merging with codes also saves row comparisons (duplicates bypass
    the tree entirely)."""
    for decide in ("first", "last"):
        for list_len in LIST_LENGTHS:
            assert (
                grid[(decide, list_len, True)].row_comparisons
                <= grid[(decide, list_len, False)].row_comparisons
            )
