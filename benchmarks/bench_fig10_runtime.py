"""Figure 10 (top): run time of changing A,B -> B,A, with and without
offset-value codes, for column lists of varying lengths.

Paper result: offset-value codes cut run time by 20-35%, with the
larger benefit when the *last* column of each list decides comparisons.
One pytest-benchmark entry per (decide, list_len, ovc) cell, plus a
fast-engine entry per (decide, list_len) for the packed-code kernels.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import run_fig10_cell
from repro.workloads.generators import fig10_table

LIST_LENGTHS = (1, 2, 4, 8, 16)


def _make(n_rows: int, list_len: int, decide: str):
    return fig10_table(
        n_rows, list_len, decide=decide, n_runs=min(512, n_rows // 2), seed=0
    )


@pytest.mark.parametrize("list_len", LIST_LENGTHS)
@pytest.mark.parametrize("decide", ["first", "last"])
@pytest.mark.parametrize("use_ovc", [False, True], ids=["no-ovc", "ovc"])
def test_fig10_runtime(benchmark, n_rows_default, list_len, decide, use_ovc):
    table = _make(n_rows_default, list_len, decide)
    benchmark.group = f"fig10 {decide}-decides len={list_len}"
    result = benchmark(run_fig10_cell, table, list_len, use_ovc)
    assert len(result) == len(table)
    assert result.is_sorted()


@pytest.mark.parametrize("list_len", LIST_LENGTHS)
@pytest.mark.parametrize("decide", ["first", "last"])
def test_fig10_runtime_fast_engine(benchmark, n_rows_default, list_len, decide):
    """The packed-code kernels on the same cells (no counters)."""
    table = _make(n_rows_default, list_len, decide)
    benchmark.group = f"fig10 {decide}-decides len={list_len}"
    result = benchmark(run_fig10_cell, table, list_len, True, None, "fast")
    assert len(result) == len(table)
    assert result.is_sorted()
