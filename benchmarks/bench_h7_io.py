"""Hypothesis 7: merging runs pre-existing in a storage structure saves
the I/O an external merge sort spends writing and re-reading runs."""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import format_table
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec
from repro.ovc.stats import ComparisonStats
from repro.sorting.external import ExternalMergeSort
from repro.storage.pages import PageManager
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B")


def test_h7_io_comparison(n_rows_small):
    """Full external sort writes and reads every row at least once per
    merge level; scanning pre-existing runs out of storage reads the
    input exactly once and writes only the output."""
    table = random_sorted_table(
        SCHEMA, SortSpec.of("A", "B"), n_rows_small, domains=[64, 1 << 20], seed=5
    )

    # Baseline: treat the input as unsorted; external sort with spills.
    pages_sort = PageManager()
    sorter = ExternalMergeSort(
        (1, 0),
        memory_capacity=n_rows_small // 32,
        fan_in=8,
        page_manager=pages_sort,
    )
    result = sorter.sort(table.rows)

    # Order modification: one scan of the stored input (charged), merge
    # of its pre-existing runs, one write of the output.
    pages_mod = PageManager()
    pages_mod.charge_scan(table.rows)
    modified = modify_sort_order(
        table, SortSpec.of("B", "A"), method="merge_runs", stats=ComparisonStats()
    )
    pages_mod.spill_run(modified.rows)

    print()
    print(
        format_table(
            [
                {
                    "plan": "external sort",
                    "pages_written": result.io.pages_written,
                    "pages_read": result.io.pages_read,
                    "bytes_total": result.io.bytes_written + result.io.bytes_read,
                },
                {
                    "plan": "merge pre-existing runs",
                    "pages_written": pages_mod.stats.pages_written,
                    "pages_read": pages_mod.stats.pages_read,
                    "bytes_total": pages_mod.stats.bytes_written
                    + pages_mod.stats.bytes_read,
                },
            ],
            f"H7: simulated I/O, {n_rows_small:,} rows",
        )
    )
    assert modified.is_sorted()
    # The external sort writes runs; order modification writes only the
    # output — at most half the write traffic per extra merge level.
    assert pages_mod.stats.pages_written < result.io.pages_written
    assert (
        pages_mod.stats.bytes_written + pages_mod.stats.bytes_read
        < result.io.bytes_written + result.io.bytes_read
    )


@pytest.mark.parametrize("plan", ["external_sort", "merge_preexisting"])
def test_h7_runtime(benchmark, n_rows_small, plan):
    table = random_sorted_table(
        SCHEMA, SortSpec.of("A", "B"), n_rows_small, domains=[64, 1 << 20], seed=5
    )
    benchmark.group = "h7: external sort vs merge out of storage"
    if plan == "external_sort":

        def run():
            sorter = ExternalMergeSort(
                (1, 0), memory_capacity=n_rows_small // 32, fan_in=8
            )
            return sorter.sort(table.rows)

        result = benchmark(run)
        assert len(result.rows) == len(table)
    else:

        def run():
            return modify_sort_order(
                table, SortSpec.of("B", "A"), method="merge_runs"
            )

        result = benchmark(run)
        assert len(result) == len(table)
