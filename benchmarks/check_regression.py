#!/usr/bin/env python3
"""Regression sentinel: did this PR make the measured claims worse?

The committed ``BENCH_fastpath.json`` / ``BENCH_parallel.json`` /
``BENCH_cache.json`` artifacts record the repo's performance trajectory
— but until now nothing *checked* a fresh run against them, so a PR
could silently halve the fast path's advantage.  This sentinel closes
the loop:

* **fastpath** — a fresh reference-vs-fast sweep is compared per cell
  (matched by ``label``) against the committed record: each cell's
  *speedup* (a dimensionless ratio, far more host-portable than raw
  seconds) must stay within the noise band of the committed value, and
  so must the geomean.
* **cache** — same per-cell comparison (matched by ``case``) on
  ``speedup`` and ``hit_speedup``, plus every fidelity bit must hold.
* **parallel** — fidelity only: the committed record's speedups are
  core-count-dependent (the committed host's numbers mean nothing
  here), but ``fidelity_ok`` must be true in the committed record and
  in a fresh record when one is supplied.
* **plan** — per-cell (matched by ``batch`` size) and geomean
  wall-clock comparison for the batch derivation planner, plus every
  fidelity bit in both the committed and the fresh record (the planner
  claims bit-identity, so a fidelity failure is never noise).
* **overhead** (optional, ``--overhead FILE``) — consume the JSON that
  ``check_trace_overhead.py --json`` writes and require both telemetry
  budgets to hold.

Fresh records normally come from live runs at ``--log2-rows`` (smaller
than the committed artifacts' row counts — speedups grow with input
size, which is why the default noise bands are one-sided and generous:
the gate catches *collapses*, not flutter).  ``--fresh-* FILE`` swaps a
live run for a pre-computed record, which is how tests prove the gate
fires on a synthetically slowed record.

``--smoke`` selects the CI configuration: small inputs and wide bands.
Exit status is non-zero on any regression finding.

Run:  python benchmarks/check_regression.py --smoke
"""

from __future__ import annotations

import argparse
import json
import math
import sys

sys.path.insert(0, "src")

COMMITTED = {
    "fastpath": "BENCH_fastpath.json",
    "parallel": "BENCH_parallel.json",
    "cache": "BENCH_cache.json",
    "plan": "BENCH_plan.json",
}

#: Default one-sided noise bands: a fresh speedup may fall this far
#: (fractionally) below the committed one before the gate fires.  The
#: committed artifacts were measured at 2^16 rows; smoke runs are much
#: smaller and speedups shrink with input size, hence the generous
#: smoke band (calibrated so a healthy 2^13 run passes with margin
#: while a 2x collapse fails every cell).
NOISE = {"default": 0.25, "smoke": 0.60}
GEOMEAN_NOISE = {"default": 0.15, "smoke": 0.45}


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _geomean(values: list[float]) -> float:
    vals = [max(v, 1e-9) for v in values if v is not None]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _below(fresh: float, committed: float, band: float) -> bool:
    return fresh < committed * (1.0 - band)


def compare_fastpath(
    committed: dict, fresh: dict, noise: float, geomean_noise: float
) -> list[str]:
    """Per-cell + geomean speedup comparison for the engine sweep."""
    problems: list[str] = []
    by_label = {c["label"]: c for c in committed["cells"]}
    fresh_speedups: list[float] = []
    for cell in fresh["cells"]:
        base = by_label.get(cell["label"])
        if base is None:
            continue  # new cell: nothing committed to regress against
        fresh_speedups.append(cell["speedup"])
        if _below(cell["speedup"], base["speedup"], noise):
            problems.append(
                f"fastpath cell {cell['label']!r}: speedup "
                f"{cell['speedup']}x fell below committed "
                f"{base['speedup']}x (noise band {noise:.0%})"
            )
    missing = set(by_label) - {c["label"] for c in fresh["cells"]}
    for label in sorted(missing):
        problems.append(f"fastpath cell {label!r}: missing from fresh run")
    fresh_geo = _geomean(fresh_speedups)
    if _below(fresh_geo, committed["geomean_speedup"], geomean_noise):
        problems.append(
            f"fastpath geomean: {fresh_geo:.2f}x fell below committed "
            f"{committed['geomean_speedup']}x "
            f"(noise band {geomean_noise:.0%})"
        )
    return problems


def compare_cache(
    committed: dict, fresh: dict, noise: float, geomean_noise: float
) -> list[str]:
    """Per-cell speedup + hit_speedup + fidelity for the cache sweep."""
    problems: list[str] = []
    if not fresh.get("fidelity_ok", False):
        problems.append("cache: fresh record reports fidelity failure")
    by_case = {c["case"]: c for c in committed["cells"]}
    fresh_speedups: list[float] = []
    for cell in fresh["cells"]:
        base = by_case.get(cell["case"])
        if base is None:
            continue
        if not cell.get("fidelity_ok", False):
            problems.append(
                f"cache case {cell['case']}: fidelity failure in fresh run"
            )
        if not cell.get("served_from_cache", False):
            if base.get("served_from_cache", False):
                problems.append(
                    f"cache case {cell['case']}: no longer served from cache"
                )
            continue
        fresh_speedups.append(cell["speedup"])
        for key in ("speedup", "hit_speedup"):
            if _below(cell[key], base[key], noise):
                problems.append(
                    f"cache case {cell['case']}: {key} {cell[key]}x fell "
                    f"below committed {base[key]}x (noise band {noise:.0%})"
                )
    fresh_geo = _geomean(fresh_speedups)
    if _below(fresh_geo, committed["geomean_speedup"], geomean_noise):
        problems.append(
            f"cache geomean: {fresh_geo:.2f}x fell below committed "
            f"{committed['geomean_speedup']}x "
            f"(noise band {geomean_noise:.0%})"
        )
    return problems


def compare_plan(
    committed: dict, fresh: dict, noise: float, geomean_noise: float
) -> list[str]:
    """Fidelity + per-batch and geomean speedup for the batch planner."""
    problems: list[str] = []
    if not committed.get("fidelity_ok", False):
        problems.append("plan: committed record reports fidelity failure")
    if not fresh.get("fidelity_ok", False):
        problems.append("plan: fresh record reports fidelity failure")
    by_batch = {c["batch"]: c for c in committed["cells"]}
    fresh_speedups: list[float] = []
    for cell in fresh["cells"]:
        base = by_batch.get(cell["batch"])
        if base is None:
            continue
        fresh_speedups.append(cell["speedup"])
        if _below(cell["speedup"], base["speedup"], noise):
            problems.append(
                f"plan batch {cell['batch']}: speedup {cell['speedup']}x "
                f"fell below committed {base['speedup']}x "
                f"(noise band {noise:.0%})"
            )
    missing = set(by_batch) - {c["batch"] for c in fresh["cells"]}
    for batch in sorted(missing):
        problems.append(f"plan batch {batch}: missing from fresh run")
    fresh_geo = _geomean(fresh_speedups)
    if _below(fresh_geo, committed["geomean_speedup"], geomean_noise):
        problems.append(
            f"plan geomean: {fresh_geo:.2f}x fell below committed "
            f"{committed['geomean_speedup']}x "
            f"(noise band {geomean_noise:.0%})"
        )
    return problems


def check_parallel(committed: dict, fresh: dict | None) -> list[str]:
    """Fidelity-only: parallel speedups are core-count-dependent."""
    problems: list[str] = []
    if not committed.get("fidelity_ok", False):
        problems.append("parallel: committed record reports fidelity failure")
    if fresh is not None and not fresh.get("fidelity_ok", False):
        problems.append("parallel: fresh record reports fidelity failure")
    return problems


def check_overhead(report: dict) -> list[str]:
    """Gate on the overhead artifact check_trace_overhead.py wrote."""
    problems: list[str] = []
    budget = report.get("budget", 0.05)
    for side in ("disabled", "enabled"):
        ratio = report.get(side, {}).get("overhead_ratio")
        if ratio is None:
            problems.append(f"overhead: no {side!r} measurement in report")
        elif ratio >= budget:
            problems.append(
                f"overhead: {side} telemetry ratio {ratio:.4f} exceeds "
                f"budget {budget:.2f}"
            )
    if not report.get("ok", False):
        problems.append("overhead: report marked not ok")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI configuration: small inputs, wide noise bands",
    )
    parser.add_argument(
        "--log2-rows", type=int, default=None,
        help="rows for live fresh runs as a power of two"
        " (default: 13 with --smoke, else 14)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--noise", type=float, default=None,
        help="per-cell one-sided noise band as a fraction"
        f" (default {NOISE['default']}, smoke {NOISE['smoke']})",
    )
    parser.add_argument(
        "--geomean-noise", type=float, default=None,
        help="geomean noise band as a fraction"
        f" (default {GEOMEAN_NOISE['default']},"
        f" smoke {GEOMEAN_NOISE['smoke']})",
    )
    parser.add_argument(
        "--fresh-fastpath", metavar="FILE", default=None,
        help="use this record as the fresh fastpath run (skips the live"
        " sweep; how tests feed the gate a synthetic regression)",
    )
    parser.add_argument(
        "--fresh-cache", metavar="FILE", default=None,
        help="use this record as the fresh cache run",
    )
    parser.add_argument(
        "--fresh-parallel", metavar="FILE", default=None,
        help="check this record's fidelity alongside the committed one",
    )
    parser.add_argument(
        "--fresh-plan", metavar="FILE", default=None,
        help="use this record as the fresh batch-planner run",
    )
    parser.add_argument(
        "--skip-cache", action="store_true",
        help="skip the cache comparison (no live run, no file)",
    )
    parser.add_argument(
        "--skip-plan", action="store_true",
        help="skip the batch-planner comparison (no live run, no file)",
    )
    parser.add_argument(
        "--overhead", metavar="FILE", default=None,
        help="also gate on a check_trace_overhead.py --json artifact",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the sentinel's findings as a JSON artifact",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "default"
    noise = args.noise if args.noise is not None else NOISE[mode]
    geomean_noise = (
        args.geomean_noise
        if args.geomean_noise is not None
        else GEOMEAN_NOISE[mode]
    )
    log2_rows = args.log2_rows if args.log2_rows is not None else (
        13 if args.smoke else 14
    )
    n_rows = 1 << log2_rows

    problems: list[str] = []

    committed_fast = _load(COMMITTED["fastpath"])
    if args.fresh_fastpath:
        fresh_fast = _load(args.fresh_fastpath)
        print(f"fastpath: comparing {args.fresh_fastpath} (pre-computed)")
    else:
        print(f"fastpath: running fresh sweep at {n_rows:,} rows ...")
        from repro.bench.trajectory import run_trajectory

        fresh_fast = run_trajectory(n_rows, seed=args.seed)
    if not fresh_fast.get("fidelity_ok", True):
        problems.append("fastpath: fresh record reports fidelity failure")
    problems += compare_fastpath(
        committed_fast, fresh_fast, noise, geomean_noise
    )

    if not args.skip_cache:
        committed_cache = _load(COMMITTED["cache"])
        if args.fresh_cache:
            fresh_cache = _load(args.fresh_cache)
            print(f"cache: comparing {args.fresh_cache} (pre-computed)")
        else:
            print(f"cache: running fresh sweep at {n_rows:,} rows ...")
            from repro.bench.cache_bench import run_cache_trajectory

            fresh_cache = run_cache_trajectory(n_rows, seed=args.seed)
        problems += compare_cache(
            committed_cache, fresh_cache, noise, geomean_noise
        )

    if not args.skip_plan:
        committed_plan = _load(COMMITTED["plan"])
        if args.fresh_plan:
            fresh_plan = _load(args.fresh_plan)
            print(f"plan: comparing {args.fresh_plan} (pre-computed)")
        else:
            print(f"plan: running fresh sweep at {n_rows:,} rows ...")
            from repro.bench.plan_bench import run_plan_trajectory

            fresh_plan = run_plan_trajectory(n_rows, seed=args.seed)
        problems += compare_plan(
            committed_plan, fresh_plan, noise, geomean_noise
        )

    committed_parallel = _load(COMMITTED["parallel"])
    fresh_parallel = (
        _load(args.fresh_parallel) if args.fresh_parallel else None
    )
    problems += check_parallel(committed_parallel, fresh_parallel)

    if args.overhead:
        problems += check_overhead(_load(args.overhead))

    report = {
        "mode": mode,
        "noise": noise,
        "geomean_noise": geomean_noise,
        "n_rows": n_rows,
        "problems": problems,
        "ok": not problems,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    for problem in problems:
        print(f"REGRESSION: {problem}")
    print("OK" if not problems else f"FAIL ({len(problems)} finding(s))")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
