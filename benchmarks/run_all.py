"""Reference-vs-fast bench trajectory: ``python benchmarks/run_all.py``.

Runs the Figure 10 / Figure 11 cells with both engines, asserts
bit-identical output, and writes the JSON artifact (default
``BENCH_fastpath.json`` at the repo root).  Equivalent to
``python -m repro bench --json``.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py              # 2^16 rows
    PYTHONPATH=src python benchmarks/run_all.py --log2-rows 12
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.harness import format_table  # noqa: E402
from repro.bench.trajectory import run_trajectory, write_trajectory  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_fastpath.json"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--log2-rows", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    record = run_trajectory(
        1 << args.log2_rows, seed=args.seed, repeats=args.repeats
    )
    write_trajectory(args.output, record)
    print(
        format_table(
            record["cells"],
            f"reference vs fast, {record['n_rows']:,} rows "
            f"(min speedup {record['min_speedup']}x, "
            f"geomean {record['geomean_speedup']}x)",
        )
    )
    print(f"\nwrote {os.path.abspath(args.output)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
