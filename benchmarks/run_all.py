"""Bench trajectories: ``python benchmarks/run_all.py``.

Default mode runs the Figure 10 / Figure 11 cells with both engines,
checks bit-identical output, and writes the JSON artifact (default
``BENCH_fastpath.json`` at the repo root) — equivalent to
``python -m repro bench --json``.  With ``--workers`` it instead sweeps
the parallel subsystem (serial vs each worker count) over the Figure 11
many-segment workload and writes ``BENCH_parallel.json``.  With
``--cache`` it instead measures the order cache — cold sort vs
modify-from-cached-order vs exact hit over the Table 1 order pairs —
and writes ``BENCH_cache.json``, failing if any cache-served cell is
slower than the cold sort.

Either mode exits non-zero if any cell's fidelity check (bit-identical
rows and codes) fails.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py                 # 2^16 rows
    PYTHONPATH=src python benchmarks/run_all.py --log2-rows 12
    PYTHONPATH=src python benchmarks/run_all.py --workers 1,2,4 --log2-rows 17
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.harness import format_table  # noqa: E402
from repro.bench.trajectory import run_trajectory, write_trajectory  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_fastpath.json"
)
DEFAULT_PARALLEL_OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_parallel.json"
)
DEFAULT_CACHE_OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_cache.json"
)


def _cache_sweep(args) -> int:
    from repro.bench.cache_bench import (
        check_cache_record,
        format_cache_cells,
        run_cache_trajectory,
        write_cache_trajectory,
    )

    record = run_cache_trajectory(
        1 << args.log2_rows, seed=args.seed, repeats=args.repeats
    )
    output = args.output or DEFAULT_CACHE_OUTPUT
    write_cache_trajectory(output, record)
    print(
        format_table(
            format_cache_cells(record),
            f"cold sort vs cached modify, {record['n_rows']:,} rows "
            f"({record['cells_served']}/{len(record['cells'])} cells "
            f"cache-served; min speedup {record['min_speedup']}x, "
            f"geomean {record['geomean_speedup']}x)",
        )
    )
    print(f"\nwrote {os.path.abspath(output)}")
    problems = check_cache_record(record)
    for problem in problems:
        print(f"CACHE BENCH FAILURE: {problem}")
    return 1 if problems else 0


def _parallel_sweep(args) -> int:
    from repro.bench.parallel_bench import (
        format_parallel_cells,
        run_parallel_trajectory,
        write_parallel_trajectory,
    )

    workers = [
        w.strip() if w.strip() == "auto" else int(w)
        for w in args.workers.split(",")
        if w.strip()
    ]
    record = run_parallel_trajectory(
        1 << args.log2_rows, workers=workers, seed=args.seed,
        repeats=args.repeats,
    )
    output = args.output or DEFAULT_PARALLEL_OUTPUT
    write_parallel_trajectory(output, record)
    print(
        format_table(
            format_parallel_cells(record),
            f"serial vs parallel, {record['n_rows']:,} rows "
            f"({record['cpu_count']} cpus; "
            f"best speedup {record['best_speedup']}x)",
        )
    )
    print(f"\nwrote {os.path.abspath(output)}")
    if not record["fidelity_ok"]:
        print("FIDELITY FAILURE: parallel output diverged from serial")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--log2-rows", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=None)
    parser.add_argument(
        "--workers",
        default=None,
        metavar="N[,N|auto...]",
        help="sweep the parallel subsystem at these worker counts"
        " ('auto' keeps adaptive dispatch) and write"
        " BENCH_parallel.json instead of the fast-path cells",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="measure the order cache (cold sort vs cached modify over"
        " the Table 1 order pairs) and write BENCH_cache.json instead"
        " of the fast-path cells",
    )
    args = parser.parse_args(argv)

    if args.cache:
        return _cache_sweep(args)
    if args.workers:
        return _parallel_sweep(args)

    record = run_trajectory(
        1 << args.log2_rows, seed=args.seed, repeats=args.repeats
    )
    output = args.output or DEFAULT_OUTPUT
    write_trajectory(output, record)
    print(
        format_table(
            record["cells"],
            f"reference vs fast, {record['n_rows']:,} rows "
            f"(min speedup {record['min_speedup']}x, "
            f"geomean {record['geomean_speedup']}x)",
        )
    )
    print(f"\nwrote {os.path.abspath(output)}")
    if not record["fidelity_ok"]:
        print("FIDELITY FAILURE: fast engine diverged from reference")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
