"""Hypothesis 8: merging pre-existing runs extends to log-structured
merge forests and partitioned b-trees — aligned segments let the forest
be re-sorted one segment at a time across partitions."""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import format_table
from repro.model import Schema, SortSpec
from repro.ovc.stats import ComparisonStats
from repro.sorting.internal import tournament_sort
from repro.storage.lsm import LsmForest

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")
NEW_ORDER = SortSpec.of("A", "C", "B")


def _forest(n_rows: int, n_partitions: int = 4, seed: int = 13) -> LsmForest:
    rng = random.Random(seed)
    forest = LsmForest(SCHEMA, SPEC)
    per = n_rows // n_partitions
    for _ in range(n_partitions):
        batch = [
            (rng.randrange(16), rng.randrange(32), rng.randrange(256))
            for _ in range(per)
        ]
        forest.ingest(batch)
    return forest


def test_h8_segmented_modification_correct(n_rows_small):
    forest = _forest(n_rows_small)
    stats = ComparisonStats()
    result = forest.modify_order_segmented(NEW_ORDER, stats)
    all_rows = [r for p in forest.partitions for r in p.rows]
    assert result.rows == sorted(all_rows, key=lambda r: (r[0], r[2], r[1]))

    # Baseline: flatten the forest and sort from scratch.
    baseline = ComparisonStats()
    tournament_sort(all_rows, (0, 2, 1), baseline)
    print()
    print(
        format_table(
            [
                {"plan": "aligned segments across partitions", **stats.as_dict()},
                {"plan": "flatten + full sort", **baseline.as_dict()},
            ],
            f"H8: LSM forest re-sort, {n_rows_small:,} rows, "
            f"{forest.partition_count} partitions",
        )
    )
    assert stats.column_comparisons < baseline.column_comparisons


def test_h8_benchmark_segmented(benchmark, n_rows_small):
    forest = _forest(n_rows_small)
    benchmark.group = "h8: forest re-sort"
    result = benchmark(forest.modify_order_segmented, NEW_ORDER)
    assert len(result) == n_rows_small // 4 * 4


def test_h8_benchmark_flatten_sort(benchmark, n_rows_small):
    forest = _forest(n_rows_small)
    all_rows = [r for p in forest.partitions for r in p.rows]
    benchmark.group = "h8: forest re-sort"
    rows, _ovcs = benchmark(
        tournament_sort, all_rows, (0, 2, 1), ComparisonStats()
    )
    assert len(rows) == len(all_rows)
