"""Shared configuration for the benchmark suite.

Sizes default to 2^14 rows (the paper uses 2^20 on a C++ engine; pure
Python pays the constant factor, the *shapes* survive).  Scale up with
``REPRO_SCALE`` (exponent delta) to approach the paper's scale:
``REPRO_SCALE=6 pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest


def scaled(base_exponent: int) -> int:
    return 1 << (base_exponent + int(os.environ.get("REPRO_SCALE", "0")))


@pytest.fixture(scope="session")
def n_rows_default() -> int:
    return scaled(14)


@pytest.fixture(scope="session")
def n_rows_small() -> int:
    return scaled(12)
