"""Table 1: one benchmark per prototype case, measuring the win of
exploiting the existing order (auto strategy) against sorting from
scratch on the same data.
"""

from __future__ import annotations

import pytest

from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec, Table
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C", "D")

CASES = {
    0: (("A", "B"), ("A",)),
    1: (("A",), ("A", "B")),
    2: (("A", "B"), ("B",)),
    3: (("A", "B"), ("B", "A")),
    4: (("A", "B", "C"), ("A", "C")),
    5: (("A", "B", "C"), ("A", "C", "B")),
    6: (("A", "B", "C", "D"), ("A", "C", "D")),
    7: (("A", "B", "C", "D"), ("A", "C", "B", "D")),
}


def _table(input_key, n_rows: int) -> Table:
    # Small domains create realistic segments/runs/duplicates.
    domains = {"A": 32, "B": 64, "C": 256, "D": 8}
    return random_sorted_table(
        SCHEMA,
        SortSpec(input_key),
        n_rows,
        domains=[domains[c] for c in SCHEMA.columns],
        seed=7,
    )


@pytest.mark.parametrize("case", sorted(CASES))
def test_table1_case_auto(benchmark, n_rows_small, case):
    input_key, output_key = CASES[case]
    table = _table(input_key, n_rows_small)
    benchmark.group = f"table1 case {case}: {','.join(input_key)} -> {','.join(output_key)}"
    result = benchmark(
        modify_sort_order, table, SortSpec(output_key), "auto"
    )
    assert result.is_sorted()


@pytest.mark.parametrize("case", sorted(CASES))
def test_table1_case_full_sort_baseline(benchmark, n_rows_small, case):
    input_key, output_key = CASES[case]
    table = _table(input_key, n_rows_small)
    benchmark.group = f"table1 case {case}: {','.join(input_key)} -> {','.join(output_key)}"
    result = benchmark(
        modify_sort_order, table, SortSpec(output_key), "full_sort"
    )
    assert result.is_sorted()
