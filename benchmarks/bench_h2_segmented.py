"""Hypotheses 1 and 2 ablation: segmented sorting with and without
offset-value codes.

H1: segments below memory turn an external sort into internal sorts
(shown by the cost model and the I/O bench); here we show the in-memory
effect — per-segment sorts beat one big sort.  H2: codes help twice,
(a) detecting segment boundaries without comparing the prefix columns
and (b) entering each segment sort with codes that skip the prefix.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A0", "A1", "B")
INPUT = SortSpec.of("A0", "A1")
OUTPUT = SortSpec.of("A0", "A1", "B")  # Table 1 case 1


@pytest.fixture(scope="module")
def table(n_rows_small):
    # Sorted on (A0, A1) only; B random within segments.
    return random_sorted_table(
        SCHEMA, INPUT, n_rows_small, domains=[32, 16, 1 << 20], seed=17
    )


def test_h2_codes_save_boundary_and_prefix_comparisons(table, n_rows_small):
    with_codes = ComparisonStats()
    r1 = modify_sort_order(
        table, OUTPUT, method="segment_sort", use_ovc=True, stats=with_codes
    )
    without = ComparisonStats()
    r2 = modify_sort_order(
        table, OUTPUT, method="segment_sort", use_ovc=False, stats=without
    )
    assert r1.rows == r2.rows
    assert r1.is_sorted()
    print()
    print(
        format_table(
            [
                {"variant": "segmented + codes", **with_codes.as_dict()},
                {"variant": "segmented, no codes", **without.as_dict()},
            ],
            f"H2: case 1 (A -> A,B), {n_rows_small:,} rows",
        )
    )
    # Boundary detection alone costs the no-code variant ~2 column
    # comparisons per row; the coded variant reads offsets instead.
    assert with_codes.column_comparisons < without.column_comparisons


def test_h1_segmented_beats_single_sort_on_comparisons(table):
    segmented = ComparisonStats()
    modify_sort_order(
        table, OUTPUT, method="segment_sort", use_ovc=True, stats=segmented
    )
    monolithic = ComparisonStats()
    modify_sort_order(
        table, OUTPUT, method="full_sort", use_ovc=True, stats=monolithic
    )
    # s segments of n/s rows: sum n/s*log(n/s) < n*log(n).
    assert segmented.row_comparisons < monolithic.row_comparisons


@pytest.mark.parametrize(
    "variant", ["codes", "no_codes"]
)
def test_h2_runtime(benchmark, table, variant):
    benchmark.group = "h2: segmented sort, codes vs none"
    result = benchmark(
        modify_sort_order,
        table,
        OUTPUT,
        "segment_sort",
        variant == "codes",
    )
    assert len(result) == len(table)
