"""Ablation: how value density (tie frequency) shapes Figure 10.

The paper's bottom-left vs bottom-right diagrams differ because ties on
the deciding column force comparisons over the rest of the list.  This
ablation sweeps the deciding column's domain from dense (ties
everywhere) to sparse (ties vanish) and shows the with-codes comparison
count collapsing toward zero while the no-codes baseline barely moves —
codes cache exactly the work ties create.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import run_fig10_cell
from repro.bench.harness import format_table
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import fig10_table

LIST_LEN = 8


def _counts(n_rows: int, domain: int) -> dict:
    table = fig10_table(
        n_rows, LIST_LEN, decide="first", n_runs=min(256, n_rows // 4),
        domain=domain, seed=0,
    )
    out = {"domain": domain}
    for use_ovc in (False, True):
        stats = ComparisonStats()
        run_fig10_cell(table, LIST_LEN, use_ovc, stats)
        out["ovc" if use_ovc else "no_ovc"] = stats.column_comparisons
    return out


def test_tie_density_ablation(n_rows_small):
    rows = [
        _counts(n_rows_small, domain)
        for domain in (4, 64, 1024, 1 << 16, 1 << 24)
    ]
    print()
    print(
        format_table(
            rows,
            f"Ablation: column comparisons vs deciding-value domain "
            f"({n_rows_small:,} rows, lists of {LIST_LEN})",
        )
    )
    # With codes, comparisons shrink monotonically as ties disappear...
    coded = [r["ovc"] for r in rows]
    assert coded[0] > coded[-1]
    assert coded[-1] < n_rows_small // 8
    # ... while the baseline stays within a small factor throughout.
    baseline = [r["no_ovc"] for r in rows]
    assert max(baseline) < 4 * min(baseline)
    # And codes always win.
    for r in rows:
        assert r["ovc"] < r["no_ovc"]


@pytest.mark.parametrize("domain", [4, 1 << 16])
def test_tie_density_runtime(benchmark, n_rows_small, domain):
    table = fig10_table(
        n_rows_small, LIST_LEN, decide="first",
        n_runs=min(256, n_rows_small // 4), domain=domain, seed=0,
    )
    benchmark.group = "ablation: tie density (with codes)"
    result = benchmark(run_fig10_cell, table, LIST_LEN, True)
    assert len(result) == len(table)
