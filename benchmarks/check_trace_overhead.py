#!/usr/bin/env python3
"""Gate: disabled tracing must cost < 5% of the bench smoke wall time.

The tracer's contract is that instrumentation left in the hot paths is
(almost) free while disabled: one ``.enabled`` attribute check and a
no-op context-manager round trip per *phase* (never per row).  This
script verifies the budget without cross-commit timing (which is flaky
on shared CI hosts):

1. time the bench smoke workload with tracing disabled (the shipping
   configuration) — ``T`` seconds;
2. run it once with tracing enabled and count the spans it records —
   ``S`` spans, an upper bound on disabled-path span() calls since the
   kernels gate extra spans on ``TRACER.enabled``;
3. microbench the disabled ``Tracer.span()`` no-op path — ``c``
   seconds per call;
4. require ``S * c < 5% * T``.

Exit status is non-zero on a budget violation, so CI can gate on it.

Run:  python benchmarks/check_trace_overhead.py
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, "src")

from repro.core.modify import modify_sort_order  # noqa: E402
from repro.model import Schema, SortSpec  # noqa: E402
from repro.obs import TRACER  # noqa: E402
from repro.workloads.generators import random_sorted_table  # noqa: E402

BUDGET = 0.05


def workload():
    schema = Schema.of("A", "B", "C", "D")
    table = random_sorted_table(
        schema, SortSpec.of("A", "B", "C"), 1 << 14,
        domains=[32, 64, 256, 8], seed=0,
    )
    for engine in ("reference", "fast"):
        modify_sort_order(table, SortSpec.of("A", "C", "B"), engine=engine)


def main() -> int:
    TRACER.disable()
    TRACER.reset()
    disabled_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        workload()
        disabled_s = min(disabled_s, time.perf_counter() - start)

    TRACER.enable(clear=True)
    workload()
    n_spans = len(TRACER.drain())
    TRACER.disable()
    TRACER.reset()

    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        with TRACER.span("x", rows=1):
            pass
    per_call_s = (time.perf_counter() - start) / reps

    overhead_s = n_spans * per_call_s
    ratio = overhead_s / disabled_s
    print(f"bench smoke (tracing disabled): {disabled_s * 1e3:.1f} ms")
    print(f"spans recorded when enabled:    {n_spans}")
    print(f"disabled span() no-op cost:     {per_call_s * 1e9:.0f} ns/call")
    print(
        f"worst-case disabled overhead:   {overhead_s * 1e6:.1f} us "
        f"({ratio * 100:.3f}% of wall time; budget {BUDGET * 100:.0f}%)"
    )
    if ratio >= BUDGET:
        print("FAIL: disabled-tracer overhead exceeds the budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
