#!/usr/bin/env python3
"""Gate: telemetry must cost < 5% of the bench wall time, on and off.

Two claims are enforced, each with its own measurement:

**Disabled-path budget** — instrumentation left in the hot paths is
(almost) free while disabled: one ``.enabled`` attribute check and a
no-op context-manager round trip per *phase* (never per row).  Verified
without cross-commit timing (which is flaky on shared CI hosts):

1. time the bench smoke workload with tracing disabled (the shipping
   configuration) — ``T`` seconds;
2. run it once with tracing enabled and count the spans it records —
   ``S`` spans, an upper bound on disabled-path span() calls since the
   kernels gate extra spans on ``TRACER.enabled``;
3. microbench the disabled ``Tracer.span()`` no-op path — ``c``
   seconds per call;
4. require ``S * c < 5% * T``.

**Enabled-path budget** — the live telemetry plane (metrics registry on,
structured log writing, slow-query log armed, ``/metrics`` server up)
must stay under 5% on a full Table 1 sweep: the sweep is timed
min-of-three with telemetry off and again with everything on, and the
ratio must hold.  Decision-grade events and per-phase counters are the
design contract that makes this cheap; this check keeps it true.

``--json PATH`` records every measured number (the regression sentinel
tracks the budget over time from this artifact).  Exit status is
non-zero on any budget violation, so CI can gate on it.

Run:  python benchmarks/check_trace_overhead.py [--json overhead.json]
                                                [--log2-rows N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, "src")

from repro.core.modify import modify_sort_order  # noqa: E402
from repro.exec import ExecutionConfig  # noqa: E402
from repro.model import Schema, SortSpec  # noqa: E402
from repro.obs import LOG, METRICS, SLOWLOG, TRACER  # noqa: E402
from repro.workloads.generators import random_sorted_table  # noqa: E402

BUDGET = 0.05

#: The Table 1 order pairs (mirrors repro.__main__._TABLE1).
TABLE1 = [
    (("A", "B"), ("A",)),
    (("A",), ("A", "B")),
    (("A", "B"), ("B",)),
    (("A", "B"), ("B", "A")),
    (("A", "B", "C"), ("A", "C")),
    (("A", "B", "C"), ("A", "C", "B")),
    (("A", "B", "C", "D"), ("A", "C", "D")),
    (("A", "B", "C", "D"), ("A", "C", "B", "D")),
]


def smoke_workload(n_rows: int) -> None:
    schema = Schema.of("A", "B", "C", "D")
    table = random_sorted_table(
        schema, SortSpec.of("A", "B", "C"), n_rows,
        domains=[32, 64, 256, 8], seed=0,
    )
    for engine in ("reference", "fast"):
        modify_sort_order(
            table, SortSpec.of("A", "C", "B"),
            config=ExecutionConfig(engine=engine),
        )


def table1_sweep(n_rows: int) -> None:
    """One full Table 1 pass: all eight order pairs, auto strategy."""
    schema = Schema.of("A", "B", "C", "D")
    domains = [32, 64, 256, 8]
    for inp, out in TABLE1:
        table = random_sorted_table(
            schema, SortSpec(inp), n_rows, domains=domains, seed=0
        )
        modify_sort_order(table, SortSpec(out))


def min_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_disabled(n_rows: int, report: dict) -> bool:
    """The derived disabled-path budget (steps 1-4 above)."""
    TRACER.disable()
    TRACER.reset()
    disabled_s = min_of(lambda: smoke_workload(n_rows))

    TRACER.enable(clear=True)
    smoke_workload(n_rows)
    n_spans = len(TRACER.drain())
    TRACER.disable()
    TRACER.reset()

    reps = 200_000
    start = time.perf_counter()
    for _ in range(reps):
        with TRACER.span("x", rows=1):
            pass
    per_call_s = (time.perf_counter() - start) / reps

    overhead_s = n_spans * per_call_s
    ratio = overhead_s / disabled_s
    print(f"bench smoke (tracing disabled): {disabled_s * 1e3:.1f} ms")
    print(f"spans recorded when enabled:    {n_spans}")
    print(f"disabled span() no-op cost:     {per_call_s * 1e9:.0f} ns/call")
    print(
        f"worst-case disabled overhead:   {overhead_s * 1e6:.1f} us "
        f"({ratio * 100:.3f}% of wall time; budget {BUDGET * 100:.0f}%)"
    )
    report["disabled"] = {
        "smoke_s": round(disabled_s, 6),
        "n_spans": n_spans,
        "span_noop_ns": round(per_call_s * 1e9, 1),
        "overhead_ratio": round(ratio, 6),
    }
    if ratio >= BUDGET:
        print("FAIL: disabled-tracer overhead exceeds the budget")
        return False
    return True


def check_enabled(n_rows: int, report: dict) -> bool:
    """The measured enabled-path budget: full Table 1 sweep, off vs on."""
    from repro.obs.server import start_telemetry_server, stop_telemetry_server

    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()
    off_s = min_of(lambda: table1_sweep(n_rows))

    METRICS.enable(clear=True)
    sink = open(os.devnull, "w", encoding="utf-8")
    LOG.enable(sink)
    SLOWLOG.enable(1e9)  # armed (mark/record run) but never capturing
    server = start_telemetry_server(port=0)
    try:
        on_s = min_of(lambda: table1_sweep(n_rows))
    finally:
        stop_telemetry_server()
        SLOWLOG.disable()
        LOG.disable()
        sink.close()
        METRICS.disable()
        METRICS.reset()
    del server

    ratio = max(0.0, on_s / off_s - 1.0)
    print(f"table1 sweep, telemetry off:    {off_s * 1e3:.1f} ms")
    print(f"table1 sweep, telemetry on:     {on_s * 1e3:.1f} ms")
    print(
        f"enabled-telemetry overhead:     {ratio * 100:.2f}% "
        f"(budget {BUDGET * 100:.0f}%)"
    )
    report["enabled"] = {
        "sweep_off_s": round(off_s, 6),
        "sweep_on_s": round(on_s, 6),
        "overhead_ratio": round(ratio, 6),
    }
    if ratio >= BUDGET:
        print("FAIL: enabled-telemetry overhead exceeds the budget")
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the measured overheads as a JSON artifact",
    )
    parser.add_argument(
        "--log2-rows", type=int, default=14,
        help="rows per workload as a power of two (default 14)",
    )
    args = parser.parse_args(argv)
    n_rows = 1 << args.log2_rows

    report: dict = {"budget": BUDGET, "log2_rows": args.log2_rows}
    ok = check_disabled(n_rows, report)
    ok = check_enabled(n_rows, report) and ok
    report["ok"] = ok

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    print("OK" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
