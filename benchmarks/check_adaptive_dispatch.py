#!/usr/bin/env python3
"""Gate: adaptive dispatch must never regress serial; shm path stays exact.

``workers="auto"`` promises "parallel only when predicted to win": the
dispatcher consults the per-host calibration and stays serial whenever
the pool cannot pay for itself (always true on the 1-cpu CI runners).
This script holds it to that promise without cross-commit timing:

1. for every Table 1 case, best-of-3 time the serial engine and the
   ``workers="auto"`` configuration on the same table;
2. require ``auto <= max(1.05 * serial, serial + 50 ms)`` per case —
   the absolute slack keeps sub-millisecond cells from flaking;
3. run a ``workers=2`` pass with the shared-memory data plane forced
   (tiny-input threshold suspended so the pool actually engages) and
   require bit-identical rows and codes against serial.

Exit status is non-zero on any violation, so CI can gate on it.

Run:  python benchmarks/check_adaptive_dispatch.py
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, "src")

from repro.core.modify import modify_sort_order  # noqa: E402
from repro.exec import ExecutionConfig  # noqa: E402
from repro.model import Schema, SortSpec  # noqa: E402
from repro.parallel import planner  # noqa: E402
from repro.workloads.generators import random_sorted_table  # noqa: E402

SCHEMA = Schema.of("A", "B", "C", "D")

#: Table 1 prototype cases: (input key, output key).
CASES = (
    (("A", "B"), ("A",)),
    (("A",), ("A", "B")),
    (("A", "B"), ("B",)),
    (("A", "B"), ("B", "A")),
    (("A", "B", "C"), ("A", "C")),
    (("A", "B", "C"), ("A", "C", "B")),
    (("A", "B", "C", "D"), ("A", "C", "D")),
    (("A", "B", "C", "D"), ("A", "C", "B", "D")),
)

N_ROWS = 1 << 13
REL_SLACK = 0.05  # auto may cost at most 5% over serial...
ABS_SLACK_S = 0.05  # ...or 50 ms, whichever is larger (tiny cells jitter)
REPEATS = 3


def _table(input_key):
    domains = {"A": 32, "B": 64, "C": 256, "D": 8}
    return random_sorted_table(
        SCHEMA, SortSpec(input_key), N_ROWS,
        domains=[domains[c] for c in SCHEMA.columns], seed=7,
    )


def _time(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    failures = 0
    auto_cfg = ExecutionConfig(workers="auto")
    print(f"adaptive-dispatch gate: {len(CASES)} Table 1 cases, "
          f"{N_ROWS:,} rows each")
    for input_key, output_key in CASES:
        label = f"{','.join(input_key)} -> {','.join(output_key)}"
        table = _table(input_key)
        spec = SortSpec(output_key)
        serial_s = _time(lambda: modify_sort_order(table, spec))
        auto_s = _time(
            lambda: modify_sort_order(table, spec, config=auto_cfg)
        )
        budget_s = max(serial_s * (1 + REL_SLACK), serial_s + ABS_SLACK_S)
        verdict = "ok" if auto_s <= budget_s else "FAIL"
        failures += verdict == "FAIL"
        print(
            f"  {label:24s} serial {serial_s * 1e3:7.1f} ms   "
            f"auto {auto_s * 1e3:7.1f} ms   budget "
            f"{budget_s * 1e3:7.1f} ms   {verdict}"
        )

    # Fidelity over the shared-memory plane: force the pool to engage.
    print("workers=2 fidelity over the shared-memory data plane:")
    shm_cfg = ExecutionConfig(workers=2, data_plane="shm")
    saved_threshold = planner.MIN_PARALLEL_ROWS
    planner.MIN_PARALLEL_ROWS = 0
    try:
        for input_key, output_key in CASES:
            label = f"{','.join(input_key)} -> {','.join(output_key)}"
            table = _table(input_key)
            spec = SortSpec(output_key)
            serial = modify_sort_order(table, spec)
            parallel = modify_sort_order(table, spec, config=shm_cfg)
            identical = (
                parallel.rows == serial.rows and parallel.ovcs == serial.ovcs
            )
            failures += not identical
            print(f"  {label:24s} {'ok' if identical else 'DIVERGED'}")
    finally:
        planner.MIN_PARALLEL_ROWS = saved_threshold

    if failures:
        print(f"FAIL: {failures} violation(s)")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
