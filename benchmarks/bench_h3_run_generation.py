"""Hypotheses 3 and 4: external merge sort spends most of its row and
column comparisons during run generation, so an input whose runs
pre-exist (skipping run generation) saves many or most comparisons.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import format_table
from repro.ovc.stats import ComparisonStats
from repro.sorting.external import ExternalMergeSort
from repro.sorting.merge import kway_merge


@pytest.fixture(scope="module")
def sorted_result(n_rows_default):
    rng = random.Random(11)
    rows = [(rng.randrange(1 << 30), 0) for _ in range(n_rows_default)]
    sorter = ExternalMergeSort((0, 1), memory_capacity=n_rows_default // 64, fan_in=128)
    return rows, sorter.sort(rows)


def test_h3_run_generation_dominates(sorted_result, n_rows_default):
    rows, result = sorted_result
    rg, mg = result.run_generation_stats, result.merge_stats
    print()
    print(
        format_table(
            [
                {"phase": "run generation", **rg.as_dict()},
                {"phase": "merge", **mg.as_dict()},
            ],
            f"H3: comparisons by phase, {n_rows_default:,} rows, "
            f"{result.initial_runs} initial runs",
        )
    )
    assert result.initial_runs > 16  # external regime: M >> W
    assert rg.row_comparisons > mg.row_comparisons
    assert rg.column_comparisons > mg.column_comparisons


def test_h4_preexisting_runs_save_most_comparisons(sorted_result):
    """Merging the same runs without regenerating them costs only the
    merge phase — most comparisons disappear."""
    rows, result = sorted_result
    # Rebuild the initial runs cheaply by slicing the sorted output to
    # the same run count (equal-size pre-existing runs).
    n_runs = result.initial_runs
    chunk = -(-len(rows) // n_runs)
    sorted_rows = result.rows
    from repro.ovc.derive import derive_ovcs

    runs = []
    for start in range(0, len(sorted_rows), chunk):
        part = sorted_rows[start : start + chunk]
        runs.append((part, derive_ovcs(part, (0, 1))))
    merge_only = ComparisonStats()
    out, _ovcs = kway_merge(runs, (0, 1), merge_only)
    assert out == sorted_rows
    total_full = result.total_stats
    assert merge_only.row_comparisons < total_full.row_comparisons / 2
    assert merge_only.column_comparisons < max(1, total_full.column_comparisons)


def test_h3_benchmark_full_sort(benchmark, n_rows_small):
    rng = random.Random(12)
    rows = [(rng.randrange(1 << 30), 0) for _ in range(n_rows_small)]

    def full():
        sorter = ExternalMergeSort((0, 1), memory_capacity=n_rows_small // 32)
        return sorter.sort(rows)

    benchmark.group = "h3/h4: full external sort vs merge of pre-existing runs"
    result = benchmark(full)
    assert result.rows == sorted(rows)


def test_h4_benchmark_merge_only(benchmark, n_rows_small):
    rng = random.Random(12)
    rows = sorted((rng.randrange(1 << 30), 0) for _ in range(n_rows_small))
    from repro.ovc.derive import derive_ovcs

    chunk = n_rows_small // 64
    runs = [
        (rows[i : i + chunk], derive_ovcs(rows[i : i + chunk], (0, 1)))
        for i in range(0, len(rows), chunk)
    ]

    def merge_only():
        return kway_merge(runs, (0, 1), ComparisonStats())

    benchmark.group = "h3/h4: full external sort vs merge of pre-existing runs"
    out, _ = benchmark(merge_only)
    assert out == rows
