"""Streaming order modification: memory bounded by the largest segment.

Section 3.5 allows materializing "one segment at a time"; this bench
quantifies it: peak buffered rows of :class:`StreamingModify` versus
the whole-input materialization, across segment counts.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.core.modify import modify_sort_order
from repro.engine.modify_op import StreamingModify
from repro.engine.scans import TableScan
from repro.workloads.generators import fig11_output_spec, fig11_table

LIST_LEN = 4


def test_peak_memory_tracks_largest_segment(n_rows_small):
    rows_out = []
    for n_segments in (4, 64, 1024):
        table = fig11_table(n_rows_small, n_segments, list_len=LIST_LEN, seed=0)
        op = StreamingModify(TableScan(table), fig11_output_spec(LIST_LEN))
        n = sum(1 for _ in op)
        assert n == len(table)
        rows_out.append(
            {
                "segments": n_segments,
                "peak_rows_buffered": op.peak_segment_rows,
                "input_rows": len(table),
                "fraction": round(op.peak_segment_rows / len(table), 4),
            }
        )
    print()
    print(
        format_table(
            rows_out,
            "Streaming modification: peak buffered rows vs input size",
        )
    )
    for cells in rows_out:
        # Peak equals the largest segment (within divmod slack).
        expected = cells["input_rows"] // cells["segments"]
        assert cells["peak_rows_buffered"] <= expected + cells["segments"]
    # More segments -> less memory, linearly.
    assert rows_out[-1]["peak_rows_buffered"] * 100 < rows_out[0]["peak_rows_buffered"] * 2


@pytest.mark.parametrize("mode", ["streaming", "materializing"])
def test_streaming_runtime(benchmark, n_rows_small, mode):
    table = fig11_table(n_rows_small, 64, list_len=LIST_LEN, seed=0)
    spec = fig11_output_spec(LIST_LEN)
    benchmark.group = "streaming vs materializing modification"
    if mode == "streaming":
        out = benchmark(
            lambda: sum(1 for _ in StreamingModify(TableScan(table), spec))
        )
        assert out == len(table)
    else:
        result = benchmark(modify_sort_order, table, spec)
        assert len(result) == len(table)
