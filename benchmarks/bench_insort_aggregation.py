"""In-sort early aggregation vs sort-then-aggregate.

Offset-value codes make duplicate detection free, so "group by" can
fold aggregate state inside run generation and after every merge level
— the data volume collapses to the distinct-key count after level one,
shrinking both spill traffic and later-level comparisons.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import format_table
from repro.ovc.stats import ComparisonStats
from repro.sorting.external import ExternalMergeSort
from repro.sorting.insort import external_sort_grouped
from repro.storage.pages import PageManager

N_KEYS = 64


def _rows(n_rows: int, seed: int = 0) -> list[tuple]:
    rng = random.Random(seed)
    return [(rng.randrange(N_KEYS), rng.randrange(4), 1) for _ in range(n_rows)]


def _late(rows, capacity, fan_in, stats, pages):
    """Baseline: full sort first, aggregate afterwards."""
    sorter = ExternalMergeSort(
        (0,), memory_capacity=capacity, fan_in=fan_in,
        run_generation="load_sort", use_ovc=True, page_manager=pages,
    )
    result = sorter.sort(rows)
    stats.merge(result.total_stats)
    out = []
    for row, ovc in zip(result.rows, result.ovcs):
        if out and ovc[0] >= 1:
            out[-1] = (out[-1][0], out[-1][1] + 1)
        else:
            out.append((row[0], 1))
    return out


def test_early_aggregation_saves_spill_and_comparisons(n_rows_small):
    rows = _rows(n_rows_small * 4)
    capacity, fan_in = max(64, n_rows_small // 16), 4

    early_stats, early_pages = ComparisonStats(), PageManager()
    early, _stats, info = external_sort_grouped(
        rows, (0,), [("count", None)],
        memory_capacity=capacity, fan_in=fan_in,
        stats=early_stats, page_manager=early_pages,
    )

    late_stats, late_pages = ComparisonStats(), PageManager()
    late = _late(rows, capacity, fan_in, late_stats, late_pages)
    assert early == late

    print()
    print(
        format_table(
            [
                {
                    "plan": "in-sort aggregation",
                    "row_cmp": early_stats.row_comparisons,
                    "bytes_spilled": early_pages.stats.bytes_written,
                },
                {
                    "plan": "sort then aggregate",
                    "row_cmp": late_stats.row_comparisons,
                    "bytes_spilled": late_pages.stats.bytes_written,
                },
            ],
            f"Early vs late aggregation, {len(rows):,} rows, "
            f"{N_KEYS} groups",
        )
    )
    assert early_pages.stats.bytes_written < late_pages.stats.bytes_written / 2
    assert early_stats.row_comparisons < late_stats.row_comparisons
    # Level-one collapse leaves roughly the per-run distinct counts.
    assert info["rows_per_level"][0] <= (len(rows) // capacity + 1) * N_KEYS


@pytest.mark.parametrize("plan", ["early", "late"])
def test_aggregation_runtime(benchmark, n_rows_small, plan):
    rows = _rows(n_rows_small * 2)
    capacity, fan_in = max(64, n_rows_small // 16), 4
    benchmark.group = "in-sort vs post-sort aggregation"
    if plan == "early":
        out = benchmark(
            lambda: external_sort_grouped(
                rows, (0,), [("count", None)],
                memory_capacity=capacity, fan_in=fan_in,
            )[0]
        )
    else:
        out = benchmark(
            lambda: _late(rows, capacity, fan_in, ComparisonStats(), PageManager())
        )
    assert sum(r[1] for r in out) == len(rows)
