"""Hypothesis 6: run-length encoding in sorted column stores enables
efficient segment detection, comparison-free transposition to rows with
prefix truncation / offset-value codes, and efficient merging of
pre-existing runs directly off the scan."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.core.modify import modify_sort_order
from repro.engine.scans import ColumnStoreScan
from repro.model import Schema, SortSpec
from repro.ovc.derive import derive_ovcs
from repro.ovc.stats import ComparisonStats
from repro.storage.colstore import ColumnStore
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")


@pytest.fixture(scope="module")
def store(n_rows_small):
    table = random_sorted_table(
        SCHEMA, SPEC, n_rows_small, domains=[16, 64, 512], seed=9
    )
    return table, ColumnStore.from_table(table)


def test_h6_transposition_is_comparison_free(store, n_rows_small):
    table, col = store
    scan = ColumnStoreScan(col)
    out = list(scan)
    assert [r for r, _o in out] == table.rows
    assert scan.stats.column_comparisons == 0
    # The codes delivered equal a fresh derivation that would have cost
    # this many column comparisons:
    stats = ComparisonStats()
    derive_ovcs(table.rows, (0, 1, 2), stats=stats)
    print()
    print(
        format_table(
            [
                {
                    "path": "column-store scan (RLE boundaries)",
                    "column_comparisons": 0,
                },
                {
                    "path": "fresh derivation",
                    "column_comparisons": stats.column_comparisons,
                },
            ],
            f"H6: cost of obtaining codes for {n_rows_small:,} rows",
        )
    )
    assert [o for _r, o in out] == table.ovcs
    assert stats.column_comparisons > n_rows_small  # what was saved


def test_h6_segment_detection_from_run_lengths(store):
    table, col = store
    boundaries = col.segment_boundaries(1)
    expected = [
        i
        for i in range(len(table.rows))
        if i == 0 or table.rows[i][0] != table.rows[i - 1][0]
    ]
    assert boundaries == expected


def test_h6_order_modification_off_the_scan(store):
    """Scan the column store and re-sort A,B,C -> A,C,B; the codes from
    the scan drive the combined method."""
    table, col = store
    scanned = ColumnStoreScan(col).to_table()
    stats = ComparisonStats()
    result = modify_sort_order(scanned, SortSpec.of("A", "C", "B"), stats=stats)
    assert result.is_sorted()
    # All prefix/infix work came from the scan's codes.
    assert stats.key_extractions > 0


def test_h6_benchmark_transpose(benchmark, store):
    _table, col = store
    benchmark.group = "h6: obtaining rows+codes from a column store"
    out = benchmark(lambda: list(col.iter_rows_with_ovcs()))
    assert len(out) == len(col)


def test_h6_benchmark_fresh_derivation(benchmark, store):
    table, _col = store
    benchmark.group = "h6: obtaining rows+codes from a column store"
    out = benchmark(lambda: derive_ovcs(table.rows, (0, 1, 2)))
    assert len(out) == len(table)
