"""Ablation: graceful degradation of the run merge (Section 3.2).

With more pre-existing runs than the merge fan-in, the merge proceeds
in waves; later waves lose the no-infix-comparison guarantee.  This
bench sweeps the fan-in cap on a many-run input and reports the cost
curve — single-step wide merges stay cheapest, and the degradation is
graceful (cost grows with the number of waves, not abruptly).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B")
SPEC_IN = SortSpec.of("A", "B")
SPEC_OUT = SortSpec.of("B", "A")

FAN_INS = (None, 64, 16, 4, 2)


def _table(n_rows: int):
    # ~256 pre-existing runs (distinct A).
    return random_sorted_table(
        SCHEMA, SPEC_IN, n_rows, domains=[256, 1 << 20], seed=31
    )


def test_fanin_degradation_curve(n_rows_small):
    table = _table(n_rows_small)
    rows = []
    baseline_rows = None
    for fan_in in FAN_INS:
        stats = ComparisonStats()
        result = modify_sort_order(
            table, SPEC_OUT, method="merge_runs", stats=stats,
            max_fan_in=fan_in,
        )
        if baseline_rows is None:
            baseline_rows = result.rows
        else:
            assert result.rows == baseline_rows
        rows.append(
            {
                "max_fan_in": fan_in if fan_in is not None else "unbounded",
                "row_cmp": stats.row_comparisons,
                "col_cmp": stats.column_comparisons,
                "rows_moved": stats.rows_moved,
            }
        )
    print()
    print(
        format_table(
            rows,
            f"Graceful degradation: merge fan-in sweep, {n_rows_small:,} rows",
        )
    )
    # Balanced merging performs ~n*log2(runs) row comparisons no matter
    # how it is staged; the degradation cost is *data movement* — every
    # extra wave re-moves all rows.
    assert rows[0]["row_cmp"] <= rows[-1]["row_cmp"] * 1.05
    moved = [r["rows_moved"] for r in rows]
    assert moved[0] < moved[-1]
    assert moved == sorted(moved)


@pytest.mark.parametrize("fan_in", [None, 8, 2], ids=["unbounded", "8", "2"])
def test_fanin_runtime(benchmark, n_rows_small, fan_in):
    table = _table(n_rows_small)
    benchmark.group = "ablation: merge fan-in"
    result = benchmark(
        modify_sort_order, table, SPEC_OUT, "merge_runs", True, None, fan_in
    )
    assert len(result) == len(table)
