"""Normalized keys: byte-level offset-value codes on string data.

The paper stresses that its techniques apply to "lists of bytes, e.g.,
a normalized key".  This bench merges runs of URL-like strings with
long shared prefixes — the regime where caching comparison work pays
most — comparing a plain bytewise merge against the byte-code
tournament tree.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.bench.harness import format_table
from repro.ovc.normalized import derive_byte_ovcs, make_byte_entry_comparator
from repro.ovc.stats import ComparisonStats
from repro.sorting.tournament import Entry, TreeOfLosers

N_RUNS = 16


def _make_runs(n_rows: int, seed: int = 0) -> list[list[bytes]]:
    rng = random.Random(seed)
    hosts = [f"https://shop-{i:02d}.example.com/catalog/".encode() for i in range(4)]
    keys = sorted(
        rng.choice(hosts)
        + f"dept-{rng.randrange(20):02d}/item-{rng.randrange(10_000):06d}".encode()
        for _ in range(n_rows)
    )
    runs: list[list[bytes]] = [[] for _ in range(N_RUNS)]
    for i, key in enumerate(keys):
        runs[i % N_RUNS].append(key)
    return runs


def _merge_with_codes(runs, stats: ComparisonStats) -> list[bytes]:
    inputs = [
        iter([Entry(k, c, k, i) for k, c in zip(r, derive_byte_ovcs(r))])
        for i, r in enumerate(runs)
    ]
    tree = TreeOfLosers(inputs, make_byte_entry_comparator(stats))
    return [e.row for e in tree]


def _merge_plain(runs) -> list[bytes]:
    return list(heapq.merge(*runs))


def test_byte_codes_avoid_prefix_rescans(n_rows_small):
    runs = _make_runs(n_rows_small)
    stats = ComparisonStats()
    merged = _merge_with_codes(runs, stats)
    assert merged == _merge_plain(runs)
    total_bytes = sum(len(k) for r in runs for k in r)
    print()
    print(
        format_table(
            [
                {
                    "path": "byte-code tournament",
                    "byte_comparisons": stats.column_comparisons,
                    "code_comparisons": stats.ovc_comparisons,
                },
                {
                    "path": "lower bound: total key bytes",
                    "byte_comparisons": total_bytes,
                    "code_comparisons": 0,
                },
            ],
            f"Normalized-key merge of {n_rows_small:,} URLs, {N_RUNS} runs",
        )
    )
    # A plain merge re-scans the ~45-byte shared prefixes on every
    # comparison; codes touch each byte region roughly once.
    assert stats.column_comparisons < 2 * total_bytes


def test_bench_merge_with_codes(benchmark, n_rows_small):
    runs = _make_runs(n_rows_small)
    benchmark.group = "normalized-key merge"
    out = benchmark(_merge_with_codes, runs, ComparisonStats())
    assert len(out) == n_rows_small


def test_bench_merge_plain_heapq(benchmark, n_rows_small):
    runs = _make_runs(n_rows_small)
    benchmark.group = "normalized-key merge"
    out = benchmark(_merge_plain, runs)
    assert len(out) == n_rows_small
