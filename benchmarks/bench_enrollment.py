"""The introduction's motivating scenario: a single enrollment index
ordered on (campus, course, student, semester) serves class rosters
directly and student transcripts via order modification (case 5/7) —
versus the traditional design that full-sorts for the second order."""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table
from repro.core.modify import modify_sort_order
from repro.engine.merge_join import MergeJoin
from repro.engine.scans import TableScan
from repro.engine.sort_op import Sort
from repro.model import SortSpec
from repro.ovc.stats import ComparisonStats
from repro.workloads.enrollment import make_enrollment_workload


@pytest.fixture(scope="module")
def workload(n_rows_small):
    return make_enrollment_workload(
        n_students=max(50, n_rows_small // 40),
        n_courses=max(20, n_rows_small // 100),
        n_enrollments=n_rows_small,
        n_campuses=4,
        seed=21,
    )


def _transcript_plan(workload, method: str):
    """Students x enrollments ordered for transcripts; the enrollment
    side needs (campus, student, course, semester)."""
    enroll = Sort(
        TableScan(workload.enrollments),
        workload.transcript_order,
        method=method,
    )
    return MergeJoin(
        TableScan(workload.students),
        enroll,
        ["campus", "student"],
        ["campus", "student"],
    )


def test_single_index_serves_both_joins(workload):
    # Rosters: the stored order already matches; no sort needed.
    roster = MergeJoin(
        TableScan(workload.courses),
        TableScan(workload.enrollments),
        ["campus", "course"],
        ["campus", "course"],
    )
    roster_rows = roster.rows()
    assert len(roster_rows) == len(workload.enrollments)

    # Transcripts: order modification instead of a second index.
    transcript = _transcript_plan(workload, "auto")
    transcript_rows = transcript.rows()
    assert len(transcript_rows) == len(workload.enrollments)


def test_modification_beats_full_sort_on_comparisons(workload):
    results = []
    for method in ("combined", "full_sort"):
        stats = ComparisonStats()
        modify_sort_order(
            workload.enrollments,
            workload.transcript_order,
            method=method,
            stats=stats,
        )
        results.append({"method": method, **stats.as_dict()})
    print()
    print(format_table(results, "Enrollment transcript re-ordering"))
    combined, full = results
    assert combined["column_comparisons"] < full["column_comparisons"]
    assert combined["row_comparisons"] < full["row_comparisons"]


@pytest.mark.parametrize("method", ["combined", "full_sort"])
def test_transcript_join_runtime(benchmark, workload, method):
    benchmark.group = "enrollment: transcript join with one index"
    rows = benchmark(lambda: _transcript_plan(workload, method).rows())
    assert len(rows) == len(workload.enrollments)


def test_three_table_join(workload):
    """Intro's three-table join: (courses x enrollments) sorted on
    (campus, course, ...) is re-sorted on (campus, student, ...) to
    feed the join with students — case 5 on an intermediate result."""
    first = MergeJoin(
        TableScan(workload.courses),
        TableScan(workload.enrollments),
        ["campus", "course"],
        ["campus", "course"],
    )
    inter = first.to_table()
    assert inter.sort_spec.names == ("campus", "course")
    # Declare the full order the join preserved from the enrollment side
    # is not tracked; re-sort the intermediate on (campus, student).
    resorted = Sort(
        TableScan(inter.with_ovcs()), SortSpec.of("campus", "student")
    )
    second = MergeJoin(
        TableScan(workload.students),
        resorted,
        ["campus", "student"],
        ["campus", "student"],
    )
    rows = second.rows()
    assert len(rows) == len(workload.enrollments)
