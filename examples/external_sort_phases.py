#!/usr/bin/env python3
"""Hypotheses 3, 4, 7: where external merge sort spends its effort, and
what pre-existing runs save.

Sorts a large unsorted input with replacement selection + multi-level
merging, reporting comparisons per phase and simulated I/O; then shows
the same data re-sorted from a related order, where run generation (and
its I/O) disappears entirely.

Run:  python examples/external_sort_phases.py
"""

from __future__ import annotations

import random

from repro import modify_sort_order
from repro import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs
from repro import ComparisonStats
from repro.sorting.external import ExternalMergeSort
from repro.storage.pages import PageManager


def main() -> None:
    rng = random.Random(23)
    n_rows = 200_000
    rows = [(rng.randrange(1 << 30), rng.randrange(100)) for _ in range(n_rows)]

    pages = PageManager()
    sorter = ExternalMergeSort(
        (0, 1),
        memory_capacity=4096,
        fan_in=8,
        run_generation="replacement",
        page_manager=pages,
    )
    result = sorter.sort(rows)
    assert result.rows == sorted(rows)

    rg, mg = result.run_generation_stats, result.merge_stats
    print(f"external merge sort of {n_rows:,} unsorted rows")
    print(
        f"  replacement selection: {result.initial_runs} initial runs "
        f"(about 2x memory each), {result.merge_levels} merge levels"
    )
    print(f"  {'phase':>16}  {'row cmp':>12}  {'col cmp':>12}")
    print(f"  {'run generation':>16}  {rg.row_comparisons:>12,}  {rg.column_comparisons:>12,}")
    print(f"  {'merging':>16}  {mg.row_comparisons:>12,}  {mg.column_comparisons:>12,}")
    share = rg.row_comparisons / (rg.row_comparisons + mg.row_comparisons)
    print(f"  run generation performs {share:.0%} of all row comparisons (H3)")
    print(
        f"  simulated I/O: {result.io.pages_written:,} pages written, "
        f"{result.io.pages_read:,} read"
    )
    print()

    # Now the H4/H7 scenario: the input is already sorted on (B, A) —
    # a related order — so sorting on (A, B) merges pre-existing runs:
    # no run generation, no run spill.
    schema = Schema.of("A", "B")
    related = sorted(rows, key=lambda r: (r[1], r[0]))
    table = Table(schema, related, SortSpec.of("B", "A"))
    table.ovcs = derive_ovcs(related, (1, 0))
    stats = ComparisonStats()
    modified = modify_sort_order(table, SortSpec.of("A", "B"), stats=stats)
    assert modified.rows == result.rows
    print(f"same rows arriving sorted on (B, A), desired (A, B):")
    print(
        f"  merge of pre-existing runs: {stats.row_comparisons:,} row cmp, "
        f"{stats.column_comparisons:,} col cmp"
    )
    total = rg + mg
    print(
        f"  vs full external sort: {total.row_comparisons:,} row cmp — "
        f"{1 - stats.row_comparisons / total.row_comparisons:.0%} saved (H4)"
    )
    print("  and zero run-generation I/O: the input is its own run set (H7)")


if __name__ == "__main__":
    main()
