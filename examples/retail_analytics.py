#!/usr/bin/env python3
"""End-to-end analytics on the retail workload, one sorted copy per
table, with EXPLAIN ANALYZE output.

Three queries in the spirit of TPC-H:

* revenue per region (3-table join; the orders table must be re-sorted
  from its stored (customer, order_id) order to (order_id) — Table 1
  case 2 — before joining lineitems);
* top parts by revenue (group-by + top-k over a modification);
* order priority counts per region (pivot).

Run:  python examples/retail_analytics.py
"""

from __future__ import annotations

from repro import Query
from repro import explain_analyze
from repro.workloads.retail import make_retail_workload


def main() -> None:
    w = make_retail_workload(n_customers=400, n_orders=3000, seed=11)
    print(
        f"{len(w.customers)} customers, {len(w.orders)} orders, "
        f"{len(w.lineitems)} lineitems — one sorted copy each\n"
    )

    # ---- Q1: revenue per region --------------------------------------
    revenue = (
        Query(w.customers)
        .join(Query(w.orders), on=[("customer", "customer")])
        .join(
            Query(w.lineitems),
            on=[("order_id", "order_id")],
        )
        .group_by(["region"], [("sum", "price"), ("count", None)])
    )
    rows, report = explain_analyze(revenue.op)
    print("Q1 revenue per region:")
    for region, total, items in rows:
        print(f"  region {region}: {total:>9,} from {items} lineitems")
    print("\nplan (note the Sort nodes: order modification, not re-sorts):")
    print(report)
    print()

    # ---- Q2: top parts by revenue ------------------------------------
    top_parts = (
        Query(w.lineitems)
        .order_by("partkey", "order_id", "line_nr")
        .group_by(["partkey"], [("sum", "price")])
        .top(5, "sum_price DESC")
        .rows()
    )
    print("Q2 top 5 parts by revenue:")
    for partkey, total in top_parts:
        print(f"  part {partkey:>4}: {total:>8,}")
    print()

    # ---- Q3: order priorities per region (pivot) ---------------------
    per_region = (
        Query(w.customers)
        .join(Query(w.orders), on=[("customer", "customer")])
        .pivot(["region"], "priority", "order_id", [0, 1, 2], agg="count")
        .rows()
    )
    print("Q3 order count per region and priority:")
    print(f"  {'region':>6}  {'P0':>5}  {'P1':>5}  {'P2':>5}")
    for region, p0, p1, p2 in per_region:
        print(f"  {region:>6}  {p0 or 0:>5}  {p1 or 0:>5}  {p2 or 0:>5}")


if __name__ == "__main__":
    main()
