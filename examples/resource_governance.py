#!/usr/bin/env python3
"""Resource-governed order modification: budgets, spills, fault recovery.

One :class:`repro.exec.ExecutionConfig` carries every execution knob —
engine, workers, memory budget, spill directory, retry policy.  This
demo runs the same Table 1 modification three ways:

1. ungoverned (the baseline);
2. under a deliberately tiny memory budget, so the governed output
   sink spills completed segments to disk and reloads them in order —
   the result is bit-identical, rows *and* codes, because governance
   only moves completed buffers around and never touches a comparison;
3. with two workers and an injected worker crash, showing the pool
   retrying the shard and, when retries are exhausted, quarantining it
   to in-driver serial execution (``pool.shard_degraded``) — still
   bit-identical output.

Run:  python examples/resource_governance.py
"""

from __future__ import annotations

import repro.parallel.planner as planner
from repro import modify_sort_order
from repro import ExecutionConfig
from repro.exec import parse_faults
from repro import Schema, SortSpec
from repro.obs import METRICS
from repro import ComparisonStats
from repro.workloads.generators import random_sorted_table


def main() -> None:
    schema = Schema.of("A", "B", "C", "D")
    n_rows = 1 << 13
    table = random_sorted_table(
        schema, SortSpec.of("A", "B", "C"), n_rows,
        domains=[32, 64, 256, 8], seed=7,
    )
    spec = SortSpec.of("A", "C", "B")

    # 1. Ungoverned baseline.
    base_stats = ComparisonStats()
    baseline = modify_sort_order(table, spec, stats=base_stats)

    # 2. A 64 KiB budget on an input far larger than that: the governed
    # sink must spill completed segments to disk, then reload them in
    # output order at the end.
    METRICS.enable(clear=True)
    gov_stats = ComparisonStats()
    cfg = ExecutionConfig.from_env().with_(memory_budget=64 * 1024)
    governed = modify_sort_order(table, spec, stats=gov_stats, config=cfg)
    snapshot = METRICS.as_dict()
    METRICS.disable()
    METRICS.reset()

    assert governed.rows == baseline.rows
    assert governed.ovcs == baseline.ovcs
    assert gov_stats.as_dict() == base_stats.as_dict()
    spills = snapshot.get("counters", {}).get("exec.spill.runs", 0)
    print(f"budget 64 KiB over {n_rows:,} rows: {spills} spills,")
    print("  rows, codes, and comparison counts identical to ungoverned run\n")

    # 3. Kill the worker handling shard 0 on its first attempt; the
    # retry also dies, so the pool quarantines the shard and runs it
    # serially in the driver.  Output is still bit-identical.
    planner.MIN_PARALLEL_ROWS = 0
    METRICS.enable(clear=True)
    from repro import analyze_order_modification, parallel_modify

    plan = analyze_order_modification(table.sort_spec, spec)
    fault_cfg = ExecutionConfig(workers=2, shard_retries=1)
    recovered = parallel_modify(
        table, spec, plan, plan.strategy, 2,
        config=fault_cfg, faults=parse_faults("kill@0x2"),
    )
    snapshot = METRICS.as_dict()
    METRICS.disable()
    METRICS.reset()

    assert recovered is not None
    assert recovered.rows == baseline.rows
    assert recovered.ovcs == baseline.ovcs
    counters = snapshot.get("counters", {})
    print("injected fault kill@0x2 (shard 0 dies twice):")
    print(f"  pool.shard_retries  = {counters.get('pool.shard_retries', 0)}")
    print(f"  pool.shard_degraded = {counters.get('pool.shard_degraded', 0)}")
    print("  output bit-identical to the serial baseline")


if __name__ == "__main__":
    main()
