#!/usr/bin/env python3
"""The paper's motivating scenario: students, courses, enrollments.

A many-to-many relationship traditionally needs *two* sorted copies of
the enrollment table — one on (course, student) for class rosters, one
on (student, course) for transcripts.  With sort-order modification a
single index serves both:

* rosters merge-join courses with the index as stored;
* transcripts merge-join students with the *same* index, re-ordered on
  the fly by merging its pre-existing runs (Table 1 case 3/5/7).

The example also runs the introduction's three-table join, re-sorting
the first join's output to feed the second join.

Run:  python examples/enrollment_joins.py
"""

from __future__ import annotations

from repro import analyze_order_modification
from repro.engine.aggregate import GroupBy
from repro.engine.merge_join import MergeJoin
from repro.engine.scans import TableScan
from repro import Sort
from repro import SortSpec
from repro import ComparisonStats
from repro.workloads.enrollment import make_enrollment_workload


def main() -> None:
    w = make_enrollment_workload(
        n_students=400,
        n_courses=60,
        n_enrollments=8000,
        n_campuses=3,
        seed=7,
    )
    print(
        f"{len(w.students)} students, {len(w.courses)} courses, "
        f"{len(w.enrollments)} enrollments on {w.n_campuses} campuses"
    )
    print(f"stored index order: {w.enrollments.sort_spec}")
    plan = analyze_order_modification(w.enrollments.sort_spec, w.transcript_order)
    print(f"transcript order via: {plan.describe()}")
    print()

    # ------------------------------------------------------- rosters
    rosters = MergeJoin(
        TableScan(w.courses),
        TableScan(w.enrollments),
        ["campus", "course"],
        ["campus", "course"],
    )
    roster_sizes = GroupBy(rosters, ["campus", "course"], [("count", None)])
    biggest = max(roster_sizes.rows(), key=lambda r: r[-1])
    print(
        f"rosters: {len(w.courses)} courses served directly from the index; "
        f"largest class: campus {biggest[0]} course {biggest[1]} "
        f"with {biggest[2]} students"
    )

    # --------------------------------------------------- transcripts
    stats = ComparisonStats()
    reordered = Sort(TableScan(w.enrollments), w.transcript_order, method="auto")
    reordered.stats = stats
    transcripts = MergeJoin(
        TableScan(w.students),
        reordered,
        ["campus", "student"],
        ["campus", "student"],
    )
    per_student = GroupBy(
        transcripts,
        ["campus", "student"],
        [("count", None), ("avg", "grade_x10")],
    )
    rows = per_student.rows()
    print(
        f"transcripts: {len(rows)} students with enrollments, via the SAME "
        f"index re-ordered with {stats.column_comparisons:,} column "
        f"comparisons ({reordered.executed})"
    )
    print()

    # ------------------------------------------- three-table join
    # courses JOIN enrollments (sorted on campus, course), then its
    # result re-sorted on (campus, student) to join students.
    first = MergeJoin(
        TableScan(w.courses),
        TableScan(w.enrollments),
        ["campus", "course"],
        ["campus", "course"],
    ).to_table()
    resorted = Sort(
        TableScan(first.with_ovcs()), SortSpec.of("campus", "student")
    )
    second = MergeJoin(
        TableScan(w.students),
        resorted,
        ["campus", "student"],
        ["campus", "student"],
    )
    n = len(second.rows())
    print(
        f"three-table join (students x enrollments x courses): {n} rows, "
        f"intermediate re-sorted via {resorted.executed}"
    )
    print()
    print("physical design win: ONE stored copy of the enrollment table")
    print("serves both access paths — no second index to build or maintain.")


if __name__ == "__main__":
    main()
