#!/usr/bin/env python3
"""Figure 4 live: merging pre-existing runs straight out of a b-tree.

An index on (A, B) is scanned as ``n`` cursors — one per distinct A,
located by MDAM-style skip scans — whose streams are already sorted on
B.  Merging them yields the (B, A) order without ever sorting, and the
prefix-truncated leaves supply offset-value codes for free.

Run:  python examples/btree_order_modification.py
"""

from __future__ import annotations

import random

from repro import modify_sort_order
from repro.engine.scans import BTreeScan
from repro import Schema, SortSpec, Table
from repro import ComparisonStats
from repro.storage.btree import BTree


def main() -> None:
    rng = random.Random(17)
    schema = Schema.of("A", "B")
    spec = SortSpec.of("A", "B")

    # Build the index incrementally, as a database would.
    tree = BTree(schema, spec, order=64)
    n_rows = 40_000
    for _ in range(n_rows):
        tree.insert((rng.randrange(40), rng.randrange(10_000)))
    print(f"b-tree: {len(tree):,} rows, height {tree.height}")

    # Distinct-prefix skip scan finds the pre-existing runs.
    reads_before = tree.node_reads
    prefixes = tree.distinct_prefixes(1)
    print(
        f"skip scan found {len(prefixes)} distinct A values "
        f"({tree.node_reads - reads_before} node reads)"
    )

    # Figure 4's merge: per-run cursors out of the index.
    cursors = tree.prefix_run_cursors(1)
    print(f"opened {len(cursors)} run cursors (one per distinct A)")

    # Scan the index (codes included) and modify the order to (B, A).
    table = BTreeScan(tree).to_table()
    stats = ComparisonStats()
    result = modify_sort_order(table, SortSpec.of("B", "A"), stats=stats)
    assert result.is_sorted()
    print(
        f"merged into (B, A) order: {stats.row_comparisons:,} row "
        f"comparisons, {stats.column_comparisons:,} column comparisons"
    )

    # Contrast: the same result by sorting from scratch.
    naive = ComparisonStats()
    baseline = modify_sort_order(
        table, SortSpec.of("B", "A"), method="full_sort", stats=naive
    )
    assert baseline.rows == result.rows
    print(
        f"full sort needs {naive.row_comparisons:,} row comparisons and "
        f"{naive.column_comparisons:,} column comparisons"
    )
    print(
        "\nthe index's sort order did half the work before the query ran —"
        "\nand its cached codes did most of the rest."
    )


if __name__ == "__main__":
    main()
