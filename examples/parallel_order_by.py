#!/usr/bin/env python3
"""Multi-core order modification on the retail workload.

The lineitems table is stored sorted on (order_id, line_nr); the
part-by-part rollup wants (partkey, order_id, line_nr).  Because the
two orders share no prefix that run stays serial — but the orders
table's (customer, order_id) -> (customer, priority, order_id)
modification shares the `customer` prefix, so every customer's block
is an independent segment and `workers="auto"` shards them across
one process per core.

Rows *and* offset-value codes from the parallel run are bit-identical
to the serial engines' output (asserted below), so parallelism is a
pure deployment knob: nothing downstream can tell the difference.

Run:  python examples/parallel_order_by.py
"""

from __future__ import annotations

import os
import time

import repro.parallel.planner as planner
from repro import ExecutionConfig
from repro import Query
from repro.workloads.retail import make_retail_workload


def main() -> None:
    # Small demo tables: let the planner shard them anyway (by default
    # inputs under ~8k rows stay serial — pool startup would dominate).
    planner.MIN_PARALLEL_ROWS = 0

    w = make_retail_workload(n_customers=400, n_orders=4000, seed=11)
    print(
        f"retail workload: {len(w.orders)} orders stored sorted on "
        f"(customer, order_id); {os.cpu_count()} cores available\n"
    )

    order = ("customer", "priority", "order_id")
    start = time.perf_counter()
    serial = Query(w.orders).order_by(*order).to_table()
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    auto = (
        Query(w.orders)
        .order_by(*order, config=ExecutionConfig(workers="auto"))
        .to_table()
    )
    auto_s = time.perf_counter() - start

    # Force a 2-process pool even on a single-core box, so the demo
    # always exercises worker processes and the ordered collector.
    start = time.perf_counter()
    pooled = (
        Query(w.orders)
        .order_by(*order, config=ExecutionConfig(workers=2))
        .to_table()
    )
    pooled_s = time.perf_counter() - start

    for result in (auto, pooled):
        assert result.rows == serial.rows
        assert result.ovcs == serial.ovcs
    print(f"order_by{order}:")
    print(f"  serial          {serial_s * 1e3:7.1f} ms")
    print(f"  workers='auto'  {auto_s * 1e3:7.1f} ms  (one process per core)")
    print(f"  workers=2       {pooled_s * 1e3:7.1f} ms  (forced pool)")
    print("  rows and offset-value codes: bit-identical\n")

    # The per-customer segments are what make this shardable: show the
    # planner's verdict for the same job.
    from repro import analyze_order_modification
    from repro.model import SortSpec
    from repro import resolve_workers
    from repro.parallel.planner import plan_shards

    plan = analyze_order_modification(w.orders.sort_spec, SortSpec(order))
    sp = plan_shards(
        w.orders.ovcs, len(w.orders.rows), plan, plan.strategy,
        max(resolve_workers("auto"), 2),
    )
    if sp.parallel:
        print(
            f"planner: {sp.n_segments} customer segments packed into "
            f"{len(sp.shards)} shards"
        )
        for shard in sp.shards:
            print(
                f"  shard {shard.index}: rows [{shard.lo:>5}, {shard.hi:>5})"
                f"  {shard.n_segments:>3} segments  cost {shard.cost:,.0f}"
            )
    else:
        print(f"planner stayed serial: {sp.reason}")


if __name__ == "__main__":
    main()
