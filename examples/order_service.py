"""Serve concurrent order_by traffic through the OrderService.

Many clients asking for orders over shared tables; the service bounds
admission, coalesces duplicate in-flight requests into one execution,
and fans the result out bit-identically to every waiter.

Run:  PYTHONPATH=src python examples/order_service.py
"""

from __future__ import annotations

import threading

from repro import (
    ExecutionConfig,
    OrderService,
    Schema,
    ServiceOverloadError,
    SortSpec,
)
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("region", "store", "sku", "day")


def main() -> None:
    table = random_sorted_table(
        SCHEMA, SortSpec.of("region", "store", "sku", "day"), 2_000,
        domains=[8, 32, 64, 28], seed=42,
    )

    config = ExecutionConfig(
        cache="on",            # repeat orders served from the order cache
        service_threads=4,     # scheduler pool
        service_queue_depth=32,  # beyond this, submit() rejects
        service_deadline_ms=5_000,
    )

    with OrderService(config) as service:
        # --- one-shot convenience -----------------------------------
        resp = service.order_by(table, ("sku", "day"))
        print(f"one-shot: {len(resp.table.rows)} rows via {resp.label}, "
              f"{resp.stats.row_comparisons} row comparisons")

        # --- a burst of duplicate requests from many threads --------
        orders = [SortSpec.of("sku", "day"), SortSpec.of("day", "region")]
        responses = []
        lock = threading.Lock()

        def client(i: int) -> None:
            spec = orders[i % len(orders)]
            try:
                r = service.order_by(table, spec, tenant=f"team-{i % 3}")
            except ServiceOverloadError as exc:
                print(f"client {i}: shed by admission control: {exc}")
                return
            with lock:
                responses.append((spec, r))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Duplicates shared executions; every response is bit-identical
        # to a solo run of the same order.
        by_order = {}
        for spec, r in responses:
            key = str(spec.columns)
            prev = by_order.setdefault(key, r)
            assert r.table.rows == prev.table.rows
            assert r.table.ovcs == prev.table.ovcs

        c = service.counters()
        print(f"burst: {c['requests']} requests -> {c['executions']} "
              f"executions ({c['coalesced']} coalesced)")
        print(f"health: {service.health()['status']}")


if __name__ == "__main__":
    main()
