#!/usr/bin/env python3
"""Offset-value codes beyond integers: strings and descending keys.

The paper stresses that each sort "column" may be a list of columns, a
text string, or a normalized key, and that order analysis must respect
ascending/descending directions.  This example re-orders a string-keyed
table (think: a log indexed on (service, level, timestamp DESC)) into
(service, timestamp DESC, level) — Table 1 case 5 on strings.

Run:  python examples/strings_and_descending.py
"""

from __future__ import annotations

import random

from repro import analyze_order_modification
from repro import modify_sort_order
from repro import Schema, SortSpec, Table
from repro.ovc.derive import derive_table_ovcs
from repro import ComparisonStats

SERVICES = ["auth", "billing", "catalog", "checkout", "search", "shipping"]
LEVELS = ["DEBUG", "ERROR", "INFO", "WARN"]


def main() -> None:
    rng = random.Random(99)
    schema = Schema.of("service", "level", "ts", "message_id")
    stored_order = SortSpec.of("service", "level", "ts DESC")

    rows = [
        (
            rng.choice(SERVICES),
            rng.choice(LEVELS),
            f"2026-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
            i,
        )
        for i in range(30_000)
    ]
    rows.sort(key=stored_order.key_for(schema))
    table = Table(schema, rows, stored_order)
    table.ovcs = derive_table_ovcs(table)

    desired = SortSpec.of("service", "ts DESC", "level")
    plan = analyze_order_modification(stored_order, desired)
    print(f"stored:  {stored_order}")
    print(f"desired: {desired}")
    print(f"plan:    {plan.describe()}")
    print()

    stats = ComparisonStats()
    result = modify_sort_order(table, desired, stats=stats)
    assert result.is_sorted()

    naive = ComparisonStats()
    modify_sort_order(table, desired, method="full_sort", stats=naive)

    print("first rows of the new order:")
    print(result.pretty(6))
    print()
    print(
        f"string comparisons (modify): {stats.column_comparisons:,}   "
        f"(full sort): {naive.column_comparisons:,}"
    )
    print(
        "codes cached by the stored order decided "
        f"{stats.ovc_comparisons:,} of {stats.row_comparisons:,} row "
        "comparisons without touching a single character."
    )


if __name__ == "__main__":
    main()
