#!/usr/bin/env python3
"""Trace a Table 1 order modification across worker processes.

Runs case 5 of the paper's Table 1 — (A,B,C) -> (A,C,B), the canonical
shared-prefix modification — with two worker processes, under the span
tracer and metrics registry from ``repro.obs``.  Each worker records
its own spans (tagged with its pid and shard index) and ships them home
with its final result chunk; the ordered collector stitches them into
one timeline in shard order, which is global output order.

The script prints the stitched per-shard timeline, the merged metrics
in Prometheus text format, and writes a Chrome trace-event artifact
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Run:  python examples/trace_modify.py
"""

from __future__ import annotations

import os
import tempfile

import repro.parallel.planner as planner
from repro import modify_sort_order
from repro import ExecutionConfig
from repro import Schema, SortSpec
from repro.obs import METRICS, TRACER
from repro.obs.exporters import (
    prometheus_text,
    render_tree,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.workloads.generators import random_sorted_table


def main() -> None:
    # Table 1, case 5: rows sorted on (A, B, C), wanted on (A, C, B).
    # Every distinct A value opens an independent segment, which is
    # what the planner shards across workers.
    schema = Schema.of("A", "B", "C", "D")
    n_rows = 1 << 14
    table = random_sorted_table(
        schema, SortSpec.of("A", "B", "C"), n_rows,
        domains=[32, 64, 256, 8], seed=0,
    )
    planner.MIN_PARALLEL_ROWS = 0  # always exercise the pool in the demo

    print(
        f"tracing case 5: A,B,C -> A,C,B over {n_rows:,} rows, "
        f"workers=2 (main pid {os.getpid()})\n"
    )
    TRACER.enable(clear=True)
    METRICS.enable(clear=True)
    modify_sort_order(
        table, SortSpec.of("A", "C", "B"), config=ExecutionConfig(workers=2)
    )
    records = TRACER.drain()
    snapshot = METRICS.as_dict()
    TRACER.disable()
    METRICS.disable()
    METRICS.reset()

    shard_spans = [r for r in records if r["name"] == "shard.execute"]
    pids = sorted({r["pid"] for r in shard_spans})
    print(
        f"stitched timeline: {len(records)} spans, "
        f"{len(shard_spans)} shards from worker pids {pids}\n"
    )
    print(render_tree(records, max_children=4))
    print()
    print(prometheus_text(snapshot))

    out = os.path.join(tempfile.gettempdir(), "repro_trace_modify.json")
    obj = write_chrome_trace(out, records, metrics=snapshot)
    problems = validate_chrome_trace(obj)
    assert not problems, problems
    print(f"chrome trace written to {out} — load it in ui.perfetto.dev")


if __name__ == "__main__":
    main()
