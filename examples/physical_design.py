#!/usr/bin/env python3
"""Hypothesis 10 in the optimizer: fewer indexes, same performance.

Two demonstrations on the enrollment schema:

1. **Index selection** — a workload needing both (course, student) and
   (student, course) orders traditionally requires two indexes; with
   order modification one index covers both.
2. **Join planning** — the Selinger-style DP with interesting orderings
   plans the three-table join (students x enrollments x courses) and
   shows that allowing "modify" enforcers recovers most of the cost of
   the missing second index.

Run:  python examples/physical_design.py
"""

from __future__ import annotations

from repro import SortSpec
from repro.optimizer.join_planning import JoinEdge, Relation, plan_joins
from repro.optimizer.physical_design import design_indexes


def index_selection() -> None:
    print("=" * 64)
    print("index selection for the enrollment workload")
    print("=" * 64)
    roster = SortSpec.of("course", "student")
    transcript = SortSpec.of("student", "course")

    traditional = design_indexes(
        [roster, transcript], n_rows=1 << 20, modification_allowed=False
    )
    smart = design_indexes([roster, transcript], n_rows=1 << 20)

    print("\ntraditional design (orders must be stored):")
    print(traditional.describe())
    print("\nwith order modification (Table 1 case 3):")
    print(smart.describe())
    print(
        f"\nstorage/maintenance saved: "
        f"{1 - smart.index_cost / traditional.index_cost:.0%} "
        f"({len(traditional.chosen)} -> {len(smart.chosen)} indexes)"
    )


def join_planning() -> None:
    print()
    print("=" * 64)
    print("three-table join planning (hypothesis 10)")
    print("=" * 64)
    relations = [
        Relation(
            "students", 10_000, (SortSpec.of("s.student"),),
            unique_keys=(frozenset({"s.student"}),),
        ),
        Relation(
            "courses", 500, (SortSpec.of("c.course"),),
            unique_keys=(frozenset({"c.course"}),),
        ),
        Relation(
            "enrollments", 200_000, (SortSpec.of("e.course", "e.student"),)
        ),
    ]
    edges = [
        JoinEdge(
            "students", "enrollments", ("s.student",), ("e.student",),
            selectivity=1 / 10_000,
        ),
        JoinEdge(
            "courses", "enrollments", ("c.course",), ("e.course",),
            selectivity=1 / 500,
        ),
    ]
    smart = plan_joins(relations, edges, modification_allowed=True)
    naive = plan_joins(relations, edges, modification_allowed=False)
    print("\nwith order modification:")
    print("  " + smart.explain())
    print("\nwithout (sorted-or-sort only):")
    print("  " + naive.explain())
    print(
        f"\nplanned cost saved by modification enforcers: "
        f"{1 - smart.cost / naive.cost:.0%}"
    )


def main() -> None:
    index_selection()
    join_planning()


if __name__ == "__main__":
    main()
