"""The live telemetry plane, end to end, in one process.

Starts the `/metrics` + `/healthz` + `/varz` endpoint, turns on every
collector (metrics, structured log, slow-query log), runs a governed
parallel order modification, and scrapes the server the way a
monitoring stack would — showing the Prometheus series, the health
verdict, and the slow-query capture that one workload produced.
"""

from __future__ import annotations

import json
import urllib.request

from repro import modify_sort_order
from repro import ExecutionConfig
from repro import Schema, SortSpec
from repro.obs import LOG, METRICS, SLOWLOG
from repro.obs.logging import read_log
from repro.obs.server import start_telemetry_server, stop_telemetry_server
from repro import ComparisonStats
from repro.workloads.generators import random_sorted_table

N_ROWS = 20_000


def fetch(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read()


def main() -> None:
    import tempfile

    log_path = tempfile.mktemp(suffix=".jsonl", prefix="repro-log-")
    METRICS.enable(clear=True)
    LOG.enable(log_path)
    SLOWLOG.enable(0)  # capture everything for the demo
    cfg = ExecutionConfig(workers=2, memory_budget="64MiB")
    server = start_telemetry_server(port=0, config=cfg)
    print(f"telemetry serving on {server.url}")

    try:
        schema = Schema.of("A", "B", "C", "D")
        table = random_sorted_table(
            schema, SortSpec.of("A", "B", "C"), N_ROWS,
            domains=[32, 64, 256, 8], seed=7,
        )
        stats = ComparisonStats()
        result = modify_sort_order(
            table, SortSpec.of("A", "C", "B"), stats=stats, config=cfg
        )
        METRICS.absorb_stats(stats)
        print(f"modified {len(result.rows):,} rows to {result.sort_spec}")

        print("\n--- /metrics (first lines a scraper sees) ---")
        metrics_text = fetch(server.url + "/metrics").decode()
        for line in metrics_text.splitlines()[:9]:
            print(line)
        n_series = sum(
            1 for line in metrics_text.splitlines()
            if line and not line.startswith("#")
        )
        print(f"... {n_series} series total")

        print("\n--- /healthz ---")
        health = json.loads(fetch(server.url + "/healthz"))
        print(f"status: {health['status']}")
        for name, check in health["checks"].items():
            print(f"  {name}: {check['status']}")

        print("\n--- /varz (slow-query tail) ---")
        varz = json.loads(fetch(server.url + "/varz"))
        for entry in varz["slowlog"]["entries"][-3:]:
            print(
                f"  {entry['kind']}: {entry['elapsed_ms']} ms, "
                f"strategy={entry.get('order_strategy')}"
            )

        print("\n--- structured log (decision-grade events) ---")
        for event in read_log(log_path)[:5]:
            keys = [
                k for k in ("qid", "strategy", "rows", "decision")
                if k in event
            ]
            detail = ", ".join(f"{k}={event[k]}" for k in keys)
            print(f"  {event['event']}: {detail}")
    finally:
        stop_telemetry_server()
        SLOWLOG.disable()
        LOG.disable()
        METRICS.disable()
        METRICS.reset()
    print("\ntelemetry server stopped")


if __name__ == "__main__":
    main()
