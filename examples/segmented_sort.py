#!/usr/bin/env python3
"""Figure 3 live: segmented sorting from key A to key A,B.

An input sorted only on its first column is extended to a two-column
order by sorting each A-segment independently — boundaries come from
the offset-value codes, never from comparing A values, and each
segment sort enters with codes that skip the constant prefix.

The memory story (hypothesis 1) is shown with the streaming operator:
peak buffered rows equal the largest segment, not the input.

Run:  python examples/segmented_sort.py
"""

from __future__ import annotations

import random

from repro.core.classify import split_segments
from repro import modify_sort_order
from repro import StreamingModify
from repro.engine.scans import TableScan
from repro import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs
from repro import ComparisonStats


def main() -> None:
    rng = random.Random(13)
    schema = Schema.of("A", "B")
    n_rows = 120_000
    rows = sorted(
        ((rng.randrange(300), rng.randrange(1 << 20)) for _ in range(n_rows)),
        key=lambda r: r[0],
    )
    table = Table(schema, rows, SortSpec.of("A"))
    table.ovcs = derive_ovcs(rows, (0,))

    segments = list(split_segments(table.ovcs, 1))
    largest = max(hi - lo for lo, hi in segments)
    print(
        f"input: {n_rows:,} rows sorted on A only; "
        f"{len(segments)} segments, largest {largest:,} rows"
    )

    # Figure 3's per-segment sort, with and without codes.
    for use_ovc in (True, False):
        stats = ComparisonStats()
        result = modify_sort_order(
            table, SortSpec.of("A", "B"), method="segment_sort",
            use_ovc=use_ovc, stats=stats,
        )
        assert result.is_sorted()
        label = "with codes" if use_ovc else "without codes"
        print(
            f"segmented sort {label:>14}: {stats.row_comparisons:>9,} row cmp, "
            f"{stats.column_comparisons:>9,} column cmp"
        )

    # Streaming execution: memory bounded by the largest segment.
    op = StreamingModify(TableScan(table), SortSpec.of("A", "B"))
    n_out = sum(1 for _ in op)
    assert n_out == n_rows
    print(
        f"streaming execution buffered at most {op.peak_segment_rows:,} rows "
        f"({op.peak_segment_rows / n_rows:.1%} of the input) — hypothesis 1's "
        f"'external sort becomes internal sorts'"
    )


if __name__ == "__main__":
    main()
