#!/usr/bin/env python3
"""The order cache: repeat ``order_by`` traffic served without re-sorting.

The paper's machinery makes a sorted order plus its offset-value codes
a reusable asset *within* one call; the order cache
(:mod:`repro.cache`) extends that **across requests**.  This demo
issues three related sort orders over the same rows twice:

* round one: the first order pays a full sort; the cache then serves
  each *sibling* order by feeding the cached rows and codes through
  ``modify_sort_order`` — the paper's segment/merge machinery — after
  the cost model prices that cheaper than sorting from scratch;
* round two: every order is an exact hit, rows and codes verbatim,
  with the producing execution's comparison counters replayed.

Every response is bit-identical (rows *and* codes) to what an uncached
execution would produce, checked below against ``cache="off"`` runs.

Run:  python examples/order_cache.py
"""

from __future__ import annotations

import random
import time

from repro.cache import get_cache, reset_cache
from repro import ExecutionConfig
from repro import Schema, Table
from repro import Query

ORDERS = [("A", "B", "C"), ("A", "C", "B"), ("B", "A", "C")]


def run(table: Table, order: tuple, config: ExecutionConfig):
    query = Query(table).order_by(*order, config=config)
    start = time.perf_counter()
    out = query.to_table()
    return time.perf_counter() - start, out, query


def main() -> None:
    schema = Schema.of("A", "B", "C", "D")
    rng = random.Random(7)
    rows = [
        (rng.randrange(32), rng.randrange(64), rng.randrange(256),
         rng.randrange(8))
        for _ in range(1 << 13)
    ]
    table = Table(schema, rows)

    off = ExecutionConfig(cache="off")
    on = ExecutionConfig(cache="on", cache_budget="32MiB")

    cold = {order: run(table, order, off) for order in ORDERS}

    reset_cache()
    print(f"{len(rows):,} rows, three related orders, two rounds:\n")
    for round_no in (1, 2):
        print(f"round {round_no}:")
        for order in ORDERS:
            seconds, out, query = run(table, order, on)
            cold_seconds, cold_out, _ = cold[order]
            assert out.rows == cold_out.rows, "rows diverged from cache=off"
            assert out.ovcs == cold_out.ovcs, "codes diverged from cache=off"
            print(
                f"  order_by{order}: {seconds:.4f}s "
                f"(cold sort {cold_seconds:.4f}s)  "
                f"strategy: {query.op.order_strategy}"
            )
        print()

    print("per-node strategy is visible in EXPLAIN after execution:")
    query = Query(table).order_by(*ORDERS[1], config=on)
    query.to_table()
    print("  " + query.explain().splitlines()[0])
    print()

    cache = get_cache()
    counters = cache.counters()
    print(
        f"cache: {counters['entries']} entries, "
        f"{counters['bytes_resident']:,} resident bytes, "
        f"{counters['hits']} hits / {counters['misses']} misses, "
        f"{counters['installs']} installs"
    )
    print("every response was bit-identical to uncached execution")
    reset_cache()


if __name__ == "__main__":
    main()
