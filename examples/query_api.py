#!/usr/bin/env python3
"""Tour of the fluent Query API over the OVC-aware engine.

Builds an order-items table stored sorted on (customer, order_id) and
answers several questions, letting the engine exploit the stored order
— including a pivot and a sort-order modification behind `order_by`.

Run:  python examples/query_api.py
"""

from __future__ import annotations

import random

from repro import Schema, SortSpec, Table
from repro import Query

PRODUCTS = ["apples", "bread", "coffee", "dates", "eggs"]
QUARTERS = [1, 2, 3, 4]


def build_orders(n: int = 12_000, seed: int = 5) -> Table:
    rng = random.Random(seed)
    schema = Schema.of("customer", "order_id", "quarter", "product", "amount")
    rows = sorted(
        (
            rng.randrange(3000),
            rng.randrange(10_000),
            rng.choice(QUARTERS),
            rng.randrange(len(PRODUCTS)),
            rng.randrange(1, 200),
        )
        for _ in range(n)
    )
    table = Table(schema, rows, SortSpec.of("customer", "order_id"))
    return table.with_ovcs()


def main() -> None:
    orders = build_orders()
    print(f"{len(orders):,} order items, stored on (customer, order_id)\n")

    # 1. Top spenders: group by customer (stored order!), then top-5.
    top = (
        Query(orders)
        .group_by(["customer"], [("sum", "amount"), ("count", None)])
        .top(5, "sum_amount DESC")
        .rows()
    )
    print("top 5 customers by spend:")
    for customer, spend, items in top:
        print(f"  customer {customer:>3}: {spend:>6} across {items} items")

    # 2. Quarterly pivot per product (needs a re-sort; the engine plans it).
    pivot = (
        Query(orders)
        .pivot(["product"], "quarter", "amount", QUARTERS, agg="sum")
        .rows()
    )
    print("\nspend per product and quarter:")
    header = ["product"] + [f"Q{q}" for q in QUARTERS]
    print("  " + "  ".join(f"{h:>8}" for h in header))
    for row in pivot:
        name = PRODUCTS[row[0]]
        print("  " + "  ".join(f"{str(c):>8}" for c in (name, *row[1:])))

    # 3. Customers who bought coffee but never dates (set ops).
    coffee = (
        Query(orders).where("product", PRODUCTS.index("coffee"))
        .select("customer").distinct(["customer"])
    )
    dates = (
        Query(orders).where("product", PRODUCTS.index("dates"))
        .select("customer").distinct(["customer"])
    )
    exclusive = coffee.except_(dates).rows()
    print(f"\ncustomers with coffee but never dates: {len(exclusive)}")

    # 4. Plan inspection: order_by through a *related* order plans a
    # modification, not a sort-from-scratch.
    q = Query(orders).order_by("customer", "quarter", "order_id")
    q.rows()
    print("\nplan for ORDER BY customer, quarter, order_id:")
    print(q.explain())


if __name__ == "__main__":
    main()
