"""Batch order derivation: many related orders as one shared tree.

Four clients want four different sort orders of the same table.  Run
independently that is four full derivations from the source; the batch
planner instead builds a minimum-cost derivation tree — each order
produced from its cheapest already-produced relative — and executes
it, bit-identical per order to a solo run.

Run:  PYTHONPATH=src python examples/order_plan.py
"""

from __future__ import annotations

from repro import ExecutionConfig, Query, Schema, Sort, SortSpec
from repro.engine.scans import TableScan
from repro.plan import derive_batch, plan_batch
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("region", "store", "sku", "day")
BASE = SortSpec.of("region", "store", "sku", "day")

#: Rotations of the base order: distinct targets with long shared
#: prefixes between neighbors — the planner's favorite diet.
ORDERS = [
    SortSpec(list(BASE.names)[i:] + list(BASE.names)[:i])
    for i in range(1, 4)
]


def main() -> None:
    cfg = ExecutionConfig(cache="off")
    source = random_sorted_table(
        SCHEMA, BASE, 20_000, domains=[8, 32, 64, 28], seed=7
    )

    # --- 1. the plan itself -----------------------------------------
    plan = plan_batch(source, ORDERS, config=cfg)
    print(plan.explain())
    print()

    # --- 2. plan + execute in one call ------------------------------
    result = derive_batch(source, ORDERS, config=cfg)
    for spec in ORDERS:
        node = result.result_for(spec)
        print(f"{','.join(spec.names):24s} via {node.label:28s} "
              f"{node.stats_delta.row_comparisons:>8,} row comparisons")

    # Every output is bit-identical to an independent execution.
    for spec in ORDERS:
        op = Sort(TableScan(source), spec, config=cfg)
        ref = op.to_table()
        node = result.result_for(spec)
        assert node.table.rows == ref.rows
        assert node.table.ovcs == ref.ovcs
    print("\nall outputs bit-identical to solo runs; "
          f"est {result.plan.est_speedup:.2f}x vs independent, "
          f"{result.plan.sibling_edges()} sibling edge(s)")

    # --- 3. the fluent facade ---------------------------------------
    tables = Query(source).order_by_many(ORDERS, config=cfg)
    assert [t.sort_spec for t in tables] == ORDERS
    print(f"Query.order_by_many returned {len(tables)} tables")


if __name__ == "__main__":
    main()
