#!/usr/bin/env python3
"""Quickstart: modify an existing sort order with offset-value codes.

Builds a small table sorted on (A, B, C), attaches offset-value codes,
and re-sorts it to (A, C, B) — the paper's worked example (Table 1
case 5) — comparing the work against sorting from scratch.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ComparisonStats, Schema, SortSpec, analyze_order_modification
from repro import modify_sort_order
from repro.workloads.generators import random_sorted_table


def main() -> None:
    schema = Schema.of("A", "B", "C")
    input_order = SortSpec.of("A", "B", "C")
    desired_order = SortSpec.of("A", "C", "B")

    # A sorted input, as a b-tree or column-store scan would deliver it:
    # rows plus cached offset-value codes.
    table = random_sorted_table(
        schema, input_order, n_rows=50_000, domains=[50, 40, 1000], seed=42
    )
    print("input (first rows):")
    print(table.pretty(8))
    print()

    # Compile time: how are the two orders related?
    plan = analyze_order_modification(input_order, desired_order)
    print(f"plan: {plan.describe()}")
    print()

    # Run time: segmented sorting + merging pre-existing runs, reusing
    # the input's codes.
    smart = ComparisonStats()
    result = modify_sort_order(table, desired_order, stats=smart)
    assert result.is_sorted()

    # Baseline: ignore everything we know and sort from scratch.
    naive = ComparisonStats()
    baseline = modify_sort_order(
        table, desired_order, method="full_sort", stats=naive
    )
    assert baseline.rows == result.rows

    print("output (first rows):")
    print(result.pretty(8))
    print()
    print(f"{'':24}  {'modify order':>14}  {'full sort':>14}")
    for field in ("row_comparisons", "column_comparisons", "ovc_comparisons"):
        print(
            f"{field:24}  {getattr(smart, field):>14,}  "
            f"{getattr(naive, field):>14,}"
        )
    saved = 1 - smart.column_comparisons / max(1, naive.column_comparisons)
    print(f"\ncolumn comparisons saved: {saved:.1%}")


if __name__ == "__main__":
    main()
