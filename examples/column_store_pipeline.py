#!/usr/bin/env python3
"""Hypothesis 6 end to end: a sorted RLE column store feeds order
modification and compression without column comparisons.

Pipeline:
  1. build a column store (run-length encoded on the sort key);
  2. transpose to rows + offset-value codes off the run boundaries;
  3. modify the sort order A,B,C -> A,C,B reusing those codes;
  4. re-compress the output into a new column store using the *output*
     codes — again without comparisons.

Run:  python examples/column_store_pipeline.py
"""

from __future__ import annotations

from repro import modify_sort_order
from repro.engine.scans import ColumnStoreScan
from repro import Schema, SortSpec
from repro import ComparisonStats
from repro.storage.colstore import ColumnStore
from repro.workloads.generators import random_sorted_table


def main() -> None:
    schema = Schema.of("A", "B", "C", "payload")
    input_order = SortSpec.of("A", "B", "C")
    table = random_sorted_table(
        schema, input_order, 100_000, domains=[20, 30, 200, 1 << 30], seed=3
    )

    store = ColumnStore.from_table(table)
    total_key_cells = 3 * len(table)
    print(
        f"column store: {len(store):,} rows; key values stored "
        f"{store.stored_key_values():,} / {total_key_cells:,} "
        f"({store.stored_key_values() / total_key_cells:.1%})"
    )

    # Transpose: rows + codes from RLE boundaries, zero comparisons.
    scan = ColumnStoreScan(store)
    scanned = scan.to_table()
    assert scan.stats.column_comparisons == 0
    print("transposition to coded rows: 0 column comparisons")

    # Segment boundaries for free as well.
    segments = store.segment_boundaries(1)
    print(f"segments (distinct A) straight from run lengths: {len(segments)}")

    # Modify the sort order using the scanned codes.
    stats = ComparisonStats()
    result = modify_sort_order(scanned, SortSpec.of("A", "C", "B"), stats=stats)
    assert result.is_sorted()
    print(
        f"A,B,C -> A,C,B: {stats.row_comparisons:,} row comparisons, "
        f"{stats.column_comparisons:,} column comparisons"
    )

    # Re-compress the output with its fresh codes.
    recompressed = ColumnStore.from_table(result)
    total_out_cells = 3 * len(result)
    print(
        f"output column store: key values stored "
        f"{recompressed.stored_key_values():,} / {total_out_cells:,} "
        f"({recompressed.stored_key_values() / total_out_cells:.1%}) — "
        f"compression came from the output codes, not comparisons"
    )


if __name__ == "__main__":
    main()
