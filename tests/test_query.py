"""Tests for the fluent query facade."""

from __future__ import annotations

import pytest

from repro.model import Schema, SortSpec, Table
from repro.query import Query
from repro.workloads.enrollment import make_enrollment_workload
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")


def table(n=300, seed=0) -> Table:
    return random_sorted_table(SCHEMA, SPEC, n, domains=[5, 6, 7], seed=seed)


def test_filter_select_limit_chain():
    t = table()
    got = (
        Query(t)
        .filter(lambda r: r[1] >= 3)
        .select("A", "B")
        .limit(5)
        .rows()
    )
    expected = [(r[0], r[1]) for r in t.rows if r[1] >= 3][:5]
    assert got == expected


def test_where_shortcut():
    t = table()
    got = Query(t).where("A", 2).rows()
    assert got == [r for r in t.rows if r[0] == 2]


def test_order_by_uses_modification():
    t = table()
    q = Query(t).order_by("A", "C", "B")
    rows = q.rows()
    assert rows == sorted(t.rows, key=lambda r: (r[0], r[2], r[1]))
    assert "Sort" in q.explain()


def test_group_by_sorts_when_needed():
    t = table()
    got = Query(t).group_by(["B"], [("count", None)]).rows()
    from collections import Counter

    counts = Counter(r[1] for r in t.rows)
    assert got == sorted(counts.items())


def test_aggregate_single_row():
    t = table()
    got = Query(t).aggregate([("count", None), ("min", "C")]).rows()
    assert got == [(len(t), min(r[2] for r in t.rows))]


def test_distinct_with_and_without_keys():
    t = table()
    got = Query(t).distinct(["A"]).rows()
    assert len(got) == len({r[0] for r in t.rows})
    assert [r[0] for r in got] == sorted({r[0] for r in t.rows})
    unsorted = Table(SCHEMA, list(t.rows))
    with pytest.raises(ValueError):
        Query(unsorted).distinct()


def test_top_k():
    t = table()
    got = Query(t).top(4, "C", "B").rows()
    assert got == sorted(t.rows, key=lambda r: (r[2], r[1]))[:4]


def test_pivot_sorts_when_needed():
    rows = [("e", 1, 5), ("w", 2, 3), ("e", 2, 7), ("e", 1, 5)]
    t = Table(Schema.of("region", "q", "amt"), rows)  # unsorted!
    got = (
        Query(t)
        .pivot(["region"], "q", "amt", [1, 2], agg="sum")
        .rows()
    )
    assert got == [("e", 10, 7), ("w", None, 3)]


def test_join_with_enforcers():
    w = make_enrollment_workload(
        n_students=20, n_courses=6, n_enrollments=100, seed=3
    )
    transcripts = (
        Query(w.students)
        .join(
            Query(w.enrollments).order_by(
                "campus", "student", "course", "semester"
            ),
            on=[("campus", "campus"), ("student", "student")],
        )
        .group_by(["campus", "student"], [("count", None)])
    )
    rows = transcripts.rows()
    assert sum(r[-1] for r in rows) == len(w.enrollments)


def test_set_operations():
    a = Table(SCHEMA, [(1, 1, 1), (2, 2, 2)], SPEC).with_ovcs()
    b = Table(SCHEMA, [(2, 2, 2), (3, 3, 3)], SPEC).with_ovcs()
    assert Query(a).union_all(b).rows() == [
        (1, 1, 1), (2, 2, 2), (2, 2, 2), (3, 3, 3)
    ]
    assert Query(a).union(b).rows() == [(1, 1, 1), (2, 2, 2), (3, 3, 3)]
    assert Query(a).intersect(b).rows() == [(2, 2, 2)]
    assert Query(a).except_(b).rows() == [(1, 1, 1)]


def test_type_errors():
    with pytest.raises(TypeError):
        Query(42)
    with pytest.raises(TypeError):
        Query(table()).union_all(42)


def test_iteration_yields_row_code_pairs():
    t = table(n=5)
    pairs = list(Query(t))
    assert len(pairs) == 5
    assert all(len(p) == 2 for p in pairs)
