"""Derivation planner: node/edge construction, costs, execution order."""

from __future__ import annotations

import pytest

from repro.cache import (
    configure_cache,
    fingerprint_table,
    get_cache,
    install_result,
)
from repro.engine import Sort, TableScan
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec
from repro.ovc.stats import ComparisonStats
from repro.plan import plan_batch
from repro.workloads.generators import random_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [8, 12, 30, 4]
CFG = ExecutionConfig(cache="off")


def _sorted_source(n_rows=600, seed=0, spec=None):
    table = random_table(SCHEMA, n_rows, domains=DOMAINS, seed=seed)
    spec = spec or SortSpec.of("A", "B", "C", "D")
    return Sort(TableScan(table), spec, config=CFG).to_table()


def _requested(plan):
    return [n for n in plan.nodes if n.requested]


def test_rotation_chain_uses_sibling_edges():
    source = _sorted_source()
    specs = [
        SortSpec.of("B", "C", "D", "A"),
        SortSpec.of("C", "D", "A", "B"),
        SortSpec.of("D", "A", "B", "C"),
    ]
    plan = plan_batch(source, specs)
    assert [n.spec for n in _requested(plan)] == specs
    assert plan.sibling_edges() >= 1
    assert plan.est_planned < plan.est_independent
    assert plan.est_speedup > 1.0
    # Execution order is parents-first.
    seen = set()
    for idx in plan.order:
        parent = plan.nodes[idx].parent
        if plan.nodes[parent].requested:
            assert parent in seen
        seen.add(idx)
    assert sorted(plan.order) == sorted(n.index for n in _requested(plan))


def test_source_order_is_passthrough_with_zero_cost():
    source = _sorted_source()
    full = SortSpec.of("A", "B", "C", "D")
    prefix = SortSpec.of("A", "B")
    plan = plan_batch(source, [full, prefix])
    nodes = {n.spec: n for n in _requested(plan)}
    assert nodes[full].strategy == "passthrough"
    assert nodes[full].edge_cost == 0.0
    assert nodes[full].parent == 0
    assert nodes[prefix].strategy == "passthrough"
    assert nodes[prefix].edge_cost == 0.0


def test_unordered_source_prices_full_sort_root():
    table = random_table(SCHEMA, 400, domains=DOMAINS, seed=3)
    specs = [SortSpec.of("A", "B"), SortSpec.of("B", "A")]
    plan = plan_batch(table, specs)
    roots = [
        n for n in _requested(plan) if not plan.nodes[n.parent].requested
    ]
    assert all(n.strategy == "full-sort" for n in roots)
    assert all(n.parent == 0 for n in roots)
    # At least one order should chain off another rather than pay a
    # second full sort.
    assert plan.sibling_edges() >= 1


def test_cached_order_becomes_parent():
    configure_cache(budget=1 << 22)
    cache = get_cache()
    source = _sorted_source()
    fp = fingerprint_table(source)
    cached_spec = SortSpec.of("C", "D", "A", "B")
    cached_table = Sort(TableScan(source), cached_spec, config=CFG).to_table()
    assert install_result(cache, fp, cached_spec, cached_table, ComparisonStats())

    plan = plan_batch(
        source, [cached_spec], cache=cache, fingerprint=fp
    )
    (node,) = _requested(plan)
    assert plan.nodes[node.parent].kind == "cached"
    assert node.strategy == "cache-hit"
    assert node.edge_cost == 0.0


def test_cached_relative_priced_with_exact_counts():
    configure_cache(budget=1 << 22)
    cache = get_cache()
    source = _sorted_source()
    fp = fingerprint_table(source)
    cached_spec = SortSpec.of("C", "D", "A", "B")
    cached_table = Sort(TableScan(source), cached_spec, config=CFG).to_table()
    install_result(cache, fp, cached_spec, cached_table, ComparisonStats())

    # C,D,B,A shares a 2-column prefix with the cached order but none
    # with the source — the cached parent must win despite WIN_MARGIN.
    target = SortSpec.of("C", "D", "B", "A")
    plan = plan_batch(source, [target], cache=cache, fingerprint=fp)
    (node,) = _requested(plan)
    assert plan.nodes[node.parent].kind == "cached"
    assert node.strategy == "modify-from-cache"
    assert node.edge_cost < node.baseline_cost


def test_duplicate_specs_are_deduplicated():
    source = _sorted_source()
    spec = SortSpec.of("B", "A")
    plan = plan_batch(source, [spec, spec, spec])
    assert len(_requested(plan)) == 1
    assert plan.spec_nodes == {spec: 1}


def test_explain_mentions_every_requested_order():
    source = _sorted_source()
    specs = [SortSpec.of("B", "C", "D", "A"), SortSpec.of("C", "D", "A", "B")]
    plan = plan_batch(source, specs)
    text = plan.explain()
    assert "derivation plan: 2 order(s)" in text
    assert "source(" in text
    for spec in specs:
        assert ",".join(str(c) for c in spec.columns) in text
    assert "est " in text and "x vs independent" in text


def test_planning_is_deterministic():
    source = _sorted_source()
    specs = [
        SortSpec.of("B", "C", "D", "A"),
        SortSpec.of("C", "D", "A", "B"),
        SortSpec.of("D", "C", "B", "A"),
    ]
    first = plan_batch(source, specs)
    second = plan_batch(source, specs)
    assert [(n.parent, n.strategy) for n in first.nodes] == [
        (n.parent, n.strategy) for n in second.nodes
    ]
    assert first.order == second.order
    assert first.est_planned == pytest.approx(second.est_planned)
