"""Property-based differential: planned batches == per-request runs.

The planner's whole contract is bit-identity — every node's rows and
codes must match what an independent ``Sort`` of the same order would
produce, whatever parent the arborescence picked.  Hypothesis drives
random tables (tiny domains, so duplicate groups and full-key ties are
dense), random order batches drawn from permutations and prefixes,
both engines, ordered and unordered sources, and thread counts.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Sort, TableScan
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.plan import derive_batch
from repro.workloads.generators import random_table

SCHEMA = Schema.of("A", "B", "C")

#: Every permutation of the columns, plus the proper prefixes of a few
#: of them — related and unrelated targets mixed.
ORDER_POOL = [
    SortSpec.of(*perm)
    for perm in itertools.permutations(SCHEMA.columns)
] + [
    SortSpec.of("A"),
    SortSpec.of("B"),
    SortSpec.of("A", "B"),
    SortSpec.of("B", "C"),
    SortSpec.of("C DESC", "A"),
]

rows_st = st.lists(
    st.tuples(
        st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)
    ),
    min_size=0,
    max_size=48,
)
batch_st = st.lists(
    st.sampled_from(ORDER_POOL), min_size=1, max_size=6
)


def _solo(source: Table, spec: SortSpec, cfg: ExecutionConfig):
    op = Sort(TableScan(source), spec, config=cfg)
    return op.to_table(), op.stats


def _check(source: Table, specs, cfg: ExecutionConfig, workers: int):
    result = derive_batch(
        source, specs, config=cfg, max_concurrency=workers
    )
    for spec in specs:
        ref_table, ref_stats = _solo(source, spec, cfg)
        node = result.result_for(spec)
        assert node.table.rows == ref_table.rows, spec
        assert node.table.ovcs == ref_table.ovcs, spec
        parent = result.plan.nodes[
            result.plan.nodes[result.plan.spec_nodes[spec]].parent
        ]
        if parent.kind == "source" and not node.fallback:
            assert node.stats_delta.as_dict() == ref_stats.as_dict(), spec


@given(rows_st, batch_st, st.sampled_from([1, 2, 4]))
@settings(max_examples=60, deadline=None)
def test_unordered_source_reference_engine(rows, specs, workers):
    source = Table(SCHEMA, rows, None, None)
    _check(source, specs, ExecutionConfig(cache="off"), workers)


@given(rows_st, batch_st, st.sampled_from([1, 2, 4]))
@settings(max_examples=60, deadline=None)
def test_ordered_source_reference_engine(rows, specs, workers):
    base = Table(SCHEMA, rows, None, None)
    source = Sort(
        TableScan(base), SortSpec.of("A", "B", "C"),
        config=ExecutionConfig(cache="off"),
    ).to_table()
    _check(source, specs, ExecutionConfig(cache="off"), workers)


@given(rows_st, batch_st, st.sampled_from([1, 4]))
@settings(max_examples=40, deadline=None)
def test_ordered_source_fast_engine(rows, specs, workers):
    cfg = ExecutionConfig(cache="off", engine="fast")
    base = Table(SCHEMA, rows, None, None)
    source = Sort(
        TableScan(base), SortSpec.of("A", "B", "C"), config=cfg
    ).to_table()
    _check(source, specs, cfg, workers)


@given(rows_st, batch_st)
@settings(max_examples=40, deadline=None)
def test_batch_with_cache_enabled(rows, specs):
    from repro.cache import configure_cache, reset_cache

    reset_cache()
    configure_cache(budget=1 << 22)
    try:
        base = Table(SCHEMA, rows, None, None)
        cfg = ExecutionConfig(cache="on")
        source = Sort(
            TableScan(base), SortSpec.of("A", "B", "C"), config=cfg
        ).to_table()
        result = derive_batch(source, specs, config=cfg, max_concurrency=1)
        solo_cfg = ExecutionConfig(cache="off")
        for spec in specs:
            ref_table, _ = _solo(source, spec, solo_cfg)
            node = result.result_for(spec)
            assert node.table.rows == ref_table.rows, spec
            assert node.table.ovcs == ref_table.ovcs, spec
    finally:
        reset_cache()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_process_parallel_modification_in_batch(workers):
    """The config's process pool composes with the batch executor."""
    cfg = ExecutionConfig(cache="off", workers=workers)
    table = random_table(Schema.of("A", "B", "C", "D"), 4096,
                         domains=[6, 8, 24, 4], seed=11)
    source = Sort(
        TableScan(table), SortSpec.of("A", "B", "C", "D"), config=cfg
    ).to_table()
    specs = [
        SortSpec.of("A", "B", "D", "C"),
        SortSpec.of("B", "C", "D", "A"),
        SortSpec.of("C", "D", "A", "B"),
    ]
    result = derive_batch(source, specs, config=cfg)
    for spec in specs:
        ref_table, _ = _solo(source, spec, cfg)
        node = result.result_for(spec)
        assert node.table.rows == ref_table.rows
        assert node.table.ovcs == ref_table.ovcs
