"""Chu-Liu/Edmonds minimum spanning arborescence: exactness + edges."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import minimum_arborescence


def _total(chosen: dict) -> float:
    return sum(w for _u, w in chosen.values())


def _brute_force(n: int, root: int, edges) -> float | None:
    """Cheapest arborescence weight by enumerating parent choices."""
    incoming = {v: [] for v in range(n) if v != root}
    for u, v, w in edges:
        if v != root and u != v:
            incoming[v].append((u, w))
    if any(not choices for choices in incoming.values()):
        return None
    best = None
    keys = list(incoming)
    for combo in itertools.product(*(incoming[v] for v in keys)):
        parent = dict(zip(keys, combo))
        ok = True
        for v in keys:
            cur, seen = v, set()
            while cur != root:
                if cur in seen:
                    ok = False
                    break
                seen.add(cur)
                cur = parent[cur][0]
            if not ok:
                break
        if ok:
            total = sum(w for _u, w in combo)
            if best is None or total < best:
                best = total
    return best


def test_star_when_direct_edges_are_cheapest():
    edges = [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 5.0), (2, 1, 5.0)]
    chosen = minimum_arborescence(3, 0, edges)
    assert chosen == {1: (0, 1.0), 2: (0, 1.0)}


def test_chain_when_derivation_is_cheaper():
    edges = [
        (0, 1, 10.0), (0, 2, 10.0), (0, 3, 10.0),
        (1, 2, 1.0), (2, 3, 1.0),
    ]
    chosen = minimum_arborescence(4, 0, edges)
    assert chosen == {1: (0, 10.0), 2: (1, 1.0), 3: (2, 1.0)}


def test_two_cycle_contraction():
    # a and b each prefer the other; the cycle must break toward root.
    edges = [(0, 1, 10.0), (0, 2, 10.0), (1, 2, 1.0), (2, 1, 1.0)]
    chosen = minimum_arborescence(3, 0, edges)
    assert _total(chosen) == 11.0
    parents = {v: u for v, (u, _w) in chosen.items()}
    assert sorted(parents) == [1, 2]
    assert 0 in parents.values()  # exactly one node hangs off the root


def test_three_cycle_contraction():
    edges = [
        (0, 1, 9.0), (0, 2, 20.0), (0, 3, 20.0),
        (1, 2, 1.0), (2, 3, 1.0), (3, 1, 1.0),
    ]
    chosen = minimum_arborescence(4, 0, edges)
    assert _total(chosen) == 11.0
    assert chosen[1] == (0, 9.0)


def test_unreachable_node_raises():
    with pytest.raises(ValueError, match="unreachable"):
        minimum_arborescence(3, 0, [(0, 1, 1.0)])


def test_root_out_of_range_raises():
    with pytest.raises(ValueError, match="root"):
        minimum_arborescence(2, 5, [(0, 1, 1.0)])


def test_edge_out_of_range_raises():
    with pytest.raises(ValueError, match="out of range"):
        minimum_arborescence(2, 0, [(0, 7, 1.0)])


def test_parallel_edges_and_self_loops_tolerated():
    edges = [(0, 1, 5.0), (0, 1, 2.0), (1, 1, 0.0)]
    assert minimum_arborescence(2, 0, edges) == {1: (0, 2.0)}


@given(
    st.integers(3, 6),
    st.lists(st.integers(0, 20), min_size=12, max_size=40),
)
@settings(max_examples=120, deadline=None)
def test_matches_brute_force_on_random_graphs(n, weights):
    pairs = [(u, v) for u in range(n) for v in range(1, n) if u != v]
    edges = [
        (u, v, float(w)) for (u, v), w in zip(pairs, itertools.cycle(weights))
    ]
    # Thin the graph deterministically from the weight stream so some
    # examples are sparse (exercising contraction and unreachability).
    edges = [e for i, e in enumerate(edges) if weights[i % len(weights)] != 7]
    expected = _brute_force(n, 0, edges)
    if expected is None:
        with pytest.raises(ValueError):
            minimum_arborescence(n, 0, edges)
        return
    chosen = minimum_arborescence(n, 0, edges)
    assert _total(chosen) == pytest.approx(expected)
    # The result is a well-formed arborescence: every non-root node
    # has one parent and walks up to the root without cycling.
    assert sorted(chosen) == [v for v in range(1, n)]
    for v in chosen:
        cur, seen = v, set()
        while cur != 0:
            assert cur not in seen
            seen.add(cur)
            cur = chosen[cur][0]
