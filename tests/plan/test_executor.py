"""Plan execution: fidelity, fallback, cache interplay, order_by_many."""

from __future__ import annotations

import pytest

from repro.cache import configure_cache, fingerprint_table, get_cache
from repro.engine import Sort, TableScan
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec
from repro.obs import METRICS
from repro.plan import derive_batch, execute_plan, plan_batch
from repro.query import Query
from repro.workloads.generators import random_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [8, 12, 30, 4]
CFG = ExecutionConfig(cache="off")

ORDERS = [
    SortSpec.of("B", "C", "D", "A"),
    SortSpec.of("C", "D", "A", "B"),
    SortSpec.of("D", "A", "B", "C"),
    SortSpec.of("A", "B", "C", "D"),
]


def _sorted_source(n_rows=700, seed=0):
    table = random_table(SCHEMA, n_rows, domains=DOMAINS, seed=seed)
    return Sort(
        TableScan(table), SortSpec.of("A", "B", "C", "D"), config=CFG
    ).to_table()


def _solo(source, spec):
    op = Sort(TableScan(source), spec, config=CFG)
    return op.to_table(), op.stats


def test_batch_matches_solo_rows_and_codes():
    source = _sorted_source()
    result = derive_batch(source, ORDERS, config=CFG)
    assert len(result.tables()) == len(ORDERS)
    for spec in ORDERS:
        ref_table, ref_stats = _solo(source, spec)
        node = result.result_for(spec)
        assert node.table.rows == ref_table.rows
        assert node.table.ovcs == ref_table.ovcs
        assert node.table.sort_spec == spec
        parent = result.plan.nodes[
            result.plan.nodes[result.plan.spec_nodes[spec]].parent
        ]
        if parent.kind == "source":
            assert node.stats_delta.as_dict() == ref_stats.as_dict()
    assert result.fallbacks == 0
    assert result.stats.row_comparisons >= 0


def test_duplicate_orders_share_one_node():
    source = _sorted_source(300)
    spec = SortSpec.of("C", "B", "A", "D")
    result = derive_batch(source, [spec, spec], config=CFG)
    tables = result.tables()
    assert len(tables) == 2
    assert tables[0] is tables[1]


def test_unordered_source_full_sorts_once_then_derives():
    table = random_table(SCHEMA, 500, domains=DOMAINS, seed=5)
    specs = [SortSpec.of("A", "B", "C", "D"), SortSpec.of("B", "C", "D", "A")]
    result = derive_batch(table, specs, config=CFG)
    labels = {result.result_for(s).label for s in specs}
    assert "full-sort" in labels
    for spec in specs:
        ref_table, _ = _solo(table, spec)
        node = result.result_for(spec)
        assert node.table.rows == ref_table.rows
        assert node.table.ovcs == ref_table.ovcs


def test_concurrency_matches_serial():
    source = _sorted_source(900, seed=2)
    serial = derive_batch(source, ORDERS, config=CFG, max_concurrency=1)
    threaded = derive_batch(source, ORDERS, config=CFG, max_concurrency=4)
    for spec in ORDERS:
        a, b = serial.result_for(spec), threaded.result_for(spec)
        assert a.table.rows == b.table.rows
        assert a.table.ovcs == b.table.ovcs
        assert a.stats_delta.as_dict() == b.stats_delta.as_dict()
        assert a.label == b.label
    assert serial.stats.as_dict() == threaded.stats.as_dict()


def test_empty_batch():
    source = _sorted_source(100)
    result = derive_batch(source, [], config=CFG)
    assert result.tables() == []
    assert result.fallbacks == 0


def test_derive_batch_installs_into_cache():
    cfg = ExecutionConfig(cache="on")
    configure_cache(budget=1 << 22)
    source = _sorted_source(400)
    spec = SortSpec.of("D", "C", "B", "A")
    derive_batch(source, [spec], config=cfg)
    # A later solo Sort over the same source is served from the cache.
    op = Sort(TableScan(source), spec, config=cfg)
    out = op.to_table()
    ref_table, _ = _solo(source, spec)
    assert out.rows == ref_table.rows
    assert get_cache().counters()["hits"] >= 1


def test_evicted_parent_falls_back_to_source():
    cfg = ExecutionConfig(cache="on")
    configure_cache(budget=1 << 22)
    cache = get_cache()
    source = _sorted_source(400)
    fp = fingerprint_table(source)
    cached_spec = SortSpec.of("C", "D", "A", "B")
    Sort(TableScan(source), cached_spec, config=cfg).to_table()
    assert cache.lookup(fp, cached_spec) is not None

    target = SortSpec.of("C", "D", "B", "A")
    plan = plan_batch(source, [target], cache=cache, fingerprint=fp)
    (node,) = [n for n in plan.nodes if n.requested]
    assert plan.nodes[node.parent].kind == "cached"

    # The parent vanishes between planning and execution.
    cache.invalidate()
    results = execute_plan(plan, source, cache=cache, fp=fp, config=cfg)
    got = results[plan.spec_nodes[target]]
    assert got.fallback
    ref_table, ref_stats = _solo(source, target)
    assert got.table.rows == ref_table.rows
    assert got.table.ovcs == ref_table.ovcs
    assert got.stats_delta.as_dict() == ref_stats.as_dict()


def test_metrics_counters_published():
    METRICS.enable(clear=True)
    source = _sorted_source(300)
    result = derive_batch(source, ORDERS[:2], config=CFG)
    snap = METRICS.as_dict()
    assert snap["counters"]["plan.batches"] == 1
    assert snap["counters"]["plan.nodes"] == 2
    assert snap["counters"]["plan.sibling_derivations"] == (
        result.plan.sibling_edges()
    )
    assert snap["histograms"]["plan.batch_size"]["count"] == 1


def test_order_by_many_matches_order_by():
    table = random_table(SCHEMA, 500, domains=DOMAINS, seed=7)
    specs = [["B", "C", "D", "A"], ["C", "D", "A", "B"]]
    got = Query(table).order_by_many(specs, config=CFG)
    assert len(got) == 2
    for cols, out in zip(specs, got):
        ref = Query(table).order_by(*cols, config=CFG).to_table()
        assert out.rows == ref.rows
        assert out.ovcs == ref.ovcs
        assert out.sort_spec == SortSpec(cols)


def test_order_by_many_empty():
    table = random_table(SCHEMA, 50, domains=DOMAINS, seed=1)
    assert Query(table).order_by_many([], config=CFG) == []


def test_order_by_many_merges_stats():
    table = random_table(SCHEMA, 400, domains=DOMAINS, seed=9)
    q = Query(table)
    q.order_by_many([SortSpec.of("A", "B"), SortSpec.of("B", "A")], config=CFG)
    assert q.op.stats.row_comparisons > 0
