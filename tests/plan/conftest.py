"""Plan-suite hygiene: reset process-wide singletons around each test."""

from __future__ import annotations

import pytest

from repro.cache import reset_cache
from repro.obs import LOG, METRICS, SLOWLOG, TRACER


def _reset_all():
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()
    LOG.disable()
    SLOWLOG.disable()
    SLOWLOG.clear()
    reset_cache()


@pytest.fixture(autouse=True)
def clean_state():
    _reset_all()
    yield
    _reset_all()
