"""Unit and property tests for code encodings and the max-theorem."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ovc.codes import (
    DUPLICATE,
    FENCE,
    ascending_code,
    ascending_integer_code,
    code_to_ovc,
    descending_integer_code,
    max_merge,
    ovc_to_code,
)


def test_duplicate_is_lowest_ascending_code():
    assert DUPLICATE == (0, 0)
    assert DUPLICATE < ascending_code(0, 0, 4)
    assert DUPLICATE < ascending_code(3, 0, 4)


def test_fence_loses_to_everything():
    assert FENCE > ascending_code(0, 10**9, 4)
    assert FENCE > DUPLICATE
    assert FENCE[0] is math.inf


def test_round_trip_tuple_codes():
    for arity in (1, 2, 5):
        for offset in range(arity + 1):
            ovc = (offset, 7) if offset < arity else (arity, 0)
            assert code_to_ovc(ovc_to_code(ovc, arity), arity) == ovc


def test_code_to_ovc_rejects_fence():
    with pytest.raises(ValueError):
        code_to_ovc(FENCE, 4)


@given(
    st.integers(0, 5),
    st.integers(0, 99),
    st.integers(0, 5),
    st.integers(0, 99),
)
def test_tuple_code_order_matches_integer_code_order(o1, v1, o2, v2):
    """The (arity-offset, value) tuple order equals the paper's
    ascending integer encoding order, for any domain bound."""
    arity, domain = 6, 100
    t1, t2 = ascending_code(o1, v1, arity), ascending_code(o2, v2, arity)
    i1 = ascending_integer_code(o1, v1 if o1 < arity else 0, arity, domain)
    i2 = ascending_integer_code(o2, v2 if o2 < arity else 0, arity, domain)
    assert (t1 < t2) == (i1 < i2)
    assert (t1 == t2) == (i1 == i2)


@given(
    st.integers(0, 5),
    st.integers(0, 99),
    st.integers(0, 5),
    st.integers(0, 99),
)
def test_descending_codes_invert_ascending_order(o1, v1, o2, v2):
    arity, domain = 6, 100
    a1 = ascending_integer_code(o1, v1 if o1 < arity else 0, arity, domain)
    a2 = ascending_integer_code(o2, v2 if o2 < arity else 0, arity, domain)
    d1 = descending_integer_code(o1, v1 if o1 < arity else 0, arity, domain)
    d2 = descending_integer_code(o2, v2 if o2 < arity else 0, arity, domain)
    # Same offset+value wins in both schemes; strictly ordered pairs
    # invert.  Equal-code pairs coincide.
    if (o1, v1 if o1 < arity else 0) == (o2, v2 if o2 < arity else 0):
        assert a1 == a2 and d1 == d2
    else:
        assert (a1 < a2) == (d1 > d2)


@st.composite
def sorted_row_triple(draw):
    """Three rows x <= y <= z over a small domain."""
    arity = draw(st.integers(1, 5))
    rows = sorted(
        draw(
            st.lists(
                st.tuples(*([st.integers(0, 4)] * arity)),
                min_size=3,
                max_size=3,
            )
        )
    )
    return arity, rows


def _code(base: tuple, row: tuple, arity: int) -> tuple:
    for i in range(arity):
        if base[i] != row[i]:
            return (arity - i, row[i])
    return DUPLICATE


@given(sorted_row_triple())
def test_max_theorem(triple):
    """code(z|x) == max(code(z|y), code(y|x)) for x <= y <= z."""
    arity, (x, y, z) = triple
    assert _code(x, z, arity) == max_merge(_code(x, y, arity), _code(y, z, arity))


@given(sorted_row_triple())
def test_codes_are_order_preserving(triple):
    """Two rows coded against the same base order by their codes; equal
    codes imply agreement through offset+1 columns."""
    arity, (x, y, z) = triple
    cy, cz = _code(x, y, arity), _code(x, z, arity)
    if cy < cz:
        assert y <= z
    elif cz < cy:
        # Lower code wins: z would sort before y — but y <= z by
        # construction, so this can only happen when they tie anyway.
        assert y[: arity] == z[: arity] or z <= y
    else:
        if cy != DUPLICATE:
            shared = arity - cy[0] + 1
            assert y[:shared] == z[:shared]
