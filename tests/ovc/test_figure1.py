"""Exact reproduction of the paper's Figure 1: prefix truncation,
run-length encoding, and descending/ascending offset-value codes for a
table sorted on four keys with per-column domain 100."""

from __future__ import annotations

import pytest

from repro.ovc.codes import (
    ascending_integer_code,
    decode_ascending_integer,
    decode_descending_integer,
    descending_integer_code,
)
from repro.ovc.derive import derive_ovcs, rle_lengths_from_ovcs

ROWS = [
    (5, 4, 7, 1),
    (5, 4, 7, 2),
    (5, 6, 2, 6),
    (5, 6, 2, 6),
    (5, 6, 3, 4),
    (5, 8, 2, 3),
    (5, 8, 4, 7),
]

ARITY = 4
DOMAIN = 100

# (offset, value) per row, exactly as printed in Figure 1.
EXPECTED_OVCS = [
    (0, 5),
    (3, 2),
    (1, 6),
    (4, 0),  # duplicate of the preceding row
    (2, 3),
    (1, 8),
    (2, 4),
]

# Descending codes column of Figure 1 (higher code wins).
EXPECTED_DESC = [95, 398, 194, 500, 297, 192, 296]

# Ascending codes column of Figure 1 (lower code wins).
EXPECTED_ASC = [405, 102, 306, 0, 203, 308, 204]


def test_derived_offsets_and_values_match_figure1():
    assert derive_ovcs(ROWS, (0, 1, 2, 3)) == EXPECTED_OVCS


def test_descending_integer_codes_match_figure1():
    got = [
        descending_integer_code(off, val, ARITY, DOMAIN)
        for off, val in EXPECTED_OVCS
    ]
    assert got == EXPECTED_DESC


def test_ascending_integer_codes_match_figure1():
    got = [
        ascending_integer_code(off, val, ARITY, DOMAIN)
        for off, val in EXPECTED_OVCS
    ]
    assert got == EXPECTED_ASC


def test_descending_codes_order_higher_wins():
    # The winner of a comparison is the row earlier in sort order; with
    # descending codes the higher code wins.  Adjacent rows are coded
    # against the earlier row, so every code must "lose" to the
    # duplicate code and the order of any two codes sharing a base row
    # must invert the row order.
    dup = descending_integer_code(ARITY, 0, ARITY, DOMAIN)
    assert dup == 500
    assert all(code < dup for code in EXPECTED_DESC if code != dup)


def test_ascending_codes_order_lower_wins():
    dup = ascending_integer_code(ARITY, 0, ARITY, DOMAIN)
    assert dup == 0
    assert all(code > dup for code in EXPECTED_ASC if code != dup)


def test_integer_codes_round_trip():
    for off, val in EXPECTED_OVCS:
        asc = ascending_integer_code(off, val, ARITY, DOMAIN)
        desc = descending_integer_code(off, val, ARITY, DOMAIN)
        if off >= ARITY:
            assert decode_ascending_integer(asc, ARITY, DOMAIN) == (ARITY, 0)
            assert decode_descending_integer(desc, ARITY, DOMAIN) == (ARITY, 0)
        else:
            assert decode_ascending_integer(asc, ARITY, DOMAIN) == (off, val)
            assert decode_descending_integer(desc, ARITY, DOMAIN) == (off, val)


def test_value_outside_domain_rejected():
    with pytest.raises(ValueError):
        ascending_integer_code(0, DOMAIN, ARITY, DOMAIN)
    with pytest.raises(ValueError):
        descending_integer_code(0, -1, ARITY, DOMAIN)


def test_prefix_truncation_equals_rle_structure():
    """Figure 1's second and third blocks suppress the same values: a
    column value is stored exactly when its prefix changes."""
    ovcs = derive_ovcs(ROWS, (0, 1, 2, 3))
    starts = rle_lengths_from_ovcs(ovcs, ARITY)
    # Column 0 has a single run (all rows share 5).
    assert starts[0] == [0]
    # Column 1 runs start where offset <= 1: rows 0, 2, 5.
    assert starts[1] == [0, 2, 5]
    # Column 2 runs: rows with offset <= 2.
    assert starts[2] == [0, 2, 4, 5, 6]
    # Column 3: everything except the exact duplicate row starts a run.
    assert starts[3] == [0, 1, 2, 4, 5, 6]
    # Stored values across all columns == sum of (arity - offset), the
    # prefix-truncation storage bound.
    stored = sum(len(s) for s in starts)
    assert stored == sum(ARITY - min(off, ARITY) for off, _v in ovcs)
