"""Tests for code derivation, projection, and boundary detection."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import (
    derive_ovcs,
    derive_table_ovcs,
    project_ovcs,
    segment_boundaries,
    verify_ovcs,
)
from repro.ovc.stats import ComparisonStats

rows_st = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
    max_size=50,
)


@given(rows_st)
def test_derivation_is_self_consistent(rows):
    rows = sorted(rows)
    ovcs = derive_ovcs(rows, (0, 1, 2))
    assert verify_ovcs(rows, ovcs, (0, 1, 2))
    assert len(ovcs) == len(rows)


@given(rows_st)
def test_offsets_mark_shared_prefixes(rows):
    rows = sorted(rows)
    ovcs = derive_ovcs(rows, (0, 1, 2))
    for i in range(1, len(rows)):
        offset, value = ovcs[i]
        assert rows[i][:offset] == rows[i - 1][:offset]
        if offset < 3:
            assert rows[i][offset] == value
            assert rows[i][offset] != rows[i - 1][offset]


def test_first_row_convention():
    ovcs = derive_ovcs([(7, 1, 2)], (0, 1, 2))
    assert ovcs == [(0, 7)]


def test_empty_input():
    assert derive_ovcs([], (0, 1)) == []


def test_unsorted_input_raises():
    with pytest.raises(ValueError, match="not sorted"):
        derive_ovcs([(2, 0), (1, 0)], (0, 1))


def test_descending_direction_normalizes_values():
    rows = [(5, 1), (3, 2), (3, 9), (1, 0)]
    ovcs = derive_ovcs(rows, (0, 1), directions=(False, True))
    # Descending first column: values stored negated so codes order
    # ascending; second column ascending within equal first.
    assert ovcs == [(0, -5), (0, -3), (1, 9), (0, -1)]


def test_derivation_counts_column_comparisons():
    rows = [(1, 1), (1, 2), (2, 0)]
    stats = ComparisonStats()
    derive_ovcs(rows, (0, 1), stats=stats)
    # Row 2: compare col0 (equal) + col1 (differs) = 2; row 3: col0 = 1.
    assert stats.column_comparisons == 3


@given(rows_st, st.integers(1, 3))
def test_projection_matches_fresh_derivation(rows, new_arity):
    """Projecting codes onto a key prefix equals deriving them anew —
    Table 1 case 0 with zero comparisons."""
    rows = sorted(rows)
    full = derive_ovcs(rows, (0, 1, 2))
    projected = project_ovcs(full, new_arity)
    fresh = derive_ovcs(rows, (0, 1, 2)[:new_arity])
    assert projected == fresh


@given(rows_st, st.integers(1, 3))
def test_segment_boundaries_match_prefix_changes(rows, prefix_len):
    rows = sorted(rows)
    ovcs = derive_ovcs(rows, (0, 1, 2))
    got = segment_boundaries(ovcs, prefix_len)
    expected = [
        i
        for i in range(len(rows))
        if i == 0 or rows[i][:prefix_len] != rows[i - 1][:prefix_len]
    ]
    assert got == expected


def test_table_derivation_requires_sort_spec():
    table = Table(Schema.of("A"), [(1,)])
    with pytest.raises(ValueError):
        derive_table_ovcs(table)


def test_string_columns_supported():
    rows = [("alpha", "x"), ("alpha", "y"), ("beta", "a")]
    ovcs = derive_ovcs(rows, (0, 1))
    assert ovcs == [(0, "alpha"), (1, "y"), (0, "beta")]
