"""Normalized keys: byte encodings must preserve order exactly, and
byte-level OVCs must behave like their column-level siblings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec
from repro.ovc.normalized import (
    NormalizedKeyCodec,
    compare_bytes_resume,
    derive_byte_ovcs,
    duplicate_byte_code,
    encode_value,
    form_byte_code,
)
from repro.ovc.stats import ComparisonStats

# Columns are typed: numeric values in one column are homogeneously int
# or float, so same-kind pairs (plus None against anything) are the
# meaningful comparisons.
_kinds = {
    "int": st.integers(-(1 << 62), 1 << 62),
    "float": st.floats(allow_nan=False, allow_infinity=True, width=64),
    "text": st.text(max_size=8),
    "bytes": st.binary(max_size=8),
}
pair_st = st.one_of(
    *(st.tuples(s, s) for s in _kinds.values()),
    st.tuples(st.none(), st.one_of(st.none(), *_kinds.values())),
)


def _rank(v):
    """Total order within the typed test domain: None < value."""
    if v is None:
        return (0,)
    if isinstance(v, bool):
        return (1, int(v))
    if isinstance(v, (int, float)):
        return (1, v)
    if isinstance(v, bytes):
        return (2, v)
    return (2, v.encode("utf-8"))


@given(pair_st)
@settings(max_examples=300)
def test_encoding_preserves_order_ascending(pair):
    a, b = pair
    ea, eb = encode_value(a), encode_value(b)
    ra, rb = _rank(a), _rank(b)
    if ra < rb:
        assert ea < eb
    elif rb < ra:
        assert eb < ea
    else:
        assert ea == eb


@given(pair_st)
@settings(max_examples=200)
def test_encoding_preserves_order_descending(pair):
    a, b = pair
    ea, eb = encode_value(a, ascending=False), encode_value(b, ascending=False)
    ra, rb = _rank(a), _rank(b)
    if ra < rb:
        assert ea > eb
    elif rb < ra:
        assert eb > ea
    else:
        assert ea == eb


def test_embedded_nul_bytes_are_safe():
    # "a\x00b" vs "a" vs "a\x00": escaping must keep prefix order.
    values = ["a", "a\x00", "a\x00b", "ab"]
    encoded = sorted(encode_value(v) for v in values)
    assert encoded == [encode_value(v) for v in sorted(values)]


def test_nan_rejected():
    with pytest.raises(ValueError):
        encode_value(float("nan"))


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        encode_value(object())


def test_int_overflow_rejected():
    with pytest.raises(OverflowError):
        encode_value(1 << 63)


row_st = st.tuples(st.integers(0, 5), st.text(max_size=4), st.integers(-5, 5))


@given(st.lists(row_st, min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_codec_matches_row_order(rows):
    schema = Schema.of("A", "B", "C")
    spec = SortSpec.of("A", "B", "C DESC")
    codec = NormalizedKeyCodec(schema, spec)
    key = spec.key_for(schema)
    by_rows = sorted(rows, key=key)
    by_bytes = sorted(rows, key=codec.encode)
    assert [key(r) for r in by_rows] == [key(r) for r in by_bytes]


@given(st.lists(st.binary(max_size=6), min_size=1, max_size=30))
@settings(max_examples=150, deadline=None)
def test_byte_ovcs_identify_shared_prefixes(keys):
    keys = sorted(encode_value(k) for k in keys)
    codes = derive_byte_ovcs(keys)
    for i in range(1, len(keys)):
        neg_off, value = codes[i]
        offset = -neg_off
        assert keys[i][:offset] == keys[i - 1][:offset]
        if value >= 0:
            assert keys[i][offset] == value


@given(st.binary(max_size=6), st.binary(max_size=6), st.binary(max_size=6))
@settings(max_examples=300)
def test_compare_bytes_resume_agrees_with_memcmp(x, y, z):
    base, a, b = sorted([x, y, z])[0], *sorted([y, z])[:2]
    base = min(base, a, b)
    ca = form_byte_code(a, base)
    cb = form_byte_code(b, base)
    stats = ComparisonStats()
    relation, loser_code = compare_bytes_resume(a, ca, b, cb, stats)
    if a < b:
        assert relation == -1
        assert loser_code == form_byte_code(b, a)
    elif b < a:
        assert relation == 1
        assert loser_code == form_byte_code(a, b)
    else:
        assert relation == 0
        assert loser_code == duplicate_byte_code(len(a))


def test_unsorted_byte_strings_detected():
    with pytest.raises(ValueError):
        derive_byte_ovcs([b"b", b"a"])


def test_merge_on_normalized_keys_end_to_end():
    """Byte-keyed merge of pre-existing runs: sort (A,B) data to (B,A)
    entirely over normalized keys."""
    import random

    rng = random.Random(4)
    rows = sorted(
        (rng.randrange(4), rng.choice("abcdef")) for _ in range(200)
    )
    schema = Schema.of("A", "B")
    out_codec = NormalizedKeyCodec(schema, SortSpec.of("B", "A"))
    # Pre-existing runs by distinct A, each sorted on B — hence on the
    # normalized (B, A) key within the run.
    runs: dict[int, list[tuple]] = {}
    for row in rows:
        runs.setdefault(row[0], []).append(row)
    streams = [sorted(v, key=out_codec.encode) for v in runs.values()]
    # Merge byte-wise with codes.
    stats = ComparisonStats()
    heads = [(s, 0) for s in streams]
    out: list[tuple] = []
    import heapq

    heap = [
        (out_codec.encode(s[0]), i, 0) for i, s in enumerate(streams)
    ]
    heapq.heapify(heap)
    while heap:
        _key, i, j = heapq.heappop(heap)
        out.append(streams[i][j])
        if j + 1 < len(streams[i]):
            heapq.heappush(
                heap, (out_codec.encode(streams[i][j + 1]), i, j + 1)
            )
    assert out == sorted(rows, key=lambda r: (r[1], r[0]))
    # And the byte codes of the merged output are internally consistent.
    codes = derive_byte_ovcs([out_codec.encode(r) for r in out], stats)
    assert len(codes) == len(out)
