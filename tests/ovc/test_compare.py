"""Tests for the instrumented comparison routines."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.ovc.codes import DUPLICATE
from repro.ovc.compare import (
    compare_plain,
    compare_resume,
    form_code,
    make_ovc_entry_comparator,
    make_plain_entry_comparator,
)
from repro.ovc.stats import ComparisonStats
from repro.sorting.tournament import Entry, fence

ARITY = 3
keys_st = st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3))


def _code(base, row):
    for i in range(ARITY):
        if base[i] != row[i]:
            return (ARITY - i, row[i])
    return DUPLICATE


def test_compare_plain_counts_each_column():
    stats = ComparisonStats()
    assert compare_plain((1, 1, 1), (1, 1, 2), stats) == -1
    assert stats.column_comparisons == 3
    assert stats.row_comparisons == 1


def test_form_code_is_cfc():
    stats = ComparisonStats()
    rel, code = form_code((1, 2, 9), (1, 2, 3), ARITY, stats)
    assert rel == 1 and code == (1, 9)
    rel, code = form_code((1, 2, 3), (1, 2, 3), ARITY, stats)
    assert rel == 0 and code == DUPLICATE


@given(keys_st, keys_st, keys_st)
def test_compare_resume_agrees_with_tuple_order(base, a, b):
    """For any base <= a, b: the OVC comparison must order a and b like
    plain tuple comparison, and the loser's new code must be its code
    relative to the winner."""
    base, a, b = sorted([base, a, b])[0], *sorted([a, b])[0:2]
    if not (base <= a and base <= b):
        return
    stats = ComparisonStats()
    rel, loser_code = compare_resume(
        a, _code(base, a), b, _code(base, b), ARITY, stats
    )
    if a < b:
        assert rel == -1
        assert loser_code == _code(a, b)
    elif b < a:
        assert rel == 1
        assert loser_code == _code(b, a)
    else:
        assert rel == 0
        assert loser_code == DUPLICATE


@given(keys_st, keys_st, keys_st)
def test_decided_by_codes_means_no_column_comparisons(base, a, b):
    base, a, b = sorted([base, a, b])[0], *sorted([a, b])[0:2]
    if not (base <= a and base <= b):
        return
    ca, cb = _code(base, a), _code(base, b)
    stats = ComparisonStats()
    compare_resume(a, ca, b, cb, ARITY, stats)
    if ca != cb:
        assert stats.column_comparisons == 0
    assert stats.ovc_comparisons == 1


def test_restricted_tie_invokes_callback():
    stats = ComparisonStats()
    called = {}

    def on_tie(x, y, x_wins):
        called["args"] = (x.run, y.run, x_wins)
        return (1, 99)

    compare = make_ovc_entry_comparator(
        ARITY, stats, limit=2, on_restricted_tie=on_tie
    )
    a = Entry((1, 2, 5), (2, 2), (1, 2, 5), 0)
    b = Entry((1, 2, 7), (2, 2), (1, 2, 7), 1)
    assert compare(a, b) is True
    assert called["args"] == (0, 1, True)
    assert b.code == (1, 99)
    # Only the column inside the limit after the offset was compared.
    assert stats.column_comparisons == 0


def test_fences_lose_without_counting():
    stats = ComparisonStats()
    compare = make_ovc_entry_comparator(ARITY, stats)
    real = Entry((1, 1, 1), (3, 1), (1, 1, 1), 0)
    f = fence(1)
    assert compare(real, f) is True
    assert compare(f, real) is False
    assert compare(f, fence(2)) is True  # lower run wins among fences
    assert stats.row_comparisons == 0
    assert stats.column_comparisons == 0


def test_unknown_codes_fall_back_to_cfc():
    stats = ComparisonStats()
    compare = make_ovc_entry_comparator(ARITY, stats)
    a = Entry((1, 1, 1), None, (1, 1, 1), 0)
    b = Entry((1, 1, 2), None, (1, 1, 2), 1)
    assert compare(a, b) is True
    assert b.code == (1, 2)  # formed relative to a
    assert stats.column_comparisons == 3


def test_unknown_code_loser_on_other_side():
    stats = ComparisonStats()
    compare = make_ovc_entry_comparator(ARITY, stats)
    a = Entry((1, 1, 5), None, (1, 1, 5), 0)
    b = Entry((1, 1, 2), None, (1, 1, 2), 1)
    assert compare(a, b) is False
    assert a.code == (1, 5)


def test_plain_comparator_stable_tie():
    stats = ComparisonStats()
    compare = make_plain_entry_comparator(ARITY, stats)
    a = Entry((1, 1, 1), None, (1, 1, 1), 3)
    b = Entry((1, 1, 1), None, (1, 1, 1), 1)
    assert compare(a, b) is False  # lower run index wins ties


def test_plain_comparator_start_skips_prefix():
    stats = ComparisonStats()
    compare = make_plain_entry_comparator(ARITY, stats, start=1)
    a = Entry((9, 1, 1), None, (9, 1, 1), 0)
    b = Entry((0, 1, 2), None, (0, 1, 2), 1)
    assert compare(a, b) is True  # column 0 ignored
    assert stats.column_comparisons == 2
