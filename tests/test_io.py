"""Tests for CSV / JSON-lines table I/O."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.model import Schema, SortSpec, Table
from repro.testing import assert_table_valid

SCHEMA = Schema.of("A", "B", "name")


def test_csv_round_trip(tmp_path):
    rows = [(1, 2.5, "x"), (2, None, "hello, world"), (3, 0.0, "")]
    table = Table(SCHEMA, rows)
    path = tmp_path / "t.csv"
    write_csv(table, path)
    back = read_csv(path)
    assert back.schema == SCHEMA
    # Empty strings round-trip as None under inference.
    assert back.rows == [(1, 2.5, "x"), (2, None, "hello, world"), (3, 0.0, None)]


def test_csv_type_inference_narrowest():
    data = "A,B,C\n1,1.5,x\n2,2,y\n"
    table = read_csv(io.StringIO(data))
    assert table.rows == [(1, 1.5, "x"), (2, 2.0, "y")]


def test_csv_explicit_types():
    data = "A,B\n1,2\n3,4\n"
    table = read_csv(io.StringIO(data), types=[str, int])
    assert table.rows == [("1", 2), ("3", 4)]


def test_csv_sorted_load_derives_codes():
    data = "A,B\n1,1\n1,2\n2,0\n"
    table = read_csv(io.StringIO(data), sort_spec=SortSpec.of("A", "B"))
    assert table.ovcs == [(0, 1), (1, 2), (0, 2)]
    assert_table_valid(table)


def test_csv_unsorted_load_with_spec_rejected():
    data = "A\n2\n1\n"
    with pytest.raises(ValueError):
        read_csv(io.StringIO(data), sort_spec=SortSpec.of("A"))


def test_csv_errors():
    with pytest.raises(ValueError, match="no header"):
        read_csv(io.StringIO(""))
    with pytest.raises(ValueError, match="fields"):
        read_csv(io.StringIO("A,B\n1\n"))
    with pytest.raises(ValueError, match="one type per column"):
        read_csv(io.StringIO("A,B\n1,2\n"), types=[int])


def test_jsonl_round_trip(tmp_path):
    rows = [(1, "x"), (2, None)]
    table = Table(Schema.of("k", "v"), rows)
    path = tmp_path / "t.jsonl"
    write_jsonl(table, path)
    back = read_jsonl(path)
    assert back.schema.columns == ("k", "v")
    assert back.rows == rows


def test_jsonl_missing_keys_become_none():
    data = '{"k": 1, "v": "a"}\n{"k": 2}\n'
    table = read_jsonl(io.StringIO(data))
    assert table.rows == [(1, "a"), (2, None)]


def test_jsonl_unknown_key_rejected():
    data = '{"k": 1}\n{"z": 2}\n'
    with pytest.raises(ValueError, match="unknown columns"):
        read_jsonl(io.StringIO(data))


def test_jsonl_empty_needs_schema():
    with pytest.raises(ValueError, match="explicit schema"):
        read_jsonl(io.StringIO(""))
    table = read_jsonl(io.StringIO(""), schema=Schema.of("x"))
    assert table.rows == []


def test_jsonl_sorted_load_supports_engine(tmp_path):
    data = '{"A": 1, "B": 9}\n{"A": 2, "B": 0}\n'
    table = read_jsonl(io.StringIO(data), sort_spec=SortSpec.of("A"))
    from repro.query import Query

    assert Query(table).order_by("B", "A").rows() == [(2, 0), (1, 9)]


@given(
    st.lists(
        st.tuples(st.integers(-5, 5), st.text(max_size=5).filter(lambda s: "\n" not in s and "\r" not in s)),
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_jsonl_property_round_trip(rows):
    table = Table(Schema.of("n", "s"), rows)
    buf = io.StringIO()
    write_jsonl(table, buf)
    buf.seek(0)
    back = read_jsonl(buf, schema=Schema.of("n", "s"))
    assert back.rows == rows
