"""Content fingerprints: order-insensitive identity, order-sensitive sequence."""

from __future__ import annotations

import random

from repro.cache import fingerprint_rows, fingerprint_table
from repro.model import Schema, Table


SCHEMA = ("A", "B")


def test_same_multiset_same_source_key_any_arrangement():
    rows = [(1, 2), (3, 4), (1, 2), (5, 6)]
    shuffled = list(rows)
    random.Random(0).shuffle(shuffled)
    a = fingerprint_rows(rows, SCHEMA)
    b = fingerprint_rows(shuffled, SCHEMA)
    assert a.source_key == b.source_key


def test_sequence_distinguishes_arrangements():
    rows = [(1, 2), (3, 4), (5, 6)]
    a = fingerprint_rows(rows, SCHEMA)
    b = fingerprint_rows(list(reversed(rows)), SCHEMA)
    assert a.source_key == b.source_key
    assert a.sequence != b.sequence


def test_different_content_different_key():
    base = fingerprint_rows([(1, 2), (3, 4)], SCHEMA)
    assert fingerprint_rows([(1, 2), (3, 5)], SCHEMA).source_key \
        != base.source_key
    # A duplicate added changes the count even if sum/xor could collide.
    assert fingerprint_rows([(1, 2), (3, 4), (3, 4)], SCHEMA).source_key \
        != base.source_key
    # Same rows under a different schema are a different source.
    assert fingerprint_rows([(1, 2), (3, 4)], ("X", "Y")).source_key \
        != base.source_key


def test_fingerprint_table_matches_rows():
    schema = Schema.of(*SCHEMA)
    rows = [(i % 7, i % 3) for i in range(50)]
    assert fingerprint_table(Table(schema, rows)) == \
        fingerprint_rows(rows, schema.columns)


def test_empty_and_singleton():
    empty = fingerprint_rows([], SCHEMA)
    assert empty.n_rows == 0
    one = fingerprint_rows([(1, 1)], SCHEMA)
    assert one.n_rows == 1
    assert empty.source_key != one.source_key
