"""Dispatcher correctness: every served result is bit-identical to a
cold execution — rows, codes, and (for replayable hits) counters."""

from __future__ import annotations

import random

from repro.cache import fingerprint_table, install_result, serve
from repro.cache.store import OrderCache
from repro.cache.dispatch import _retiebreak
from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs
from repro.ovc.stats import ComparisonStats
from repro.sorting.internal import tournament_sort


SCHEMA = Schema.of("A", "B", "C")
CFG = ExecutionConfig()


def _source(n=300, domains=(5, 4, 3), seed=0) -> Table:
    rng = random.Random(seed)
    rows = [tuple(rng.randrange(d) for d in domains) for _ in range(n)]
    return Table(SCHEMA, rows)


def _cold_sort(source: Table, spec: SortSpec):
    """What an uncached Sort would produce for an unordered child."""
    stats = ComparisonStats()
    rows, ovcs = tournament_sort(
        list(source.rows), spec.positions(source.schema), stats,
        spec.directions, True,
    )
    return rows, ovcs, stats


def test_exact_hit_replays_counters_bit_identically():
    cache = OrderCache()
    source = _source()
    spec = SortSpec.of("A", "B", "C")
    rows, ovcs, stats = _cold_sort(source, spec)
    fp = fingerprint_table(source)
    assert install_result(
        cache, fp, spec, Table(SCHEMA, rows, spec, ovcs), stats
    )

    hit_stats = ComparisonStats()
    outcome = serve(cache, source, spec, stats=hit_stats, config=CFG)
    assert outcome.table is not None
    assert outcome.label == "cache-hit(A,B,C)"
    assert outcome.table.rows == rows
    assert outcome.table.ovcs == ovcs
    assert hit_stats == stats  # full counter replay, not just one field
    cache.close()


def test_miss_without_candidates():
    cache = OrderCache()
    source = _source()
    outcome = serve(
        cache, source, SortSpec.of("A"), stats=ComparisonStats(), config=CFG
    )
    assert outcome.table is None and outcome.label is None
    assert outcome.fingerprint == fingerprint_table(source)
    assert cache.counters()["misses"] == 1
    cache.close()


def test_modify_from_cached_sibling_bit_identical():
    cache = OrderCache()
    source = _source()
    cached_spec = SortSpec.of("A", "B", "C")
    rows, ovcs, stats = _cold_sort(source, cached_spec)
    fp = fingerprint_table(source)
    install_result(cache, fp, cached_spec, Table(SCHEMA, rows, cached_spec, ovcs), stats)

    want = SortSpec.of("A", "C", "B")
    cold_rows, cold_ovcs, _ = _cold_sort(source, want)
    outcome = serve(
        cache, source, want, stats=ComparisonStats(), config=CFG
    )
    assert outcome.table is not None
    assert outcome.label == "modify-from-cache(A,B,C)"
    assert outcome.table.rows == cold_rows
    assert outcome.table.ovcs == cold_ovcs
    # The produced order was installed for future exact hits,
    # marked non-replayable (its counters are the modify path's).
    entry = cache.lookup(fp, want)
    assert entry is not None and not entry.replayable
    cache.close()


def test_modify_reties_against_live_sequence():
    # Heavy full-key duplication: domain product (12) << rows (240).
    # The cached sibling was built from a *different* arrangement, so a
    # blind modify would leak that arrangement's tie order.
    source = _source(n=240, domains=(2, 3, 2), seed=1)
    shuffled = list(source.rows)
    random.Random(99).shuffle(shuffled)
    other = Table(SCHEMA, shuffled)

    cache = OrderCache()
    cached_spec = SortSpec.of("A", "B", "C")
    rows, ovcs, stats = _cold_sort(other, cached_spec)
    install_result(
        cache, fingerprint_table(other), cached_spec,
        Table(SCHEMA, rows, cached_spec, ovcs), stats,
    )

    want = SortSpec.of("A", "C", "B")
    cold_rows, cold_ovcs, _ = _cold_sort(source, want)
    outcome = serve(
        cache, source, want, stats=ComparisonStats(), config=CFG
    )
    assert outcome.table is not None
    assert outcome.label == "modify-from-cache(A,B,C)"
    assert outcome.table.rows == cold_rows  # live arrival order in ties
    assert outcome.table.ovcs == cold_ovcs
    cache.close()


def test_unrelated_candidate_is_not_used():
    # C -> A shares no prefix and no merge structure: the estimate is a
    # full sort, which cannot clear the win margin over the baseline.
    cache = OrderCache()
    source = _source()
    cached_spec = SortSpec.of("C")
    rows, ovcs, stats = _cold_sort(source, cached_spec)
    fp = fingerprint_table(source)
    install_result(
        cache, fp, cached_spec, Table(SCHEMA, rows, cached_spec, ovcs), stats
    )
    outcome = serve(
        cache, source, SortSpec.of("A"), stats=ComparisonStats(), config=CFG
    )
    assert outcome.table is None
    cache.close()


def test_ordered_source_baseline_prefers_own_order():
    # The live input already carries a related order at least as good
    # as any cached sibling: serve must miss so the caller's own
    # (replayable) modify path runs.
    source = _source()
    spec_abc = SortSpec.of("A", "B", "C")
    rows, ovcs, stats = _cold_sort(source, spec_abc)
    ordered = Table(SCHEMA, rows, spec_abc, ovcs)

    cache = OrderCache()
    install_result(
        cache, fingerprint_table(ordered), spec_abc,
        Table(SCHEMA, rows, spec_abc, ovcs), stats,
    )
    outcome = serve(
        cache, ordered, SortSpec.of("A", "C", "B"),
        stats=ComparisonStats(), config=CFG,
    )
    # The only candidate is the source's own order: no win possible.
    assert outcome.table is None
    cache.close()


def test_modify_result_matches_modify_sort_order_directly():
    # The dispatcher must not change what the paper's machinery
    # produces when the cached entry *is* the live table.
    source = _source(seed=3)
    spec_abc = SortSpec.of("A", "B", "C")
    rows, ovcs, _ = _cold_sort(source, spec_abc)
    ordered = Table(SCHEMA, rows, spec_abc, ovcs)
    want = SortSpec.of("B", "A", "C")

    expected = modify_sort_order(ordered, want, method="auto", use_ovc=True)

    cache = OrderCache()
    install_result(
        cache, fingerprint_table(source), spec_abc, ordered,
        ComparisonStats(),
    )
    outcome = serve(
        cache, source, want, stats=ComparisonStats(), config=CFG
    )
    if outcome.table is not None:  # served: must equal the direct path
        assert outcome.table.rows == expected.rows
        assert outcome.table.ovcs == expected.ovcs
    cache.close()


def test_retiebreak_reorders_ties_only():
    # rows sorted on A only; B,C vary freely inside tie groups.
    arity = 1
    live = [(0, "x", 1), (1, "q", 2), (0, "y", 3), (1, "p", 4)]
    cached_order = [(0, "y", 3), (0, "x", 1), (1, "p", 4), (1, "q", 2)]
    rows = sorted(cached_order, key=lambda r: r[0])
    ovcs = derive_ovcs([ (r[0],) for r in rows ], (0,))
    fixed_rows, fixed_ovcs = _retiebreak(
        [r for r in rows], ovcs, arity,
        [ r for r in live ],
    )
    # Inside each A-group the live arrival order wins.
    assert [r[0] for r in fixed_rows] == [0, 0, 1, 1]
    assert fixed_rows[:2] == [(0, "x", 1), (0, "y", 3)]
    assert fixed_rows[2:] == [(1, "q", 2), (1, "p", 4)]
    assert fixed_ovcs == ovcs  # codes untouched
