"""Shared fixtures for the order-cache suite."""

from __future__ import annotations

import pytest

from repro.cache import reset_cache


@pytest.fixture(autouse=True)
def _fresh_process_cache():
    """Isolate every test from the process-wide cache singleton."""
    reset_cache()
    yield
    reset_cache()
