"""End-to-end acceptance through Query.order_by: repeat order traffic is
served from the cache, bit-identical to uncached execution."""

from __future__ import annotations

import os
import random

from repro.cache import configure_cache, get_cache, reset_cache
from repro.exec import ExecutionConfig
from repro.model import Schema, Table
from repro.query import Query


SCHEMA = Schema.of("A", "B", "C", "D")
ORDERS = [("A", "B", "C"), ("A", "C", "B"), ("B", "A", "C")]

OFF = ExecutionConfig(cache="off")
ON = ExecutionConfig(cache="on")


def _table(n=400, seed=7) -> Table:
    rng = random.Random(seed)
    rows = [
        (rng.randrange(6), rng.randrange(6), rng.randrange(4),
         rng.randrange(100))
        for _ in range(n)
    ]
    return Table(SCHEMA, rows)


def _run(table: Table, order: tuple, config: ExecutionConfig):
    q = Query(table).order_by(*order, config=config)
    out = q.to_table()
    return out, q.op


def test_acceptance_three_orders_twice():
    """The issue's acceptance scenario: three sort orders issued twice;
    with cache=on every second-round order is served from the cache,
    bit-identical to cache=off."""
    table = _table()
    cold = {o: _run(table, o, OFF)[0] for o in ORDERS}

    round1 = {}
    for o in ORDERS:
        out, op = _run(table, o, ON)
        round1[o] = (out, op.order_strategy, op.stats.snapshot())
        assert out.rows == cold[o].rows
        assert out.ovcs == cold[o].ovcs

    for o in ORDERS:
        out, op = _run(table, o, ON)
        assert op.executed == "cache"
        assert op.order_strategy.startswith("cache-hit(")
        assert out.rows == cold[o].rows
        assert out.ovcs == cold[o].ovcs
        # Counter replay: identical to what round one spent on this
        # order, and — for orders whose entry came from the uncached
        # execution path — identical to cache=off.
        assert op.stats.snapshot() == round1[o][2]

    # The first-seen order ran cold (installing); siblings were served
    # by modifying it.
    strategies = [round1[o][1] for o in ORDERS]
    assert strategies[0] == "full-sort"
    assert strategies[1] == "modify-from-cache(A,B,C)"
    assert strategies[2] == "modify-from-cache(A,B,C)"


def test_first_order_counters_match_uncached_exactly():
    table = _table(seed=11)
    order = ORDERS[0]
    _cold_out, cold_op = _run(table, order, OFF)
    _warm_out, warm_op = _run(table, order, ON)  # cold install
    hit_out, hit_op = _run(table, order, ON)  # exact hit
    assert hit_op.executed == "cache"
    assert hit_op.stats.snapshot() == cold_op.stats.snapshot()
    assert hit_out.rows == _cold_out.rows
    assert hit_out.ovcs == _cold_out.ovcs


def test_explain_shows_order_strategy():
    table = _table()
    q1 = Query(table).order_by(*ORDERS[0], config=ON)
    q1.to_table()
    assert "[strategy: full-sort]" in q1.explain()

    q2 = Query(table).order_by(*ORDERS[1], config=ON)
    q2.to_table()
    assert "[strategy: modify-from-cache(A,B,C)]" in q2.explain()

    q3 = Query(table).order_by(*ORDERS[1], config=ON)
    q3.to_table()
    assert "[strategy: cache-hit(A,C,B)]" in q3.explain()

    # Before execution there is nothing to report.
    assert "strategy" not in Query(table).order_by("A").explain()


def test_explain_analyze_shows_order_strategy():
    from repro.trace import explain_analyze

    table = _table()
    _run(table, ORDERS[0], ON)  # warm the cache
    q = Query(table).order_by(*ORDERS[0], config=ON)
    rows, report = explain_analyze(q.op)
    assert "[strategy: cache-hit(A,B,C)]" in report
    assert len(rows) == len(table.rows)


def test_eviction_and_spill_under_1mib_budget(tmp_path):
    """Satellite: a 1 MiB budget over several multi-hundred-KiB orders
    forces spill and rehydration; every re-request stays bit-identical
    (rows, codes, counters) and no spill files leak."""
    configure_cache(budget=1 << 20, spill_dir=str(tmp_path))
    auto = ExecutionConfig(cache="auto")
    # ~3 sources x 3 orders of 3000 rows: far beyond 1 MiB resident.
    tables = [_table(n=3000, seed=s) for s in (1, 2, 3)]
    cold = {
        (i, o): _run(t, o, OFF)[0]
        for i, t in enumerate(tables)
        for o in ORDERS
    }

    first = {}
    for i, t in enumerate(tables):
        for o in ORDERS:
            _out, op = _run(t, o, auto)
            first[(i, o)] = op.stats.snapshot()

    cache = get_cache()
    counters = cache.counters()
    assert counters["spills"] > 0
    assert cache.bytes_resident <= 1 << 20

    # Everything cached (resident or spilled) serves bit-identically.
    rehydrates_before = counters["rehydrates"]
    for i, t in enumerate(tables):
        for o in ORDERS:
            out, op = _run(t, o, auto)
            assert op.executed == "cache"
            assert out.rows == cold[(i, o)].rows
            assert out.ovcs == cold[(i, o)].ovcs
            assert op.stats.snapshot() == first[(i, o)]
    assert cache.counters()["rehydrates"] > rehydrates_before

    reset_cache()
    leaked = [
        os.path.join(root, f)
        for root, _dirs, files in os.walk(tmp_path)
        for f in files
    ]
    assert leaked == []


def test_cache_off_and_auto_without_cache_stay_cold():
    table = _table()
    _out, op = _run(table, ORDERS[0], OFF)
    assert op.executed == "internal_sort"
    assert get_cache() is None
    # auto without a configured cache: stays cold, creates nothing.
    _out, op = _run(table, ORDERS[0], ExecutionConfig(cache="auto"))
    assert op.executed == "internal_sort"
    assert get_cache() is None


def test_forced_method_and_no_ovc_bypass_cache():
    table = _table()
    _run(table, ORDERS[0], ON)  # warm
    _out, op = _run(table, ORDERS[0], ON)
    assert op.executed == "cache"
    # A forced method must not consult the cache.
    q = Query(table).order_by(*ORDERS[0], method="full_sort", config=ON)
    q.to_table()
    assert q.op.executed != "cache"
