"""Thread-safety: concurrent hits, misses, installs, and invalidations
never tear an entry, and the hit/miss counters stay consistent."""

from __future__ import annotations

import random
import threading

from repro.cache import fingerprint_rows
from repro.cache.store import OrderCache
from repro.model import SortSpec
from repro.ovc.derive import derive_ovcs
from repro.ovc.stats import ComparisonStats


SCHEMA = ("A", "B")
N_THREADS = 8
OPS_PER_THREAD = 120


def _dataset(salt: int):
    """One source multiset with its sorted orders and fingerprints."""
    rows = [((i * 7 + salt) % 13, (i * 3) % 11) for i in range(80)]
    out = {}
    for cols in (("A", "B"), ("B", "A")):
        spec = SortSpec(cols)
        positions = tuple({"A": 0, "B": 1}[c] for c in cols)
        ordered = sorted(rows, key=lambda r: tuple(r[p] for p in positions))
        out[spec] = (ordered, derive_ovcs(ordered, positions))
    return fingerprint_rows(rows, SCHEMA), out


def test_concurrent_mixed_traffic_consistent():
    datasets = [_dataset(salt) for salt in range(4)]
    # Tight budget so spill/rehydrate churn runs concurrently too.
    sample_rows, sample_ovcs = datasets[0][1][SortSpec.of("A", "B")]
    from repro.exec.memory import rows_nbytes

    cache = OrderCache(budget=2 * rows_nbytes(sample_rows, sample_ovcs))
    errors: list[str] = []
    lookups = [0] * N_THREADS
    barrier = threading.Barrier(N_THREADS)

    def worker(tid: int) -> None:
        rng = random.Random(tid)
        barrier.wait()
        for _ in range(OPS_PER_THREAD):
            fp, orders = datasets[rng.randrange(len(datasets))]
            spec = rng.choice(list(orders))
            rows, ovcs = orders[spec]
            op = rng.random()
            if op < 0.25:
                cache.install(
                    fp, spec, rows, ovcs,
                    ComparisonStats(column_comparisons=tid),
                )
            elif op < 0.90:
                lookups[tid] += 1
                hit = cache.lookup(fp, spec)
                if hit is not None:
                    # A torn entry would show up as foreign rows/codes.
                    if hit.rows != rows or hit.ovcs != ovcs:
                        errors.append(f"thread {tid}: torn entry for {spec}")
            elif op < 0.97:
                cache.candidates(fp)
            else:
                cache.invalidate(fp.source_key)

    threads = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors, errors[:5]
    counters = cache.counters()
    # Monotonic consistency: every exact lookup is exactly one hit or
    # one miss, never both, never neither.
    assert counters["hits"] + counters["misses"] == sum(lookups)
    assert counters["hits"] > 0 and counters["misses"] > 0
    # Whatever survived is intact.
    for fp, orders in datasets:
        for spec, (rows, ovcs) in orders.items():
            hit = cache.lookup(fp, spec)
            if hit is not None:
                assert hit.rows == rows and hit.ovcs == ovcs
    cache.close()
    assert len(cache) == 0
