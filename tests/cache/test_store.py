"""OrderCache store mechanics: LRU, TTL, budget, spill/rehydrate."""

from __future__ import annotations

import os

import pytest

from repro.cache import fingerprint_rows
from repro.cache.store import OrderCache, _offset_counts
from repro.model import SortSpec
from repro.ovc.derive import derive_ovcs
from repro.ovc.stats import ComparisonStats


SCHEMA = ("A", "B")
SPEC_AB = SortSpec.of("A", "B")
SPEC_BA = SortSpec.of("B", "A")


def _entry(n=64, salt=0):
    """An (fp, rows, ovcs) triple: rows sorted on A,B with real codes."""
    rows = sorted((i % 5 + salt, i % 11) for i in range(n))
    ovcs = derive_ovcs(rows, (0, 1))
    fp = fingerprint_rows(rows, SCHEMA)
    return fp, rows, ovcs


def _spill_files(tmp_path):
    return [
        os.path.join(root, f)
        for root, _dirs, files in os.walk(tmp_path)
        for f in files
    ]


def test_install_lookup_roundtrip_identity():
    cache = OrderCache()
    fp, rows, ovcs = _entry()
    delta = ComparisonStats(column_comparisons=123)
    assert cache.install(fp, SPEC_AB, rows, ovcs, delta)
    hit = cache.lookup(fp, SPEC_AB)
    assert hit is not None
    assert hit.rows == rows and hit.ovcs == ovcs
    assert hit.stats_delta.column_comparisons == 123
    assert hit.replayable
    # Wrong order, wrong data: misses.
    assert cache.lookup(fp, SPEC_BA) is None
    other_fp, _, _ = _entry(salt=100)
    assert cache.lookup(other_fp, SPEC_AB) is None
    c = cache.counters()
    assert c["hits"] == 1 and c["misses"] == 2 and c["installs"] == 1
    assert c["hits"] + c["misses"] == 3  # every lookup accounted
    cache.close()


def test_install_rejects_missing_codes():
    cache = OrderCache()
    fp, rows, _ = _entry()
    assert not cache.install(fp, SPEC_AB, rows, None, ComparisonStats())
    assert len(cache) == 0
    cache.close()


def test_ttl_expiry_with_injected_clock():
    now = [0.0]
    cache = OrderCache(ttl=10.0, clock=lambda: now[0])
    fp, rows, ovcs = _entry()
    cache.install(fp, SPEC_AB, rows, ovcs, ComparisonStats())
    now[0] = 5.0
    assert cache.lookup(fp, SPEC_AB) is not None
    now[0] = 10.5
    assert cache.lookup(fp, SPEC_AB) is None
    assert cache.counters()["expirations"] == 1
    assert len(cache) == 0
    cache.close()


def test_max_entries_evicts_lru():
    cache = OrderCache(max_entries=2)
    entries = [_entry(salt=s) for s in range(3)]
    for fp, rows, ovcs in entries[:2]:
        cache.install(fp, SPEC_AB, rows, ovcs, ComparisonStats())
    # Touch the first so the second becomes LRU.
    assert cache.lookup(entries[0][0], SPEC_AB) is not None
    fp, rows, ovcs = entries[2]
    cache.install(fp, SPEC_AB, rows, ovcs, ComparisonStats())
    assert len(cache) == 2
    assert cache.lookup(entries[0][0], SPEC_AB) is not None
    assert cache.lookup(entries[1][0], SPEC_AB) is None  # evicted
    assert cache.counters()["evictions"] == 1
    cache.close()


def test_budget_spills_and_rehydrates_bit_identical(tmp_path):
    fp1, rows1, ovcs1 = _entry(n=256, salt=0)
    fp2, rows2, ovcs2 = _entry(n=256, salt=50)
    cache = OrderCache(budget=1, spill_dir=str(tmp_path))
    cache.install(fp1, SPEC_AB, rows1, ovcs1,
                  ComparisonStats(column_comparisons=7))
    cache.install(fp2, SPEC_AB, rows2, ovcs2, ComparisonStats())
    # Budget of one byte: everything must have been pushed to disk.
    c = cache.counters()
    assert c["spills"] >= 1
    assert _spill_files(tmp_path)
    hit = cache.lookup(fp1, SPEC_AB)
    assert hit is not None
    assert hit.rows == rows1 and hit.ovcs == ovcs1
    assert hit.stats_delta.column_comparisons == 7
    assert cache.counters()["rehydrates"] >= 1
    assert len(cache) == 2  # spilled entries still count
    cache.close()
    assert not _spill_files(tmp_path)  # no leaked spill files


def test_budget_without_spill_evicts():
    from repro.exec.memory import rows_nbytes

    fp1, rows1, ovcs1 = _entry(n=256)
    fp2, rows2, ovcs2 = _entry(n=256, salt=50)
    nbytes = rows_nbytes(rows1, ovcs1)
    cache = OrderCache(budget=1, spill=False)
    cache.install(fp1, SPEC_AB, rows1, ovcs1, ComparisonStats())
    assert len(cache) == 0  # rejected: alone over the whole budget
    assert cache.counters()["rejected"] == 1
    # Room for one entry but not two: the LRU one is evicted outright.
    big = OrderCache(budget=int(1.5 * nbytes), spill=False)
    big.install(fp1, SPEC_AB, rows1, ovcs1, ComparisonStats())
    big.install(fp2, SPEC_AB, rows2, ovcs2, ComparisonStats())
    assert big.counters()["evictions"] >= 1
    assert big.bytes_resident <= int(1.5 * nbytes)
    assert big.lookup(fp1, SPEC_AB) is None
    assert big.lookup(fp2, SPEC_AB) is not None
    big.close()
    cache.close()


def test_candidates_and_fetch(tmp_path):
    cache = OrderCache(budget=1, spill_dir=str(tmp_path))
    fp, rows, ovcs = _entry(n=128)
    fp2, rows2, ovcs2 = _entry(n=128, salt=50)
    cache.install(fp, SPEC_AB, rows, ovcs, ComparisonStats())
    # Installing a second source pushes the first out to disk (the
    # entry being installed is protected from its own pressure pass).
    cache.install(fp2, SPEC_AB, rows2, ovcs2, ComparisonStats())
    cands = cache.candidates(fp)
    assert [c.spec for c in cands] == [SPEC_AB]
    assert cands[0].rows is None  # spilled: metadata only, no rehydrate
    assert cands[0].offset_counts == tuple(_offset_counts(ovcs, 2))
    before = cache.counters()
    chosen = cache.fetch(fp, SPEC_AB)
    assert chosen.rows == rows and chosen.ovcs == ovcs
    after = cache.counters()
    # fetch is not a hit/miss event.
    assert (after["hits"], after["misses"]) == \
        (before["hits"], before["misses"])
    assert cache.fetch(fp, SPEC_BA) is None
    cache.close()


def test_sequence_gating_for_tied_entries():
    # Full-key duplicates under the sort spec: output depends on the
    # arrival order, so a different arrangement must not reuse it.
    rows = sorted((i % 3, 0) for i in range(12))
    ovcs = derive_ovcs(rows, (0, 1))
    fp = fingerprint_rows(rows, SCHEMA)
    cache = OrderCache()
    cache.install(fp, SPEC_AB, rows, ovcs, ComparisonStats())
    assert cache.lookup(fp, SPEC_AB) is not None
    other = fingerprint_rows(list(reversed(rows)), SCHEMA)
    assert other.source_key == fp.source_key
    assert cache.lookup(other, SPEC_AB) is None  # sequence mismatch
    # But it still shows up as a modify candidate.
    assert len(cache.candidates(other)) == 1
    cache.close()


def test_tie_free_entries_served_from_any_arrangement():
    rows = sorted((i, i % 4) for i in range(12))  # unique full keys
    ovcs = derive_ovcs(rows, (0, 1))
    fp = fingerprint_rows(rows, SCHEMA)
    cache = OrderCache()
    cache.install(fp, SPEC_AB, rows, ovcs, ComparisonStats())
    other = fingerprint_rows(list(reversed(rows)), SCHEMA)
    hit = cache.lookup(other, SPEC_AB)
    assert hit is not None and hit.rows == rows
    cache.close()


def test_invalidate_by_source_and_wholesale():
    cache = OrderCache()
    fp1, rows1, ovcs1 = _entry(salt=0)
    fp2, rows2, ovcs2 = _entry(salt=9)
    cache.install(fp1, SPEC_AB, rows1, ovcs1, ComparisonStats())
    cache.install(fp1, SPEC_BA, list(rows1), list(ovcs1), ComparisonStats())
    cache.install(fp2, SPEC_AB, rows2, ovcs2, ComparisonStats())
    assert cache.invalidate(fp1.source_key) == 2
    assert len(cache) == 1
    assert cache.invalidate() == 1
    assert len(cache) == 0
    assert cache.bytes_resident == 0
    cache.close()


def test_reinstall_replaces_and_accounts_once():
    cache = OrderCache()
    fp, rows, ovcs = _entry()
    cache.install(fp, SPEC_AB, rows, ovcs, ComparisonStats())
    used = cache.bytes_resident
    cache.install(fp, SPEC_AB, list(rows), list(ovcs), ComparisonStats())
    assert cache.bytes_resident == used
    assert len(cache) == 1
    cache.close()


def test_validation():
    with pytest.raises(ValueError):
        OrderCache(ttl=0)
    with pytest.raises(ValueError):
        OrderCache(max_entries=0)
