"""Cross-subsystem integration tests: storage -> engine -> core paths
that a downstream user would actually wire together."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modify import modify_sort_order
from repro.engine import (
    Distinct,
    Filter,
    GroupBy,
    MergeJoin,
    Project,
    Sort,
    TableScan,
)
from repro.engine.scans import BTreeScan, ColumnStoreScan
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import verify_ovcs
from repro.ovc.stats import ComparisonStats
from repro.storage.btree import BTree
from repro.storage.colstore import ColumnStore
from repro.storage.lsm import LsmForest
from repro.storage.rowstore import PrefixTruncatedStore
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")


def _table(n=400, seed=0) -> Table:
    return random_sorted_table(SCHEMA, SPEC, n, domains=[6, 8, 12], seed=seed)


def test_btree_to_modified_order_to_colstore():
    """Index scan -> order modification -> columnar compression: the
    codes flow end to end without ever being re-derived."""
    table = _table()
    tree = BTree.bulk_load(table, order=16)
    scanned = BTreeScan(tree).to_table()
    assert scanned.ovcs == table.ovcs

    stats = ComparisonStats()
    modified = modify_sort_order(scanned, SortSpec.of("A", "C", "B"), stats=stats)
    assert modified.is_sorted()

    store = ColumnStore.from_table(modified)
    back = store.to_table()
    assert back.rows == modified.rows
    assert back.ovcs == modified.ovcs


def test_colstore_to_rowstore_round_trip_through_modification():
    table = _table(seed=1)
    col = ColumnStore.from_table(table)
    scanned = ColumnStoreScan(col).to_table()
    modified = modify_sort_order(scanned, SortSpec.of("A", "C", "B"))
    trunc = PrefixTruncatedStore.from_table(modified)
    back = trunc.to_table()
    assert back.rows == modified.rows
    assert back.ovcs == modified.ovcs


def test_lsm_to_engine_pipeline():
    """Forest -> merged scan -> filter -> group-by, codes intact."""
    rng = random.Random(3)
    forest = LsmForest(SCHEMA, SPEC)
    for _ in range(3):
        forest.ingest(
            [(rng.randrange(5), rng.randrange(5), rng.randrange(9)) for _ in range(100)]
        )
    merged = forest.scan_merged()
    kept = Filter(TableScan(merged), lambda r: r[2] != 0)
    grouped = GroupBy(kept, ["A", "B"], [("count", None), ("sum", "C")])
    rows = grouped.rows()
    # Reference computation.
    from collections import Counter, defaultdict

    counts: Counter = Counter()
    sums: dict = defaultdict(int)
    for part in forest.partitions:
        for a, b, c in part.rows:
            if c != 0:
                counts[(a, b)] += 1
                sums[(a, b)] += c
    expected = sorted((a, b, counts[(a, b)], sums[(a, b)]) for a, b in counts)
    assert rows == expected


def test_sort_operator_chain_with_join():
    """Two differently-ordered views of one dataset, joined after an
    order modification on one side."""
    left = _table(seed=4)  # sorted A,B,C
    right_rows = sorted(left.rows, key=lambda r: (r[1], r[0], r[2]))
    right = Table(SCHEMA, right_rows, SortSpec.of("B", "A", "C")).with_ovcs()

    left_sorted = Sort(TableScan(left), SortSpec.of("B", "A"))
    join = MergeJoin(
        left_sorted,
        TableScan(right),
        ["B", "A"],
        ["B", "A"],
    )
    rows = join.rows()
    # Every row matches at least itself.
    assert len(rows) >= len(left)
    assert left_sorted.executed == "modify_sort_order"


def test_distinct_projection_of_modified_order():
    table = _table(seed=5)
    modified = modify_sort_order(table, SortSpec.of("A", "C", "B"))
    distinct_ac = Distinct(
        Project(TableScan(modified), ["A", "C"]), ["A", "C"]
    )
    out = list(distinct_ac)
    rows = [r for r, _o in out]
    assert rows == sorted({(r[0], r[2]) for r in table.rows})
    assert verify_ovcs(rows, [o for _r, o in out], (0, 1))
    # All duplicate elimination came from codes.
    assert distinct_ac.stats.column_comparisons == 0


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_fuzz_full_stack(seed):
    """Randomized end-to-end: random sorted data through b-tree,
    modification, and verification."""
    rng = random.Random(seed)
    table = _table(n=rng.randrange(0, 200), seed=seed)
    order = rng.choice(
        [("A", "C", "B"), ("B", "A", "C"), ("C", "B", "A"), ("A", "B"), ("B",)]
    )
    spec = SortSpec(order)
    result = modify_sort_order(table, spec)
    assert result.rows == sorted(table.rows, key=spec.key_for(SCHEMA))
    assert verify_ovcs(result.rows, result.ovcs, spec.positions(SCHEMA))
