"""Metrics registry: instruments, snapshots, cross-process merging."""

from __future__ import annotations

from repro.obs import METRICS, MetricsRegistry
from repro.exec import ExecutionConfig
from repro.ovc.stats import ComparisonStats


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2.5)
    assert reg.counter("c").value == 3.5

    g = reg.gauge("depth")
    g.set(4)
    g.set(2)
    g.add(1)
    assert g.value == 3 and g.max == 4

    h = reg.histogram("sizes")
    for v in (1, 2, 3, 1024):
        h.observe(v)
    assert h.count == 4 and h.total == 1030
    assert h.min == 1 and h.max == 1024
    assert h.mean == 1030 / 4
    # power-of-two buckets: 1 -> 0, 2 -> 1, 3 -> 2, 1024 -> 10
    assert h.buckets == {0: 1, 1: 1, 2: 1, 10: 1}


def test_as_dict_round_trips_through_merge():
    a = MetricsRegistry()
    a.counter("n").inc(3)
    a.gauge("depth").set(5)
    a.histogram("rows").observe(10)

    b = MetricsRegistry()
    b.counter("n").inc(4)
    b.gauge("depth").set(2)
    b.histogram("rows").observe(100)
    b.histogram("rows").observe(1)

    merged = MetricsRegistry()
    merged.merge(a.as_dict())
    merged.merge(b.as_dict())
    assert merged.counter("n").value == 7
    assert merged.gauge("depth").max == 5  # gauges keep the high-water
    h = merged.histogram("rows")
    assert h.count == 3 and h.total == 111
    assert h.min == 1 and h.max == 100
    assert merged.histogram("rows").buckets == {0: 1, 4: 1, 7: 1}
    merged.merge(None)  # tolerated: workers without metrics ship None
    assert merged.counter("n").value == 7


def test_absorb_stats_publishes_comparison_counters():
    reg = MetricsRegistry()
    stats = ComparisonStats()
    stats.column_comparisons = 11
    stats.ovc_comparisons = 7
    reg.absorb_stats(stats)
    snap = reg.as_dict()
    assert snap["counters"]["comparisons.column_comparisons"] == 11
    assert snap["counters"]["comparisons.ovc_comparisons"] == 7


def test_pipeline_records_segment_and_merge_metrics():
    from repro.core.modify import modify_sort_order
    from repro.model import Schema, SortSpec
    from repro.workloads.generators import random_sorted_table

    schema = Schema.of("A", "B", "C")
    table = random_sorted_table(
        schema, SortSpec.of("A", "B", "C"), 512, domains=[8, 4, 4], seed=1
    )
    METRICS.enable(clear=True)
    modify_sort_order(
        table, SortSpec.of("A", "C", "B"),
        config=ExecutionConfig(engine="reference"),
    )
    snap = METRICS.as_dict()
    seg = snap["histograms"]["modify.segment_rows"]
    assert seg["count"] >= 1
    assert seg["sum"] == 512  # every row is in exactly one segment


def test_disabled_registry_still_hands_out_instruments():
    reg = MetricsRegistry()
    assert not reg.enabled
    reg.counter("x").inc()  # call sites gate on .enabled themselves
    assert reg.counter("x").value == 1
