"""Sampling profiler: collapsed stacks, modes, lifecycle."""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.obs import METRICS
from repro.obs.profile import SamplingProfiler, read_collapsed


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(200))


def test_thread_mode_collects_samples():
    with SamplingProfiler(interval_s=0.001) as prof:
        _busy(0.15)
    assert prof.n_samples > 0
    collapsed = prof.collapsed()
    assert collapsed
    line = collapsed.splitlines()[0]
    stack, count = line.rsplit(" ", 1)
    assert int(count) >= 1
    assert ";" in stack or ":" in stack


def test_samples_reach_the_busy_function():
    with SamplingProfiler(interval_s=0.001) as prof:
        _busy(0.2)
    assert "_busy" in prof.collapsed()


def test_write_and_read_collapsed_round_trip(tmp_path):
    path = str(tmp_path / "profile.folded")
    with SamplingProfiler(interval_s=0.001) as prof:
        _busy(0.1)
    n = prof.write_collapsed(path)
    assert n == prof.n_samples
    stacks = read_collapsed(path)
    assert sum(stacks.values()) == n
    assert all(isinstance(k, tuple) for k in stacks)


def test_top_reports_leaf_counts():
    with SamplingProfiler(interval_s=0.001) as prof:
        _busy(0.15)
    top = prof.top(3)
    assert top
    assert top == sorted(top, key=lambda kv: -kv[1])


def test_start_stop_idempotent():
    prof = SamplingProfiler(interval_s=0.001)
    prof.start()
    prof.start()
    _busy(0.05)
    prof.stop()
    prof.stop()
    assert prof.n_samples >= 0


def test_profile_samples_counter_bumps():
    METRICS.enable(clear=True)
    with SamplingProfiler(interval_s=0.001):
        _busy(0.1)
    counters = METRICS.as_dict()["counters"]
    assert counters.get("profile.samples", 0) > 0


def test_all_threads_mode_sees_worker_thread():
    stop = threading.Event()
    worker = threading.Thread(target=lambda: _busy(0.5) or stop.set())
    worker.start()
    try:
        with SamplingProfiler(interval_s=0.001, all_threads=True) as prof:
            _busy(0.15)
    finally:
        worker.join()
    assert prof.n_samples > 0


@pytest.mark.skipif(
    not hasattr(__import__("signal"), "SIGPROF") or sys.platform == "win32",
    reason="signal mode needs SIGPROF",
)
def test_signal_mode_collects_samples():
    with SamplingProfiler(interval_s=0.001, mode="signal") as prof:
        _busy(0.15)
    assert prof.n_samples > 0
    assert prof.collapsed()


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        SamplingProfiler(mode="quantum")
