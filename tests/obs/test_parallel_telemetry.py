"""Cross-process telemetry: counter parity, span stitching, pid tagging."""

from __future__ import annotations

import os

import pytest

import repro.parallel.planner as planner
from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec
from repro.obs import METRICS, TRACER
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")
IN_SPEC = SortSpec.of("A", "B", "C")
OUT_SPEC = SortSpec.of("A", "C", "B")


@pytest.fixture
def small_parallel_threshold():
    saved = planner.MIN_PARALLEL_ROWS
    planner.MIN_PARALLEL_ROWS = 0
    yield
    planner.MIN_PARALLEL_ROWS = saved


def make_table(n=1024, seed=7):
    return random_sorted_table(SCHEMA, IN_SPEC, n, domains=[16, 6, 6], seed=seed)


def test_comparison_counters_match_serial_across_shards(
    small_parallel_threshold,
):
    table = make_table()
    serial_stats = ComparisonStats()
    serial = modify_sort_order(table, OUT_SPEC, stats=serial_stats)

    parallel_stats = ComparisonStats()
    parallel = modify_sort_order(
        table, OUT_SPEC, stats=parallel_stats,
        config=ExecutionConfig(workers=2),
    )
    assert parallel.rows == serial.rows
    assert parallel.ovcs == serial.ovcs
    # Segment work never crosses a shard boundary, so the collector's
    # merged counters equal the serial run's exactly.
    assert parallel_stats.as_dict() == serial_stats.as_dict()


def test_worker_spans_are_stitched_tagged_and_multi_pid(
    small_parallel_threshold,
):
    table = make_table(n=2048)
    TRACER.enable(clear=True)
    modify_sort_order(table, OUT_SPEC, config=ExecutionConfig(workers=2))
    records = TRACER.drain()

    shard_spans = [r for r in records if r["name"] == "shard.execute"]
    assert shard_spans, "worker spans should be stitched into the main tracer"
    for r in shard_spans:
        assert r["tags"]["worker"] == r["pid"] != os.getpid()
        assert "shard" in r["tags"]
    # Stitching appends telemetry in shard order.
    shards = [r["tags"]["shard"] for r in shard_spans]
    assert shards == sorted(shards)
    pids = {r["pid"] for r in shard_spans}
    assert len(pids) >= 1  # >= 2 on multi-core hosts; scheduler-dependent
    assert any(r["name"] == "parallel.modify" for r in records)


def test_worker_metrics_merge_into_main_registry(small_parallel_threshold):
    table = make_table(n=2048)
    METRICS.enable(clear=True)
    modify_sort_order(
        table, OUT_SPEC, stats=ComparisonStats(),
        config=ExecutionConfig(workers=2),
    )
    snap = METRICS.as_dict()
    # Worker-side merge metrics crossed the process boundary (this
    # plan resolves to COMBINED, whose executors observe fan-ins)...
    assert snap["histograms"]["merge.fan_in"]["count"] > 0
    assert snap["counters"]["adjust.derived_codes"] > 0
    # ...and driver-side pool metrics live beside them.
    assert "pool.inflight_shards" in snap["gauges"]


def test_workers_ship_no_telemetry_when_disabled(small_parallel_threshold):
    from repro.parallel.api import parallel_modify
    from repro.core.analysis import analyze_order_modification

    table = make_table()
    plan = analyze_order_modification(IN_SPEC, OUT_SPEC)
    result = parallel_modify(table, OUT_SPEC, plan, plan.strategy, workers=2)
    assert result is not None
    assert TRACER.records == []
    assert METRICS.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
