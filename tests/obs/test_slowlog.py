"""Slow-query log: thresholds, captured forensics, and wiring."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec
from repro.obs import METRICS, SLOWLOG, TRACER
from repro.obs.slowlog import span_tree
from repro.ovc.stats import ComparisonStats
from repro.query import Query
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")


def _table(n_rows=300, seed=0):
    return random_sorted_table(
        SCHEMA, SortSpec.of("A", "B"), n_rows, domains=[8, 16, 32], seed=seed
    )


def test_disabled_mark_is_none_and_record_noops():
    assert SLOWLOG.mark() is None
    assert SLOWLOG.record(None, "modify") is None
    assert len(SLOWLOG.entries) == 0


def test_threshold_zero_captures_everything():
    SLOWLOG.enable(0)
    mark = SLOWLOG.mark()
    entry = SLOWLOG.record(mark, "modify", strategy="combined", rows=7)
    assert entry is not None
    assert entry["kind"] == "modify"
    assert entry["order_strategy"] == "combined"
    assert entry["rows"] == 7
    assert entry["elapsed_ms"] >= 0
    assert list(SLOWLOG.entries) == [entry]


def test_fast_executions_below_threshold_are_not_captured():
    SLOWLOG.enable(10_000)  # 10s: nothing in tests is that slow
    mark = SLOWLOG.mark()
    assert SLOWLOG.record(mark, "modify") is None
    assert len(SLOWLOG.entries) == 0


def test_slow_execution_over_threshold_is_captured():
    SLOWLOG.enable(5)
    mark = SLOWLOG.mark()
    time.sleep(0.02)
    entry = SLOWLOG.record(mark, "query.rows")
    assert entry is not None
    assert entry["elapsed_ms"] >= 5


def test_capture_embeds_comparison_stats_delta():
    SLOWLOG.enable(0)
    stats = ComparisonStats()
    stats.row_comparisons += 5
    mark = SLOWLOG.mark()
    entry = SLOWLOG.record(mark, "sort", stats=stats)
    assert entry["comparisons"]["row_comparisons"] == 5


def test_capture_embeds_span_tree_when_tracing():
    TRACER.enable(clear=True)
    SLOWLOG.enable(0)
    mark = SLOWLOG.mark()
    with TRACER.span("modify", rows=3):
        with TRACER.span("modify.segment"):
            pass
    entry = SLOWLOG.record(mark, "modify")
    TRACER.disable()
    (root,) = entry["phases"]
    assert root["name"] == "modify"
    assert root["children"][0]["name"] == "modify.segment"


def test_file_sink_writes_json_lines(tmp_path):
    path = tmp_path / "slow.jsonl"
    SLOWLOG.enable(0, path=str(path))
    SLOWLOG.record(SLOWLOG.mark(), "modify", strategy="noop")
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["order_strategy"] == "noop"


def test_ring_buffer_is_bounded():
    SLOWLOG.enable(0, capacity=4)
    for i in range(10):
        SLOWLOG.record(SLOWLOG.mark(), "modify", seq=i)
    assert len(SLOWLOG.entries) == 4
    assert [e["seq"] for e in SLOWLOG.entries] == [6, 7, 8, 9]


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        SLOWLOG.enable(-1)


def test_entries_counter_bumps():
    METRICS.enable(clear=True)
    SLOWLOG.enable(0)
    SLOWLOG.record(SLOWLOG.mark(), "modify")
    assert METRICS.as_dict()["counters"]["slowlog.entries"] == 1


def test_modify_records_strategy_in_slowlog():
    SLOWLOG.enable(0)
    modify_sort_order(
        _table(), SortSpec.of("A", "C", "B"), stats=ComparisonStats()
    )
    kinds = [e["kind"] for e in SLOWLOG.entries]
    assert "modify" in kinds
    entry = next(e for e in SLOWLOG.entries if e["kind"] == "modify")
    assert entry["order_strategy"] in (
        "noop", "segment_sort", "merge_runs", "combined", "full_sort"
    )
    assert "comparisons" in entry


def test_query_terminal_records_with_sort_strategies():
    SLOWLOG.enable(0)
    Query(_table()).order_by("A", "C").rows()
    kinds = [e["kind"] for e in SLOWLOG.entries]
    assert "query.rows" in kinds
    entry = next(e for e in SLOWLOG.entries if e["kind"] == "query.rows")
    assert entry.get("order_strategy")


def test_span_tree_handles_orphans_and_budget():
    records = [
        {"pid": 1, "id": 1, "parent": None, "name": "root",
         "start": 0.0, "dur": 0.5},
        {"pid": 1, "id": 2, "parent": 1, "name": "child",
         "start": 0.1, "dur": 0.2, "attrs": {"rows": 3}},
        {"pid": 1, "id": 3, "parent": 99, "name": "orphan",
         "start": 0.2, "dur": 0.1},
    ]
    tree = span_tree(records)
    names = [n["name"] for n in tree]
    assert names == ["root", "orphan"]
    assert tree[0]["children"][0]["attrs"] == {"rows": 3}
