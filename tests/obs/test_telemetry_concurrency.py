"""Scraping the telemetry plane mid-query must never fail.

The acceptance bar for the live endpoint: eight client threads hammer
``/metrics`` and ``/healthz`` while a governed, fault-injected,
``workers=4`` parallel modify runs — and every single response is a
success with a parseable body, including the ones served mid-run while
counters are being bumped from worker callbacks.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import repro.parallel.planner as planner
from repro.core.analysis import analyze_order_modification
from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig, parse_faults
from repro.model import Schema, SortSpec
from repro.obs import METRICS
from repro.obs.exporters import validate_prometheus_text
from repro.obs.server import TelemetryServer
from repro.parallel.api import parallel_modify
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [12, 24, 48, 8]
SPEC_IN = SortSpec.of("A", "B", "C")
SPEC_OUT = SortSpec.of("A", "C", "B")


def _scrape_loop(url, stop, failures, scrapes):
    while not stop.is_set():
        for endpoint in ("/metrics", "/healthz"):
            try:
                with urllib.request.urlopen(url + endpoint, timeout=5) as r:
                    body = r.read().decode("utf-8")
                    if r.status != 200:
                        failures.append(f"{endpoint}: status {r.status}")
                        continue
                    if endpoint == "/metrics":
                        errors = validate_prometheus_text(body)
                        if errors:
                            failures.append(f"/metrics invalid: {errors[:3]}")
                    else:
                        health = json.loads(body)
                        if health["status"] not in ("ok", "degraded"):
                            failures.append(f"/healthz: {health['status']!r}")
            except Exception as exc:  # noqa: BLE001 - any failure fails the test
                failures.append(f"{endpoint}: {exc!r}")
            scrapes.append(endpoint)


def test_eight_scrapers_during_faulted_governed_parallel_modify(monkeypatch):
    monkeypatch.setattr(planner, "MIN_PARALLEL_ROWS", 0)
    METRICS.enable(clear=True)
    table = random_sorted_table(
        SCHEMA, SPEC_IN, 1200, domains=DOMAINS, seed=0
    )
    baseline = modify_sort_order(table, SPEC_OUT)
    plan = analyze_order_modification(table.sort_spec, SPEC_OUT)
    cfg = ExecutionConfig(
        workers=4, shard_retries=1, memory_budget=1 << 30
    )

    stop = threading.Event()
    failures: list[str] = []
    scrapes: list[str] = []
    with TelemetryServer(port=0, config=cfg) as server:
        threads = [
            threading.Thread(
                target=_scrape_loop,
                args=(server.url, stop, failures, scrapes),
                daemon=True,
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        try:
            result = parallel_modify(
                table, SPEC_OUT, plan, plan.strategy, 4,
                config=cfg, faults=parse_faults("kill@0x1"),
            )
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)

    assert not failures, failures[:5]
    assert len(scrapes) >= 16  # all eight threads actually scraped
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    counters = METRICS.as_dict()["counters"]
    assert counters.get("pool.shard_retries", 0) >= 1
    assert counters.get("server.requests", 0) >= len(scrapes)
