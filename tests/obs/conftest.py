"""Shared fixture: leave the global observability singletons as found."""

from __future__ import annotations

import pytest

from repro.obs import LOG, METRICS, SLOWLOG, TRACER


def _reset_all():
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()
    LOG.disable()
    SLOWLOG.disable()
    SLOWLOG.clear()


@pytest.fixture(autouse=True)
def clean_observability():
    """Disable and reset the process-wide singletons around each test."""
    _reset_all()
    yield
    _reset_all()
