"""Shared fixture: leave the global tracer/registry as we found them."""

from __future__ import annotations

import pytest

from repro.obs import METRICS, TRACER


@pytest.fixture(autouse=True)
def clean_observability():
    """Disable and reset the process-wide tracer/registry around each test."""
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()
    yield
    TRACER.disable()
    TRACER.reset()
    METRICS.disable()
    METRICS.reset()
