"""Exporters: JSONL round-trip, Chrome trace schema, Prometheus, tree."""

from __future__ import annotations

import json

from repro.obs import MetricsRegistry, Tracer
from repro.obs.exporters import (
    chrome_trace,
    prometheus_text,
    read_jsonl,
    render_tree,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _spans() -> list[dict]:
    tracer = Tracer()
    tracer.enable()
    with tracer.span("modify", rows=100):
        with tracer.span("segment.sort", rows=40):
            pass
        with tracer.span("segment.sort", rows=60):
            pass
    worker_span = {
        "name": "shard.execute", "start": tracer.records[0]["start"],
        "dur": 0.01, "pid": 9999, "id": 1, "parent": None,
        "tags": {"worker": 9999, "shard": 0},
    }
    return tracer.drain() + [worker_span]


def _metrics() -> dict:
    reg = MetricsRegistry()
    reg.counter("merge.degraded_merges").inc(2)
    reg.gauge("pool.inflight_shards").set(3)
    for v in (1, 2, 16):
        reg.histogram("merge.fan_in").observe(v)
    return reg.as_dict()


def test_jsonl_round_trip_preserves_spans_metrics_meta(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    spans, metrics = _spans(), _metrics()
    write_jsonl(path, spans, metrics=metrics, meta={"case": 5})
    got_spans, got_metrics, got_meta = read_jsonl(path)
    assert got_spans == spans
    assert got_metrics == metrics
    assert got_meta == {"case": 5}


def test_jsonl_reloaded_spans_make_a_valid_chrome_trace(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(path, _spans(), metrics=_metrics())
    spans, metrics, _meta = read_jsonl(path)
    obj = chrome_trace(spans, metrics)
    assert validate_chrome_trace(obj) == []


def test_chrome_trace_structure_and_process_metadata(tmp_path):
    obj = write_chrome_trace(str(tmp_path / "trace.json"), _spans())
    reloaded = json.load(open(tmp_path / "trace.json"))
    assert reloaded == obj
    events = obj["traceEvents"]
    x_events = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in x_events} == {
        "modify", "segment.sort", "shard.execute"
    }
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x_events)
    names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["name"] == "process_name"
    }
    assert any(v.startswith("main") for v in names.values())
    assert names[9999] == "worker pid=9999 (first shard 0)"
    sort_keys = {
        e["pid"]: e["args"]["sort_index"]
        for e in events
        if e["name"] == "process_sort_index"
    }
    assert sort_keys[9999] == 1  # 1 + first shard


def test_validate_chrome_trace_flags_malformed_input():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    errors = validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "pid": 1}, {"name": "m", "ph": "M",
                         "pid": 1}]}
    )
    assert any("missing 'name'" in e for e in errors)
    assert any("needs numeric" in e for e in errors)
    assert any("needs 'args'" in e for e in errors)
    assert validate_chrome_trace({"traceEvents": []}) == []


def test_prometheus_text_format():
    text = prometheus_text(_metrics())
    assert "# TYPE repro_merge_degraded_merges counter" in text
    assert "repro_merge_degraded_merges 2" in text
    assert "repro_pool_inflight_shards_max 3" in text
    # Cumulative power-of-two buckets: le=2 covers the 1 and 2 observations.
    assert 'repro_merge_fan_in_bucket{le="2"} 2' in text
    assert 'repro_merge_fan_in_bucket{le="+Inf"} 3' in text
    assert "repro_merge_fan_in_count 3" in text


def test_render_tree_shows_nesting_and_self_time():
    text = render_tree(_spans())
    lines = text.splitlines()
    assert lines[0].startswith("modify")
    assert "(self " in lines[0]  # inclusive and self time on parents
    assert lines[1].startswith("  segment.sort")
    assert any("shard.execute" in l and "worker=9999" in l for l in lines)
    assert render_tree([]) == "(no spans recorded)"


def test_render_tree_elides_very_wide_fanouts():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("parent"):
        for i in range(70):
            with tracer.span("kid", i=i):
                pass
    text = render_tree(tracer.drain(), max_children=64)
    assert "... 6 more spans" in text
