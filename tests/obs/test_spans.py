"""Span tracer: nesting, no-op path, decorator, annotate, drain."""

from __future__ import annotations

import os

from repro.obs import NULL_SPAN, TRACER, Tracer
from repro.exec import ExecutionConfig


def test_disabled_tracer_returns_the_null_singleton():
    tracer = Tracer()
    assert tracer.span("anything", rows=1) is NULL_SPAN
    with tracer.span("nested") as sp:
        assert sp is NULL_SPAN
        assert sp.set(more=2) is sp
    assert tracer.records == []


def test_spans_record_name_timing_and_attrs():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("work", rows=7) as sp:
        sp.set(segments=3)
    [record] = tracer.records
    assert record["name"] == "work"
    assert record["attrs"] == {"rows": 7, "segments": 3}
    assert record["dur"] >= 0
    assert record["start"] > 0  # epoch-anchored wall clock
    assert record["pid"] == os.getpid()
    assert record["parent"] is None


def test_nested_spans_link_to_their_parents():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("outer") as outer:
        with tracer.span("inner"):
            pass
    inner_rec, outer_rec = tracer.records
    assert inner_rec["name"] == "inner"
    assert inner_rec["parent"] == outer_rec["id"]
    assert outer_rec["parent"] is None
    assert outer_rec["id"] == outer.sid


def test_out_of_order_exit_does_not_corrupt_the_stack():
    # Generators can close spans in non-LIFO order; the stack must
    # survive a parent exiting while a child is still open.
    tracer = Tracer()
    tracer.enable()
    outer = tracer.span("outer").__enter__()
    inner = tracer.span("inner").__enter__()
    outer.__exit__(None, None, None)  # parent closes first
    with tracer.span("sibling"):
        pass
    inner.__exit__(None, None, None)
    names = {r["name"]: r for r in tracer.records}
    assert set(names) == {"outer", "inner", "sibling"}
    assert names["inner"]["parent"] == names["outer"]["id"]
    # The stack survived the non-LIFO exits: new spans still record.
    with tracer.span("after"):
        pass
    assert [r["name"] for r in tracer.records][-1] == "after"


def test_traced_decorator_times_calls_only_when_enabled():
    tracer = Tracer()

    @tracer.traced("fn")
    def fn(x):
        return x + 1

    assert fn(1) == 2
    assert tracer.records == []
    tracer.enable()
    assert fn(2) == 3
    assert [r["name"] for r in tracer.records] == ["fn"]


def test_annotate_enriches_the_innermost_open_span():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("phase"):
        tracer.annotate(strategy="combined")
    [record] = tracer.records
    assert record["attrs"] == {"strategy": "combined"}
    tracer.annotate(ignored=True)  # no open span: a no-op


def test_drain_empties_and_add_records_stitches():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("a"):
        pass
    drained = tracer.drain()
    assert [r["name"] for r in drained] == ["a"]
    assert tracer.records == []
    tracer.add_records([{"name": "foreign", "start": 1.0, "dur": 0.1,
                         "pid": 999, "id": 1, "parent": None}])
    assert tracer.records[0]["pid"] == 999


def test_enable_clears_stale_records_by_default():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("old"):
        pass
    tracer.enable()
    assert tracer.records == []
    tracer.disable()
    assert tracer.span("off") is NULL_SPAN


def test_global_tracer_captures_pipeline_spans():
    from repro.core.modify import modify_sort_order
    from repro.model import Schema, SortSpec
    from repro.workloads.generators import random_sorted_table

    schema = Schema.of("A", "B", "C")
    table = random_sorted_table(
        schema, SortSpec.of("A", "B", "C"), 256, domains=[4, 5, 6], seed=3
    )
    TRACER.enable(clear=True)
    modify_sort_order(table, SortSpec.of("A", "C", "B"))
    names = {r["name"] for r in TRACER.drain()}
    assert "modify" in names
    assert names & {"fastpath.merge", "fastpath.sort"}

    TRACER.enable(clear=True)
    modify_sort_order(
        table, SortSpec.of("A", "C", "B"),
        config=ExecutionConfig(engine="reference"),
    )
    names = {r["name"] for r in TRACER.drain()}
    assert "modify.classify" in names
