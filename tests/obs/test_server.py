"""Telemetry HTTP server: endpoints, snapshots, lifecycle."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.exec import ExecutionConfig
from repro.obs import METRICS, SLOWLOG, TRACER
from repro.obs.exporters import validate_prometheus_text
from repro.obs.server import (
    TelemetryServer,
    health_snapshot,
    start_telemetry_server,
    stop_telemetry_server,
    varz_snapshot,
)


@pytest.fixture
def server():
    srv = TelemetryServer(port=0, config=ExecutionConfig())
    srv.start()
    yield srv
    srv.stop()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


def test_metrics_endpoint_serves_prometheus_text(server):
    METRICS.enable(clear=True)
    METRICS.counter("cache.hits").inc(3)
    status, ctype, body = _get(server.url + "/metrics")
    assert status == 200
    assert ctype.startswith("text/plain")
    assert "version=0.0.4" in ctype
    text = body.decode("utf-8")
    assert "cache_hits" in text
    assert validate_prometheus_text(text) == []


def test_metrics_endpoint_with_registry_disabled(server):
    status, _, body = _get(server.url + "/metrics")
    assert status == 200
    assert b"registry" in body  # explanatory comment, not an error


def test_healthz_reports_ok(server):
    status, ctype, body = _get(server.url + "/healthz")
    assert status == 200
    assert "json" in ctype
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["degraded_checks"] == []
    assert "pool" in health["checks"]
    assert "memory" in health["checks"]
    assert "cache" in health["checks"]


def test_varz_exposes_config_metrics_and_health(server):
    METRICS.enable(clear=True)
    METRICS.counter("pool.shard_retries").inc()
    status, _, body = _get(server.url + "/varz")
    assert status == 200
    varz = json.loads(body)
    assert varz["pid"] > 0
    assert "engine" in varz["config"]
    assert varz["metrics"]["counters"]["pool.shard_retries"] == 1
    assert varz["health"]["status"] in ("ok", "degraded")


def test_index_lists_endpoints(server):
    status, _, body = _get(server.url + "/")
    assert status == 200
    for endpoint in (b"/metrics", b"/healthz", b"/varz"):
        assert endpoint in body


def test_unknown_path_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server.url + "/nope")
    assert err.value.code == 404


def test_request_counter_bumps(server):
    METRICS.enable(clear=True)
    _get(server.url + "/healthz")
    _get(server.url + "/healthz")
    assert METRICS.as_dict()["counters"]["server.requests"] >= 2


def test_health_snapshot_degrades_on_quarantined_shard():
    METRICS.enable(clear=True)
    METRICS.counter("pool.shard_degraded").inc()
    health = health_snapshot()
    assert health["status"] == "degraded"
    assert "pool" in health["degraded_checks"]
    assert health["checks"]["pool"]["shard_degraded"] >= 1


def test_varz_snapshot_includes_slowlog_tail():
    SLOWLOG.enable(0)
    SLOWLOG.record(SLOWLOG.mark(), "modify", strategy="combined")
    varz = varz_snapshot(ExecutionConfig())
    assert varz["slowlog"]["enabled"] is True
    assert varz["slowlog"]["entries"][-1]["order_strategy"] == "combined"


def test_varz_snapshot_reports_open_spans():
    TRACER.enable(clear=True)
    with TRACER.span("outer"):
        varz = varz_snapshot(None)
        assert varz["spans"]["enabled"] is True
        assert [s["name"] for s in varz["spans"]["open"]] == ["outer"]
    TRACER.disable()


def test_start_telemetry_server_is_idempotent():
    first = start_telemetry_server(port=0)
    try:
        second = start_telemetry_server(port=0)
        assert first is second
        status, _, _ = _get(first.url + "/healthz")
        assert status == 200
    finally:
        stop_telemetry_server()
    # Once stopped, a new singleton can be started on a fresh port.
    third = start_telemetry_server(port=0)
    try:
        assert third is not first
    finally:
        stop_telemetry_server()


def test_context_manager_lifecycle():
    with TelemetryServer(port=0) as srv:
        assert srv.running
        status, _, _ = _get(srv.url + "/healthz")
        assert status == 200
    assert not srv.running
