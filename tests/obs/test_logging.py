"""Structured logging: JSON-lines shape, correlation, and wiring."""

from __future__ import annotations

import io
import json

from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec
from repro.obs import LOG, METRICS, TRACER
from repro.obs.logging import read_log
from repro.query import Query
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")


def _table(n_rows=300, seed=0):
    return random_sorted_table(
        SCHEMA, SortSpec.of("A", "B"), n_rows, domains=[8, 16, 32], seed=seed
    )


def test_disabled_logger_emits_nothing(tmp_path):
    path = tmp_path / "log.jsonl"
    LOG.event("never", value=1)
    assert not path.exists()
    assert LOG.path is None


def test_events_are_json_lines_with_envelope(tmp_path):
    path = str(tmp_path / "log.jsonl")
    LOG.enable(path)
    LOG.event("unit.test", answer=42, name="x")
    LOG.disable()
    events = read_log(path)
    assert len(events) == 1
    (ev,) = events
    assert ev["event"] == "unit.test"
    assert ev["answer"] == 42
    assert ev["name"] == "x"
    assert ev["pid"] > 0
    assert ev["ts"] > 0


def test_non_json_values_are_stringified():
    sink = io.StringIO()
    LOG.enable(sink)
    LOG.event("unit.test", spec=SortSpec.of("A", "B"))
    LOG.disable()
    ev = json.loads(sink.getvalue())
    assert isinstance(ev["spec"], str)


def test_stream_target_is_not_closed_on_disable():
    sink = io.StringIO()
    LOG.enable(sink)
    LOG.event("one")
    LOG.disable()
    assert not sink.closed
    assert json.loads(sink.getvalue())["event"] == "one"


def test_broken_sink_disables_logger_instead_of_raising():
    sink = io.StringIO()
    LOG.enable(sink)
    sink.close()
    LOG.event("after.close")  # must not raise
    assert LOG.enabled is False


def test_query_scope_allocates_and_nests():
    sink = io.StringIO()
    LOG.enable(sink)
    assert LOG.current_query_id() is None
    with LOG.query_scope() as outer:
        assert outer is not None
        assert LOG.current_query_id() == outer
        with LOG.query_scope() as inner:
            assert inner == outer
    assert LOG.current_query_id() is None
    with LOG.query_scope() as second:
        assert second != outer
    LOG.disable()


def test_query_scope_is_noop_while_disabled():
    with LOG.query_scope() as qid:
        assert qid is None
    assert LOG.current_query_id() is None


def test_event_carries_qid_and_span():
    sink = io.StringIO()
    LOG.enable(sink)
    TRACER.enable(clear=True)
    with LOG.query_scope() as qid:
        with TRACER.span("outer"):
            LOG.event("inside")
    TRACER.disable()
    LOG.disable()
    ev = json.loads(sink.getvalue().splitlines()[-1])
    assert ev["qid"] == qid
    assert ev["span_name"] == "outer"
    assert "span" in ev


def test_modify_logs_strategy_decision(tmp_path):
    path = str(tmp_path / "log.jsonl")
    LOG.enable(path)
    modify_sort_order(_table(), SortSpec.of("A"))
    LOG.disable()
    events = [e for e in read_log(path) if e["event"] == "modify.strategy"]
    assert len(events) == 1
    (ev,) = events
    assert ev["strategy"] in (
        "noop", "segment_sort", "merge_runs", "combined", "full_sort"
    )
    assert ev["rows"] == 300
    assert "qid" in ev


def test_query_events_share_one_qid(tmp_path):
    path = str(tmp_path / "log.jsonl")
    LOG.enable(path)
    Query(_table()).order_by("A").rows()
    LOG.disable()
    events = read_log(path)
    qids = {e.get("qid") for e in events}
    assert len(qids) == 1 and None not in qids
    names = {e["event"] for e in events}
    assert "query.rows" in names


def test_log_events_counter_bumps():
    METRICS.enable(clear=True)
    sink = io.StringIO()
    LOG.enable(sink)
    LOG.event("a")
    LOG.event("b")
    LOG.disable()
    assert METRICS.as_dict()["counters"]["log.events"] == 2
