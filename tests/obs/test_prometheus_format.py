"""Prometheus exposition grammar: emit, escape, and round-trip check."""

from __future__ import annotations

from repro.obs import METRICS
from repro.obs.exporters import (
    prom_label_block,
    prometheus_text,
    validate_prometheus_text,
)


def _populated_registry():
    METRICS.enable(clear=True)
    METRICS.counter("cache.hits").inc(5)
    METRICS.counter("pool.shard_retries").inc()
    METRICS.gauge("exec.mem.used_bytes").set(4096)
    hist = METRICS.histogram("merge.fan_in")
    for v in (1, 2, 2, 8, 8, 8, 512):
        hist.observe(v)
    return METRICS


def test_every_family_has_help_and_type():
    text = prometheus_text(_populated_registry())
    for family in (
        "repro_cache_hits",
        "repro_pool_shard_retries",
        "repro_exec_mem_used_bytes",
        "repro_merge_fan_in",
    ):
        assert f"# HELP {family} " in text
        assert f"# TYPE {family} " in text


def test_gauge_high_water_mark_is_its_own_family():
    METRICS.enable(clear=True)
    g = METRICS.gauge("exec.mem.used_bytes")
    g.set(100)
    g.set(10)
    text = prometheus_text(METRICS)
    assert "# TYPE repro_exec_mem_used_bytes_max gauge" in text
    assert "repro_exec_mem_used_bytes_max 100" in text
    assert "repro_exec_mem_used_bytes 10" in text


def test_histogram_buckets_are_cumulative_and_end_at_inf():
    text = prometheus_text(_populated_registry())
    lines = [
        line for line in text.splitlines()
        if line.startswith("repro_merge_fan_in_bucket")
    ]
    counts = [float(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts)
    assert lines[-1].startswith('repro_merge_fan_in_bucket{le="+Inf"}')
    assert counts[-1] == 7


def test_metric_names_are_sanitized_to_grammar():
    METRICS.enable(clear=True)
    METRICS.counter("weird name-with.dots/slash").inc()
    text = prometheus_text(METRICS)
    assert "repro_weird_name_with_dots_slash 1" in text
    assert validate_prometheus_text(text) == []


def test_label_values_are_escaped():
    block = prom_label_block({"le": 'say "hi"\nback\\slash', "2bad key": 1})
    assert '\\"hi\\"' in block
    assert "\\n" in block
    assert "\\\\slash" in block
    assert "_2bad_key=" in block


def test_round_trip_validates_clean():
    text = prometheus_text(_populated_registry())
    assert validate_prometheus_text(text) == []


def test_validator_catches_malformed_text():
    assert validate_prometheus_text("9bad_name 1\n")
    assert validate_prometheus_text("# TYPE x bogus_type\nx 1\n")
    assert validate_prometheus_text("no_type_line 1\n")
    assert validate_prometheus_text("# TYPE x counter\nx notanumber\n")
    bad_buckets = (
        "# TYPE h histogram\n"
        'h_bucket{le="2"} 5\n'
        'h_bucket{le="4"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_sum 10\n"
        "h_count 5\n"
    )
    assert any(
        "non-cumulative" in e for e in validate_prometheus_text(bad_buckets)
    )


def test_empty_registry_renders_empty_and_validates():
    METRICS.enable(clear=True)
    text = prometheus_text(METRICS)
    assert validate_prometheus_text(text) == []
