"""Every metric name used in src/ is documented in the registry docstring.

The ``repro.obs.metrics`` module docstring is the name registry: the
single place an operator looks up what a series means before wiring a
dashboard.  This test greps the source tree for literal
``METRICS.counter("...")`` / ``gauge`` / ``histogram`` call sites and
fails when one uses a name the docstring does not mention — so adding a
metric without documenting it breaks CI.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro.obs.metrics as metrics_mod

SRC = Path(metrics_mod.__file__).resolve().parent.parent

CALL_RE = re.compile(
    r'METRICS\.(?:counter|gauge|histogram)\(\s*"([^"]+)"'
)


def _names_used_in_src() -> set[str]:
    names: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        names.update(CALL_RE.findall(path.read_text(encoding="utf-8")))
    return names


def test_source_tree_uses_metrics():
    names = _names_used_in_src()
    # A floor, not a ceiling: the telemetry plane should keep growing.
    assert len(names) >= 40
    assert "pool.shard_degraded" in names
    assert "exec.spill.runs" in names
    assert "server.requests" in names


def test_every_literal_metric_name_is_documented():
    doc = metrics_mod.__doc__ or ""
    undocumented = sorted(
        name for name in _names_used_in_src() if name not in doc
    )
    assert not undocumented, (
        "metric names used in src/ but missing from the repro.obs.metrics "
        f"docstring registry: {undocumented}"
    )


def test_documented_families_use_registry_prefixes():
    # Guard the naming convention: every literal name is dotted and
    # lowercase, so the Prometheus translation stays predictable.
    for name in _names_used_in_src():
        assert name == name.lower()
        assert " " not in name
