"""Join-order DP with interesting orderings (hypothesis 10)."""

from __future__ import annotations

import pytest

from repro.model import SortSpec
from repro.optimizer.join_planning import (
    JoinEdge,
    Relation,
    plan_joins,
)


def spec(*names):
    return SortSpec.of(*names)


def enrollment_catalog(single_index: bool = True):
    """Students, courses, and the enrollment table with one stored
    index on (course, student) — or two, for the traditional design."""
    enrollment_orders = [spec("e.course", "e.student")]
    if not single_index:
        enrollment_orders.append(spec("e.student", "e.course"))
    return [
        Relation(
            "students", 10_000, (spec("s.student"),),
            unique_keys=(frozenset({"s.student"}),),
        ),
        Relation(
            "courses", 500, (spec("c.course"),),
            unique_keys=(frozenset({"c.course"}),),
        ),
        Relation("enrollments", 200_000, tuple(enrollment_orders)),
    ], [
        JoinEdge(
            "students", "enrollments", ("s.student",), ("e.student",),
            selectivity=1 / 10_000,
        ),
        JoinEdge(
            "courses", "enrollments", ("c.course",), ("e.course",),
            selectivity=1 / 500,
        ),
    ]


def test_two_table_join_uses_existing_order():
    relations = [
        Relation("a", 1000, (spec("a.k"),)),
        Relation("b", 1000, (spec("b.k"),)),
    ]
    edges = [JoinEdge("a", "b", ("a.k",), ("b.k",))]
    plan = plan_joins(relations, edges)
    assert "sorted/sorted" in plan.description
    # Cost is just the merge itself.
    assert plan.cost == pytest.approx(1000 + 1000 + plan.rows)


def test_rotation_enforcer_cheaper_than_sort():
    """The right side is sorted on (k2, k1) but joined on (k1, k2):
    modification must beat the sort-based plan."""
    relations = [
        Relation("a", 50_000, (spec("a.k1", "a.k2"),)),
        Relation("b", 50_000, (spec("b.k2", "b.k1"),)),
    ]
    edges = [
        JoinEdge("a", "b", ("a.k1", "a.k2"), ("b.k1", "b.k2"))
    ]
    with_mod = plan_joins(relations, edges, modification_allowed=True)
    without = plan_joins(relations, edges, modification_allowed=False)
    assert with_mod.cost < without.cost
    assert "modify" in with_mod.description
    assert "modify" not in without.description


def test_three_table_enrollment_plan():
    relations, edges = enrollment_catalog(single_index=True)
    plan = plan_joins(relations, edges)
    assert plan.relations == {"students", "courses", "enrollments"}
    # One of the two joins rides the stored order; the other (or the
    # intermediate result) needs at most a modification.
    assert "sorted" in plan.description


def test_hypothesis10_modification_narrows_the_index_gap():
    """With one stored index, allowing order modification must recover
    a cost close to the two-index design."""
    one_idx, edges = enrollment_catalog(single_index=True)
    two_idx, _ = enrollment_catalog(single_index=False)

    smart = plan_joins(one_idx, edges, modification_allowed=True)
    naive = plan_joins(one_idx, edges, modification_allowed=False)
    luxury = plan_joins(two_idx, edges, modification_allowed=True)

    assert smart.cost < naive.cost
    assert luxury.cost <= smart.cost
    # Modification recovers most of the benefit of the second index.
    gap_with = smart.cost - luxury.cost
    gap_without = naive.cost - luxury.cost
    assert gap_with < gap_without / 2


def test_disconnected_graph_rejected():
    relations = [
        Relation("a", 10, (spec("a.k"),)),
        Relation("b", 10, (spec("b.k"),)),
    ]
    with pytest.raises(ValueError):
        plan_joins(relations, [])


def test_duplicate_names_rejected():
    r = Relation("a", 10, (spec("a.k"),))
    with pytest.raises(ValueError):
        plan_joins([r, r], [])


def test_unknown_edge_relation_rejected():
    relations = [Relation("a", 10, (spec("a.k"),))]
    with pytest.raises(ValueError):
        plan_joins(
            relations, [JoinEdge("a", "zz", ("a.k",), ("zz.k",))]
        )
