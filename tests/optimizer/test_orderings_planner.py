"""Tests for interesting orderings and enforcer planning."""

from __future__ import annotations

import pytest

from repro.core.analysis import Strategy
from repro.engine.scans import TableScan
from repro.model import Schema, SortSpec, Table
from repro.optimizer.orderings import (
    OrderingContext,
    reduce_spec,
    satisfies_with_context,
)
from repro.optimizer.planner import choose_enforcer, plan_merge_join


def spec(*names):
    return SortSpec.of(*names)


class TestReduction:
    def test_constants_removed(self):
        ctx = OrderingContext.of(constants=["B"])
        assert reduce_spec(spec("A", "B", "C"), ctx) == spec("A", "C")

    def test_fd_determined_columns_removed(self):
        # A is a key determining B: ordering (A, B) reduces to (A).
        ctx = OrderingContext.of(fds=[(["A"], ["B"])])
        assert reduce_spec(spec("A", "B"), ctx) == spec("A")

    def test_leading_constant_removed(self):
        ctx = OrderingContext.of(constants=["A"])
        assert reduce_spec(spec("A", "B"), ctx) == spec("B")

    def test_closure_is_transitive(self):
        ctx = OrderingContext.of(fds=[(["A"], ["B"]), (["B"], ["C"])])
        assert ctx.closure(frozenset({"A"})) == frozenset({"A", "B", "C"})


class TestSatisfaction:
    def test_plain_prefix(self):
        assert satisfies_with_context(spec("A", "B"), spec("A"))
        assert not satisfies_with_context(spec("A"), spec("A", "B"))

    def test_constant_fills_gap(self):
        # Sorted on (A, C); require (A, B, C) where B = const.
        ctx = OrderingContext.of(constants=["B"])
        assert satisfies_with_context(spec("A", "C"), spec("A", "B", "C"), ctx)

    def test_fd_closure_fills_suffix(self):
        # Sorted on (A); require (A, B) where A determines B.
        ctx = OrderingContext.of(fds=[(["A"], ["B"])])
        assert satisfies_with_context(spec("A"), spec("A", "B"), ctx)

    def test_none_provided(self):
        assert not satisfies_with_context(None, spec("A"))
        ctx = OrderingContext.of(constants=["A"])
        assert satisfies_with_context(None, spec("A"), ctx)

    def test_direction_mismatch_not_satisfied(self):
        assert not satisfies_with_context(spec("A DESC"), spec("A"))
        assert satisfies_with_context(spec("A DESC"), spec("A DESC"))


class TestEnforcerChoice:
    def test_noop_when_satisfied(self):
        choice = choose_enforcer(spec("A", "B"), spec("A"), n_rows=1000)
        assert choice.strategy is Strategy.NOOP
        assert choice.is_free

    def test_full_sort_when_unrelated(self):
        choice = choose_enforcer(None, spec("A"), n_rows=1000)
        assert choice.strategy is Strategy.FULL_SORT

    def test_modification_wins_over_full_sort(self):
        choice = choose_enforcer(
            spec("A", "B", "C"),
            spec("A", "C", "B"),
            n_rows=1 << 20,
            n_segments=1 << 10,
            n_runs=1 << 15,
        )
        assert choice.strategy in (Strategy.COMBINED, Strategy.MERGE_RUNS)
        assert choice.estimate is not None

    def test_segment_sort_for_case1(self):
        choice = choose_enforcer(
            spec("A"),
            spec("A", "B"),
            n_rows=1 << 20,
            n_segments=1 << 10,
        )
        assert choice.strategy is Strategy.SEGMENT_SORT


class TestJoinPlanning:
    def test_enrollment_single_index_serves_both_joins(self):
        """The paper's motivating example: one (course, student) index
        answers both rosters and transcripts via case 3."""
        from repro.workloads.enrollment import make_enrollment_workload

        w = make_enrollment_workload(
            n_students=30, n_courses=10, n_enrollments=150, seed=1
        )
        # Transcripts: students join enrollments on (student) — the
        # enrollment side must be re-ordered from (course, student).
        enroll = TableScan(w.enrollments)
        students = TableScan(w.students)
        join = plan_merge_join(
            students,
            enroll,
            ["campus", "student"],
            ["campus", "student"],
        )
        rows = [row for row, _ovc in join]
        # Every enrollment appears exactly once.
        assert len(rows) == len(w.enrollments.rows)

    def test_plan_inserts_no_sort_when_satisfied(self):
        schema = Schema.of("k", "v")
        t = Table(schema, [(1, 1), (2, 2)], SortSpec.of("k")).with_ovcs()
        join = plan_merge_join(
            TableScan(t), TableScan(t), ["k"], ["k"]
        )
        assert "Sort" not in join.explain()
