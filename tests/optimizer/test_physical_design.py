"""Physical design with modifiable orders: fewer indexes, same queries."""

from __future__ import annotations

import pytest

from repro.core.analysis import Strategy
from repro.model import SortSpec
from repro.optimizer.physical_design import (
    RequiredOrdering,
    coverage_cost,
    design_indexes,
)


def spec(*names):
    return SortSpec.of(*names)


class TestCoverage:
    def test_satisfied_order_is_free(self):
        cov = coverage_cost(spec("A", "B"), spec("A"), n_rows=1 << 20)
        assert cov.free and cov.cost == 0.0

    def test_rotation_is_cheap_but_not_free(self):
        cov = coverage_cost(spec("A", "B"), spec("B", "A"), n_rows=1 << 20)
        assert cov.strategy is Strategy.MERGE_RUNS
        assert 0.0 < cov.cost

    def test_rotation_beats_full_sort(self):
        rot = coverage_cost(spec("A", "B"), spec("B", "A"), n_rows=1 << 20)
        srt = coverage_cost(spec("X", "Y"), spec("B", "A"), n_rows=1 << 20)
        assert srt.strategy is Strategy.FULL_SORT
        assert rot.cost < srt.cost


class TestEnrollmentDesign:
    ROSTER = spec("course", "student")
    TRANSCRIPT = spec("student", "course")

    def test_one_index_suffices_with_modification(self):
        result = design_indexes([self.ROSTER, self.TRANSCRIPT], n_rows=1 << 20)
        assert len(result.chosen) == 1
        served = result.assignments
        strategies = {cov.strategy for cov in served.values()}
        assert Strategy.NOOP in strategies
        assert Strategy.MERGE_RUNS in strategies

    def test_traditional_design_needs_two_indexes(self):
        result = design_indexes(
            [self.ROSTER, self.TRANSCRIPT],
            n_rows=1 << 20,
            modification_allowed=False,
        )
        assert len(result.chosen) == 2

    def test_multi_campus_case5_still_one_index(self):
        roster = spec("campus", "course", "student")
        transcript = spec("campus", "student", "course")
        result = design_indexes([roster, transcript], n_rows=1 << 20)
        assert len(result.chosen) == 1
        assert result.assignments[transcript].strategy in (
            Strategy.COMBINED,
            Strategy.MERGE_RUNS,
        )

    def test_index_savings_show_in_total_cost(self):
        smart = design_indexes([self.ROSTER, self.TRANSCRIPT], n_rows=1 << 20)
        trad = design_indexes(
            [self.ROSTER, self.TRANSCRIPT],
            n_rows=1 << 20,
            modification_allowed=False,
        )
        assert smart.index_cost < trad.index_cost


class TestGeneralDesign:
    def test_frequencies_weight_the_choice(self):
        # A hot rotation and a cold unrelated order: the rotation's
        # base index must be chosen; the cold order gets its own.
        demands = [
            RequiredOrdering(spec("A", "B"), frequency=1000.0),
            RequiredOrdering(spec("B", "A"), frequency=1000.0),
            RequiredOrdering(spec("X",), frequency=0.001),
        ]
        result = design_indexes(demands, n_rows=1 << 20)
        assert spec("A", "B") in result.chosen or spec("B", "A") in result.chosen
        assert spec("X") in result.chosen
        assert len(result.chosen) == 2

    def test_empty_workload(self):
        result = design_indexes([])
        assert result.chosen == []
        assert result.total_query_cost == 0.0

    def test_impossible_without_candidates(self):
        with pytest.raises(ValueError):
            design_indexes(
                [spec("A")],
                candidates=[spec("B")],
            )

    def test_describe_readable(self):
        result = design_indexes([spec("A", "B"), spec("B", "A")], n_rows=1 << 16)
        text = result.describe()
        assert "indexes chosen: 1" in text
        assert "via" in text
