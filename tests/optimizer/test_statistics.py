"""Code-derived order statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import Strategy
from repro.model import Schema, SortSpec, Table
from repro.optimizer.statistics import (
    OrderStatistics,
    choose_enforcer_with_statistics,
    collect_order_statistics,
)
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
    max_size=60,
)


@given(rows_st)
@settings(max_examples=60, deadline=None)
def test_distinct_counts_match_ground_truth(rows):
    table = Table(SCHEMA, sorted(rows), SPEC).with_ovcs()
    stats = collect_order_statistics(table)
    assert stats.n_rows == len(rows)
    for k in range(1, 4):
        assert stats.distinct_prefix(k) == len({r[:k] for r in rows})


def test_empty_table():
    table = Table(SCHEMA, [], SPEC)
    stats = collect_order_statistics(table)
    assert stats.n_rows == 0
    assert stats.distinct == (0, 0, 0, 0)


def test_segments_and_runs_helpers():
    rows = sorted([(a, b, 0) for a in range(4) for b in range(8)] * 2)
    table = Table(SCHEMA, rows, SPEC).with_ovcs()
    stats = collect_order_statistics(table)
    assert stats.segments_for(1) == 4
    assert stats.runs_for(1, 1) == 32
    assert stats.average_segment_rows(1) == len(rows) / 4
    with pytest.raises(ValueError):
        stats.distinct_prefix(9)


def test_describe():
    table = Table(SCHEMA, [(1, 1, 1)], SPEC).with_ovcs()
    text = collect_order_statistics(table).describe()
    assert "1 rows" in text and "|prefix 1|=1" in text


def test_enforcer_choice_uses_real_counts():
    # Few huge segments, very many runs: exact statistics must pick the
    # combined strategy over the naive guesses.
    table = random_sorted_table(
        SCHEMA, SPEC, 4096, domains=[4, 512, 64], seed=2
    )
    choice = choose_enforcer_with_statistics(
        table, SortSpec.of("A", "C", "B")
    )
    assert choice.strategy in (Strategy.COMBINED, Strategy.SEGMENT_SORT)
    assert choice.estimate is not None
    noop = choose_enforcer_with_statistics(table, SortSpec.of("A", "B"))
    assert noop.strategy is Strategy.NOOP
