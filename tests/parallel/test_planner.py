"""Shard planner: contiguity, coverage, balance, serial fallbacks."""

from __future__ import annotations

import pytest

from repro.core.analysis import Strategy, analyze_order_modification
from repro.core.classify import split_segments
from repro.model import Schema, SortSpec
from repro.parallel.planner import plan_shards, segment_cost
from repro.workloads.generators import (
    fig11_output_spec,
    fig11_table,
    random_sorted_table,
)

SCHEMA = Schema.of("A", "B", "C")
IN_SPEC = SortSpec.of("A", "B", "C")
OUT_SPEC = SortSpec.of("A", "C", "B")


def _plan():
    return analyze_order_modification(IN_SPEC, OUT_SPEC)


def _table(n_rows: int, domains=(16, 8, 8), seed: int = 1):
    return random_sorted_table(SCHEMA, IN_SPEC, n_rows, domains=list(domains), seed=seed)


def test_shards_are_contiguous_and_cover_the_input():
    table = _table(2000)
    plan = _plan()
    sp = plan_shards(
        table.ovcs, len(table.rows), plan, Strategy.SEGMENT_SORT, 4, min_rows=0
    )
    assert sp.parallel and sp.reason == "parallel"
    assert sp.shards[0].lo == 0
    assert sp.shards[-1].hi == len(table.rows)
    for i, shard in enumerate(sp.shards):
        assert shard.index == i
        assert shard.lo < shard.hi
        if i:
            assert shard.lo == sp.shards[i - 1].hi
    segments = list(split_segments(table.ovcs, plan.prefix_len, len(table.rows)))
    assert sp.n_segments == len(segments)
    assert sum(s.n_segments for s in sp.shards) == len(segments)


def test_shards_start_at_segment_boundaries():
    table = _table(2000)
    plan = _plan()
    sp = plan_shards(
        table.ovcs, len(table.rows), plan, Strategy.SEGMENT_SORT, 4, min_rows=0
    )
    starts = {
        lo for lo, _ in split_segments(table.ovcs, plan.prefix_len, len(table.rows))
    }
    for shard in sp.shards:
        assert shard.lo in starts


def test_shard_costs_are_balanced():
    # Uniform segments (fig11): greedy packing closes each non-final
    # shard within one segment's cost of the target.
    table = fig11_table(4096, 64, seed=0)
    plan = analyze_order_modification(table.sort_spec, fig11_output_spec(8))
    n_workers = 4
    sp = plan_shards(
        table.ovcs, len(table.rows), plan, Strategy.SEGMENT_SORT,
        n_workers, min_rows=0,
    )
    assert sp.parallel
    assert 2 <= len(sp.shards) <= n_workers * 4
    target = sp.total_cost / (n_workers * 4)
    max_segment = max(
        segment_cost(hi - lo, hi - lo, Strategy.SEGMENT_SORT)
        for lo, hi in split_segments(table.ovcs, plan.prefix_len, len(table.rows))
    )
    for shard in sp.shards[:-1]:
        assert shard.cost >= target
        assert shard.cost <= target + max_segment
    assert abs(sum(s.cost for s in sp.shards) - sp.total_cost) < 1e-6


def test_combined_strategy_prices_runs_not_rows():
    table = fig11_table(4096, 64, seed=0)
    plan = analyze_order_modification(table.sort_spec, fig11_output_spec(8))
    sort_plan = plan_shards(
        table.ovcs, len(table.rows), plan, Strategy.SEGMENT_SORT, 4, min_rows=0
    )
    combined_plan = plan_shards(
        table.ovcs, len(table.rows), plan, Strategy.COMBINED, 4, min_rows=0
    )
    assert combined_plan.parallel
    # Merging sqrt(n) pre-existing runs is cheaper than a full segment
    # sort, and the planner's totals must reflect that.
    assert combined_plan.total_cost < sort_plan.total_cost


@pytest.mark.parametrize(
    "n_workers,strategy,min_rows,expect",
    [
        (1, Strategy.SEGMENT_SORT, 0, "fewer than two workers"),
        (4, Strategy.FULL_SORT, 0, "not segment-shardable"),
        (4, Strategy.MERGE_RUNS, 0, "not segment-shardable"),
        (4, Strategy.SEGMENT_SORT, 10**9, "below parallel threshold"),
    ],
)
def test_serial_fallback_reasons(n_workers, strategy, min_rows, expect):
    table = _table(2000)
    sp = plan_shards(
        table.ovcs, len(table.rows), _plan(), strategy, n_workers,
        min_rows=min_rows,
    )
    assert not sp.parallel
    assert expect in sp.reason
    assert sp.shards == ()


def test_serial_fallback_without_shared_prefix():
    # B,A,C against A,B,C shares no prefix: one segment, nothing to shard.
    table = _table(2000)
    plan = analyze_order_modification(IN_SPEC, SortSpec.of("B", "A", "C"))
    assert plan.prefix_len == 0
    sp = plan_shards(
        table.ovcs, len(table.rows), plan, Strategy.SEGMENT_SORT, 4, min_rows=0
    )
    assert not sp.parallel
    assert "single segment" in sp.reason


def test_serial_fallback_single_segment():
    # Constant A: the shared prefix never breaks, so one segment.
    table = random_sorted_table(SCHEMA, IN_SPEC, 512, domains=[1, 8, 8], seed=3)
    sp = plan_shards(
        table.ovcs, len(table.rows), _plan(), Strategy.SEGMENT_SORT, 4, min_rows=0
    )
    assert not sp.parallel
    assert "single segment" in sp.reason


def test_min_rows_env_default(monkeypatch):
    import repro.parallel.planner as planner

    table = _table(2000)
    monkeypatch.setattr(planner, "MIN_PARALLEL_ROWS", 10**9)
    sp = plan_shards(
        table.ovcs, len(table.rows), _plan(), Strategy.SEGMENT_SORT, 4
    )
    assert not sp.parallel and "threshold" in sp.reason
    monkeypatch.setattr(planner, "MIN_PARALLEL_ROWS", 0)
    assert plan_shards(
        table.ovcs, len(table.rows), _plan(), Strategy.SEGMENT_SORT, 4
    ).parallel
