"""Per-host calibration: derived thresholds, cache round-trip, logging."""

from __future__ import annotations

import json
import os
import platform

import pytest

from repro.obs import METRICS
from repro.parallel import calibrate
from repro.parallel.calibrate import Calibration


@pytest.fixture(autouse=True)
def _fresh_memo():
    calibrate.reset_memo()
    yield
    calibrate.reset_memo()


# ----------------------------------------------------------- derivations


def test_break_even_formula():
    cal = Calibration(
        kernel_ns_row=2000.0, pickle_ns_row=6000.0, plane_ns_row=500.0,
        startup_s=0.008,
    )
    # saved = 2000 * (1 - 1/2) - 500 = 500 ns/row;
    # rows = 0.008 * 2 * 1e9 / 500 = 32000.
    assert cal.min_parallel_rows(2) == 32000


def test_threshold_clamps_low_and_high():
    fast_kernel = Calibration(1e6, 3000.0, 1.0, startup_s=1e-9)
    assert fast_kernel.min_parallel_rows(2) == 4096  # floor
    slow_start = Calibration(2000.0, 6000.0, 500.0, startup_s=10.0)
    assert slow_start.min_parallel_rows(2) == 1 << 20  # ceiling


def test_threshold_infinite_when_plane_costs_more_than_parallel_saves():
    cal = Calibration(kernel_ns_row=500.0, pickle_ns_row=1.0, plane_ns_row=400.0)
    # saved = 500 * 0.5 - 400 < 0: parallel can never win at 2 workers.
    assert cal.min_parallel_rows(2) == 1 << 62
    # ...but can at 8 (saved = 500 * 7/8 - 400 > 0).
    assert cal.min_parallel_rows(8) < 1 << 62


def test_threshold_infinite_below_two_workers():
    cal = Calibration(2000.0, 6000.0, 500.0)
    assert cal.min_parallel_rows(1) == 1 << 62
    assert cal.min_parallel_rows(0) == 1 << 62


def test_chunk_rows_is_a_clamped_power_of_two():
    # 4 ms at 1000 ns/row = 4000 rows -> largest power of two <= that
    # is 2048 (starting from the 1024 floor).
    assert Calibration(1000.0, 1.0, 1.0).chunk_rows() == 2048
    assert Calibration(1e9, 1.0, 1.0).chunk_rows() == 1024  # floor
    assert Calibration(0.001, 1.0, 1.0).chunk_rows() == 65536  # ceiling
    size = Calibration(777.0, 1.0, 1.0).chunk_rows()
    assert size & (size - 1) == 0


# ----------------------------------------------------------- measurement


def test_measure_returns_positive_constants():
    cal = calibrate.measure()
    assert cal.source == "measured"
    assert cal.kernel_ns_row > 0
    assert cal.pickle_ns_row > 0
    assert cal.plane_ns_row > 0


# ----------------------------------------------------------- cache


def test_get_writes_then_loads_disk_cache(tmp_path):
    first = calibrate.get(spill_dir=str(tmp_path))
    assert first.source == "measured"
    cached_files = [
        name for name in os.listdir(tmp_path)
        if name.startswith("repro-calibration-")
    ]
    assert len(cached_files) == 1
    with open(tmp_path / cached_files[0]) as fh:
        raw = json.load(fh)
    assert raw["kernel_ns_row"] == pytest.approx(first.kernel_ns_row)

    calibrate.reset_memo()
    second = calibrate.get(spill_dir=str(tmp_path))
    assert second.source == "cache"
    assert second.kernel_ns_row == pytest.approx(first.kernel_ns_row)


def test_memo_short_circuits_disk(tmp_path):
    first = calibrate.get(spill_dir=str(tmp_path))
    # Same object back without touching the (now deleted) cache file.
    for name in os.listdir(tmp_path):
        os.unlink(tmp_path / name)
    assert calibrate.get(spill_dir=str(tmp_path)) is first


def _profile(**overrides) -> dict:
    """A cache payload matching the live host profile (so it loads)."""
    payload = {
        "kernel_ns_row": 1.0,
        "pickle_ns_row": 2.0,
        "plane_ns_row": 3.0,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    payload.update(overrides)
    return payload


def test_refresh_remeasures_over_cache(tmp_path):
    path = calibrate._cache_path(str(tmp_path))
    with open(path, "w") as fh:
        json.dump(_profile(), fh)
    cached = calibrate.get(spill_dir=str(tmp_path))
    assert cached.source == "cache"
    assert cached.kernel_ns_row == 1.0
    refreshed = calibrate.get(spill_dir=str(tmp_path), refresh=True)
    assert refreshed.source == "measured"
    assert refreshed.kernel_ns_row != 1.0


def test_cpu_count_mismatch_invalidates_cache(tmp_path):
    path = calibrate._cache_path(str(tmp_path))
    with open(path, "w") as fh:
        json.dump(_profile(cpu_count=(os.cpu_count() or 1) + 8), fh)
    cal = calibrate.get(spill_dir=str(tmp_path))
    assert cal.source == "measured"
    assert cal.kernel_ns_row != 1.0
    # The re-measurement rewrote the cache with the live profile.
    with open(path) as fh:
        raw = json.load(fh)
    assert raw["cpu_count"] == os.cpu_count()
    assert raw["python"] == platform.python_version()


def test_python_version_mismatch_invalidates_cache(tmp_path):
    path = calibrate._cache_path(str(tmp_path))
    with open(path, "w") as fh:
        json.dump(_profile(python="0.0.0"), fh)
    cal = calibrate.get(spill_dir=str(tmp_path))
    assert cal.source == "measured"


def test_profile_less_legacy_cache_invalidated(tmp_path):
    # Caches written before the host profile was recorded must not be
    # trusted — missing keys read as a mismatch.
    path = calibrate._cache_path(str(tmp_path))
    with open(path, "w") as fh:
        json.dump(
            {"kernel_ns_row": 1.0, "pickle_ns_row": 2.0, "plane_ns_row": 3.0},
            fh,
        )
    cal = calibrate.get(spill_dir=str(tmp_path))
    assert cal.source == "measured"


def test_corrupt_cache_falls_back_to_measurement(tmp_path):
    path = calibrate._cache_path(str(tmp_path))
    with open(path, "w") as fh:
        fh.write("{not json")
    cal = calibrate.get(spill_dir=str(tmp_path))
    assert cal.source == "measured"


# ----------------------------------------------------------- observability


def test_measured_values_logged_as_gauges(tmp_path):
    METRICS.enable(clear=True)
    try:
        cal = calibrate.get(spill_dir=str(tmp_path))
        gauges = METRICS.as_dict().get("gauges", {})
    finally:
        METRICS.reset()
        METRICS.disable()
    assert gauges["calibrate.kernel_ns_row"]["value"] == pytest.approx(
        cal.kernel_ns_row
    )
    assert gauges["calibrate.min_parallel_rows_w2"]["value"] == (
        cal.min_parallel_rows(2)
    )
    assert gauges["calibrate.chunk_rows"]["value"] == cal.chunk_rows()
