"""Differential suite: parallel output must be bit-identical to serial.

Every entry point that accepts ``config=ExecutionConfig(workers=N)`` is checked — rows *and*
offset-value codes — against the serial engines, across the Table 1
cases, worker counts, uneven segment sizes, and degenerate inputs.
The dispatcher's tiny-input threshold is forced to zero so the pool
genuinely runs even at test scale.
"""

from __future__ import annotations

import pytest

import repro.parallel.planner as planner
from repro.core.analysis import Strategy, analyze_order_modification
from repro.core.external_modify import modify_sort_order_external
from repro.core.modify import modify_sort_order
from repro.engine.modify_op import StreamingModify
from repro.engine.scans import TableScan
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs
from repro.ovc.stats import ComparisonStats
from repro.parallel.api import parallel_modify
from repro.query import Query
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [12, 24, 48, 8]

# The eight prototype cases of Table 1 (input order -> desired order).
TABLE1 = [
    (("A", "B"), ("A",)),
    (("A",), ("A", "B")),
    (("A", "B"), ("B",)),
    (("A", "B"), ("B", "A")),
    (("A", "B", "C"), ("A", "C")),
    (("A", "B", "C"), ("A", "C", "B")),
    (("A", "B", "C", "D"), ("A", "C", "D")),
    (("A", "B", "C", "D"), ("A", "C", "B", "D")),
]

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(autouse=True)
def _force_parallel(monkeypatch):
    """Let the planner shard even tiny test inputs."""
    monkeypatch.setattr(planner, "MIN_PARALLEL_ROWS", 0)


def _table(inp, n_rows=1200, seed=0):
    return random_sorted_table(SCHEMA, SortSpec(inp), n_rows, domains=DOMAINS, seed=seed)


def _assert_identical(serial: Table, parallel: Table):
    assert parallel.rows == serial.rows
    assert parallel.ovcs == serial.ovcs


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize(
    "inp,out", TABLE1, ids=[f"case{i}" for i in range(len(TABLE1))]
)
def test_table1_cases_bit_identical(inp, out, workers):
    table = _table(inp)
    spec = SortSpec(out)
    serial = modify_sort_order(table, spec)
    par = modify_sort_order(table, spec, config=ExecutionConfig(workers=workers))
    _assert_identical(serial, par)


def test_parallel_path_actually_engages():
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    plan = analyze_order_modification(table.sort_spec, spec)
    result = parallel_modify(table, spec, plan, plan.strategy, workers=2)
    assert result is not None  # the planner sharded, not a serial fallback
    _assert_identical(modify_sort_order(table, spec), result)


@pytest.mark.parametrize("workers", (2, 3))
def test_reference_counter_parity(workers):
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    serial_stats = ComparisonStats()
    serial = modify_sort_order(table, spec, stats=serial_stats)
    par_stats = ComparisonStats()
    par = modify_sort_order(
        table, spec, stats=par_stats, config=ExecutionConfig(workers=workers)
    )
    _assert_identical(serial, par)
    assert par_stats.as_dict() == serial_stats.as_dict()


@pytest.mark.parametrize("workers", (2, 4))
def test_fast_engine_parallel(workers):
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    serial = modify_sort_order(table, spec, config=ExecutionConfig(engine="fast"))
    par = modify_sort_order(
        table, spec, config=ExecutionConfig(engine="fast", workers=workers)
    )
    _assert_identical(serial, par)


@pytest.mark.parametrize("method", ("segment_sort", "combined"))
def test_forced_methods_parallel(method):
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    serial = modify_sort_order(table, spec, method=method)
    par = modify_sort_order(
        table, spec, method=method, config=ExecutionConfig(workers=2)
    )
    _assert_identical(serial, par)


def test_uneven_segments():
    # One giant segment followed by many singletons.
    rows = sorted(
        [(0, b % 37, b % 11, 0) for b in range(900)]
        + [(a, 0, a % 7, 0) for a in range(1, 120)]
    )
    table = Table(SCHEMA, rows, SortSpec.of("A", "B", "C", "D"))
    table.ovcs = derive_ovcs(rows, (0, 1, 2, 3))
    spec = SortSpec.of("A", "C", "B", "D")
    serial = modify_sort_order(table, spec)
    for workers in (2, 4):
        _assert_identical(
            serial,
            modify_sort_order(table, spec, config=ExecutionConfig(workers=workers)),
        )


def test_empty_input():
    table = Table(SCHEMA, [], SortSpec.of("A", "B", "C", "D"))
    table.ovcs = []
    spec = SortSpec.of("A", "C", "B", "D")
    result = modify_sort_order(table, spec, config=ExecutionConfig(workers=4))
    assert result.rows == [] and result.ovcs == []


def test_single_segment_input_falls_back():
    table = random_sorted_table(
        SCHEMA, SortSpec.of("A", "B", "C", "D"), 400, domains=[1, 8, 8, 4], seed=2
    )
    spec = SortSpec.of("A", "C", "B", "D")
    serial = modify_sort_order(table, spec)
    _assert_identical(
        serial, modify_sort_order(table, spec, config=ExecutionConfig(workers=4))
    )


def test_more_workers_than_segments():
    table = random_sorted_table(
        SCHEMA, SortSpec.of("A", "B", "C", "D"), 600, domains=[3, 16, 16, 4], seed=5
    )
    spec = SortSpec.of("A", "C", "B", "D")
    serial = modify_sort_order(table, spec)
    _assert_identical(
        serial, modify_sort_order(table, spec, config=ExecutionConfig(workers=8))
    )


def test_external_modify_parallel():
    table = _table(("A", "B", "C"), n_rows=1500)
    spec = SortSpec.of("A", "C", "B")
    serial = modify_sort_order_external(table, spec, memory_capacity=512)
    par = modify_sort_order_external(
        table, spec, memory_capacity=512, config=ExecutionConfig(workers=2)
    )
    _assert_identical(serial, par)


def test_external_modify_parallel_counter_parity():
    table = _table(("A", "B", "C"), n_rows=1500)
    spec = SortSpec.of("A", "C", "B")
    serial_stats = ComparisonStats()
    serial = modify_sort_order_external(
        table, spec, memory_capacity=512, stats=serial_stats
    )
    par_stats = ComparisonStats()
    par = modify_sort_order_external(
        table, spec, memory_capacity=512, stats=par_stats,
        config=ExecutionConfig(workers=2),
    )
    _assert_identical(serial, par)
    assert par_stats.as_dict() == serial_stats.as_dict()


@pytest.mark.parametrize("shard_rows", (64, 4096))
def test_streaming_modify_parallel(shard_rows):
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    serial = list(StreamingModify(TableScan(table), spec))
    par = list(
        StreamingModify(
            TableScan(table), spec, shard_rows=shard_rows,
            config=ExecutionConfig(workers=2),
        )
    )
    assert [r for r, _ in par] == [r for r, _ in serial]
    assert [o for _, o in par] == [o for _, o in serial]


def test_query_order_by_workers():
    table = _table(("A", "B", "C"))
    serial = Query(table).order_by("A", "C", "B").to_table()
    par = (
        Query(table)
        .order_by("A", "C", "B", config=ExecutionConfig(workers=2))
        .to_table()
    )
    assert par.rows == serial.rows
    assert par.ovcs == serial.ovcs


def test_spawn_start_method():
    table = _table(("A", "B", "C"), n_rows=600)
    spec = SortSpec.of("A", "C", "B")
    plan = analyze_order_modification(table.sort_spec, spec)
    serial = modify_sort_order(table, spec)
    result = parallel_modify(
        table, spec, plan, plan.strategy, workers=2, start_method="spawn"
    )
    assert result is not None
    _assert_identical(serial, result)


def test_worker_failure_surfaces_as_shard_error():
    from repro.parallel.collector import ShardError
    from repro.parallel.pool import ShardExecutor
    from repro.parallel.worker import ShardContext

    table = _table(("A", "B", "C"), n_rows=400)
    spec = SortSpec.of("A", "C", "B")
    plan = analyze_order_modification(table.sort_spec, spec)
    ctx = ShardContext(
        schema=table.schema,
        input_spec=table.sort_spec,
        output_spec=spec,
        plan=plan,
        strategy=Strategy.SEGMENT_SORT,
        use_fast=False,
        collect_stats=False,
    )
    executor = ShardExecutor(ctx, 2)
    # Codes whose offsets lie about segment boundaries make the shard
    # executor slice nonsense; ship rows with malformed codes instead.
    bad_payloads = [(table.rows[:100], None)]  # ovcs=None: worker must fail
    with pytest.raises(ShardError):
        for _ in executor.run(iter(bad_payloads)):
            pass


def test_resolve_workers_validation():
    from repro.parallel.api import resolve_workers

    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers("auto") >= 1
    with pytest.raises(ValueError):
        resolve_workers(True)
    with pytest.raises(ValueError):
        resolve_workers(-2)
    with pytest.raises(ValueError):
        resolve_workers("fast")
