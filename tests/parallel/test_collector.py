"""Ordered collector: reordering, buffering accounting, stats, errors."""

from __future__ import annotations

import pytest

from repro.ovc.stats import ComparisonStats
from repro.parallel.collector import OrderedCollector, ShardError


def chunk(shard, seq, rows, last=False, counters=None, telemetry=None):
    ovcs = [(0, r[0]) for r in rows]
    return ("chunk", shard, seq, rows, ovcs, last, counters, telemetry)


def test_in_order_chunks_pass_straight_through():
    c = OrderedCollector()
    out = c.add(chunk(0, 0, [(1,), (2,)], last=True))
    assert [rows for rows, _ in out] == [[(1,), (2,)]]
    assert c.emitted_shards == 1 and c.received_shards == 1
    assert c.peak_buffered_rows == 0
    assert not c.pending()


def test_out_of_order_shards_are_reordered():
    c = OrderedCollector()
    assert c.add(chunk(1, 0, [(3,)], last=True)) == []
    assert c.buffered_rows == 1 and c.peak_buffered_rows == 1
    out = c.add(chunk(0, 0, [(1,), (2,)], last=True))
    assert [rows for rows, _ in out] == [[(1,), (2,)], [(3,)]]
    assert c.buffered_rows == 0
    assert c.emitted_shards == 2
    assert not c.pending()


def test_out_of_order_chunks_within_a_shard():
    c = OrderedCollector()
    assert c.add(chunk(0, 1, [(2,)], last=True)) == []
    assert c.pending()
    out = c.add(chunk(0, 0, [(1,)]))
    assert [rows for rows, _ in out] == [[(1,)], [(2,)]]
    assert c.emitted_shards == 1
    assert not c.pending()


def test_interleaved_shards_emit_in_global_order():
    c = OrderedCollector()
    emitted = []
    messages = [
        chunk(2, 0, [(5,)], last=True),
        chunk(0, 0, [(1,)]),
        chunk(1, 1, [(4,)], last=True),
        chunk(0, 1, [(2,)], last=True),
        chunk(1, 0, [(3,)]),
    ]
    for m in messages:
        for rows, _ in c.add(m):
            emitted.extend(rows)
    assert emitted == [(1,), (2,), (3,), (4,), (5,)]
    assert c.emitted_shards == 3
    # At most two chunks were ever queued ahead of the frontier:
    # shard 2's only chunk and shard 1's second chunk.
    assert c.peak_buffered_rows == 2
    assert not c.pending()


def test_counters_merge_into_stats():
    s = ComparisonStats()
    s.column_comparisons += 7
    s.row_comparisons += 3
    t = ComparisonStats()
    t.column_comparisons += 5
    t.ovc_comparisons += 2

    c = OrderedCollector()
    c.add(chunk(0, 0, [(1,)], last=True, counters=s.as_dict()))
    c.add(chunk(1, 0, [(2,)], last=True, counters=t.as_dict()))
    assert c.stats.as_dict() == (s + t).as_dict()


def test_telemetry_collected_in_shard_order():
    c = OrderedCollector()
    tel1 = {"pid": 42, "shard": 1, "spans": [], "metrics": None}
    tel0 = {"pid": 41, "shard": 0, "spans": [], "metrics": None}
    c.add(chunk(1, 0, [(2,)], last=True, telemetry=tel1))
    c.add(chunk(0, 0, [(1,)], last=True, telemetry=tel0))
    assert c.telemetry_in_shard_order() == [(0, tel0), (1, tel1)]


def test_error_message_raises_shard_error():
    c = OrderedCollector()
    with pytest.raises(ShardError, match="shard 3 failed") as info:
        c.add(("error", 3, "Traceback: boom"))
    assert info.value.shard == 3
    assert "boom" in str(info.value)
