"""Shared-memory data plane: fidelity, fallbacks, lifecycle, dispatch.

The plane must be invisible in the output — rows, codes, and counters
bit-identical to serial — while every exit path (normal completion,
governed spill, kill/hang/corrupt faults, quarantine) leaves zero
``/dev/shm`` segments behind.  The ``workers="auto"`` tests pin the
calibration so adaptive dispatch is deterministic.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

import repro.parallel.planner as planner
from repro.core.analysis import analyze_order_modification
from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig, parse_faults
from repro.model import Schema, SortSpec, Table
from repro.obs import METRICS
from repro.ovc.derive import derive_ovcs
from repro.parallel import calibrate
from repro.parallel.api import parallel_modify, resolve_workers
from repro.parallel.shm import PlaneBuffers, plane_segment_names
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [12, 24, 48, 8]
SPEC_IN = SortSpec.of("A", "B", "C")
SPEC_OUT = SortSpec.of("A", "C", "B")

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=True) not in (None, "fork"),
    reason="the data plane needs the fork start method",
)


@pytest.fixture(autouse=True)
def _force_parallel(monkeypatch):
    monkeypatch.setattr(planner, "MIN_PARALLEL_ROWS", 0)


def _table(n_rows=1200, seed=0):
    return random_sorted_table(
        SCHEMA, SPEC_IN, n_rows, domains=DOMAINS, seed=seed
    )


def _run(table, spec=SPEC_OUT, **kwargs):
    plan = analyze_order_modification(table.sort_spec, spec)
    workers = kwargs.pop("workers", 2)
    return parallel_modify(table, spec, plan, plan.strategy, workers, **kwargs)


def _assert_identical(serial: Table, parallel: Table):
    assert parallel is not None
    assert parallel.rows == serial.rows
    assert parallel.ovcs == serial.ovcs


# ------------------------------------------------------------- fidelity


@pytest.mark.parametrize("workers", [2, 4])
def test_plane_bit_identical(workers):
    table = _table()
    serial = modify_sort_order(table, SPEC_OUT)
    result = _run(table, workers=workers, data_plane="shm")
    _assert_identical(serial, result)


def test_plane_is_the_default_under_fork():
    table = _table()
    METRICS.enable(clear=True)
    try:
        result = _run(table, workers=2)
        counters = METRICS.as_dict().get("counters", {})
    finally:
        METRICS.reset()
        METRICS.disable()
    _assert_identical(modify_sort_order(table, SPEC_OUT), result)
    assert counters.get("pool.shm_blocks", 0) >= 1
    assert counters.get("pool.ipc_seconds", -1.0) >= 0.0


def test_forced_pickle_protocol_still_identical():
    table = _table()
    serial = modify_sort_order(table, SPEC_OUT)
    METRICS.enable(clear=True)
    try:
        result = _run(table, workers=2, data_plane="pickle")
        counters = METRICS.as_dict().get("counters", {})
    finally:
        METRICS.reset()
        METRICS.disable()
    _assert_identical(serial, result)
    assert counters.get("pool.shm_blocks", 0) == 0


def test_segment_sort_strategy_over_plane():
    # (A, B) -> (A, C): drops B, sorts each A-segment from scratch.
    table = random_sorted_table(
        SCHEMA, SortSpec.of("A", "B"), 1500, domains=DOMAINS, seed=3
    )
    spec = SortSpec.of("A", "C")
    serial = modify_sort_order(table, spec)
    result = _run(table, spec=spec, workers=2, data_plane="shm")
    _assert_identical(serial, result)


def test_shm_forced_without_fast_engine_raises():
    table = _table()
    plan = analyze_order_modification(table.sort_spec, SPEC_OUT)
    with pytest.raises(ValueError, match="data_plane='shm'"):
        parallel_modify(
            table, SPEC_OUT, plan, plan.strategy, 2,
            engine="reference", data_plane="shm",
        )


def test_non_word_code_values_fall_back_to_pickled_chunks():
    # String key values rank-pack fine inside the kernels, but their
    # codes cannot ship as machine words — the plane worker must fall
    # back to legacy pickled chunks for those shards, bit-identically.
    names = ["ada", "bob", "cyd", "dee", "eve", "fay", "gus", "hal"]
    rows = sorted(
        ((i % 40, names[(i * 7) % len(names)], i % 5, i % 3) for i in range(800)),
        key=lambda r: (r[0], r[1], r[2]),
    )
    spec_in = SortSpec.of("A", "B", "C")
    ovcs = derive_ovcs(rows, spec_in.positions(SCHEMA), spec_in.directions)
    table = Table(SCHEMA, rows, spec_in, ovcs)
    spec = SortSpec.of("A", "C", "B")
    serial = modify_sort_order(table, spec)
    result = _run(table, spec=spec, workers=2, data_plane="shm")
    _assert_identical(serial, result)


# ------------------------------------------------------------- lifecycle


def test_no_segments_leaked_on_normal_completion():
    before = plane_segment_names()
    table = _table()
    result = _run(table, workers=2, data_plane="shm")
    assert result is not None
    assert plane_segment_names() == before


def test_no_segments_leaked_under_governed_spill(tmp_path):
    before = plane_segment_names()
    table = _table()
    baseline = modify_sort_order(table, SPEC_OUT)
    cfg = ExecutionConfig(
        workers=2, memory_budget="1KiB", spill_dir=str(tmp_path),
        data_plane="shm",
    )
    governed = modify_sort_order(table, SPEC_OUT, config=cfg)
    _assert_identical(baseline, governed)
    assert plane_segment_names() == before


@pytest.mark.parametrize(
    "faults,timeout_s",
    [
        ("kill@0x1", None),
        ("kill@0", None),  # fires every attempt: retries exhaust, quarantine
        ("hang@0x1", 0.5),
        ("corrupt@0x1", None),
    ],
)
def test_no_segments_leaked_after_faults(faults, timeout_s):
    before = plane_segment_names()
    table = _table()
    baseline = modify_sort_order(table, SPEC_OUT)
    cfg = ExecutionConfig(workers=2, shard_timeout_s=timeout_s)
    result = _run(
        table, workers=2, data_plane="shm", config=cfg,
        faults=parse_faults(faults),
    )
    _assert_identical(baseline, result)
    assert plane_segment_names() == before


def test_buffers_destroy_is_idempotent_and_releases_name():
    before = plane_segment_names()
    buffers = PlaneBuffers(64)
    assert buffers.name in plane_segment_names()
    buffers.write(0, 4, *(3 * [__import__("array").array("q", range(4))]), 0)
    buffers.destroy()
    assert plane_segment_names() == before


# ------------------------------------------------------- adaptive dispatch


def test_auto_resolves_serial_on_single_core(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert resolve_workers("auto") == 1
    table = _table()
    # Serial resolution must short-circuit before any pool machinery.
    from repro.parallel import pool

    def _boom(*a, **k):
        raise AssertionError("pool must not start for auto on one core")

    monkeypatch.setattr(pool.ShardExecutor, "_start", _boom)
    assert _run(table, workers="auto") is None


def test_auto_stays_serial_below_calibrated_threshold(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    cal = calibrate.Calibration(
        kernel_ns_row=1000.0, pickle_ns_row=3000.0, plane_ns_row=100.0,
        startup_s=1.0,  # enormous startup -> threshold clamps to 1 << 20
    )
    monkeypatch.setattr(calibrate, "_MEMO", cal)
    assert cal.min_parallel_rows(4) == 1 << 20
    table = _table(n_rows=1200)
    assert _run(table, workers="auto") is None


def test_auto_engages_above_calibrated_threshold(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    cal = calibrate.Calibration(
        kernel_ns_row=10000.0, pickle_ns_row=3000.0, plane_ns_row=100.0,
        startup_s=1e-6,  # negligible startup -> threshold clamps to 4096
    )
    monkeypatch.setattr(calibrate, "_MEMO", cal)
    assert cal.min_parallel_rows(2) == 4096
    table = _table(n_rows=5000)
    serial = modify_sort_order(table, SPEC_OUT)
    result = _run(table, workers="auto")
    _assert_identical(serial, result)


def test_explicit_worker_count_bypasses_adaptive_gate(monkeypatch):
    # Explicit ints are taken at face value even when calibration says
    # parallel cannot win — needed for benchmarks and tests on 1-cpu hosts.
    cal = calibrate.Calibration(
        kernel_ns_row=100.0, pickle_ns_row=3000.0, plane_ns_row=5000.0,
    )
    monkeypatch.setattr(calibrate, "_MEMO", cal)
    assert cal.min_parallel_rows(2) == 1 << 62
    table = _table()
    serial = modify_sort_order(table, SPEC_OUT)
    result = _run(table, workers=2)
    _assert_identical(serial, result)
