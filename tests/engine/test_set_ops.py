"""Tests for sort-based set operations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregate import Distinct
from repro.engine.scans import TableScan
from repro.engine.set_ops import Except, Intersect, UnionAll, UnionDistinct
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import verify_ovcs

SCHEMA = Schema.of("A", "B")
SPEC = SortSpec.of("A", "B")

rows_st = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=40)


def scan(rows) -> TableScan:
    table = Table(SCHEMA, sorted(rows), SPEC)
    table.with_ovcs()
    return TableScan(table)


@given(rows_st, rows_st)
@settings(max_examples=60, deadline=None)
def test_union_all(lrows, rrows):
    op = UnionAll(scan(lrows), scan(rrows))
    out = list(op)
    rows = [r for r, _o in out]
    assert rows == sorted(lrows + rrows)
    if rows:
        assert verify_ovcs(rows, [o for _r, o in out], (0, 1))


@given(rows_st, rows_st)
@settings(max_examples=60, deadline=None)
def test_intersect(lrows, rrows):
    op = Intersect(scan(lrows), scan(rrows))
    out = list(op)
    rows = [r for r, _o in out]
    expected = sorted(set(lrows) & set(rrows))
    assert rows == expected
    if rows:
        assert verify_ovcs(rows, [o for _r, o in out], (0, 1))


@given(rows_st, rows_st)
@settings(max_examples=60, deadline=None)
def test_except(lrows, rrows):
    op = Except(scan(lrows), scan(rrows))
    out = list(op)
    rows = [r for r, _o in out]
    assert rows == sorted(set(lrows) - set(rrows))
    if rows:
        assert verify_ovcs(rows, [o for _r, o in out], (0, 1))


@given(rows_st, rows_st)
@settings(max_examples=60, deadline=None)
def test_union_distinct(lrows, rrows):
    op = UnionDistinct(scan(lrows), scan(rrows))
    rows = [r for r, _o in op]
    assert rows == sorted(set(lrows) | set(rrows))


@given(rows_st, rows_st)
@settings(max_examples=30, deadline=None)
def test_coded_union_via_unionall_distinct(lrows, rrows):
    op = Distinct(UnionAll(scan(lrows), scan(rrows)))
    out = list(op)
    rows = [r for r, _o in out]
    assert rows == sorted(set(lrows) | set(rrows))
    if rows:
        assert verify_ovcs(rows, [o for _r, o in out], (0, 1))


def test_intersect_needs_no_column_comparisons_on_coded_duplicates():
    """Within-input duplicate detection comes from codes alone; only
    the cross-input group alignment compares keys."""
    left = scan([(1, 1)] * 5 + [(2, 2)] * 5)
    right = scan([(2, 2)] * 3)
    op = Intersect(left, right)
    rows = [r for r, _o in op]
    assert rows == [(2, 2)]
    # Alignment: (1,1) vs (2,2) and (2,2) vs (2,2): 2 group comparisons
    # of <= 2 columns each; duplicates cost nothing.
    assert op.stats.column_comparisons <= 4


def test_mismatched_inputs_rejected():
    other = Table(Schema.of("X", "B"), [], SortSpec.of("X", "B"))
    with pytest.raises(ValueError):
        UnionAll(scan([]), TableScan(other))
    unsorted = Table(SCHEMA, [(1, 1)])
    with pytest.raises(ValueError):
        Intersect(scan([]), TableScan(unsorted))
