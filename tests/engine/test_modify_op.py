"""Tests for the streaming (segment-at-a-time) modify operator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modify import modify_sort_order
from repro.engine.modify_op import StreamingModify
from repro.engine.scans import TableScan
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import verify_ovcs

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    max_size=60,
)

ORDERS = [
    ("A", "C", "B"),
    ("A", "B", "C"),
    ("B", "A", "C"),
    ("A", "C"),
    ("B",),
    ("C", "B", "A"),
]


def scan(rows) -> TableScan:
    table = Table(SCHEMA, sorted(rows), SPEC)
    table.with_ovcs()
    return TableScan(table)


@given(rows_st, st.sampled_from(ORDERS))
@settings(max_examples=60, deadline=None)
def test_streaming_agrees_with_materializing(rows, order):
    spec = SortSpec(order)
    table = Table(SCHEMA, sorted(rows), SPEC).with_ovcs()
    expected = modify_sort_order(table, spec)
    op = StreamingModify(scan(rows), spec)
    out = list(op)
    assert [r for r, _o in out] == expected.rows
    got_ovcs = [o for _r, o in out]
    assert verify_ovcs(
        [r for r, _o in out], got_ovcs, spec.positions(SCHEMA), spec.directions
    )


def test_memory_bounded_by_largest_segment():
    rows = [(a, b, c) for a in range(16) for b in range(4) for c in range(4)]
    op = StreamingModify(scan(rows), SortSpec.of("A", "C", "B"))
    out = list(op)
    assert len(out) == len(rows)
    # 16 segments of 16 rows each: the buffer never holds more.
    assert op.peak_segment_rows == 16


def test_whole_input_is_one_segment_without_prefix():
    rows = [(a, b, 0) for a in range(8) for b in range(8)]
    op = StreamingModify(scan(rows), SortSpec.of("B", "A"))
    list(op)
    assert op.peak_segment_rows == len(rows)


def test_noop_streams_through():
    rows = [(1, 2, 3), (2, 0, 0)]
    op = StreamingModify(scan(rows), SortSpec.of("A",))
    out = list(op)
    assert [r for r, _o in out] == sorted(rows)
    assert op.peak_segment_rows == 1
    assert verify_ovcs([r for r, _o in out], [o for _r, o in out], (0,))


def test_requires_ordered_coded_input():
    unordered = TableScan(Table(SCHEMA, [(1, 1, 1)]))
    with pytest.raises(ValueError):
        StreamingModify(unordered, SortSpec.of("A",))


def test_backward_plans_rejected():
    rows = [(2, 0, 0), (1, 0, 0)]
    table = Table(SCHEMA, rows, SortSpec.of("A DESC")).with_ovcs()
    with pytest.raises(ValueError, match="backward"):
        StreamingModify(TableScan(table), SortSpec.of("A"))
