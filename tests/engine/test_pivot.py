"""Tests for the sort-based pivot operator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.pivot import Pivot
from repro.engine.scans import TableScan
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import verify_ovcs

SCHEMA = Schema.of("region", "quarter", "amount")
SPEC = SortSpec.of("region", "quarter", "amount")


def scan(rows):
    table = Table(SCHEMA, sorted(rows), SPEC)
    table.with_ovcs()
    return TableScan(table)


def test_basic_pivot():
    rows = [
        ("east", 1, 10),
        ("east", 1, 5),
        ("east", 2, 7),
        ("west", 2, 3),
    ]
    op = Pivot(scan(rows), ["region"], "quarter", "amount", [1, 2], agg="sum")
    assert op.schema.columns == ("region", "quarter_1", "quarter_2")
    out = list(op)
    assert [r for r, _o in out] == [("east", 15, 7), ("west", None, 3)]
    rows_only = [r[:1] for r, _o in out]
    assert verify_ovcs(rows_only, [o for _r, o in out], (0,))


def test_pivot_boundaries_from_codes_only():
    rows = [("a", q, v) for q in (1, 2, 3) for v in range(20)]
    op = Pivot(scan(rows), ["region"], "quarter", "amount", [1, 2, 3])
    list(op)
    assert op.stats.column_comparisons == 0


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["n", "s"]),
            st.integers(1, 4),
            st.integers(0, 9),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_pivot_matches_reference(rows):
    op = Pivot(
        scan(rows), ["region"], "quarter", "amount", [1, 2, 3, 4], agg="sum"
    )
    got = {r[0]: r[1:] for r, _o in op}
    from collections import defaultdict

    expected: dict = defaultdict(lambda: [None] * 4)
    for region, quarter, amount in rows:
        cur = expected[region][quarter - 1]
        expected[region][quarter - 1] = amount if cur is None else cur + amount
    assert got == {k: tuple(v) for k, v in expected.items()}


def test_pivot_count_and_max():
    rows = [("a", 1, 10), ("a", 1, 20), ("a", 2, 5)]
    counts = Pivot(scan(rows), ["region"], "quarter", "amount", [1, 2], agg="count")
    assert counts.rows() == [("a", 2, 1)]
    maxes = Pivot(scan(rows), ["region"], "quarter", "amount", [1, 2], agg="max")
    assert maxes.rows() == [("a", 20, 5)]


def test_unexpected_pivot_value_raises():
    op = Pivot(scan([("a", 3, 1)]), ["region"], "quarter", "amount", [1, 2])
    with pytest.raises(ValueError, match="unexpected pivot value"):
        list(op)


def test_validation():
    with pytest.raises(ValueError):
        Pivot(scan([]), ["region"], "quarter", "amount", [1, 1])
    with pytest.raises(ValueError):
        Pivot(scan([]), ["region"], "quarter", "amount", [1], agg="median")
    unsorted = TableScan(Table(SCHEMA, []))
    with pytest.raises(ValueError):
        Pivot(unsorted, ["region"], "quarter", "amount", [1])
