"""Tests for scans, filter, project, limit, top-k."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.misc import Filter, Limit, Project, TopK
from repro.engine.scans import BTreeScan, ColumnStoreScan, TableScan
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import verify_ovcs
from repro.storage.btree import BTree
from repro.storage.colstore import ColumnStore

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    max_size=40,
)


def make_table(rows) -> Table:
    table = Table(SCHEMA, sorted(rows), SPEC)
    table.with_ovcs()
    return table


def test_table_scan_yields_codes():
    table = make_table([(1, 2, 3), (1, 2, 4)])
    got = list(TableScan(table))
    assert got == [((1, 2, 3), (0, 1)), ((1, 2, 4), (2, 4))]


def test_scans_agree_across_storage_formats():
    rows = sorted((i % 3, i % 5, i % 7) for i in range(100))
    table = make_table(rows)
    t = TableScan(table)
    b = BTreeScan(BTree.bulk_load(table, order=8))
    c = ColumnStoreScan(ColumnStore.from_table(table))
    assert list(t) == list(b) == list(c)


@given(rows_st, st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_filter_repairs_codes_via_max_folding(rows, threshold):
    """Filtered streams stay correctly coded with no comparisons."""
    table = make_table(rows)
    op = Filter(TableScan(table), lambda r: r[1] >= threshold)
    out_rows, out_ovcs = [], []
    for row, ovc in op:
        out_rows.append(row)
        out_ovcs.append(ovc)
    assert out_rows == [r for r in table.rows if r[1] >= threshold]
    assert verify_ovcs(out_rows, out_ovcs, (0, 1, 2))
    assert op.stats.column_comparisons == 0


def test_project_keeps_ordering_prefix():
    table = make_table([(1, 2, 3), (1, 3, 0), (2, 0, 0)])
    op = Project(TableScan(table), ["A", "B"])
    assert op.ordering == SortSpec.of("A", "B")
    rows, ovcs = zip(*op)
    assert rows == ((1, 2), (1, 3), (2, 0))
    assert verify_ovcs(rows, ovcs, (0, 1))


def test_project_loses_ordering_without_prefix():
    table = make_table([(1, 2, 3)])
    op = Project(TableScan(table), ["B", "C"])
    assert op.ordering is None
    assert list(op) == [((2, 3), None)]


def test_project_renumbers_duplicates():
    table = make_table([(1, 2, 3), (1, 2, 4)])
    op = Project(TableScan(table), ["A", "B"])
    got = list(op)
    # The second row was (2, 4) under the 3-column key; under A,B it is
    # an exact duplicate.
    assert got[1] == ((1, 2), (2, 0))


def test_limit():
    table = make_table([(i, 0, 0) for i in range(10)])
    assert len(list(Limit(TableScan(table), 3))) == 3
    assert list(Limit(TableScan(table), 0)) == []
    with pytest.raises(ValueError):
        Limit(TableScan(table), -1)


@given(rows_st, st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_topk_matches_sorted_head(rows, k):
    table = Table(SCHEMA, list(rows))  # unsorted, no codes
    op = TopK(TableScan(table), SortSpec.of("B", "C"), k)
    got = [row for row, _ovc in op]
    expected = sorted(rows, key=lambda r: (r[1], r[2]))[:k]
    assert got == expected


def test_topk_on_sorted_input_degenerates_to_limit():
    table = make_table([(i, 0, 0) for i in range(10)])
    op = TopK(TableScan(table), SortSpec.of("A",), 4)
    got = [row for row, _ovc in op]
    assert got == [(i, 0, 0) for i in range(4)]


def test_explain_renders_plan_tree():
    table = make_table([(1, 2, 3)])
    op = Limit(Filter(TableScan(table), lambda r: True), 1)
    text = op.explain()
    assert "Limit" in text and "Filter" in text and "TableScan" in text


def test_to_table_roundtrip():
    table = make_table([(1, 2, 3), (2, 0, 0)])
    back = TableScan(table).to_table()
    assert back.rows == table.rows
    assert back.ovcs == table.ovcs
