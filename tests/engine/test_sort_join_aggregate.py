"""Tests for Sort, MergeJoin, GroupBy, Distinct, Aggregate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregate import Aggregate, Distinct, GroupBy
from repro.engine.merge_join import MergeJoin
from repro.engine.scans import TableScan
from repro.engine.sort_op import Sort
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import verify_ovcs

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    max_size=40,
)


def make_table(rows, sort=True) -> Table:
    if sort:
        table = Table(SCHEMA, sorted(rows), SPEC)
        table.with_ovcs()
    else:
        table = Table(SCHEMA, list(rows))
    return table


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_sort_passthrough_when_satisfied(rows):
    table = make_table(rows)
    op = Sort(TableScan(table), SortSpec.of("A", "B"))
    got = [row for row, _ovc in op]
    assert got == table.rows
    assert op.executed == "passthrough"


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_sort_modifies_related_order(rows):
    table = make_table(rows)
    op = Sort(TableScan(table), SortSpec.of("A", "C", "B"))
    out = list(op)
    got = [row for row, _ovc in out]
    assert got == sorted(table.rows, key=lambda r: (r[0], r[2], r[1]))
    assert op.executed == "modify_sort_order"
    assert verify_ovcs(got, [o for _r, o in out], (0, 2, 1))


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_sort_unordered_input(rows):
    table = make_table(rows, sort=False)
    op = Sort(TableScan(table), SortSpec.of("B", "C"))
    got = [row for row, _ovc in op]
    assert got == sorted(rows, key=lambda r: (r[1], r[2]))
    assert op.executed == "internal_sort"


def test_sort_external_path():
    import random

    rng = random.Random(0)
    rows = [(rng.randrange(50), rng.randrange(50), 0) for _ in range(500)]
    table = make_table(rows, sort=False)
    op = Sort(TableScan(table), SortSpec.of("A", "B"), memory_capacity=64)
    got = [row for row, _ovc in op]
    assert got == sorted(rows, key=lambda r: (r[0], r[1]))
    assert op.executed == "external_sort"


def _join_tables():
    left_schema = Schema.of("k", "lv")
    right_schema = Schema.of("k", "rv")
    left = Table(left_schema, [(1, 10), (2, 20), (2, 21), (4, 40)], SortSpec.of("k"))
    right = Table(right_schema, [(2, 200), (2, 201), (3, 300), (4, 400)], SortSpec.of("k"))
    left.with_ovcs()
    right.with_ovcs()
    return left, right


def test_merge_join_inner_with_duplicates():
    left, right = _join_tables()
    join = MergeJoin(TableScan(left), TableScan(right), ["k"], ["k"])
    rows = [row for row, _ovc in join]
    assert rows == [
        (2, 20, 2, 200),
        (2, 20, 2, 201),
        (2, 21, 2, 200),
        (2, 21, 2, 201),
        (4, 40, 4, 400),
    ]
    assert join.schema.columns == ("k", "lv", "r_k", "rv")


def test_merge_join_output_codes_valid():
    left, right = _join_tables()
    join = MergeJoin(TableScan(left), TableScan(right), ["k"], ["k"])
    out = list(join)
    rows = [r for r, _o in out]
    ovcs = [o for _r, o in out]
    assert verify_ovcs(rows, ovcs, (0,))


def test_merge_join_requires_sorted_inputs():
    left, right = _join_tables()
    unsorted = Table(left.schema, left.rows)  # no ordering declared
    with pytest.raises(ValueError):
        MergeJoin(TableScan(unsorted), TableScan(right), ["k"], ["k"])


@given(
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 9)), max_size=30),
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 9)), max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_merge_join_matches_nested_loops(lrows, rrows):
    ls = Schema.of("k", "lv")
    rs = Schema.of("k", "rv")
    left = Table(ls, sorted(lrows), SortSpec.of("k", "lv")).with_ovcs()
    right = Table(rs, sorted(rrows), SortSpec.of("k", "rv")).with_ovcs()
    join = MergeJoin(TableScan(left), TableScan(right), ["k"], ["k"])
    got = [row for row, _ovc in join]
    expected = [
        l + r
        for l in sorted(lrows)
        for r in sorted(rrows)
        if l[0] == r[0]
    ]
    assert sorted(got) == sorted(expected)


def test_group_by_in_stream():
    rows = [(1, 1, 5), (1, 1, 7), (1, 2, 1), (2, 0, 0)]
    table = make_table(rows)
    op = GroupBy(
        TableScan(table), ["A", "B"], [("count", None), ("sum", "C"), ("max", "C")]
    )
    got = list(op)
    assert [r for r, _o in got] == [(1, 1, 2, 12, 7), (1, 2, 1, 1, 1), (2, 0, 1, 0, 0)]
    # Group boundaries came from codes: zero column comparisons.
    assert op.stats.column_comparisons == 0
    rows_only = [r[:2] for r, _o in got]
    assert verify_ovcs(rows_only, [o for _r, o in got], (0, 1))


def test_group_by_requires_compatible_order():
    table = make_table([(1, 1, 1)])
    with pytest.raises(ValueError):
        GroupBy(TableScan(table), ["B"])


def test_distinct_drops_duplicates_without_comparisons():
    rows = [(1, 1, 1), (1, 1, 1), (1, 2, 0), (1, 2, 0), (3, 0, 0)]
    table = make_table(rows)
    op = Distinct(TableScan(table))
    got = [r for r, _o in op]
    assert got == [(1, 1, 1), (1, 2, 0), (3, 0, 0)]
    assert op.stats.column_comparisons == 0


def test_distinct_on_key_prefix():
    rows = [(1, 1, 1), (1, 1, 2), (1, 2, 0), (2, 0, 0)]
    table = make_table(rows)
    op = Distinct(TableScan(table), ["A"])
    got = [r for r, _o in op]
    assert got == [(1, 1, 1), (2, 0, 0)]


def test_scalar_aggregate():
    rows = [(1, 2, 3), (4, 5, 6)]
    table = make_table(rows)
    op = Aggregate(
        TableScan(table),
        [("count", None), ("sum", "C"), ("min", "A"), ("avg", "B")],
    )
    got = list(op)
    assert got == [((2, 9, 1, 3.5), None)]


def test_group_by_avg_first_last():
    rows = [(1, 0, 2), (1, 0, 4), (2, 0, 9)]
    table = make_table(rows)
    op = GroupBy(
        TableScan(table), ["A"], [("avg", "C"), ("first", "C"), ("last", "C")]
    )
    got = [r for r, _o in op]
    assert got == [(1, 3.0, 2, 4), (2, 9.0, 9, 9)]
