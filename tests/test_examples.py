"""Smoke tests: every example script runs to completion.

Examples are executed in-process with reduced sizes monkey-patched in
where they would otherwise dominate test time.
"""

from __future__ import annotations

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: Path):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples should narrate what they do"
