"""Tests for the B+-tree: ordering, code supply, skip scans (Figure 4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.storage.btree import BTree

SCHEMA = Schema.of("A", "B")
SPEC = SortSpec.of("A", "B")

rows_st = st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=120)


def test_bulk_load_scan_order_and_codes():
    rows = sorted((i % 7, i % 11) for i in range(500))
    table = Table(SCHEMA, rows, SPEC)
    tree = BTree.bulk_load(table, order=8)
    got_rows, got_ovcs = zip(*tree.scan())
    assert list(got_rows) == rows
    assert verify_ovcs(got_rows, got_ovcs, (0, 1))
    assert tree.height > 1


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_insert_maintains_order_and_codes(rows):
    tree = BTree(SCHEMA, SPEC, order=6)
    for row in rows:
        tree.insert(row)
    got = [row for row, _ovc in tree.scan()]
    assert got == sorted(rows)
    ovcs = [ovc for _row, ovc in tree.scan()]
    assert verify_ovcs(got, ovcs, (0, 1))


@given(rows_st)
@settings(max_examples=30, deadline=None)
def test_search(rows):
    tree = BTree(SCHEMA, SPEC, order=6)
    for row in rows:
        tree.insert(row)
    for row in rows[:10]:
        assert tree.search(row)
    assert not tree.search((99, 99))


def test_range_scan():
    rows = sorted((i, 0) for i in range(100))
    tree = BTree.bulk_load(Table(SCHEMA, rows, SPEC), order=8)
    got = list(tree.range_scan((10, 0), (20, 0)))
    assert got == [(i, 0) for i in range(10, 20)]
    assert list(tree.range_scan(None, (3, 0))) == [(0, 0), (1, 0), (2, 0)]
    assert list(tree.range_scan((97, 0), None)) == [(97, 0), (98, 0), (99, 0)]


def test_distinct_prefixes_via_skip_scan():
    rng = random.Random(0)
    rows = sorted((rng.randrange(6), rng.randrange(50)) for _ in range(300))
    tree = BTree.bulk_load(Table(SCHEMA, rows, SPEC), order=8)
    expected = sorted({(a,) for a, _b in rows})
    assert tree.distinct_prefixes(1) == expected
    # The skip scan touches far fewer nodes than a full scan would.
    reads_before = tree.node_reads
    tree.distinct_prefixes(1)
    skip_cost = tree.node_reads - reads_before
    full_scan_leaves = sum(1 for _ in tree._iter_leaves())
    assert skip_cost <= full_scan_leaves * tree.height


def test_figure4_prefix_run_cursors_merge():
    """Figure 4: per-run cursors straight out of the index merge into
    the B,A order — the b-tree supplies rows *and* codes."""
    rng = random.Random(1)
    rows = sorted((rng.randrange(5), rng.randrange(30)) for _ in range(200))
    tree = BTree.bulk_load(Table(SCHEMA, rows, SPEC), order=8)
    cursors = tree.prefix_run_cursors(1)
    assert len(cursors) == len({a for a, _b in rows})
    collected = []
    for cursor in cursors:
        run = list(cursor)
        run_rows = [r for r, _o in run]
        # Each run holds one distinct A and is sorted on B.
        assert len({a for a, _b in run_rows}) == 1
        assert run_rows == sorted(run_rows)
        collected.extend(run_rows)
    assert sorted(collected) == rows


def test_bad_order_rejected():
    with pytest.raises(ValueError):
        BTree(SCHEMA, SPEC, order=2)


def test_empty_tree():
    tree = BTree(SCHEMA, SPEC)
    assert list(tree.scan()) == []
    assert not tree.search((1, 1))
    assert tree.distinct_prefixes(1) == []
