"""Tests for the LSM forest (hypothesis 8) and page accounting."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import verify_ovcs
from repro.ovc.stats import ComparisonStats
from repro.storage.lsm import LsmForest
from repro.storage.pages import PageManager, row_size_bytes

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
    max_size=40,
)


@given(st.lists(rows_st, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_forest_merged_scan(batches):
    forest = LsmForest(SCHEMA, SPEC)
    for batch in batches:
        forest.ingest(batch)
    merged = forest.scan_merged()
    assert merged.rows == sorted(r for b in batches for r in b)
    assert verify_ovcs(merged.rows, merged.ovcs, (0, 1, 2))


@given(st.lists(rows_st, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_forest_order_modification_across_partitions(batches):
    """Hypothesis 8: sort the whole forest into A,C,B one aligned
    segment at a time."""
    forest = LsmForest(SCHEMA, SPEC)
    for batch in batches:
        forest.ingest(batch)
    new_order = SortSpec.of("A", "C", "B")
    stats = ComparisonStats()
    result = forest.modify_order_segmented(new_order, stats)
    all_rows = [r for b in batches for r in b]
    assert result.rows == sorted(all_rows, key=lambda r: (r[0], r[2], r[1]))
    assert verify_ovcs(
        result.rows, result.ovcs, new_order.positions(SCHEMA)
    )


def test_aligned_segments_union_across_partitions():
    forest = LsmForest(SCHEMA, SPEC)
    forest.ingest([(1, 0, 0), (3, 0, 0)])
    forest.ingest([(2, 0, 0), (3, 1, 1)])
    assert forest.aligned_segments(1) == [(1,), (2,), (3,)]


def test_compaction_reduces_partitions():
    forest = LsmForest(SCHEMA, SPEC)
    for i in range(4):
        forest.ingest([(i, j, 0) for j in range(5)])
    assert forest.partition_count == 4
    merged = forest.compact()
    assert forest.partition_count == 1
    assert len(merged) == 20


def test_modification_needs_shared_prefix():
    forest = LsmForest(SCHEMA, SPEC)
    forest.ingest([(1, 2, 3)])
    with pytest.raises(ValueError):
        forest.modify_order_segmented(SortSpec.of("C", "B", "A"))


def test_add_partition_validates():
    forest = LsmForest(SCHEMA, SPEC)
    with pytest.raises(ValueError):
        forest.add_partition(Table(Schema.of("X"), [], SortSpec.of("X")))


def test_row_size_model():
    assert row_size_bytes((1, 2, 3)) == 24
    assert row_size_bytes(("abc", b"1234", 5)) == 3 + 4 + 8


def test_page_manager_accounting():
    pages = PageManager(page_bytes=64)
    run = pages.spill_run([(i, i, i) for i in range(10)])  # 240 bytes
    assert pages.stats.pages_written == 4  # ceil(240/64)
    assert pages.stats.bytes_written == 240
    run.read()
    assert pages.stats.pages_read == 4
    assert pages.stats.bytes_read == 240
    pages.charge_scan([(1, 2, 3)])
    assert pages.stats.pages_read == 5


def test_empty_spill():
    pages = PageManager()
    run = pages.spill_run([])
    assert pages.stats.pages_written == 0
    assert list(run) == []
