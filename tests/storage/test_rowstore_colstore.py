"""Tests for prefix-truncated row storage and the RLE column store,
including hypothesis 6 (comparison-free transposition)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs
from repro.storage.colstore import ColumnStore
from repro.storage.rowstore import PrefixTruncatedStore

SCHEMA = Schema.of("A", "B", "C", "payload")
SPEC = SortSpec.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(
        st.integers(0, 3), st.integers(0, 3), st.integers(0, 3), st.integers(0, 99)
    ),
    max_size=50,
)


def make_table(rows) -> Table:
    rows = sorted(rows, key=lambda r: r[:3])
    table = Table(SCHEMA, rows, SPEC)
    table.with_ovcs()
    return table


@given(rows_st)
@settings(max_examples=60, deadline=None)
def test_rowstore_roundtrip(rows):
    table = make_table(rows)
    store = PrefixTruncatedStore.from_table(table)
    back = store.to_table()
    assert back.rows == table.rows
    assert back.ovcs == table.ovcs


@given(rows_st)
@settings(max_examples=60, deadline=None)
def test_colstore_roundtrip(rows):
    table = make_table(rows)
    store = ColumnStore.from_table(table)
    back = store.to_table()
    assert back.rows == table.rows
    assert back.ovcs == table.ovcs


@given(rows_st)
@settings(max_examples=60, deadline=None)
def test_rle_and_prefix_truncation_suppress_identical_values(rows):
    """Figure 1: both formats store exactly the same key values —
    sum over rows of (arity - offset)."""
    table = make_table(rows)
    row_store = PrefixTruncatedStore.from_table(table)
    col_store = ColumnStore.from_table(table)
    expected = sum(3 - min(off, 3) for off, _v in table.ovcs)
    assert row_store.stored_key_values() == expected
    assert col_store.stored_key_values() == expected


def test_colstore_segment_boundaries_from_run_lengths():
    rows = [(1, 1, 0, 0), (1, 2, 0, 0), (2, 1, 0, 0), (2, 1, 1, 0)]
    table = make_table(rows)
    store = ColumnStore.from_table(table)
    assert store.segment_boundaries(1) == [0, 2]
    assert store.segment_boundaries(2) == [0, 1, 2]


def test_colstore_rejects_unsorted():
    import pytest

    table = Table(SCHEMA, [(1, 1, 1, 1)])
    with pytest.raises(ValueError):
        ColumnStore.from_table(table)
    with pytest.raises(ValueError):
        PrefixTruncatedStore.from_table(table)


def test_duplicates_cost_no_storage():
    rows = [(1, 1, 1, 5)] * 4
    table = make_table(rows)
    store = PrefixTruncatedStore.from_table(table)
    # First row stores 3 key values; duplicates store none.
    assert store.stored_key_values() == 3
    col = ColumnStore.from_table(table)
    assert col.stored_key_values() == 3
    # Payload column remains uncompressed.
    assert len(col.plain_columns["payload"]) == 4


def test_colstore_scan_matches_derivation():
    """Transposition yields codes equal to a fresh (comparison-heavy)
    derivation, but computes them from run boundaries alone."""
    rows = [(1, 1, 0, 9), (1, 1, 0, 8), (1, 2, 2, 7), (3, 0, 0, 6)]
    table = make_table(rows)
    store = ColumnStore.from_table(table)
    got = [ovc for _row, ovc in store.iter_rows_with_ovcs()]
    assert got == derive_ovcs(table.rows, (0, 1, 2))
