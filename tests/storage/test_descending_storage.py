"""Storage structures under descending sort directions — the code
paths that normalize values on reconstruction."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.storage.btree import BTree
from repro.storage.colstore import ColumnStore
from repro.storage.rowstore import PrefixTruncatedStore

SCHEMA = Schema.of("A", "B", "pay")
SPEC = SortSpec.of("A DESC", "B")

rows_st = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 50)),
    max_size=40,
)


def build(rows) -> Table:
    rows = sorted(rows, key=SPEC.key_for(SCHEMA))
    table = Table(SCHEMA, rows, SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1), SPEC.directions)
    return table


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_rowstore_roundtrip_desc(rows):
    table = build(rows)
    back = PrefixTruncatedStore.from_table(table).to_table()
    assert back.rows == table.rows
    assert back.ovcs == table.ovcs


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_colstore_roundtrip_desc(rows):
    table = build(rows)
    back = ColumnStore.from_table(table).to_table()
    assert back.rows == table.rows
    assert back.ovcs == table.ovcs


@given(rows_st)
@settings(max_examples=30, deadline=None)
def test_btree_desc_scan_order_and_codes(rows):
    tree = BTree(SCHEMA, SPEC, order=6)
    for row in rows:
        tree.insert(row)
    got = [row for row, _ovc in tree.scan()]
    assert got == sorted(rows, key=SPEC.key_for(SCHEMA))
    ovcs = [ovc for _row, ovc in tree.scan()]
    assert verify_ovcs(got, ovcs, (0, 1), SPEC.directions)
