"""Tests for the partitioned b-tree (hypothesis 8's second structure)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec
from repro.ovc.derive import verify_ovcs
from repro.ovc.stats import ComparisonStats
from repro.storage.partitioned_btree import PartitionedBTree

SCHEMA = Schema.of("A", "B")
SPEC = SortSpec.of("A", "B")

batches_st = st.lists(
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25),
    min_size=1,
    max_size=4,
)


@given(batches_st)
@settings(max_examples=40, deadline=None)
def test_partitions_are_sorted_runs(batches):
    tree = PartitionedBTree(SCHEMA, SPEC, order=8)
    for batch in batches:
        tree.ingest(batch)
    assert tree.partition_count == len(batches)
    runs = tree.partition_runs()
    assert len(runs) == sum(1 for b in batches if b)
    it = iter(runs)
    for batch in batches:
        if not batch:
            continue
        rows, ovcs = next(it)
        assert rows == sorted(batch)
        assert verify_ovcs(rows, ovcs, (0, 1))


@given(batches_st)
@settings(max_examples=40, deadline=None)
def test_merged_scan(batches):
    tree = PartitionedBTree(SCHEMA, SPEC, order=8)
    for batch in batches:
        tree.ingest(batch)
    merged = tree.scan_merged()
    assert merged.rows == sorted(r for b in batches for r in b)
    if merged.rows:
        assert verify_ovcs(merged.rows, merged.ovcs, (0, 1))


def test_partition_scan_isolates_partitions():
    tree = PartitionedBTree(SCHEMA, SPEC, order=8)
    p0 = tree.ingest([(3, 0), (1, 0)])
    p1 = tree.ingest([(2, 0)])
    assert list(tree.partition_scan(p0)) == [(1, 0), (3, 0)]
    assert list(tree.partition_scan(p1)) == [(2, 0)]
    assert len(tree) == 3


def test_order_modification_via_forest_view():
    rng = random.Random(2)
    tree = PartitionedBTree(Schema.of("A", "B", "C"), SortSpec.of("A", "B", "C"))
    for _ in range(3):
        tree.ingest(
            [
                (rng.randrange(4), rng.randrange(4), rng.randrange(4))
                for _ in range(50)
            ]
        )
    forest = tree.to_forest()
    stats = ComparisonStats()
    result = forest.modify_order_segmented(SortSpec.of("A", "C", "B"), stats)
    all_rows = [r for p in forest.partitions for r in p.rows]
    assert result.rows == sorted(all_rows, key=lambda r: (r[0], r[2], r[1]))


def test_reserved_column_rejected():
    with pytest.raises(ValueError):
        PartitionedBTree(
            Schema.of("__partition", "B"), SortSpec.of("B")
        )
