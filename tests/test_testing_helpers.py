"""Tests for the validation helpers in repro.testing."""

from __future__ import annotations

import pytest

from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec, Table
from repro.ovc.stats import ComparisonStats
from repro.testing import (
    ValidationError,
    assert_sorted_on,
    assert_table_valid,
    comparison_budget,
)

SCHEMA = Schema.of("A", "B")


def test_assert_sorted_on():
    assert_sorted_on([(1, 2), (2, 1)], SortSpec.of("A"), SCHEMA)
    with pytest.raises(ValidationError, match="not sorted"):
        assert_sorted_on([(2, 1), (1, 2)], SortSpec.of("A"), SCHEMA)


def test_assert_table_valid_accepts_good_table():
    table = Table(SCHEMA, [(1, 1), (1, 2)], SortSpec.of("A", "B")).with_ovcs()
    assert_table_valid(table)


def test_assert_table_valid_catches_lies():
    table = Table(SCHEMA, [(1, 1), (1, 2)], SortSpec.of("A", "B")).with_ovcs()
    table.ovcs[1] = (0, 1)  # forged code
    with pytest.raises(ValidationError, match="code mismatch"):
        assert_table_valid(table)

    bad_order = Table(SCHEMA, [(2, 0), (1, 0)], SortSpec.of("A"))
    with pytest.raises(ValidationError):
        assert_table_valid(bad_order)

    no_spec = Table(SCHEMA, [(1, 1)])
    with pytest.raises(ValidationError, match="no sort order"):
        assert_table_valid(no_spec)

    short = Table(SCHEMA, [(1, 1), (1, 2)], SortSpec.of("A"))
    short.ovcs = [(0, 1)]
    # Bypass the constructor check deliberately to test the validator.
    with pytest.raises(ValidationError, match="codes for"):
        assert_table_valid(short)


def test_comparison_budget_passes_within_bounds():
    table = Table(
        SCHEMA, [(a, b) for a in range(4) for b in range(4)],
        SortSpec.of("A", "B"),
    ).with_ovcs()
    stats = ComparisonStats()
    with comparison_budget(stats, column_comparisons=0):
        modify_sort_order(table, SortSpec.of("B", "A"), stats=stats)


def test_comparison_budget_detects_overruns():
    stats = ComparisonStats()
    with pytest.raises(ValidationError, match="column comparison budget"):
        with comparison_budget(stats, column_comparisons=2):
            stats.column_comparisons += 3
    with pytest.raises(ValidationError, match="row comparison budget"):
        with comparison_budget(stats, row_comparisons=1):
            stats.row_comparisons += 5


def test_comparison_budget_only_counts_inside_block():
    stats = ComparisonStats()
    stats.column_comparisons = 100  # pre-existing spend is not charged
    with comparison_budget(stats, column_comparisons=1):
        stats.column_comparisons += 1
