"""Table 1: compile-time case detection for all eight prototype cases
plus graceful fallbacks."""

from __future__ import annotations

import pytest

from repro.core.analysis import Strategy, analyze_order_modification
from repro.model import SortSpec


def spec(*names):
    return SortSpec.of(*names)


def analyze(inp, out):
    return analyze_order_modification(spec(*inp), spec(*out))


class TestTable1Cases:
    def test_case0_identity(self):
        plan = analyze(("A", "B"), ("A", "B"))
        assert plan.strategy is Strategy.NOOP
        assert plan.case_id == 0

    def test_case0_prefix(self):
        plan = analyze(("A", "B"), ("A",))
        assert plan.strategy is Strategy.NOOP
        assert plan.case_id == 0

    def test_case1_extension(self):
        plan = analyze(("A",), ("A", "B"))
        assert plan.strategy is Strategy.SEGMENT_SORT
        assert plan.case_id == 1
        assert plan.prefix_len == 1

    def test_case2_suffix(self):
        plan = analyze(("A", "B"), ("B",))
        assert plan.strategy is Strategy.MERGE_RUNS
        assert plan.case_id == 2
        assert plan.infix_dropped
        assert plan.infix.names == ("A",)
        assert plan.merge_keys.names == ("B",)

    def test_case3_rotation(self):
        plan = analyze(("A", "B"), ("B", "A"))
        assert plan.strategy is Strategy.MERGE_RUNS
        assert plan.case_id == 3
        assert not plan.infix_dropped

    def test_case4(self):
        plan = analyze(("A", "B", "C"), ("A", "C"))
        assert plan.strategy is Strategy.COMBINED
        assert plan.case_id == 4
        assert plan.infix_dropped
        assert plan.prefix_len == 1

    def test_case5(self):
        plan = analyze(("A", "B", "C"), ("A", "C", "B"))
        assert plan.strategy is Strategy.COMBINED
        assert plan.case_id == 5
        assert plan.infix.names == ("B",)
        assert plan.merge_keys.names == ("C",)

    def test_case6(self):
        plan = analyze(("A", "B", "C", "D"), ("A", "C", "D"))
        assert plan.strategy is Strategy.COMBINED
        assert plan.case_id == 6
        assert plan.infix_dropped
        # The trailing column folds into the merge keys.
        assert plan.merge_keys.names == ("C", "D")

    def test_case7(self):
        plan = analyze(("A", "B", "C", "D"), ("A", "C", "B", "D"))
        assert plan.strategy is Strategy.COMBINED
        assert plan.case_id == 7
        assert plan.tail.names == ("D",)


class TestGeneralization:
    def test_multi_column_lists(self):
        """Letters may be lists: A=(a1,a2), B=(b1,b2), C=(c1)."""
        plan = analyze(
            ("a1", "a2", "b1", "b2", "c1"), ("a1", "a2", "c1", "b1", "b2")
        )
        assert plan.strategy is Strategy.COMBINED
        assert plan.prefix_len == 2
        assert plan.infix.names == ("b1", "b2")
        assert plan.merge_keys.names == ("c1",)

    def test_intro_example_abcd_to_acbd(self):
        """The introduction's A,B,C,D -> A,C,B,D example."""
        plan = analyze(("A", "B", "C", "D"), ("A", "C", "B", "D"))
        assert plan.strategy is Strategy.COMBINED

    def test_directions_must_match_for_prefix(self):
        plan = analyze_order_modification(
            SortSpec.of("A DESC", "B"),
            SortSpec.of("A", "B"),
            allow_backward=False,
        )
        assert plan.prefix_len == 0
        assert plan.strategy is Strategy.FULL_SORT

    def test_direction_mismatch_recovered_by_backward_scan(self):
        # Reading (A DESC, B) backwards gives (A, B DESC): the desired
        # (A, B) then shares the prefix A — segmented sorting applies.
        plan = analyze_order_modification(
            SortSpec.of("A DESC", "B"), SortSpec.of("A", "B")
        )
        assert plan.backward
        assert plan.strategy is Strategy.SEGMENT_SORT
        assert plan.prefix_len == 1

    def test_matching_descending_prefix(self):
        plan = analyze_order_modification(
            SortSpec.of("A DESC", "B", "C"), SortSpec.of("A DESC", "C", "B")
        )
        assert plan.strategy is Strategy.COMBINED
        assert plan.prefix_len == 1

    def test_shared_prefix_only_falls_back_to_segment_sort(self):
        plan = analyze(("A", "B", "C"), ("A", "C", "X"))
        assert plan.strategy is Strategy.SEGMENT_SORT
        assert plan.prefix_len == 1

    def test_unrelated_orders_full_sort(self):
        plan = analyze(("A", "B"), ("X", "Y"))
        assert plan.strategy is Strategy.FULL_SORT

    def test_extra_existing_tail_is_harmless(self):
        # Existing (A,B,C,D,E) -> desired (A,C,B): D,E beyond the
        # desired key merely add sortedness.
        plan = analyze(("A", "B", "C", "D", "E"), ("A", "C", "B"))
        assert plan.strategy is Strategy.COMBINED
        assert plan.merge_keys.names == ("C",)
        assert plan.tail.names == ()

    def test_dropped_infix_with_partial_block(self):
        # (A,B,C,D) -> (A,C): desired continues inside the existing
        # order but stops early.
        plan = analyze(("A", "B", "C", "D"), ("A", "C"))
        assert plan.strategy is Strategy.COMBINED
        assert plan.infix_dropped
        assert plan.merge_keys.names == ("C",)

    def test_describe_is_readable(self):
        plan = analyze(("A", "B", "C"), ("A", "C", "B"))
        text = plan.describe()
        assert "combined" in text and "case=5" in text
