"""Tests for the cost model behind the auto strategy choice."""

from __future__ import annotations

from repro.core.analysis import Strategy, analyze_order_modification
from repro.core.cost import CostModel, estimate_costs, sort_comparisons
from repro.model import SortSpec


def plan(inp, out):
    return analyze_order_modification(SortSpec.of(*inp), SortSpec.of(*out))


def test_sort_comparisons_monotonic():
    assert sort_comparisons(0) == 0
    assert sort_comparisons(1) == 0
    assert sort_comparisons(1 << 10) < sort_comparisons(1 << 20)


def test_combined_beats_alternatives_with_structure():
    model = CostModel(
        n_rows=1 << 20, n_segments=1 << 8, n_runs=1 << 14
    )
    combined = model.combined().total
    assert combined < model.segment_sort().total
    assert combined < model.merge_runs().total
    assert combined < model.full_sort().total


def test_merge_runs_degrades_with_many_runs():
    few = CostModel(n_rows=1 << 16, n_segments=1, n_runs=64, fan_in=128)
    many = CostModel(n_rows=1 << 16, n_segments=1, n_runs=1 << 15, fan_in=128)
    assert few.merge_runs().total < many.merge_runs().total


def test_segment_sort_improves_with_more_segments():
    coarse = CostModel(n_rows=1 << 16, n_segments=2, n_runs=4)
    fine = CostModel(n_rows=1 << 16, n_segments=1 << 10, n_runs=1 << 11)
    assert fine.segment_sort().total < coarse.segment_sort().total


def test_external_sort_charges_io():
    small = CostModel(n_rows=1 << 10, n_segments=1, n_runs=1, memory_capacity=1 << 20)
    big = CostModel(n_rows=1 << 22, n_segments=1, n_runs=1, memory_capacity=1 << 16)
    assert small.full_sort().io_pages == 0
    assert big.full_sort().io_pages > 0


def test_segmenting_can_remove_io_entirely():
    """Hypothesis 1: segments below memory turn an external sort into
    internal sorts — visible as the I/O term vanishing."""
    n = 1 << 22
    external = CostModel(n, 1, 1, memory_capacity=1 << 16).full_sort()
    segmented = CostModel(n, 1 << 8, 1 << 8, memory_capacity=1 << 16).segment_sort()
    assert external.io_pages > 0
    assert segmented.io_pages == 0
    assert segmented.total < external.total


def test_estimate_costs_filters_by_plan():
    p = plan(("A", "B"), ("B", "A"))  # no shared prefix
    strategies = {e.strategy for e in estimate_costs(p, 1000, 1, 10)}
    assert Strategy.MERGE_RUNS in strategies
    assert Strategy.SEGMENT_SORT not in strategies
    assert Strategy.COMBINED not in strategies

    p = plan(("A", "B", "C"), ("A", "C", "B"))
    strategies = {e.strategy for e in estimate_costs(p, 1000, 10, 100)}
    assert {
        Strategy.FULL_SORT,
        Strategy.SEGMENT_SORT,
        Strategy.MERGE_RUNS,
        Strategy.COMBINED,
    } <= strategies


def test_noop_costs_nothing():
    p = plan(("A", "B"), ("A",))
    estimates = estimate_costs(p, 10**6, 1, 1)
    assert len(estimates) == 1
    assert estimates[0].strategy is Strategy.NOOP
    assert estimates[0].total == 0
