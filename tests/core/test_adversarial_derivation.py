"""Adversarial inputs for the run-head chain derivation.

When rows from *non-adjacent* runs tie through all merge keys, the
loser's output code must be derived by max-folding every saved head
code between the two runs.  These inputs maximize such events: every
run contains the same merge-key values, the infix spans several
columns, and runs differ at varying infix depths — so the fold is
exercised across arbitrary distances and offsets.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.ovc.stats import ComparisonStats

SCHEMA = Schema.of("A", "X1", "X2", "X3", "M")
IN_SPEC = SortSpec.of("A", "X1", "X2", "X3", "M")
OUT_SPEC = SortSpec.of("A", "M", "X1", "X2", "X3")


def build(infixes: list[tuple], m_values: list[int], n_segments: int) -> Table:
    rows = []
    for a in range(n_segments):
        for infix in sorted(set(infixes)):
            for m in sorted(m_values):
                rows.append((a, *infix, m))
    table = Table(SCHEMA, rows, IN_SPEC)
    table.ovcs = derive_ovcs(rows, tuple(range(5)))
    return table


infix_st = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
    min_size=1,
    max_size=12,
)


@given(infix_st, st.lists(st.integers(0, 3), min_size=1, max_size=4),
       st.integers(1, 3))
@settings(max_examples=80, deadline=None)
def test_identical_merge_keys_across_all_runs(infixes, m_values, n_segments):
    """Every run holds the same M values: every merge comparison that
    survives the codes becomes a cross-run tie resolved by derivation."""
    table = build(infixes, m_values, n_segments)
    stats = ComparisonStats()
    result = modify_sort_order(table, OUT_SPEC, method="combined", stats=stats)
    expected = sorted(
        table.rows, key=lambda r: (r[0], r[4], r[1], r[2], r[3])
    )
    assert result.rows == expected
    assert verify_ovcs(result.rows, result.ovcs, (0, 4, 1, 2, 3))
    # The infix is never compared: with a single merge column, column
    # comparisons stay at zero no matter how many ties occur.
    assert stats.column_comparisons == 0


@given(infix_st, st.lists(st.integers(0, 3), min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_derivation_with_tiny_fan_in(infixes, m_values):
    """Multi-wave merging over the same adversarial data (later waves
    may compare infix columns, but the result must stay exact)."""
    table = build(infixes, m_values, n_segments=2)
    result = modify_sort_order(
        table, OUT_SPEC, method="combined", config=ExecutionConfig(max_fan_in=2)
    )
    expected = sorted(
        table.rows, key=lambda r: (r[0], r[4], r[1], r[2], r[3])
    )
    assert result.rows == expected
    assert verify_ovcs(result.rows, result.ovcs, (0, 4, 1, 2, 3))


def test_known_multi_hop_fold():
    """Hand-checked case: runs i and i+3 tie on M; the derived code
    must reflect the *shallowest* difference along the chain."""
    infixes = [(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, 0)]
    table = build(infixes, [5], 1)
    result = modify_sort_order(table, OUT_SPEC, method="combined")
    # Output: all rows share A=0, M=5; ordered by infix.
    assert [r[1:4] for r in result.rows] == sorted(infixes)
    # Codes: row k differs from row k-1 at the infix's first difference,
    # shifted behind M (positions 2..4 of the output key).
    assert result.ovcs == [
        (0, 0),        # head of the table
        (4, 1),        # (0,0,0) -> (0,0,1): X3 at output position 4
        (3, 1),        # -> (0,1,0): X2 at position 3
        (2, 1),        # -> (1,0,0): X1 at position 2
    ]
