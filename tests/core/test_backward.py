"""Backward scans: reversing coded tables and planning through them."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import Strategy, analyze_order_modification
from repro.core.backward import reverse_table, reversed_spec
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.ovc.stats import ComparisonStats

SCHEMA = Schema.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    max_size=50,
)


def make_table(rows, spec: SortSpec) -> Table:
    rows = sorted(rows, key=spec.key_for(SCHEMA))
    table = Table(SCHEMA, rows, spec)
    table.ovcs = derive_ovcs(
        rows, spec.positions(SCHEMA), spec.directions
    )
    return table


def test_reversed_spec_flips_all_directions():
    spec = SortSpec.of("A", "B DESC", "C")
    assert reversed_spec(spec) == SortSpec.of("A DESC", "B", "C DESC")


@given(rows_st)
@settings(max_examples=60, deadline=None)
def test_reverse_table_codes_match_fresh_derivation(rows):
    table = make_table(rows, SortSpec.of("A", "B", "C"))
    stats = ComparisonStats()
    rev = reverse_table(table, stats)
    assert rev.rows == list(reversed(table.rows))
    assert rev.sort_spec == SortSpec.of("A DESC", "B DESC", "C DESC")
    assert verify_ovcs(
        rev.rows, rev.ovcs, (0, 1, 2), (False, False, False)
    )
    assert stats.column_comparisons == 0


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_reverse_of_mixed_directions(rows):
    spec = SortSpec.of("A", "B DESC", "C")
    table = make_table(rows, spec)
    rev = reverse_table(table)
    assert rev.sort_spec == SortSpec.of("A DESC", "B", "C DESC")
    assert verify_ovcs(
        rev.rows,
        rev.ovcs,
        (0, 1, 2),
        rev.sort_spec.directions,
    )


def test_analysis_detects_backward_opportunity():
    plan = analyze_order_modification(
        SortSpec.of("A DESC", "B DESC"), SortSpec.of("B", "A")
    )
    assert plan.backward
    assert plan.strategy is Strategy.MERGE_RUNS
    assert plan.input_spec == SortSpec.of("A", "B")


def test_analysis_backward_noop_is_pure_reversal():
    plan = analyze_order_modification(
        SortSpec.of("A DESC"), SortSpec.of("A")
    )
    assert plan.backward
    assert plan.strategy is Strategy.NOOP


def test_forward_structure_preferred_over_backward():
    plan = analyze_order_modification(
        SortSpec.of("A", "B", "C"), SortSpec.of("A", "C", "B")
    )
    assert not plan.backward


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_modify_through_backward_scan(rows):
    """Existing (A DESC, B DESC, C DESC); desired (B, C, A): reverse,
    then merge pre-existing runs — never a full sort."""
    table = make_table(rows, SortSpec.of("A DESC", "B DESC", "C DESC"))
    spec = SortSpec.of("B", "C", "A")
    result = modify_sort_order(table, spec)
    expected = sorted(table.rows, key=lambda r: (r[1], r[2], r[0]))
    assert result.rows == expected
    assert verify_ovcs(result.rows, result.ovcs, (1, 2, 0))


@given(rows_st)
@settings(max_examples=30, deadline=None)
def test_modify_backward_without_codes(rows):
    table = Table(
        SCHEMA,
        sorted(rows, key=SortSpec.of("A DESC", "B DESC", "C DESC").key_for(SCHEMA)),
        SortSpec.of("A DESC", "B DESC", "C DESC"),
    )
    spec = SortSpec.of("B", "A", "C")
    result = modify_sort_order(table, spec, use_ovc=False)
    expected = sorted(table.rows, key=lambda r: (r[1], r[0], r[2]))
    assert result.rows == expected


def test_pure_reversal_costs_only_extractions():
    rows = [(i, i % 3, 0) for i in range(100)]
    table = make_table(rows, SortSpec.of("A", "B", "C"))
    stats = ComparisonStats()
    result = modify_sort_order(table, SortSpec.of("A DESC"), stats=stats)
    assert result.rows == list(reversed(table.rows))
    assert stats.column_comparisons == 0
    assert stats.row_comparisons == 0
