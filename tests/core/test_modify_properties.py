"""Property-based tests: every order-modification strategy must agree
with Python's stable sort and produce codes identical to fresh
derivation, on arbitrary inputs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import Strategy, analyze_order_modification
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.ovc.stats import ComparisonStats

SCHEMA4 = Schema.of("A", "B", "C", "D")

# Desired orders covering every Table 1 case plus fallbacks.
ORDERS = [
    ("A", "B", "C", "D"),  # case 0 (identity)
    ("A", "B"),  # case 0 (prefix)
    ("A",),  # case 0
    ("B", "C", "D", "A"),  # merge runs, infix A retained
    ("B", "C"),  # case 2-ish: infix dropped
    ("B", "A"),  # hmm: B then A -> X=(A), M=(B), T=... retained
    ("A", "C", "B", "D"),  # case 7
    ("A", "C", "B"),  # case 5
    ("A", "C", "D"),  # case 6
    ("A", "C"),  # case 4
    ("A", "D", "B", "C"),  # X=(B,C), M=(D)
    ("A", "D", "C", "B"),  # no clean decomposition -> segment sort
    ("D", "C", "B", "A"),  # full sort territory
    ("C", "A", "B"),  # X=(A,B), M=(C) retained
    ("A", "B", "D", "C"),  # X=(C), M=(D) within prefix A,B
]

METHODS = ["auto", "segment_sort", "merge_runs", "combined", "full_sort"]


def sorted_table(rows: list[tuple]) -> Table:
    rows = sorted(rows)
    table = Table(SCHEMA4, rows, SortSpec.of("A", "B", "C", "D"))
    table.ovcs = derive_ovcs(rows, (0, 1, 2, 3))
    return table


row_strategy = st.tuples(
    st.integers(0, 3), st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)
)
rows_strategy = st.lists(row_strategy, min_size=0, max_size=60)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, order=st.sampled_from(ORDERS))
def test_auto_matches_ground_truth_with_codes(rows, order):
    table = sorted_table(rows)
    spec = SortSpec(order)
    result = modify_sort_order(table, spec)
    expected = sorted(table.rows, key=spec.key_for(SCHEMA4))
    assert result.rows == expected
    positions = spec.positions(SCHEMA4)
    assert verify_ovcs(result.rows, result.ovcs, positions)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, order=st.sampled_from(ORDERS))
def test_auto_matches_ground_truth_without_codes(rows, order):
    table = sorted_table(rows)
    spec = SortSpec(order)
    result = modify_sort_order(table, spec, use_ovc=False)
    expected = sorted(table.rows, key=spec.key_for(SCHEMA4))
    assert result.rows == expected
    assert result.ovcs is None


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, order=st.sampled_from(ORDERS), data=st.data())
def test_forced_methods_agree(rows, order, data):
    table = sorted_table(rows)
    spec = SortSpec(order)
    plan = analyze_order_modification(table.sort_spec, spec)
    applicable = ["auto", "full_sort"]
    if plan.prefix_len > 0:
        applicable.append("segment_sort")
    if plan.merge_len > 0:
        applicable.append("merge_runs")
        if plan.prefix_len > 0:
            applicable.append("combined")
    method = data.draw(st.sampled_from(applicable))
    result = modify_sort_order(table, spec, method=method)
    expected = sorted(table.rows, key=spec.key_for(SCHEMA4))
    assert result.rows == expected
    assert verify_ovcs(result.rows, result.ovcs, spec.positions(SCHEMA4))


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_stability_case3(rows):
    """Case 3 (A,B,C,D -> B,C,D,A retains the infix): rows equal on the
    merge keys must keep their input (infix) order — which here equals
    a full stable sort because A breaks all remaining ties."""
    table = sorted_table(rows)
    spec = SortSpec.of("B", "C", "D", "A")
    result = modify_sort_order(table, spec, method="merge_runs")
    # Stable reference: sorted() is stable over the B,C,D key.
    expected = sorted(table.rows, key=lambda r: (r[1], r[2], r[3]))
    assert result.rows == expected


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_stability_dropped_infix(rows):
    """Case 2 (infix dropped): output order among rows with equal new
    keys must follow the input order (stable merge by run index)."""
    table = sorted_table(rows)
    spec = SortSpec.of("B", "C")
    result = modify_sort_order(table, spec, method="merge_runs")
    expected = sorted(table.rows, key=lambda r: (r[1], r[2]))
    assert result.rows == expected


@settings(max_examples=30, deadline=None)
@given(rows=rows_strategy)
def test_infix_columns_never_compared_case5(rows):
    """Case 5: column comparisons may touch only the merge keys, and
    only when codes tie; prefix and infix columns are never compared.
    With single-column merge keys, codes capture everything except
    resumes past the merge column — bounded by the merge-key width."""
    table = sorted_table(rows)
    stats = ComparisonStats()
    modify_sort_order(table, SortSpec.of("A", "C", "B"), method="combined", stats=stats)
    # |M| = 1: a tie on the merge column resolves via derived codes, so
    # the only column comparisons would come from multi-column resumes.
    assert stats.column_comparisons == 0


@settings(max_examples=30, deadline=None)
@given(rows=st.lists(row_strategy, min_size=1, max_size=60))
def test_noop_projection(rows):
    table = sorted_table(rows)
    stats = ComparisonStats()
    result = modify_sort_order(table, SortSpec.of("A", "B"), stats=stats)
    assert result.rows == table.rows
    assert verify_ovcs(result.rows, result.ovcs, (0, 1))
    assert stats.column_comparisons == 0
    assert stats.row_comparisons == 0


def test_unsorted_input_rejected_on_derive():
    rows = [(2, 0, 0, 0), (1, 0, 0, 0)]
    table = Table(SCHEMA4, rows, SortSpec.of("A", "B", "C", "D"))
    with pytest.raises(ValueError):
        table.with_ovcs()


def test_missing_sort_spec_rejected():
    table = Table(SCHEMA4, [(1, 2, 3, 4)])
    with pytest.raises(ValueError):
        modify_sort_order(table, SortSpec.of("A",))
