"""Regression: one classification pass per call, even across fallbacks.

``engine="auto"`` first tries the packed-code fast path; when the codec
refuses the input (mixed types, ``None``) a ``TypeError`` sends the job
to the reference executors.  The segment boundaries were already
computed for the fast attempt — the fallback (and the parallel
dispatcher, and the fast path itself) must reuse them instead of
re-classifying the input.
"""

from __future__ import annotations

import pytest

import repro.core.classify as classify
import repro.core.modify as modify_mod
import repro.fastpath.execute as fast_mod
import repro.parallel.planner as planner_mod
from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs

SCHEMA = Schema.of("A", "B", "C")
IN_SPEC = SortSpec.of("A", "B", "C")
OUT_SPEC = SortSpec.of("A", "C", "B")


def _mixed_type_table() -> Table:
    """Per-segment uniform, globally mixed: legal for the reference
    executors, refused by the packed codec (the auto-fallback input)."""
    rows = [(0, f"b{b}", f"c{(b * 3) % 5}") for b in range(40)]
    rows += [(1, b % 7, (b * 5) % 11) for b in range(40)]
    rows = sorted(rows[:40], key=lambda r: (r[1], r[2])) + sorted(
        rows[40:], key=lambda r: (r[1], r[2])
    )
    table = Table(SCHEMA, rows, IN_SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


def _packable_table() -> Table:
    rows = sorted(
        (a % 4, b % 6, (a * b) % 5) for a in range(30) for b in range(10)
    )
    table = Table(SCHEMA, rows, IN_SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


@pytest.fixture
def count_splits(monkeypatch):
    """Count ``split_segments`` calls through every module that
    imported it (from-imports bind per-module references)."""
    calls = []
    real = classify.split_segments

    def counting(ovcs, prefix_len, n):
        calls.append(1)
        return real(ovcs, prefix_len, n)

    for mod in (classify, modify_mod, fast_mod, planner_mod):
        if getattr(mod, "split_segments", None) is not None:
            monkeypatch.setattr(mod, "split_segments", counting)
    return calls


def test_auto_fallback_classifies_exactly_once(count_splits):
    table = _mixed_type_table()
    result = modify_sort_order(table, OUT_SPEC)  # auto -> fast -> TypeError -> reference
    assert result.is_sorted()
    assert len(count_splits) == 1


def test_fast_path_reuses_dispatcher_boundaries(count_splits):
    table = _packable_table()
    modify_sort_order(table, OUT_SPEC, config=ExecutionConfig(engine="fast"))
    assert len(count_splits) == 1


def test_reference_path_classifies_exactly_once(count_splits):
    table = _packable_table()
    modify_sort_order(
        table, OUT_SPEC, config=ExecutionConfig(engine="reference")
    )
    assert len(count_splits) == 1


def test_parallel_dispatch_shares_boundaries(count_splits, monkeypatch):
    monkeypatch.setattr(planner_mod, "MIN_PARALLEL_ROWS", 0)
    table = _packable_table()
    modify_sort_order(table, OUT_SPEC, config=ExecutionConfig(workers=2))
    assert len(count_splits) == 1
