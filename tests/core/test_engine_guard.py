"""The ``engine="auto"`` guard: non-packable keys fall back, not raise.

The packed codec ranks each key column by sorting its distinct values,
which requires mutually comparable values across the *whole* column.
The reference executors only ever compare values within a segment, so
inputs that are per-segment uniform but globally mixed (int in one
segment, str in another; all-``None`` segments) are perfectly legal —
``engine="auto"`` must detect the codec's refusal and run them on the
reference path, while an explicit ``engine="fast"`` still raises.
"""

from __future__ import annotations

import pytest

from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs

SCHEMA = Schema.of("A", "B", "C")
IN_SPEC = SortSpec.of("A", "B", "C")
OUT_SPEC = SortSpec.of("A", "C", "B")


def _mixed_type_table() -> Table:
    """Segment A=0 carries str B/C values, segment A=1 carries ints."""
    rows = [(0, f"b{b}", f"c{(b * 3) % 5}") for b in range(40)]
    rows += [(1, b % 7, (b * 5) % 11) for b in range(40)]
    rows.sort(key=lambda r: (r[0], str(r[1]), str(r[2])))
    # Sorted within each segment by (B, C); across segments A decides.
    rows = sorted(rows[:40], key=lambda r: (r[1], r[2])) + sorted(
        rows[40:], key=lambda r: (r[1], r[2])
    )
    table = Table(SCHEMA, rows, IN_SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


def _none_segment_table() -> Table:
    """Segment A=0 has C=None throughout; segment A=1 has int C."""
    rows = [(0, b, None) for b in range(30)]
    rows += [(1, b % 5, (b * 7) % 13) for b in range(30)]
    rows = rows[:30] + sorted(rows[30:], key=lambda r: (r[1], r[2]))
    table = Table(SCHEMA, rows, IN_SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


@pytest.mark.parametrize(
    "make_table", [_mixed_type_table, _none_segment_table],
    ids=["mixed-int-str", "none-segment"],
)
def test_auto_engine_falls_back_on_non_packable_keys(make_table):
    table = make_table()
    expected = modify_sort_order(table, OUT_SPEC, config=ExecutionConfig(engine="reference"))
    result = modify_sort_order(table, OUT_SPEC, config=ExecutionConfig(engine="auto"))
    assert result.rows == expected.rows
    assert result.ovcs == expected.ovcs
    assert verify_ovcs(
        result.rows, result.ovcs, OUT_SPEC.positions(SCHEMA), OUT_SPEC.directions
    )


@pytest.mark.parametrize(
    "make_table", [_mixed_type_table, _none_segment_table],
    ids=["mixed-int-str", "none-segment"],
)
def test_explicit_fast_engine_still_raises(make_table):
    with pytest.raises(TypeError):
        modify_sort_order(make_table(), OUT_SPEC, config=ExecutionConfig(engine="fast"))


def test_auto_engine_still_uses_fast_kernels_for_packable_input():
    # Sanity: uniformly-typed input takes the fast path (no counters
    # requested, no fan-in cap) and matches the reference engine.
    rows = sorted((a % 4, b % 6, (a * b) % 5) for a in range(20) for b in range(10))
    table = Table(SCHEMA, rows, IN_SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    auto = modify_sort_order(table, OUT_SPEC, config=ExecutionConfig(engine="auto"))
    ref = modify_sort_order(table, OUT_SPEC, config=ExecutionConfig(engine="reference"))
    assert auto.rows == ref.rows and auto.ovcs == ref.ovcs
