"""Exact reproduction of the paper's worked example (Figures 5-9):
modifying the sort order A,B,C -> A,C,B with segmented sorting,
merging pre-existing runs, and offset-value code reuse."""

from __future__ import annotations

import pytest

from repro.core.analysis import Strategy, analyze_order_modification
from repro.core.classify import RowClass, classify_row, split_segments
from repro.core.modify import modify_sort_order
from repro.model import SortSpec
from repro.ovc.stats import ComparisonStats

from ..conftest import paper_example_table


def test_figure5_input_codes():
    table = paper_example_table()
    assert table.ovcs == [
        (0, 1),
        (0, 2),
        (2, 3),
        (1, 2),
        (2, 2),
        (1, 3),
        (3, 0),
        (2, 5),
        (0, 3),
    ]


def test_plan_is_case5_combined():
    table = paper_example_table()
    plan = analyze_order_modification(table.sort_spec, SortSpec.of("A", "C", "B"))
    assert plan.strategy is Strategy.COMBINED
    assert plan.case_id == 5
    assert plan.prefix_len == 1
    assert plan.infix.names == ("B",)
    assert plan.merge_keys.names == ("C",)
    assert plan.tail.names == ()
    assert not plan.infix_dropped


def test_figure6_row_classification():
    """The classification column of Figure 6, derived from offsets only."""
    table = paper_example_table()
    # Rows 2-8 (1-based) form the segment with A = 2.
    expected = [
        RowClass.SEGMENT_HEAD,  # row 2
        RowClass.MERGE_ROW,  # row 3 ("other row")
        RowClass.RUN_HEAD,  # row 4
        RowClass.MERGE_ROW,  # row 5
        RowClass.RUN_HEAD,  # row 6
        RowClass.DUPLICATE,  # row 7
        RowClass.MERGE_ROW,  # row 8
    ]
    got = [
        classify_row(table.ovcs[i][0], prefix_len=1, infix_len=1, merge_len=1)
        for i in range(1, 8)
    ]
    assert got == expected


def test_segments_found_from_codes_alone():
    table = paper_example_table()
    assert list(split_segments(table.ovcs, 1)) == [(0, 1), (1, 8), (8, 9)]


def test_figures8_and_9_merge_output():
    """The merged segment of Figure 8 with the final codes of Figure 9."""
    table = paper_example_table()
    stats = ComparisonStats()
    result = modify_sort_order(table, SortSpec.of("A", "C", "B"), stats=stats)

    # Output rows keep the stored column layout (A, B, C); the order is
    # the A,C,B order of Figure 8: old rows 1 | 2,4,5,3,6,7,8 | 9.
    assert result.rows == [
        (1, 1, 1),
        (2, 1, 1),
        (2, 2, 1),
        (2, 2, 2),
        (2, 1, 3),
        (2, 3, 4),
        (2, 3, 4),
        (2, 3, 5),
        (3, 1, 1),
    ]
    # Codes of Figure 9, bracketed by the neighbour segments' codes.
    assert result.ovcs == [
        (0, 1),
        (0, 2),
        (2, 2),
        (1, 2),
        (1, 3),
        (1, 4),
        (3, 0),
        (1, 5),
        (0, 3),
    ]


def test_no_infix_or_prefix_column_comparisons():
    """The example requires no column comparisons for A or B at all,
    and none for C either (C is a single column, fully captured by the
    entry codes)."""
    table = paper_example_table()
    stats = ComparisonStats()
    modify_sort_order(table, SortSpec.of("A", "C", "B"), stats=stats)
    assert stats.column_comparisons == 0


def test_case3_variant_single_segment():
    """Constant A turns the example into Table 1 case 3 (B,C -> C,B
    within one segment) as the paper notes."""
    table = paper_example_table()
    # Restrict to the A=2 segment and drop A from the key.
    plan = analyze_order_modification(SortSpec.of("B", "C"), SortSpec.of("C", "B"))
    assert plan.strategy is Strategy.MERGE_RUNS
    assert plan.case_id == 3


def test_output_codes_match_fresh_derivation():
    from repro.ovc.derive import verify_ovcs

    table = paper_example_table()
    result = modify_sort_order(table, SortSpec.of("A", "C", "B"))
    positions = result.sort_spec.positions(result.schema)
    assert verify_ovcs(result.rows, result.ovcs, positions)
