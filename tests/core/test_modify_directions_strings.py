"""Order modification with descending directions and string columns —
the paper's 'each letter can be a column, a list, or a string' claim
exercised through the whole pipeline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import Strategy, analyze_order_modification
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortColumn, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.ovc.stats import ComparisonStats

SCHEMA = Schema.of("A", "B", "C")

int_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    max_size=50,
)
str_rows = st.lists(
    st.tuples(
        st.sampled_from(["ant", "bee", "cat"]),
        st.sampled_from(["x", "yy", "zzz", ""]),
        st.integers(0, 4),
    ),
    max_size=50,
)

DIRECTION_SETS = [
    (True, True, True),
    (False, True, True),
    (True, False, True),
    (True, True, False),
    (False, False, False),
]


def build(rows, directions) -> Table:
    spec = SortSpec(
        SortColumn(name, asc) for name, asc in zip(("A", "B", "C"), directions)
    )
    rows = sorted(rows, key=spec.key_for(SCHEMA))
    table = Table(SCHEMA, rows, spec)
    table.ovcs = derive_ovcs(rows, (0, 1, 2), directions)
    return table


@given(int_rows, st.sampled_from(DIRECTION_SETS))
@settings(max_examples=60, deadline=None)
def test_case5_with_directions(rows, directions):
    """A,B,C -> A,C,B where each column keeps its direction."""
    table = build(rows, directions)
    out_spec = SortSpec(
        [
            SortColumn("A", directions[0]),
            SortColumn("C", directions[2]),
            SortColumn("B", directions[1]),
        ]
    )
    plan = analyze_order_modification(table.sort_spec, out_spec)
    assert plan.strategy is Strategy.COMBINED
    result = modify_sort_order(table, out_spec, method="combined")
    expected = sorted(table.rows, key=out_spec.key_for(SCHEMA))
    assert result.rows == expected
    assert verify_ovcs(
        result.rows,
        result.ovcs,
        out_spec.positions(SCHEMA),
        out_spec.directions,
    )


@given(str_rows, st.sampled_from(DIRECTION_SETS))
@settings(max_examples=60, deadline=None)
def test_strings_with_directions(rows, directions):
    table = build(rows, directions)
    out_spec = SortSpec(
        [
            SortColumn("A", directions[0]),
            SortColumn("C", directions[2]),
            SortColumn("B", directions[1]),
        ]
    )
    result = modify_sort_order(table, out_spec)
    expected = sorted(table.rows, key=out_spec.key_for(SCHEMA))
    assert result.rows == expected
    assert verify_ovcs(
        result.rows,
        result.ovcs,
        out_spec.positions(SCHEMA),
        out_spec.directions,
    )


@given(str_rows)
@settings(max_examples=40, deadline=None)
def test_string_case3_zero_string_comparisons(rows):
    """Rotating a string-keyed order never touches the strings when the
    merge keys are single columns."""
    table = build(rows, (True, True, True))
    stats = ComparisonStats()
    out_spec = SortSpec.of("B", "A", "C")
    result = modify_sort_order(table, out_spec, method="merge_runs", stats=stats)
    expected = sorted(table.rows, key=lambda r: (r[1], r[0], r[2]))
    assert result.rows == expected
    assert stats.column_comparisons == 0


def test_direction_flip_on_same_columns_uses_backward_scan():
    rows = sorted(
        [(a, b, 0) for a in range(3) for b in range(3)],
        key=lambda r: (-r[0], -r[1]),
    )
    spec_in = SortSpec.of("A DESC", "B DESC", "C DESC")
    table = Table(SCHEMA, rows, spec_in)
    table.ovcs = derive_ovcs(rows, (0, 1, 2), (False, False, False))
    stats = ComparisonStats()
    result = modify_sort_order(table, SortSpec.of("A", "B", "C"), stats=stats)
    assert result.rows == sorted(rows)
    # A pure backward scan: no comparisons at all.
    assert stats.row_comparisons == 0
    assert stats.column_comparisons == 0
