"""Exhaustive differential testing on small universes.

Hypothesis samples; this module *enumerates*: every multiset of up to
three rows over a tiny domain, against every permutation-derived
desired order, across all applicable methods — a few thousand cases
that corner every branch of classification, adjustment, and merging.
"""

from __future__ import annotations

from itertools import combinations_with_replacement, permutations

import pytest

from repro.core.analysis import analyze_order_modification
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")

# All 8 possible rows over {0,1}^3.
UNIVERSE = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]

# Desired orders: every permutation and every non-empty prefix of one.
ORDERS: list[tuple[str, ...]] = []
for perm in permutations(("A", "B", "C")):
    for k in (1, 2, 3):
        if perm[:k] not in ORDERS:
            ORDERS.append(perm[:k])


def all_tables(max_rows: int = 3):
    for size in range(max_rows + 1):
        for combo in combinations_with_replacement(UNIVERSE, size):
            yield list(combo)


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: ",".join(o))
def test_every_small_table_every_order(order):
    spec = SortSpec(order)
    key = spec.key_for(SCHEMA)
    for rows in all_tables():
        table = Table(SCHEMA, sorted(rows), SPEC)
        table.ovcs = derive_ovcs(table.rows, (0, 1, 2))
        result = modify_sort_order(table, spec)
        expected = sorted(table.rows, key=key)
        assert result.rows == expected, (rows, order)
        assert verify_ovcs(
            result.rows, result.ovcs, spec.positions(SCHEMA)
        ), (rows, order)


@pytest.mark.parametrize(
    "method", ["segment_sort", "merge_runs", "combined", "full_sort"]
)
def test_every_small_table_every_method(method):
    """Forced methods over all 4-row tables for one representative
    order per method family."""
    order_for = {
        "segment_sort": ("A", "C", "B"),
        "merge_runs": ("B", "A", "C"),
        "combined": ("A", "C", "B"),
        "full_sort": ("C", "B", "A"),
    }
    spec = SortSpec(order_for[method])
    key = spec.key_for(SCHEMA)
    for rows in all_tables(3):
        table = Table(SCHEMA, sorted(rows), SPEC)
        table.ovcs = derive_ovcs(table.rows, (0, 1, 2))
        result = modify_sort_order(table, spec, method=method)
        assert result.rows == sorted(table.rows, key=key), (rows, method)
        assert verify_ovcs(result.rows, result.ovcs, spec.positions(SCHEMA))


def test_all_order_pairs_analyze_without_error():
    """The analyzer must return a plan for every (input, output) pair
    of orders over three columns — no combination may crash."""
    specs = [SortSpec(p[:k]) for p in permutations(("A", "B", "C")) for k in (1, 2, 3)]
    for inp in specs:
        for out in specs:
            plan = analyze_order_modification(inp, out)
            assert plan.strategy is not None
