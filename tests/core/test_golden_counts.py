"""Golden comparison-count regressions.

Exact counts on fixed seeds pin down the comparison machinery: any
change that silently adds (or hides) work fails here first.  If a
deliberate algorithmic improvement shifts a number, update the golden
value in the same commit and say why.
"""

from __future__ import annotations

from repro.core.modify import modify_sort_order
from repro.model import SortSpec
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import fig10_table, fig11_table


def _counts(table, spec, method, use_ovc=True):
    stats = ComparisonStats()
    modify_sort_order(table, spec, method=method, use_ovc=use_ovc, stats=stats)
    return stats


def test_paper_example_counts():
    from ..conftest import paper_example_table

    stats = _counts(
        paper_example_table(), SortSpec.of("A", "C", "B"), "combined"
    )
    assert stats.row_comparisons == 7
    assert stats.ovc_comparisons == 7
    assert stats.column_comparisons == 0
    assert stats.key_extractions == 5  # one per run head (incl. 2 segment heads of 1 row)
    assert stats.rows_moved == 9  # wave output (dup rows ride along their carrier)


def test_fig10_cell_counts_seed0():
    table = fig10_table(4096, 4, decide="last", n_runs=64, seed=0)
    spec = SortSpec(
        tuple(f"B{i}" for i in range(4)) + tuple(f"A{i}" for i in range(4))
    )
    with_codes = _counts(table, spec, "merge_runs", use_ovc=True)
    without = _counts(table, spec, "merge_runs", use_ovc=False)
    assert with_codes.column_comparisons == 189
    assert without.column_comparisons == 113_612
    assert with_codes.row_comparisons == 15_402
    assert without.row_comparisons == 28_403


def test_fig11_cell_counts_seed0():
    table = fig11_table(4096, 16, list_len=4, seed=0)
    spec = SortSpec(
        tuple(f"A{i}" for i in range(4))
        + tuple(f"C{i}" for i in range(4))
        + tuple(f"B{i}" for i in range(4))
    )
    combined = _counts(table, spec, "combined")
    merge_only = _counts(table, spec, "merge_runs")
    segment_only = _counts(table, spec, "segment_sort")
    # Hypothesis 9 at fixed seed, exact.
    assert combined.row_comparisons < merge_only.row_comparisons
    assert combined.row_comparisons < segment_only.row_comparisons
    assert combined.row_comparisons == 10_280
    assert combined.column_comparisons == 720
