"""Graceful degradation (Section 3.2): when the input holds more
pre-existing runs than one merge step should carry, the merge proceeds
in multiple waves — correctness and codes must survive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.ovc.stats import ComparisonStats

SCHEMA = Schema.of("A", "B", "C")


def sorted_table(rows, key=("A", "B", "C")) -> Table:
    spec = SortSpec(key)
    rows = sorted(rows, key=spec.key_for(SCHEMA))
    table = Table(SCHEMA, rows, spec)
    table.ovcs = derive_ovcs(rows, spec.positions(SCHEMA), spec.directions)
    return table


rows_st = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 9), st.integers(0, 5)),
    max_size=80,
)


@given(rows=rows_st, fan_in=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_multiwave_merge_correct_case3(rows, fan_in):
    """A,B,C -> B,C,A (retained infix) with a tiny fan-in: many runs
    (distinct A) force several waves."""
    table = sorted_table(rows)
    spec = SortSpec.of("B", "C", "A")
    result = modify_sort_order(
        table, spec, method="merge_runs", config=ExecutionConfig(max_fan_in=fan_in)
    )
    expected = sorted(table.rows, key=lambda r: (r[1], r[2], r[0]))
    assert result.rows == expected
    assert verify_ovcs(result.rows, result.ovcs, (1, 2, 0))


@given(rows=rows_st, fan_in=st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_multiwave_merge_correct_case5(rows, fan_in):
    table = sorted_table(rows)
    spec = SortSpec.of("A", "C", "B")
    result = modify_sort_order(
        table, spec, method="combined", config=ExecutionConfig(max_fan_in=fan_in)
    )
    expected = sorted(table.rows, key=lambda r: (r[0], r[2], r[1]))
    assert result.rows == expected
    assert verify_ovcs(result.rows, result.ovcs, (0, 2, 1))


@given(rows=rows_st, fan_in=st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_multiwave_merge_correct_dropped_infix(rows, fan_in):
    """A,B,C -> B (dropped infix) across waves stays stable."""
    table = sorted_table(rows)
    result = modify_sort_order(
        table, SortSpec.of("B"), method="merge_runs", config=ExecutionConfig(max_fan_in=fan_in)
    )
    expected = sorted(table.rows, key=lambda r: r[1])  # stable
    assert result.rows == expected
    assert verify_ovcs(result.rows, result.ovcs, (1,))


def test_multiwave_costs_more_column_comparisons_than_single():
    """The degradation is graceful but not free: later waves may touch
    infix columns that a single wide merge never would."""
    import random

    rng = random.Random(5)
    rows = [
        (rng.randrange(64), rng.randrange(4), rng.randrange(4))
        for _ in range(4096)
    ]
    table = sorted_table(rows)
    spec = SortSpec.of("B", "C", "A")

    single = ComparisonStats()
    modify_sort_order(table, spec, method="merge_runs", stats=single)
    multi = ComparisonStats()
    modify_sort_order(
        table, spec, method="merge_runs", stats=multi,
        config=ExecutionConfig(max_fan_in=4),
    )
    assert multi.column_comparisons >= single.column_comparisons


def test_invalid_fan_in_rejected():
    table = sorted_table([(1, 2, 3)])
    with pytest.raises(ValueError):
        modify_sort_order(
            table, SortSpec.of("B", "A", "C"), method="merge_runs",
            config=ExecutionConfig(max_fan_in=1),
        )


def test_fan_in_larger_than_runs_is_single_step():
    table = sorted_table([(a, b, 0) for a in range(3) for b in range(3)])
    r1 = modify_sort_order(
        table, SortSpec.of("B", "A", "C"), config=ExecutionConfig(max_fan_in=100)
    )
    r2 = modify_sort_order(table, SortSpec.of("B", "A", "C"))
    assert r1.rows == r2.rows
    assert r1.ovcs == r2.ovcs
