"""Memory-bounded order modification (hypothesis 1 executable)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.external_modify import modify_sort_order_external
from repro.core.modify import modify_sort_order
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.ovc.stats import ComparisonStats
from repro.storage.pages import PageManager

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")

rows_st = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    max_size=60,
)

ORDERS = [("A", "C", "B"), ("B", "A", "C"), ("A", "C"), ("C", "A", "B")]


def build(rows) -> Table:
    rows = sorted(rows)
    table = Table(SCHEMA, rows, SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


@given(rows_st, st.sampled_from(ORDERS), st.integers(2, 20))
@settings(max_examples=60, deadline=None)
def test_agrees_with_in_memory_path(rows, order, capacity):
    table = build(rows)
    spec = SortSpec(order)
    expected = modify_sort_order(table, spec)
    got = modify_sort_order_external(table, spec, memory_capacity=capacity)
    assert got.rows == expected.rows
    assert verify_ovcs(got.rows, got.ovcs, spec.positions(SCHEMA))


def test_hypothesis1_segments_fit_no_spill():
    """Segments below memory: zero spill; a whole-input external sort
    of the same data spills every row at least once."""
    rng = random.Random(7)
    rows = sorted(
        (rng.randrange(64), rng.randrange(1000), rng.randrange(1000))
        for _ in range(8000)
    )
    table = Table(SCHEMA, rows, SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))

    pages_seg = PageManager()
    result = modify_sort_order_external(
        table,
        SortSpec.of("A", "C", "B"),
        memory_capacity=1000,  # > max segment (~125 rows), << input
        page_manager=pages_seg,
    )
    assert result.is_sorted()
    assert pages_seg.stats.pages_written == 0

    # The naive plan treats the input as unsorted; with load-sort run
    # generation (quicksort runs of memory size) it must spill.
    # (Replacement selection would exploit the near-sortedness and keep
    # a single run — von Neumann's observation, worth a test of its
    # own below.)
    pages_full = PageManager()
    modify_sort_order_external(
        table,
        SortSpec.of("A", "C", "B"),
        memory_capacity=1000,
        page_manager=pages_full,
        method="full_sort",
        run_generation="load_sort",
    )
    assert pages_full.stats.pages_written > 0


def test_replacement_selection_exploits_near_sortedness():
    """Related orders often yield a SINGLE run under replacement
    selection when memory spans a couple of segments — the von Neumann
    effect the paper's related-work section credits."""
    rng = random.Random(7)
    rows = sorted(
        (rng.randrange(64), rng.randrange(1000), rng.randrange(1000))
        for _ in range(8000)
    )
    table = Table(SCHEMA, rows, SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    pages = PageManager()
    result = modify_sort_order_external(
        table,
        SortSpec.of("A", "C", "B"),
        memory_capacity=1000,
        page_manager=pages,
        method="full_sort",
        run_generation="replacement",
    )
    assert result.is_sorted()
    assert pages.stats.pages_written == 0  # one run: purely internal


def test_oversized_segment_sort_spills_and_is_correct():
    rng = random.Random(8)
    # One giant segment (single A value), unsorted beyond the prefix.
    rows = sorted(
        ((1, rng.randrange(100), rng.randrange(100)) for _ in range(3000)),
        key=lambda r: (r[0], r[1]),
    )
    table = Table(SCHEMA, rows, SortSpec.of("A", "B"))
    table.ovcs = derive_ovcs(rows, (0, 1))
    pages = PageManager()
    result = modify_sort_order_external(
        table, SortSpec.of("A", "C"), memory_capacity=256,
        page_manager=pages, run_generation="load_sort",
    )
    # (A, C) does not totally order the rows: compare keys and content.
    keys = [(r[0], r[2]) for r in result.rows]
    assert keys == sorted(keys)
    assert sorted(result.rows) == sorted(rows)
    assert pages.stats.pages_written > 0


def test_oversized_merge_charges_wave_io():
    rng = random.Random(9)
    # 64 runs in one segment; fan-in 4 forces multi-wave merging.
    rows = sorted(
        (1, b, rng.randrange(10_000))
        for b in range(64)
        for _ in range(40)
    )
    table = Table(SCHEMA, rows, SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    pages = PageManager()
    result = modify_sort_order_external(
        table,
        SortSpec.of("A", "C", "B"),
        memory_capacity=100,
        fan_in=4,
        page_manager=pages,
    )
    assert result.is_sorted()
    # ceil(log_4(64)) = 3 levels -> 2 intermediate waves charged.
    assert pages.stats.pages_written > 0
    assert pages.stats.pages_read == pages.stats.pages_written


def test_noop_and_backward_paths():
    table = build([(1, 2, 3), (2, 0, 0)])
    out = modify_sort_order_external(table, SortSpec.of("A",), memory_capacity=2)
    assert out.rows == table.rows
    rev = modify_sort_order_external(
        table, SortSpec.of("A DESC"), memory_capacity=2
    )
    assert rev.rows == list(reversed(table.rows))


def test_capacity_validation():
    table = build([(1, 1, 1)])
    with pytest.raises(ValueError):
        modify_sort_order_external(table, SortSpec.of("B",), memory_capacity=1)
