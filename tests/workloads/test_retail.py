"""Tests for the retail workload and its end-to-end query paths."""

from __future__ import annotations

from collections import defaultdict

from repro.core.analysis import Strategy, analyze_order_modification
from repro.model import SortSpec
from repro.query import Query
from repro.testing import assert_table_valid
from repro.workloads.retail import make_retail_workload


def test_workload_integrity():
    w = make_retail_workload(n_customers=50, n_orders=200, seed=1)
    for table in w.tables.values():
        assert_table_valid(table)
    # FK integrity: every order's customer exists, every lineitem's
    # order exists.
    customers = {r[1] for r in w.customers.rows}
    assert {r[0] for r in w.orders.rows} <= customers
    orders = {r[1] for r in w.orders.rows}
    assert {r[0] for r in w.lineitems.rows} <= orders


def test_order_reorder_is_case2():
    """The physical design's key trick: orders stored on
    (customer, order_id) serve (order_id) scans via case 2."""
    w = make_retail_workload(n_customers=20, n_orders=50, seed=2)
    plan = analyze_order_modification(
        w.orders.sort_spec, SortSpec.of("order_id")
    )
    assert plan.strategy is Strategy.MERGE_RUNS
    assert plan.case_id == 2


def test_revenue_per_region_matches_reference():
    w = make_retail_workload(n_customers=40, n_orders=150, seed=3)
    got = (
        Query(w.customers)
        .join(Query(w.orders), on=[("customer", "customer")])
        .join(Query(w.lineitems), on=[("order_id", "order_id")])
        .group_by(["region"], [("sum", "price")])
        .rows()
    )
    region_of = {c: r for r, c, _s in w.customers.rows}
    customer_of = {o: c for c, o, _d, _p in w.orders.rows}
    expected: dict = defaultdict(int)
    for order_id, _ln, _pk, _q, price in w.lineitems.rows:
        expected[region_of[customer_of[order_id]]] += price
    assert got == sorted(expected.items())


def test_determinism():
    a = make_retail_workload(seed=9)
    b = make_retail_workload(seed=9)
    assert a.lineitems.rows == b.lineitems.rows
    c = make_retail_workload(seed=10)
    assert a.lineitems.rows != c.lineitems.rows
