"""Tests for the experiment data generators."""

from __future__ import annotations

import pytest

from repro.model import SortSpec
from repro.ovc.derive import verify_ovcs
from repro.workloads.enrollment import make_enrollment_workload
from repro.workloads.generators import (
    fig10_output_spec,
    fig10_table,
    fig11_output_spec,
    fig11_table,
    random_sorted_table,
    random_table,
)
from repro.model import Schema


@pytest.mark.parametrize("decide", ["first", "last"])
@pytest.mark.parametrize("list_len", [1, 2, 4])
def test_fig10_table_shape(decide, list_len):
    table = fig10_table(1 << 10, list_len, decide=decide, n_runs=16, seed=1)
    assert len(table) == 1 << 10
    assert len(table.schema) == 2 * list_len
    assert table.is_sorted()
    positions = table.sort_spec.positions(table.schema)
    assert verify_ovcs(table.rows, table.ovcs, positions)
    # Only the deciding column varies within each list.
    pos = 0 if decide == "first" else list_len - 1
    for row in table.rows[:50]:
        for c in range(list_len):
            if c != pos:
                assert row[c] == 0 and row[list_len + c] == 0
    # Exactly n_runs distinct A values.
    assert len({row[pos] for row in table.rows}) == 16


def test_fig10_output_spec_is_case3():
    from repro.core.analysis import Strategy, analyze_order_modification

    table = fig10_table(256, 2, n_runs=4)
    plan = analyze_order_modification(table.sort_spec, fig10_output_spec(2))
    assert plan.strategy is Strategy.MERGE_RUNS
    assert plan.case_id == 3


@pytest.mark.parametrize("n_segments", [1, 2, 32])
def test_fig11_table_shape(n_segments):
    table = fig11_table(1 << 10, n_segments, list_len=4, seed=2)
    assert len(table) == 1 << 10
    assert table.is_sorted()
    positions = table.sort_spec.positions(table.schema)
    assert verify_ovcs(table.rows, table.ovcs, positions)
    seg_col = 3  # last column of the A list
    assert len({row[seg_col] for row in table.rows}) == n_segments


def test_fig11_run_scaling_rule():
    """Quartering segment size halves runs per segment and run size."""
    n = 1 << 12
    t_coarse = fig11_table(n, 4, list_len=2)
    t_fine = fig11_table(n, 16, list_len=2)

    def runs_per_segment(table, list_len=2):
        seg_pos, run_pos = list_len - 1, 2 * list_len - 1
        pairs = {(r[seg_pos], r[run_pos]) for r in table.rows}
        segs = {r[seg_pos] for r in table.rows}
        return len(pairs) / len(segs)

    ratio = runs_per_segment(t_coarse) / runs_per_segment(t_fine)
    assert 1.7 < ratio < 2.4  # halved, up to rounding


def test_fig11_output_spec_is_case5():
    from repro.core.analysis import Strategy, analyze_order_modification

    table = fig11_table(256, 4, list_len=2)
    plan = analyze_order_modification(table.sort_spec, fig11_output_spec(2))
    assert plan.strategy is Strategy.COMBINED
    assert plan.prefix_len == 2


def test_random_sorted_table():
    schema = Schema.of("A", "B")
    spec = SortSpec.of("A", "B")
    table = random_sorted_table(schema, spec, 200, domains=5, seed=3)
    assert table.is_sorted()
    assert verify_ovcs(table.rows, table.ovcs, (0, 1))


def test_random_table_domains_validation():
    with pytest.raises(ValueError):
        random_table(Schema.of("A", "B"), 10, domains=[5])


def test_generators_are_deterministic():
    a = fig10_table(256, 2, n_runs=8, seed=42)
    b = fig10_table(256, 2, n_runs=8, seed=42)
    assert a.rows == b.rows
    c = fig10_table(256, 2, n_runs=8, seed=43)
    assert a.rows != c.rows


def test_enrollment_workload():
    w = make_enrollment_workload(
        n_students=20, n_courses=5, n_enrollments=100, n_campuses=2, seed=0
    )
    assert w.enrollments.is_sorted()
    assert len(w.enrollments) >= 100
    assert w.roster_order.names == ("campus", "course", "student", "semester")
    assert w.transcript_order.names == ("campus", "student", "course", "semester")
    # The stored order serves rosters as-is and transcripts via case 5.
    from repro.core.analysis import Strategy, analyze_order_modification

    plan = analyze_order_modification(
        w.enrollments.sort_spec, w.transcript_order
    )
    assert plan.strategy is Strategy.COMBINED
    assert plan.case_id == 7


def test_enrollment_single_campus_case():
    """With one campus the stored key's campus column is constant;
    after the optimizer's constant reduction the modification is the
    paper's case 7 (course/student rotation with a semester tail)."""
    w = make_enrollment_workload(
        n_students=20, n_courses=5, n_enrollments=50, n_campuses=1, seed=0
    )
    from repro.core.analysis import Strategy, analyze_order_modification
    from repro.optimizer.orderings import OrderingContext, reduce_spec

    ctx = OrderingContext.of(constants=["campus"])
    reduced_input = reduce_spec(w.enrollments.sort_spec, ctx)
    assert reduced_input.names == ("course", "student", "semester")
    plan = analyze_order_modification(reduced_input, w.transcript_order)
    assert plan.strategy is Strategy.MERGE_RUNS
    assert plan.case_id == 3  # stable rotation; semester tails both keys
