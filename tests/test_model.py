"""Tests for the data model: schemas, sort specs, tables, Desc wrapper."""

from __future__ import annotations

import pytest

from repro.model import (
    Desc,
    Schema,
    SortColumn,
    SortSpec,
    Table,
    denormalize_value,
    normalize_value,
)


class TestSchema:
    def test_lookup(self):
        s = Schema.of("A", "B")
        assert s.index_of("B") == 1
        assert s.indices_of(["B", "A"]) == (1, 0)
        assert "A" in s and "X" not in s
        assert len(s) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of("A", "A")

    def test_missing_column(self):
        with pytest.raises(KeyError):
            Schema.of("A").index_of("B")

    def test_numbered(self):
        assert Schema.numbered("c", 3).columns == ("c0", "c1", "c2")


class TestSortSpec:
    def test_parsing_desc_suffix(self):
        spec = SortSpec.of("A", "B DESC", "C ASC")
        assert spec.directions == (True, False, True)
        assert spec.names == ("A", "B", "C")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            SortSpec.of("A", "A DESC")

    def test_satisfies_prefix(self):
        assert SortSpec.of("A", "B").satisfies(SortSpec.of("A"))
        assert not SortSpec.of("A").satisfies(SortSpec.of("A", "B"))
        assert not SortSpec.of("A DESC").satisfies(SortSpec.of("A"))

    def test_common_prefix(self):
        a = SortSpec.of("A", "B", "C")
        b = SortSpec.of("A", "B", "X")
        assert a.common_prefix_len(b) == 2

    def test_slicing(self):
        spec = SortSpec.of("A", "B", "C")
        assert spec.prefix(2).names == ("A", "B")
        assert spec.suffix(1).names == ("B", "C")
        assert spec[1:].names == ("B", "C")
        assert spec[0] == SortColumn("A")

    def test_key_for_descending(self):
        schema = Schema.of("A", "B")
        key = SortSpec.of("A DESC", "B").key_for(schema)
        rows = [(1, 5), (2, 1), (2, 3)]
        assert sorted(rows, key=key) == [(2, 1), (2, 3), (1, 5)]

    def test_hash_and_eq(self):
        assert SortSpec.of("A", "B") == SortSpec.of("A", "B")
        assert hash(SortSpec.of("A")) == hash(SortSpec.of("A"))
        assert SortSpec.of("A") != SortSpec.of("A DESC")


class TestDesc:
    def test_inverted_order(self):
        assert Desc("b") < Desc("a")
        assert Desc("a") > Desc("b")
        assert Desc("a") == Desc("a")
        assert Desc("a") != Desc("b")

    def test_normalize_round_trip(self):
        for value, asc in ((5, False), ("x", False), (3.5, False), (7, True)):
            assert denormalize_value(normalize_value(value, asc), asc) == value

    def test_normalize_int_fast_path(self):
        assert normalize_value(5, False) == -5
        assert normalize_value(True, False) is False

    def test_sorting_strings_descending(self):
        values = ["pear", "apple", "fig"]
        got = sorted(values, key=lambda v: normalize_value(v, False))
        assert got == ["pear", "fig", "apple"]


class TestTable:
    def test_validation(self):
        schema = Schema.of("A")
        with pytest.raises(ValueError):
            Table(schema, [(1,)], SortSpec.of("A"), ovcs=[])
        with pytest.raises(KeyError):
            Table(schema, [], SortSpec.of("B"))

    def test_is_sorted(self):
        schema = Schema.of("A")
        assert Table(schema, [(1,), (2,)], SortSpec.of("A")).is_sorted()
        assert not Table(schema, [(2,), (1,)], SortSpec.of("A")).is_sorted()
        with pytest.raises(ValueError):
            Table(schema, [(1,)]).is_sorted()

    def test_with_ovcs_derives_once(self):
        schema = Schema.of("A")
        table = Table(schema, [(1,), (1,), (2,)], SortSpec.of("A"))
        table.with_ovcs()
        assert table.ovcs == [(0, 1), (1, 0), (0, 2)]
        marker = table.ovcs
        table.with_ovcs()
        assert table.ovcs is marker  # not re-derived

    def test_column_access(self):
        schema = Schema.of("A", "B")
        table = Table(schema, [(1, 2), (3, 4)])
        assert table.column("B") == [2, 4]

    def test_pretty_renders(self):
        schema = Schema.of("A", "B")
        table = Table(schema, [(1, 2)], SortSpec.of("A", "B")).with_ovcs()
        text = table.pretty()
        assert "A" in text and "offset" in text and "1" in text


class TestValidate:
    def test_validate_returns_self(self):
        schema = Schema.of("A")
        table = Table(schema, [(1,), (2,)], SortSpec.of("A")).with_ovcs()
        assert table.validate() is table

    def test_validate_raises_on_forged_codes(self):
        import pytest as _pytest

        from repro.testing import ValidationError

        schema = Schema.of("A")
        table = Table(schema, [(1,), (2,)], SortSpec.of("A")).with_ovcs()
        table.ovcs[1] = (1, 0)
        with _pytest.raises(ValidationError):
            table.validate()
