"""OrderService behavior: coalescing, bit-identity, overload, deadlines.

The acceptance bar (mirrored by ``bench --serve`` and CI):

* under 16-thread closed-loop load with 4 distinct orders each
  requested by 4 threads, ``serve.coalesced_requests > 0`` and
  executions < requests — duplicates share work;
* every response is bit-identical (rows, offset-value codes,
  comparison counters) to a serial uncached execution;
* a full admission queue raises ``ServiceOverloadError`` immediately —
  no deadlock, no unbounded buffering.

The deterministic tests freeze execution with a stub Sort operator
(patched into ``repro.serve.service``) so queue/registry states are
exact, not timing-dependent.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.scans import TableScan
from repro.engine.sort_op import Sort
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec
from repro.obs import METRICS
from repro.serve import (
    DeadlineExceededError,
    OrderService,
    ServiceClosedError,
    ServiceOverloadError,
)
import repro.serve.service as service_mod
from repro.workloads.generators import random_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [16, 24, 48, 8]


def _table(n_rows=400, seed=0):
    return random_table(SCHEMA, n_rows, domains=DOMAINS, seed=seed)


def _serial_uncached(table, spec):
    op = Sort(TableScan(table), spec, config=ExecutionConfig(cache="off"))
    out = op.to_table()
    return out.rows, out.ovcs, op.stats.as_dict()


# ------------------------------------------------------------ acceptance


def test_sixteen_thread_duplicate_load_coalesces_and_stays_bit_identical():
    METRICS.enable(clear=True)
    table = _table(500)
    cols = list(SCHEMA.columns)
    orders = [SortSpec(cols[i:] + cols[:i]) for i in range(4)]
    refs = {i: _serial_uncached(table, spec) for i, spec in enumerate(orders)}

    cfg = ExecutionConfig(cache="off", service_threads=2,
                          service_queue_depth=64)
    n_threads, waves = 16, 6
    barrier = threading.Barrier(n_threads)
    failures: list[str] = []

    def _client(t):
        spec = orders[t % len(orders)]
        rows, ovcs, stats = refs[t % len(orders)]
        for _ in range(waves):
            barrier.wait()
            resp = svc.order_by(table, spec, tenant=f"t{t}", timeout=60)
            if resp.table.rows != rows:
                failures.append(f"thread {t}: rows diverged")
            if resp.table.ovcs != ovcs:
                failures.append(f"thread {t}: codes diverged")
            if resp.stats.as_dict() != stats:
                failures.append(f"thread {t}: counters diverged")

    with OrderService(cfg) as svc:
        threads = [
            threading.Thread(target=_client, args=(t,))
            for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=120)
        counters = svc.counters()

    assert not failures, failures[:5]
    # Work sharing: strictly fewer executions than requests, and the
    # METRICS registry (the observable contract) agrees.
    assert counters["requests"] == n_threads * waves
    assert counters["executions"] < counters["requests"]
    assert counters["coalesced"] > 0
    snap = METRICS.as_dict()["counters"]
    assert snap["serve.coalesced_requests"] > 0
    assert snap["serve.executions"] < snap["serve.requests"]
    assert snap["serve.executions"] + snap["serve.coalesced_requests"] == (
        snap["serve.requests"]
    )


def test_single_request_matches_serial_uncached_execution():
    table = _table()
    spec = SortSpec.of("B", "A", "D")
    rows, ovcs, stats = _serial_uncached(table, spec)
    with OrderService(ExecutionConfig(cache="off")) as svc:
        resp = svc.order_by(table, spec)
    assert resp.table.rows == rows
    assert resp.table.ovcs == ovcs
    assert resp.stats.as_dict() == stats
    assert resp.coalesced is False
    assert resp.label == "full-sort"


# ---------------------------------------------- deterministic coalescing


class _FrozenSort:
    """Stand-in Sort whose execution blocks until released."""

    started = None  # type: threading.Event
    release = None  # type: threading.Event
    executed: list = []

    def __init__(self, child, spec, config=None):
        self._child = child
        self._spec = spec
        self.order_strategy = "frozen"
        from repro.ovc.stats import ComparisonStats

        self.stats = ComparisonStats()
        self.stats.row_comparisons = 7  # recognizable replay payload

    def to_table(self):
        type(self).started.set()
        assert type(self).release.wait(timeout=30), "never released"
        type(self).executed.append(",".join(str(c) for c in self._spec.columns))
        return self._child.source


def _frozen(monkeypatch):
    _FrozenSort.started = threading.Event()
    _FrozenSort.release = threading.Event()
    _FrozenSort.executed = []
    monkeypatch.setattr(service_mod, "Sort", _FrozenSort)
    return _FrozenSort


class _Scan:
    def __init__(self, table):
        self.source = table


def test_duplicates_coalesce_onto_one_execution(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    table = _table(50)
    spec = SortSpec.of("B", "A")
    cfg = ExecutionConfig(service_threads=1, service_queue_depth=8)
    with OrderService(cfg) as svc:
        blocker = svc.submit(_table(50, seed=9), SortSpec.of("A",))
        assert frozen.started.wait(timeout=10)  # worker now occupied
        tickets = [svc.submit(table, spec) for _ in range(4)]
        # First submit created the in-flight entry; the other three
        # attached to it without consuming queue slots or executions.
        assert [t.coalesced for t in tickets] == [False, True, True, True]
        assert svc.counters()["coalesced"] == 3
        frozen.release.set()
        responses = [t.result(timeout=30) for t in tickets]
        blocker.result(timeout=30)

    # One execution answered all four waiters, bit-identically.
    assert frozen.executed.count("B,A") == 1
    for resp in responses:
        assert resp.table.rows == responses[0].table.rows
        assert resp.stats.row_comparisons == 7  # leader's delta, replayed
    assert [r.coalesced for r in responses] == [False, True, True, True]


def test_completed_entries_leave_the_registry(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    frozen.release.set()  # executions run through immediately
    table = _table(50)
    with OrderService(ExecutionConfig(service_threads=1)) as svc:
        svc.order_by(table, "A")
        svc.order_by(table, "A")
        counters = svc.counters()
    # Sequential identical requests re-execute (the order cache, not
    # the in-flight registry, handles sequential repeats).
    assert counters["executions"] == 2
    assert counters["coalesced"] == 0
    assert counters["inflight"] == 0


# ------------------------------------------------------------- overload


def test_full_queue_rejects_immediately_without_deadlock(monkeypatch):
    METRICS.enable(clear=True)
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    cfg = ExecutionConfig(service_threads=1, service_queue_depth=1)
    with OrderService(cfg) as svc:
        first = svc.submit(_table(40, seed=1), SortSpec.of("A",))
        assert frozen.started.wait(timeout=10)  # dequeued, executing
        second = svc.submit(_table(40, seed=2), SortSpec.of("A",))  # fills queue
        start = time.monotonic()
        with pytest.raises(ServiceOverloadError, match="queue full"):
            svc.submit(_table(40, seed=3), SortSpec.of("A",))
        assert time.monotonic() - start < 5  # immediate, not a deadlock
        # A duplicate of an admitted key still coalesces — sharing an
        # in-flight execution needs no queue slot.
        dup = svc.submit(_table(40, seed=2), SortSpec.of("A",))
        assert dup.coalesced is True
        frozen.release.set()
        first.result(timeout=30)
        second.result(timeout=30)
        dup.result(timeout=30)
        counters = svc.counters()
    assert counters["rejected"] == 1
    assert METRICS.as_dict()["counters"]["serve.rejected_overload"] == 1


# ------------------------------------------------------------- deadlines


def test_queued_request_past_deadline_is_skipped(monkeypatch):
    METRICS.enable(clear=True)
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    cfg = ExecutionConfig(service_threads=1, service_queue_depth=8)
    with OrderService(cfg) as svc:
        blocker = svc.submit(_table(40, seed=1), SortSpec.of("A",))
        assert frozen.started.wait(timeout=10)
        doomed = svc.submit(
            _table(40, seed=2), SortSpec.of("A",), deadline_ms=30
        )
        time.sleep(0.08)  # let the deadline lapse while still queued
        frozen.release.set()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=30)
        blocker.result(timeout=30)
        counters = svc.counters()
    # The expired entry was never executed — deadline misses shed work:
    # only the blocker ran.
    assert frozen.executed == ["A"]
    assert counters["deadline_exceeded"] == 1
    assert counters["executions"] == 1
    assert METRICS.as_dict()["counters"]["serve.deadline_exceeded"] == 1


def test_waiter_deadline_while_execution_runs(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    with OrderService(ExecutionConfig(service_threads=1)) as svc:
        ticket = svc.submit(_table(40), SortSpec.of("A",), deadline_ms=40)
        assert frozen.started.wait(timeout=10)
        with pytest.raises(DeadlineExceededError):
            ticket.result()  # blocks at most ~40ms, then gives up
        frozen.release.set()
    assert svc.counters()["deadline_exceeded"] == 1


def test_coalesced_waiter_extends_the_entry_deadline(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    table = _table(40)
    cfg = ExecutionConfig(service_threads=1, service_queue_depth=8)
    with OrderService(cfg) as svc:
        blocker = svc.submit(_table(40, seed=5), SortSpec.of("A",))
        assert frozen.started.wait(timeout=10)
        short = svc.submit(table, SortSpec.of("B",), deadline_ms=30)
        patient = svc.submit(table, SortSpec.of("B",))  # no deadline
        time.sleep(0.08)
        frozen.release.set()
        # The entry survived the short waiter's deadline because the
        # patient waiter still wants the result.
        resp = patient.result(timeout=30)
        assert resp.coalesced is True
        with pytest.raises(DeadlineExceededError):
            short.result(timeout=30)
        blocker.result(timeout=30)


# -------------------------------------------------------------- fairness


def test_tenant_fair_dequeue_order(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    cfg = ExecutionConfig(service_threads=1, service_queue_depth=16)
    with OrderService(cfg) as svc:
        blocker = svc.submit(_table(40, seed=9), SortSpec.of("A",))
        assert frozen.started.wait(timeout=10)
        # Tenant "hog" floods four distinct orders; "meek" adds one.
        hog = [
            svc.submit(_table(40, seed=10 + i), SortSpec.of("A",),
                       tenant="hog")
            for i in range(4)
        ]
        meek = svc.submit(_table(40, seed=20), SortSpec.of("B",),
                          tenant="meek")
        frozen.release.set()
        for t in [blocker, meek, *hog]:
            t.result(timeout=30)
    # The meek tenant's single request ran after at most one hog
    # request — round-robin, not arrival order.
    assert frozen.executed.index("B") <= 2


# ------------------------------------------------------ errors & close


class _FailingSort:
    def __init__(self, child, spec, config=None):
        raise ValueError("synthetic execution failure")


def test_execution_error_propagates_to_every_waiter(monkeypatch):
    monkeypatch.setattr(service_mod, "Sort", _FailingSort)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    with OrderService(ExecutionConfig(service_threads=1)) as svc:
        with pytest.raises(ValueError, match="synthetic"):
            svc.order_by(_table(40), "A", timeout=30)
        assert svc.counters()["errors"] == 1


def test_closed_service_rejects_submits():
    svc = OrderService(ExecutionConfig(service_threads=1))
    svc.close()
    with pytest.raises(ServiceClosedError):
        svc.submit(_table(40), SortSpec.of("A",))
    svc.close()  # idempotent


def test_close_drains_admitted_work(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    svc = OrderService(ExecutionConfig(service_threads=1,
                                       service_queue_depth=8))
    first = svc.submit(_table(40, seed=1), SortSpec.of("A",))
    assert frozen.started.wait(timeout=10)
    second = svc.submit(_table(40, seed=2), SortSpec.of("A",))
    frozen.release.set()
    svc.close()  # default drain=True: admitted work completes
    assert first.result(timeout=1).table is not None
    assert second.result(timeout=1).table is not None


def test_close_without_drain_fails_queued_waiters(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    svc = OrderService(ExecutionConfig(service_threads=1,
                                       service_queue_depth=8))
    running = svc.submit(_table(40, seed=1), SortSpec.of("A",))
    assert frozen.started.wait(timeout=10)
    queued = svc.submit(_table(40, seed=2), SortSpec.of("A",))
    frozen.release.set()
    svc.close(drain=False)
    running.result(timeout=30)  # in-flight execution still completes
    with pytest.raises(ServiceClosedError):
        queued.result(timeout=30)


# --------------------------------------------------------- accounting


def test_inflight_bytes_are_charged_and_released():
    table = _table(300)
    with OrderService(ExecutionConfig(service_threads=2)) as svc:
        svc.order_by(table, "B", "A")
        counters = svc.counters()
    assert counters["inflight_bytes"] == 0  # all charges released
    assert svc.accountant.peak > 0
    assert svc.accountant.by_category.get("serve.inflight", 1) == 0


def test_health_reflects_rejections(monkeypatch):
    frozen = _frozen(monkeypatch)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    cfg = ExecutionConfig(service_threads=1, service_queue_depth=1)
    with OrderService(cfg) as svc:
        assert svc.health()["status"] == "ok"
        first = svc.submit(_table(40, seed=1), SortSpec.of("A",))
        assert frozen.started.wait(timeout=10)
        second = svc.submit(_table(40, seed=2), SortSpec.of("A",))
        with pytest.raises(ServiceOverloadError):
            svc.submit(_table(40, seed=3), SortSpec.of("A",))
        assert svc.health()["status"] == "degraded"
        frozen.release.set()
        first.result(timeout=30)
        second.result(timeout=30)
