"""Order normalization: unique-prefix truncation and its coalescing win."""

from __future__ import annotations

import random
import threading

from repro.cache import fingerprint_table
from repro.engine.scans import TableScan
from repro.engine.sort_op import Sort
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.obs import METRICS
from repro.serve import OrderService, SpecNormalizer
import repro.serve.service as service_mod

SCHEMA = Schema.of("A", "B", "C")


def _unique_a_table(n_rows=120, seed=0):
    """Column ``A`` is row-unique; ``B``/``C`` carry heavy duplication."""
    rng = random.Random(seed)
    keys = list(range(n_rows))
    rng.shuffle(keys)
    rows = [(k, k % 5, k % 3) for k in keys]
    return Table(SCHEMA, rows, None, None)


def _dup_table(n_rows=120, seed=1):
    """No proper prefix of any order is row-unique."""
    rng = random.Random(seed)
    rows = [
        (rng.randrange(4), rng.randrange(4), rng.randrange(4))
        for _ in range(n_rows)
    ]
    return Table(SCHEMA, rows, None, None)


# ----------------------------------------------------------------- unit


def test_truncates_to_shortest_unique_prefix():
    table = _unique_a_table()
    fp = fingerprint_table(table)
    norm = SpecNormalizer()
    spec = SortSpec.of("A", "B", "C")
    assert norm.normalize(fp, table, spec) == SortSpec.of("A")


def test_non_unique_prefix_left_untouched():
    table = _dup_table()
    fp = fingerprint_table(table)
    norm = SpecNormalizer()
    spec = SortSpec.of("A", "B")
    assert norm.normalize(fp, table, spec) is spec


def test_direction_of_the_kept_prefix_is_preserved():
    table = _unique_a_table()
    fp = fingerprint_table(table)
    norm = SpecNormalizer()
    got = norm.normalize(fp, table, SortSpec.of("A DESC", "B"))
    assert got == SortSpec.of("A DESC")
    assert got.directions == (False,)


def test_single_column_spec_never_probed():
    table = _dup_table()
    fp = fingerprint_table(table)
    norm = SpecNormalizer()
    spec = SortSpec.of("A")
    assert norm.normalize(fp, table, spec) is spec
    assert norm._memo == {}


def test_uniqueness_memoized_per_column_set():
    table = _unique_a_table()
    fp = fingerprint_table(table)
    norm = SpecNormalizer()
    norm.normalize(fp, table, SortSpec.of("A", "B"))
    key = (fp.source_key, frozenset({"A"}))
    assert norm._memo[key] is True
    # A different arrangement/direction over the same column set reuses
    # the probe (the memo is the only state, so hitting it again must
    # not add entries).
    norm.normalize(fp, table, SortSpec.of("A DESC", "C"))
    assert list(norm._memo) == [key]


# ----------------------------------------------------------- end-to-end


def test_service_serves_truncated_order_bit_identically():
    METRICS.enable(clear=True)
    table = _unique_a_table()
    spec = SortSpec.of("A", "B", "C")
    op = Sort(TableScan(table), spec, config=ExecutionConfig(cache="off"))
    ref = op.to_table()
    with OrderService(ExecutionConfig(cache="off", service_threads=1)) as svc:
        resp = svc.order_by(table, spec, timeout=60)
    assert resp.table.sort_spec == SortSpec.of("A")
    assert resp.table.rows == ref.rows
    assert resp.table.ovcs == ref.ovcs
    assert METRICS.as_dict()["counters"]["serve.normalized_orders"] == 1


class _FrozenSort:
    started = None  # type: threading.Event
    release = None  # type: threading.Event

    def __init__(self, child, spec, config=None):
        self._child = child
        self._spec = spec
        self.order_strategy = "frozen"
        from repro.ovc.stats import ComparisonStats

        self.stats = ComparisonStats()

    def to_table(self):
        type(self).started.set()
        assert type(self).release.wait(timeout=30), "never released"
        return self._child.source


class _Scan:
    def __init__(self, table):
        self.source = table


def test_equivalent_orders_coalesce_after_normalization(monkeypatch):
    """The satellite regression: ``(A,B)`` and ``(A,C)`` over a
    unique-``A`` source are one in-flight entry, not two executions."""
    _FrozenSort.started = threading.Event()
    _FrozenSort.release = threading.Event()
    monkeypatch.setattr(service_mod, "Sort", _FrozenSort)
    monkeypatch.setattr(service_mod, "TableScan", _Scan)
    table = _unique_a_table()
    cfg = ExecutionConfig(cache="off", service_threads=1,
                          service_queue_depth=8)
    with OrderService(cfg) as svc:
        blocker = svc.submit(_dup_table(), SortSpec.of("B", "C"))
        assert _FrozenSort.started.wait(timeout=10)  # worker occupied
        first = svc.submit(table, SortSpec.of("A", "B"))
        second = svc.submit(table, SortSpec.of("A", "C"))
        assert first.coalesced is False
        assert second.coalesced is True  # same normalized key
        _FrozenSort.release.set()
        first.result(timeout=30)
        second.result(timeout=30)
        blocker.result(timeout=30)
        counters = svc.counters()
    assert counters["coalesced"] == 1
    assert counters["executions"] == 2  # blocker + one shared execution
