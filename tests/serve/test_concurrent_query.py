"""Concurrent ``Query`` usage through the service stays uncorrupted.

Two hazards the serving layer must neutralize:

* two threads sharing one :class:`~repro.query.Query`/table and
  ordering it concurrently must not cross-contaminate each other's
  comparison counters (each service execution builds its own operator
  over its own fresh ``ComparisonStats``);
* concurrent executions with the order cache on must leave the cache
  in a consistent state — later requests served from it are still
  bit-identical.
"""

from __future__ import annotations

import threading

from repro.cache import configure_cache, get_cache
from repro.engine.scans import TableScan
from repro.engine.sort_op import Sort
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec
from repro.query import Query
from repro.serve import OrderService
from repro.workloads.generators import random_table

SCHEMA = Schema.of("A", "B", "C", "D")


def _refs(table, orders):
    out = {}
    for spec in orders:
        op = Sort(TableScan(table), spec,
                  config=ExecutionConfig(cache="off"))
        t = op.to_table()
        out[str(spec.columns)] = (t.rows, t.ovcs, op.stats.as_dict())
    return out


def test_two_threads_sharing_one_source_keep_counters_isolated():
    table = random_table(SCHEMA, 400, domains=[10, 20, 40, 5], seed=7)
    orders = [SortSpec.of("B", "A"), SortSpec.of("C", "D", "A")]
    refs = _refs(table, orders)
    cfg = ExecutionConfig(cache="off", service_threads=2)
    failures: list[str] = []
    barrier = threading.Barrier(2)

    def _client(spec):
        rows, ovcs, stats = refs[str(spec.columns)]
        for _ in range(5):
            barrier.wait()
            resp = svc.order_by(table, spec, timeout=60)
            if resp.table.rows != rows or resp.table.ovcs != ovcs:
                failures.append(f"{spec.columns}: output diverged")
            if resp.stats.as_dict() != stats:
                # Cross-contamination would double counters or mix the
                # two orders' counts.
                failures.append(f"{spec.columns}: counters corrupted")

    with OrderService(cfg) as svc:
        threads = [
            threading.Thread(target=_client, args=(spec,)) for spec in orders
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
    assert not failures, failures[:4]


def test_shared_query_object_is_safe_via_service():
    # A single Query held by many threads: each order_by() derives a
    # fresh operator, and routing execution through the service means
    # no thread ever iterates another's operator state.
    table = random_table(SCHEMA, 300, domains=[8, 16, 32, 4], seed=11)
    shared = Query(table)
    expected = shared.order_by(
        "B", "A", config=ExecutionConfig(cache="off")
    ).to_table()
    results, errors = [], []

    def _client():
        try:
            resp = svc.order_by(table, "B", "A", timeout=60)
            results.append(resp.table)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    with OrderService(ExecutionConfig(cache="off", service_threads=4)) as svc:
        threads = [threading.Thread(target=_client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
    assert not errors
    assert len(results) == 6
    for got in results:
        assert got.rows == expected.rows
        assert got.ovcs == expected.ovcs


def test_concurrent_service_traffic_keeps_cache_consistent():
    table = random_table(SCHEMA, 350, domains=[10, 18, 36, 6], seed=13)
    orders = [SortSpec.of("A", "C"), SortSpec.of("B", "D"),
              SortSpec.of("D", "A")]
    refs = _refs(table, orders)
    configure_cache()
    cfg = ExecutionConfig(cache="on", service_threads=3)
    failures: list[str] = []

    def _client(spec):
        rows, ovcs, _stats = refs[str(spec.columns)]
        for _ in range(4):
            resp = svc.order_by(table, spec, timeout=60)
            if resp.table.rows != rows or resp.table.ovcs != ovcs:
                failures.append(f"{spec.columns}: cache-era divergence")

    with OrderService(cfg) as svc:
        threads = [
            threading.Thread(target=_client, args=(spec,))
            for spec in orders for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        # Cache-warm replay after the storm is still bit-identical.
        for spec in orders:
            rows, ovcs, _ = refs[str(spec.columns)]
            resp = svc.order_by(table, spec, timeout=60)
            assert resp.table.rows == rows
            assert resp.table.ovcs == ovcs
    cache = get_cache()
    assert cache is not None
    assert cache.counters()["entries"] >= 1
    assert not failures, failures[:4]
