"""Micro-batch planning in the serving layer (``plan_window_ms``).

With a window set, a scheduler thread holds its first dequeue for the
window and hands same-source groups of distinct orders to the batch
derivation planner.  The contract under test: every response stays
bit-identical (rows and codes) to the unbatched path, the planner
counters move, batch failure degrades to solo execution, and expired
entries are shed before planning.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.scans import TableScan
from repro.engine.sort_op import Sort
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec
from repro.obs import METRICS
from repro.serve import DeadlineExceededError, OrderService
from repro.workloads.generators import random_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [16, 24, 48, 8]

#: All four rotations — distinct but closely related orders.
ROTATIONS = [
    SortSpec(list(SCHEMA.columns)[i:] + list(SCHEMA.columns)[:i])
    for i in range(4)
]


def _table(n_rows=400, seed=0):
    return random_table(SCHEMA, n_rows, domains=DOMAINS, seed=seed)


def _serial_uncached(table, spec):
    op = Sort(TableScan(table), spec, config=ExecutionConfig(cache="off"))
    out = op.to_table()
    return out.rows, out.ovcs, op.stats.as_dict()


def test_sibling_orders_form_one_planned_batch():
    METRICS.enable(clear=True)
    table = _table()
    refs = {spec: _serial_uncached(table, spec) for spec in ROTATIONS}
    cfg = ExecutionConfig(cache="off", service_threads=1,
                          service_queue_depth=16, plan_window_ms=400.0)
    with OrderService(cfg) as svc:
        tickets = [svc.submit(table, spec) for spec in ROTATIONS]
        responses = [t.result(timeout=60) for t in tickets]
        counters = svc.counters()

    for spec, resp in zip(ROTATIONS, responses):
        rows, ovcs, _stats = refs[spec]
        assert resp.table.rows == rows
        assert resp.table.ovcs == ovcs
    assert counters["planned_batches"] == 1
    assert counters["planned"] == len(ROTATIONS)
    assert counters["executions"] == len(ROTATIONS)
    snap = METRICS.as_dict()["counters"]
    assert snap["serve.planned_batches"] == 1
    assert snap["serve.planned_requests"] == len(ROTATIONS)


def test_mixed_sources_split_into_groups():
    table_a, table_b = _table(seed=0), _table(seed=1)
    cfg = ExecutionConfig(cache="off", service_threads=1,
                          service_queue_depth=16, plan_window_ms=400.0)
    with OrderService(cfg) as svc:
        tickets = [
            svc.submit(table_a, ROTATIONS[1]),
            svc.submit(table_a, ROTATIONS[2]),
            svc.submit(table_b, ROTATIONS[1]),
        ]
        responses = [t.result(timeout=60) for t in tickets]
        counters = svc.counters()

    assert responses[0].table.rows == _serial_uncached(table_a, ROTATIONS[1])[0]
    assert responses[2].table.rows == _serial_uncached(table_b, ROTATIONS[1])[0]
    # The two same-source orders planned together; the lone one ran solo.
    assert counters["planned_batches"] == 1
    assert counters["planned"] == 2
    assert counters["executions"] == 3


def test_window_off_by_default():
    table = _table()
    with OrderService(ExecutionConfig(cache="off", service_threads=1)) as svc:
        assert svc.config.plan_window_ms is None
        for spec in ROTATIONS[:2]:
            svc.order_by(table, spec, timeout=60)
        counters = svc.counters()
    assert counters["planned_batches"] == 0
    assert counters["planned"] == 0
    assert counters["executions"] == 2


def test_planner_failure_degrades_to_solo_execution(monkeypatch):
    import repro.plan as plan_mod

    def _boom(*args, **kwargs):
        raise RuntimeError("synthetic planner failure")

    monkeypatch.setattr(plan_mod, "derive_batch", _boom)
    table = _table()
    refs = {spec: _serial_uncached(table, spec) for spec in ROTATIONS[:2]}
    cfg = ExecutionConfig(cache="off", service_threads=1,
                          service_queue_depth=16, plan_window_ms=300.0)
    with OrderService(cfg) as svc:
        tickets = [svc.submit(table, spec) for spec in ROTATIONS[:2]]
        responses = [t.result(timeout=60) for t in tickets]
        counters = svc.counters()

    for spec, resp in zip(ROTATIONS[:2], responses):
        rows, ovcs, stats = refs[spec]
        assert resp.table.rows == rows
        assert resp.table.ovcs == ovcs
        assert resp.stats.as_dict() == stats  # solo path: full fidelity
    assert counters["planned_batches"] == 0
    assert counters["executions"] == 2
    assert counters["errors"] == 0


def test_expired_entry_shed_before_planning():
    table = _table()
    cfg = ExecutionConfig(cache="off", service_threads=1,
                          service_queue_depth=16, plan_window_ms=300.0)
    with OrderService(cfg) as svc:
        doomed = svc.submit(table, ROTATIONS[1], deadline_ms=30)
        patient = svc.submit(table, ROTATIONS[2])
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=60)
        resp = patient.result(timeout=60)
        counters = svc.counters()
    assert resp.table.rows == _serial_uncached(table, ROTATIONS[2])[0]
    # One entry expired during the window; the survivor ran solo.
    assert counters["executions"] == 1
    assert counters["deadline_exceeded"] == 1


def test_sixteen_thread_batched_path_stays_bit_identical():
    """The acceptance bar: batched serving == unbatched, bit for bit."""
    table = _table(500)
    refs = {spec: _serial_uncached(table, spec) for spec in ROTATIONS}
    cfg = ExecutionConfig(cache="off", service_threads=2,
                          service_queue_depth=64, plan_window_ms=60.0)
    n_threads, waves = 16, 4
    barrier = threading.Barrier(n_threads)
    failures: list[str] = []

    def _client(t):
        spec = ROTATIONS[t % len(ROTATIONS)]
        rows, ovcs, _stats = refs[spec]
        for _ in range(waves):
            barrier.wait()
            resp = svc.order_by(table, spec, tenant=f"t{t}", timeout=120)
            if resp.table.rows != rows:
                failures.append(f"thread {t}: rows diverged")
            if resp.table.ovcs != ovcs:
                failures.append(f"thread {t}: codes diverged")

    with OrderService(cfg) as svc:
        threads = [
            threading.Thread(target=_client, args=(t,))
            for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=180)
        counters = svc.counters()

    assert not failures, failures[:5]
    assert counters["requests"] == n_threads * waves
    # Barrier-synchronized waves of 4 distinct sibling orders: the
    # window reliably captures at least one plannable group.
    assert counters["planned_batches"] >= 1
    assert counters["coalesced"] > 0
    assert counters["executions"] < counters["requests"]
