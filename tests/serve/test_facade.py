"""The stable facade is real: examples import only public names.

``docs/API.md`` declares the stable import surface — the ``repro``
facade plus the modules marked *stable* in its Stability table.  This
test parses that table and holds every shipped ``examples/*.py`` to
it, so the docs, the facade, and the examples cannot drift apart
silently.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parents[2]
API_MD = REPO / "docs" / "API.md"
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def stable_modules() -> set[str]:
    """Modules marked ``stable`` in docs/API.md's Stability table."""
    text = API_MD.read_text()
    mods = set()
    for line in text.splitlines():
        m = re.match(r"\|\s*`(repro[\w.]*)`\s*\|\s*stable\s*\|", line)
        if m:
            mods.add(m.group(1))
    return mods


def repro_imports(path: Path):
    """Yield (module, names) for every repro import in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield alias.name, []
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "repro" or mod.startswith("repro."):
                yield mod, [a.name for a in node.names]


def test_stability_table_exists_and_includes_facade():
    mods = stable_modules()
    assert "repro" in mods
    assert "repro.serve" in mods
    assert len(mods) >= 10


def test_stability_table_modules_all_import():
    for mod in sorted(stable_modules()):
        __import__(mod)


def test_facade_all_resolves():
    assert repro.__version__
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_serve_surface_is_on_the_facade():
    from repro.serve import OrderService, ServiceOverloadError

    assert repro.OrderService is OrderService
    assert repro.ServiceOverloadError is ServiceOverloadError


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[p.name for p in EXAMPLES]
)
def test_examples_import_only_public_names(example):
    allowed = stable_modules()
    problems = []
    for mod, names in repro_imports(example):
        if mod == "repro":
            for name in names:
                if name not in repro.__all__:
                    problems.append(
                        f"from repro import {name}: not in repro.__all__"
                    )
        elif mod not in allowed:
            problems.append(f"{mod}: not marked stable in docs/API.md")
    assert not problems, f"{example.name}: {problems}"


def test_examples_exist():
    assert any(p.name == "order_service.py" for p in EXAMPLES)
    assert len(EXAMPLES) >= 10
