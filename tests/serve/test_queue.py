"""AdmissionQueue unit tests: bound, fairness, FIFO, close semantics."""

from __future__ import annotations

import threading

import pytest

from repro.serve.queue import AdmissionQueue


def test_depth_validation():
    with pytest.raises(ValueError):
        AdmissionQueue(0)


def test_put_get_fifo_within_tenant():
    q = AdmissionQueue(8)
    for i in range(5):
        assert q.put(i, "t") is True
    assert [q.get(timeout=0) for _ in range(5)] == [0, 1, 2, 3, 4]


def test_put_refuses_when_full_without_blocking():
    q = AdmissionQueue(2)
    assert q.put("a", "t") and q.put("b", "t")
    assert q.put("c", "t") is False  # returns immediately, never blocks
    assert len(q) == 2
    q.get(timeout=0)
    assert q.put("c", "t") is True  # space freed -> admitted again


def test_round_robin_across_tenants():
    q = AdmissionQueue(16)
    # Tenant "a" floods first; "b" and "c" each add one afterwards.
    for i in range(4):
        q.put(f"a{i}", "a")
    q.put("b0", "b")
    q.put("c0", "c")
    order = [q.get(timeout=0) for _ in range(6)]
    # One item per tenant per rotation: b0/c0 are NOT stuck behind a1..a3.
    assert order.index("b0") < 3
    assert order.index("c0") < 4
    assert [x for x in order if x.startswith("a")] == ["a0", "a1", "a2", "a3"]


def test_get_times_out_empty():
    q = AdmissionQueue(2)
    assert q.get(timeout=0.01) is None


def test_get_wakes_on_put():
    q = AdmissionQueue(2)
    got = []
    t = threading.Thread(target=lambda: got.append(q.get(timeout=5)))
    t.start()
    q.put("x", "t")
    t.join(timeout=5)
    assert got == ["x"]


def test_close_refuses_puts_and_wakes_getters():
    q = AdmissionQueue(4)
    q.put("x", "t")
    results = []
    t = threading.Thread(target=lambda: results.append(q.get(timeout=30)))
    t.start()
    t.join(timeout=5)
    assert results == ["x"]  # drained before close
    q.close()
    assert q.closed
    assert q.put("y", "t") is False
    assert q.get(timeout=30) is None  # returns immediately, no 30s hang


def test_drain_continues_after_close():
    q = AdmissionQueue(4)
    q.put("x", "t")
    q.put("y", "u")
    q.close()
    assert {q.get(timeout=0), q.get(timeout=0)} == {"x", "y"}


def test_tenants_listing():
    q = AdmissionQueue(8)
    q.put(1, "a")
    q.put(2, "b")
    assert q.tenants() == ["a", "b"]
    q.get(timeout=0)  # pops a's only item
    assert q.tenants() == ["b"]
