"""Closed-loop load driver and the serving benchmark record.

A scaled-down version of the acceptance load (``bench --serve`` runs
the full 16-thread shape): duplicate-heavy traffic must coalesce,
executions must undercut requests, and the record must carry the
latency percentiles and the executions-per-request ratio the
committed ``BENCH_serve.json`` artifact reports.
"""

from __future__ import annotations

import pytest

from repro.bench.serve_bench import (
    check_serve_record,
    format_serve_summary,
    run_serve_trajectory,
)
from repro.exec import ExecutionConfig
from repro.model import Schema
from repro.serve import OrderService, default_orders, run_load
from repro.serve.load import _percentile
from repro.workloads.generators import random_table

SCHEMA = Schema.of("A", "B", "C", "D")


def test_percentile_nearest_rank():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(vals, 50) == 2.0
    assert _percentile(vals, 99) == 4.0
    assert _percentile([], 50) == 0.0


def test_default_orders_distinct_and_bounded():
    table = random_table(SCHEMA, 16, domains=4, seed=0)
    orders = default_orders(table, 4)
    assert len({tuple(str(c) for c in o.columns) for o in orders}) == 4
    with pytest.raises(ValueError):
        default_orders(table, 5)


def test_run_load_duplicate_heavy_shares_work():
    table = random_table(SCHEMA, 300, domains=[12, 16, 32, 6], seed=3)
    cfg = ExecutionConfig(cache="off", service_threads=2,
                          service_queue_depth=64)
    with OrderService(cfg) as svc:
        report = run_load(
            svc, table, default_orders(table, 4),
            threads=8, requests_per_thread=4,
        )
    assert report["requests"] == 32
    assert report["completed"] == 32
    assert report["errors"] == 0 and report["rejected"] == 0
    assert report["executions"] < report["requests"]
    assert report["coalesced_requests"] > 0
    assert report["executions_per_request"] < 1.0
    assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"] > 0
    assert report["throughput_rps"] > 0


def test_run_load_validation():
    table = random_table(SCHEMA, 16, domains=4, seed=0)
    with OrderService(ExecutionConfig(service_threads=1)) as svc:
        with pytest.raises(ValueError):
            run_load(svc, table, [], threads=2)
        with pytest.raises(ValueError):
            run_load(svc, table, default_orders(table, 2), threads=0)


def test_serve_trajectory_record_passes_its_own_gate():
    record = run_serve_trajectory(
        256, seed=1, threads=8, requests_per_thread=3, n_orders=4
    )
    assert check_serve_record(record) == []
    assert record["fidelity_ok"] is True
    assert record["executions"] < record["requests"]
    assert record["coalesced_requests"] > 0
    (summary,) = format_serve_summary(record)
    assert summary["exec/req"] == record["executions_per_request"]


def test_check_serve_record_flags_failures():
    bad = {
        "fidelity_problems": ["order A: rows diverged"],
        "errors": 1,
        "requests": 10,
        "executions": 10,
        "coalesced_requests": 0,
    }
    problems = check_serve_record(bad)
    assert len(problems) == 4
