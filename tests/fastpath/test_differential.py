"""Differential suite: the fast engine is bit-identical to reference.

Every Table 1 case, every forceable method, ascending and descending
columns, strings, duplicate-heavy domains, and the empty/singleton
edges — asserting *identical* rows AND output offset-value codes, not
just a correct sort.  The generators mirror
``tests/test_fuzz_differential.py`` so the two suites cover the same
input distribution.
"""

from __future__ import annotations

import random

import pytest

from repro.core.external_modify import modify_sort_order_external
from repro.core.modify import modify_sort_order
from repro.engine.modify_op import StreamingModify
from repro.engine.scans import TableScan
from repro.exec import ExecutionConfig
from repro.engine.sort_op import Sort
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs
from repro.ovc.stats import ComparisonStats

SCHEMA = Schema.of("A", "B", "C", "D")

# Input-domain shapes from the fuzz suite: balanced, few segments/many
# runs, tiny segments, constant prefix, duplicate-heavy.
SHAPES = [
    (8, 8, 8, 8),
    (2, 200, 4, 4),
    (500, 2, 2, 2),
    (1, 1, 300, 300),
    (3, 3, 3, 1),
]

# The eight prototype cases of Table 1 (input order -> output order).
TABLE1 = {
    0: (("A", "B"), ("A",)),
    1: (("A",), ("A", "B")),
    2: (("A", "B"), ("B",)),
    3: (("A", "B"), ("B", "A")),
    4: (("A", "B", "C"), ("A", "C")),
    5: (("A", "B", "C"), ("A", "C", "B")),
    6: (("A", "B", "C", "D"), ("A", "C", "D")),
    7: (("A", "B", "C", "D"), ("A", "C", "B", "D")),
}

METHODS = ["auto", "noop", "segment_sort", "merge_runs", "combined", "full_sort"]


def _make_table(in_columns, seed, n, desc=False, strings=False):
    rng = random.Random(seed)
    shape = SHAPES[seed % len(SHAPES)]

    def cell(c, d):
        v = rng.randrange(d)
        return f"s{v:03d}" if (strings and c == 1) else v

    cols = [f"{c} DESC" if (desc and i == 1) else c for i, c in enumerate(in_columns)]
    spec = SortSpec(cols)
    key = spec.key_for(SCHEMA)
    rows = sorted(
        (tuple(cell(c, d) for c, d in enumerate(shape)) for _ in range(n)),
        key=key,
    )
    table = Table(SCHEMA, rows, spec)
    table.ovcs = derive_ovcs(rows, spec.positions(SCHEMA), spec.directions)
    return table


def _assert_identical(table, spec, method):
    """Fast output == reference output, bit for bit, or both reject."""
    try:
        ref = modify_sort_order(table, spec, method=method, config=ExecutionConfig(engine="reference"))
    except ValueError:
        with pytest.raises(ValueError):
            modify_sort_order(table, spec, method=method, config=ExecutionConfig(engine="fast"))
        return
    fast = modify_sort_order(table, spec, method=method, config=ExecutionConfig(engine="fast"))
    assert fast.rows == ref.rows
    assert fast.ovcs == ref.ovcs


@pytest.mark.parametrize("case", sorted(TABLE1))
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("seed", range(3))
def test_table1_cases_bit_identical(case, method, seed):
    in_cols, out_cols = TABLE1[case]
    table = _make_table(in_cols, seed, n=700)
    _assert_identical(table, SortSpec(out_cols), method)


@pytest.mark.parametrize("case", sorted(TABLE1))
@pytest.mark.parametrize("desc_side", ["in", "out", "both"])
def test_descending_columns_bit_identical(case, desc_side):
    in_cols, out_cols = TABLE1[case]
    table = _make_table(in_cols, 1, n=500, desc=desc_side in ("in", "both"))
    if desc_side in ("out", "both"):
        out = [f"{c} DESC" if i == 0 else c for i, c in enumerate(out_cols)]
    else:
        out = list(out_cols)
    _assert_identical(table, SortSpec(out), "auto")


@pytest.mark.parametrize("case", sorted(TABLE1))
def test_string_columns_bit_identical(case):
    in_cols, out_cols = TABLE1[case]
    table = _make_table(in_cols, 2, n=500, strings=True)
    _assert_identical(table, SortSpec(out_cols), "auto")


@pytest.mark.parametrize("n", [0, 1, 2, 3])
@pytest.mark.parametrize("method", METHODS)
def test_tiny_inputs_bit_identical(n, method):
    table = _make_table(("A", "B", "C"), 0, n=n)
    _assert_identical(table, SortSpec(("A", "C", "B")), method)


@pytest.mark.parametrize("seed", range(4))
def test_duplicate_heavy_bit_identical(seed):
    # Shape (3,3,3,1): most adjacent rows are exact duplicates.
    table = _make_table(("A", "B", "C", "D"), 4, n=900)
    for out in [("A", "C", "B", "D"), ("B", "A"), ("D",)]:
        _assert_identical(table, SortSpec(out), "auto")


def test_auto_engine_dispatch_rules():
    """``auto`` uses fast exactly when nothing reference-only is asked."""
    table = _make_table(("A", "B"), 0, n=300)
    spec = SortSpec(("B", "A"))
    # No stats collector -> fast path -> a fresh collector sees nothing.
    probe = ComparisonStats()
    modify_sort_order(table, spec)  # auto/fast; must not throw
    # Passing stats forces the reference path: counters move.
    modify_sort_order(table, spec, stats=probe)
    assert probe.column_comparisons + probe.ovc_comparisons > 0
    # Forced fast with use_ovc=False is rejected.
    with pytest.raises(ValueError):
        modify_sort_order(table, spec, use_ovc=False, config=ExecutionConfig(engine="fast"))
    with pytest.raises(ValueError):
        modify_sort_order(
            table, spec, config=ExecutionConfig(engine="bogus")
        )


def test_reference_counters_unchanged_by_dispatcher():
    """The dispatcher must not perturb the reference path's counters."""
    table = _make_table(("A", "B", "C"), 3, n=800)
    spec = SortSpec(("A", "C", "B"))
    a, b = ComparisonStats(), ComparisonStats()
    modify_sort_order(table, spec, stats=a)
    modify_sort_order(table, spec, stats=b, config=ExecutionConfig(engine="reference"))
    assert (a.row_comparisons, a.column_comparisons, a.ovc_comparisons) == (
        b.row_comparisons,
        b.column_comparisons,
        b.ovc_comparisons,
    )


def test_sort_operator_engines_agree():
    table = _make_table(("A", "B", "C"), 1, n=600)
    spec = SortSpec(("A", "C", "B"))
    ref = Sort(TableScan(table), spec).to_table()
    fast = Sort(TableScan(table), spec, config=ExecutionConfig(engine="fast")).to_table()
    assert fast.rows == ref.rows
    assert fast.ovcs == ref.ovcs
    # Unordered child -> internal sort path.
    unordered = Table(SCHEMA, list(reversed(table.rows)), None)
    ref = Sort(TableScan(unordered), spec).to_table()
    fast = Sort(TableScan(unordered), spec, config=ExecutionConfig(engine="fast")).to_table()
    assert fast.rows == ref.rows
    assert fast.ovcs == ref.ovcs


def test_streaming_modify_engines_agree():
    table = _make_table(("A", "B", "C"), 2, n=600)
    spec = SortSpec(("A", "C", "B"))
    ref = list(StreamingModify(TableScan(table), spec))
    fast = list(StreamingModify(TableScan(table), spec, config=ExecutionConfig(engine="fast")))
    assert fast == ref


def test_external_modify_engines_agree():
    table = _make_table(("A", "B", "C"), 0, n=600)
    spec = SortSpec(("A", "C", "B"))
    for capacity in (64, 10_000):
        ref = modify_sort_order_external(table, spec, memory_capacity=capacity)
        fast = modify_sort_order_external(
            table, spec, memory_capacity=capacity, config=ExecutionConfig(engine="fast")
        )
        assert fast.rows == ref.rows
        assert fast.ovcs == ref.ovcs
