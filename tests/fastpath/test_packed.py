"""Unit tests for the packed-code codec."""

from __future__ import annotations

import random

import pytest

from repro.fastpath.packed import PackedCodec


def _keys(seed=0, n=200, shape=(5, 3, 40)):
    rng = random.Random(seed)
    return [tuple(rng.randrange(d) for d in shape) for _ in range(n)]


def test_pack_ovc_orders_like_ascending_tuple_codes():
    """Lower ascending tuple code (arity - offset, value) == lower
    packed int, across offsets and values."""
    keys = _keys()
    arity = 3
    codec = PackedCodec(keys, arity)
    codes = [(o, v) for o in range(arity) for v in sorted({k[o] for k in keys})]
    codes.append((arity, 0))  # the duplicate code
    packed = [codec.pack_ovc(c) for c in codes]
    tuple_form = [(arity - o, v if o < arity else 0) for o, v in codes]
    order_by_packed = sorted(range(len(codes)), key=packed.__getitem__)
    order_by_tuple = sorted(range(len(codes)), key=tuple_form.__getitem__)
    assert order_by_packed == order_by_tuple


def test_pack_unpack_roundtrip():
    keys = _keys(1)
    codec = PackedCodec(keys, 3)
    for offset in range(3):
        for value in sorted({k[offset] for k in keys}):
            assert codec.unpack_ovc(codec.pack_ovc((offset, value))) == (
                offset,
                value,
            )
    assert codec.unpack_ovc(codec.pack_ovc((3, 0))) == (3, 0)


def test_pack_range_orders_like_key_slices():
    keys = _keys(2, shape=(4, 1, 9, 2))  # includes a constant column
    codec = PackedCodec(keys, 4)
    for start, stop in [(0, 4), (1, 3), (2, 4), (0, 2)]:
        packed = codec.pack_range(start, stop)
        by_packed = sorted(range(len(keys)), key=packed.__getitem__)
        by_slice = sorted(range(len(keys)), key=lambda i: keys[i][start:stop])
        assert [keys[i][start:stop] for i in by_packed] == [
            keys[i][start:stop] for i in by_slice
        ]


def test_pack_range_handles_strings_and_negatives():
    keys = [("b", -5), ("a", 10), ("b", 0), ("a", -5), ("c", 3)]
    codec = PackedCodec(keys, 2)
    packed = codec.pack_range(0, 2)
    by_packed = sorted(range(len(keys)), key=packed.__getitem__)
    assert [keys[i] for i in by_packed] == sorted(keys)


def test_varying_columns_and_varies():
    keys = [(1, 7, x, "s") for x in range(5)]
    codec = PackedCodec(keys, 4)
    assert codec.varying_columns(0, 4) == [2]
    assert not codec.varies(0)
    assert codec.varies(2)
    assert not codec.varies(3)


def test_positions_indirection_reads_rows():
    """With ``positions``, the codec reads key columns out of rows."""
    rows = [(i % 3, "pad", 10 - i) for i in range(10)]
    direct = PackedCodec([(r[2], r[0]) for r in rows], 2)
    indirect = PackedCodec(rows, 2, positions=[2, 0])
    assert indirect.pack_range(0, 2) == direct.pack_range(0, 2)
    assert indirect.varying_columns(0, 2) == direct.varying_columns(0, 2)


def test_empty_universe():
    codec = PackedCodec([], 3)
    assert codec.pack_range(0, 3) == []
    assert codec.varying_columns(0, 3) == []
    assert not codec.varies(1)


def test_radix_and_code_radix():
    keys = [(0, "x"), (1, "x"), (2, "y")]
    codec = PackedCodec(keys, 2)
    assert codec.radix(0) == 3
    assert codec.radix(1) == 2
    assert codec.code_radix == 4  # 1 + max cardinality


@pytest.mark.parametrize("shape", [(2, 2), (1, 50), (7, 7)])
def test_pack_range_full_width_matches_total_order(shape):
    keys = _keys(3, n=120, shape=shape)
    codec = PackedCodec(keys, len(shape))
    packed = codec.pack_range(0, len(shape))
    assert sorted(keys) == [
        keys[i] for i in sorted(range(len(keys)), key=packed.__getitem__)
    ]
