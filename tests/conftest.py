"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs


def paper_example_table() -> Table:
    """The input of Figure 5: sorted on A, B, C with its exact codes."""
    schema = Schema.of("A", "B", "C")
    rows = [
        (1, 1, 1),
        (2, 1, 1),
        (2, 1, 3),
        (2, 2, 1),
        (2, 2, 2),
        (2, 3, 4),
        (2, 3, 4),
        (2, 3, 5),
        (3, 1, 1),
    ]
    table = Table(schema, rows, SortSpec.of("A", "B", "C"))
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


@pytest.fixture
def figure5_table() -> Table:
    return paper_example_table()


def ground_truth_modify(table: Table, new_spec: SortSpec) -> list[tuple]:
    """Stable re-sort via Python's sorted(): the reference output."""
    key = new_spec.key_for(table.schema)
    return sorted(table.rows, key=key)
