"""Tests for the ``python -m repro`` experiment runner."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_cli_table1(capsys):
    assert main(["table1", "--log2-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "Table 1 cases" in out
    assert "A,C,B,D" in out


def test_cli_fig10(capsys):
    assert main(["fig10", "--log2-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 10" in out
    assert "no-ovc" in out and "ovc" in out


def test_cli_fig11(capsys):
    assert main(["fig11", "--log2-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "combined" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_design(capsys):
    assert main(["design", "--log2-rows", "10"]) == 0
    out = capsys.readouterr().out
    assert "Physical design" in out
    assert "with modification" in out
    assert "Three-table join planning" in out


def test_cli_bench_writes_json(capsys, tmp_path):
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--log2-rows", "8", "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "reference vs fast" in out
    assert "speedup" in out
    import json

    record = json.loads(out_path.read_text())
    assert record["n_rows"] == 256
    assert record["cells"]
    for cell in record["cells"]:
        assert cell["fast_seconds"] > 0
        assert cell["reference_seconds"] > 0
        assert cell["row_comparisons"] >= 0


def test_cli_bench_exits_nonzero_on_fidelity_failure(capsys, monkeypatch):
    import repro.bench.trajectory as trajectory

    record = {
        "n_rows": 256,
        "fidelity_ok": False,
        "min_speedup": 1.0,
        "geomean_speedup": 1.0,
        "cells": [
            {"label": "fake", "speedup": 1.0, "fidelity_ok": False},
        ],
    }
    monkeypatch.setattr(trajectory, "run_trajectory", lambda *a, **k: record)
    assert main(["bench", "--log2-rows", "8"]) == 1
    assert "FIDELITY FAILURE" in capsys.readouterr().out


def test_cli_bench_workers_writes_json(capsys, tmp_path):
    out_path = tmp_path / "bench_parallel.json"
    assert (
        main(
            [
                "bench", "--log2-rows", "8",
                "--workers", "1,2", "--json", str(out_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "serial vs parallel workers" in out
    import json

    record = json.loads(out_path.read_text())
    assert record["n_rows"] == 256
    assert record["workers"] == [1, 2]
    assert record["cpu_count"] >= 1
    assert record["fidelity_ok"] is True
    for cell in record["cells"]:
        assert cell["serial_seconds"] > 0
        entry = cell["workers"]["2"]
        assert entry["seconds"] > 0
        assert entry["fidelity_ok"] is True


def test_cli_bench_workers_exits_nonzero_on_fidelity_failure(
    capsys, monkeypatch
):
    import repro.bench.parallel_bench as parallel_bench

    record = {
        "n_rows": 256,
        "cpu_count": 1,
        "fidelity_ok": False,
        "best_speedup": 1.0,
        "cells": [
            {
                "label": "fake",
                "serial_seconds": 0.1,
                "workers": {"2": {"seconds": 0.1, "speedup": 1.0,
                                  "fidelity_ok": False}},
                "fidelity_ok": False,
            },
        ],
    }
    monkeypatch.setattr(
        parallel_bench, "run_parallel_trajectory", lambda *a, **k: record
    )
    assert main(["bench", "--log2-rows", "8", "--workers", "2"]) == 1
    assert "FIDELITY FAILURE" in capsys.readouterr().out


def test_cli_bench_rejects_malformed_workers():
    with pytest.raises(SystemExit):
        main(["bench", "--workers", "two"])
    with pytest.raises(SystemExit):
        main(["bench", "--workers", ","])


def test_cli_serve_exits_after_duration(capsys):
    from repro.obs import METRICS

    try:
        assert main(["serve", "--duration", "0.1", "--warm"]) == 0
    finally:
        METRICS.disable()
        METRICS.reset()
    out = capsys.readouterr().out
    assert "telemetry serving on http://" in out
    assert "warmed" in out


def test_cli_serve_endpoints_respond(capsys):
    import json
    import threading
    import urllib.request

    from repro.obs import METRICS

    results = {}

    def scrape():
        out = capsys.readouterr().out
        url = next(
            word for word in out.split() if word.startswith("http://")
        )
        with urllib.request.urlopen(url + "/healthz", timeout=5) as resp:
            results["health"] = json.loads(resp.read())
        with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
            results["metrics"] = resp.read().decode("utf-8")

    # The serve loop blocks until --duration elapses, so scrape from a
    # helper thread while the CLI is the foreground "process".
    scraper = threading.Timer(0.2, scrape)
    scraper.start()
    try:
        assert main(["serve", "--duration", "0.8", "--warm"]) == 0
    finally:
        scraper.join()
        METRICS.disable()
        METRICS.reset()
    assert results["health"]["status"] in ("ok", "degraded")
    assert "repro_" in results["metrics"]


def test_cli_experiment_with_telemetry_port(capsys):
    from repro.obs import METRICS

    try:
        assert main(
            ["table1", "--log2-rows", "8", "--telemetry-port", "0"]
        ) == 0
    finally:
        METRICS.disable()
        METRICS.reset()
    out = capsys.readouterr().out
    assert "telemetry serving on http://" in out
    assert "Table 1 cases" in out


def test_cli_profile_writes_collapsed_stacks(capsys, tmp_path):
    path = tmp_path / "profile.folded"
    assert main(
        ["table1", "--log2-rows", "10", "--profile", str(path)]
    ) == 0
    out = capsys.readouterr().out
    assert "collapsed stacks" in out
    text = path.read_text()
    if text:  # tiny runs can fall under the sampling interval
        stack, count = text.splitlines()[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert "repro" in stack
