"""Tests for the ``python -m repro`` experiment runner."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_cli_table1(capsys):
    assert main(["table1", "--log2-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "Table 1 cases" in out
    assert "A,C,B,D" in out


def test_cli_fig10(capsys):
    assert main(["fig10", "--log2-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 10" in out
    assert "no-ovc" in out and "ovc" in out


def test_cli_fig11(capsys):
    assert main(["fig11", "--log2-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "combined" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_design(capsys):
    assert main(["design", "--log2-rows", "10"]) == 0
    out = capsys.readouterr().out
    assert "Physical design" in out
    assert "with modification" in out
    assert "Three-table join planning" in out


def test_cli_bench_writes_json(capsys, tmp_path):
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--log2-rows", "8", "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "reference vs fast" in out
    assert "speedup" in out
    import json

    record = json.loads(out_path.read_text())
    assert record["n_rows"] == 256
    assert record["cells"]
    for cell in record["cells"]:
        assert cell["fast_seconds"] > 0
        assert cell["reference_seconds"] > 0
        assert cell["row_comparisons"] >= 0
