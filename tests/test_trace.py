"""Tests for explain_analyze plan tracing."""

from __future__ import annotations

import pytest

from repro.engine import Filter, GroupBy, MergeJoin, Sort, TableScan
from repro.engine.operators import Operator
from repro.model import Schema, SortSpec, Table
from repro.query import Query
from repro.trace import Probe, explain_analyze, instrument
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")


def make_table(n=200, seed=0) -> Table:
    return random_sorted_table(SCHEMA, SPEC, n, domains=[4, 5, 6], seed=seed)


def test_probe_is_transparent():
    table = make_table()
    plain = list(TableScan(table))
    probed = list(instrument(TableScan(table)))
    assert plain == probed


def test_explain_analyze_counts_per_operator():
    table = make_table()
    op = Filter(TableScan(table), lambda r: r[1] == 0)
    rows, report = explain_analyze(op)
    expected = [r for r in table.rows if r[1] == 0]
    assert rows == expected
    assert "Filter" in report and "TableScan" in report
    # The scan's probe saw every row; the filter's only the survivors.
    lines = report.splitlines()
    filter_line = next(l for l in lines if "Filter" in l)
    scan_line = next(l for l in lines if "TableScan" in l)
    assert f"-> {len(expected):,} rows" in filter_line
    assert f"-> {len(table):,} rows" in scan_line


def test_explain_analyze_join_tree():
    table = make_table()
    left = Sort(TableScan(table), SortSpec.of("B", "A"))
    right = Sort(TableScan(make_table(seed=1)), SortSpec.of("B", "A"))
    join = MergeJoin(left, right, ["B"], ["B"])
    rows, report = explain_analyze(join)
    assert "MergeJoin" in report
    assert report.count("TableScan") == 2
    assert "comparisons" in report.splitlines()[-1]
    assert len(rows) > 0


def test_explain_analyze_only_charges_this_run():
    table = make_table()
    op = GroupBy(TableScan(table), ["A"], [("count", None)])
    op.stats.column_comparisons = 123_456  # pre-existing spend
    _rows, report = explain_analyze(op)
    assert "123,456" not in report


def test_query_facade_integration():
    table = make_table()
    q = Query(table).order_by("A", "C", "B").group_by(["A"], [("count", None)])
    rows, report = explain_analyze(q.op)
    assert sum(r[1] for r in rows) == len(table)
    assert "GroupBy" in report and "Sort" in report


class ListConcat(Operator):
    """Synthetic n-ary operator holding its children in a list."""

    def __init__(self, children):
        super().__init__(children[0].schema, None, children[0].stats)
        self._inputs = list(children)

    def __iter__(self):
        for child in self._inputs:
            for row, _ovc in child:
                yield row, None

    def _children(self):
        return list(self._inputs)


def test_instrument_probes_list_held_children():
    t1, t2 = make_table(50), make_table(60, seed=2)
    op = ListConcat([TableScan(t1), TableScan(t2)])
    root = instrument(op)
    rows = [row for row, _ in root]
    assert rows == t1.rows + t2.rows
    # Both list-held scans were wrapped and counted.
    probes = [c for c in op._children() if isinstance(c, Probe)]
    assert len(probes) == 2
    assert [p.rows_out for p in probes] == [50, 60]
    assert "TableScan" in explain_analyze(
        ListConcat([TableScan(t1), TableScan(t2)])
    )[1]


def test_probe_reports_inclusive_and_self_time():
    table = make_table(500)
    op = Filter(TableScan(table), lambda r: True)
    root = instrument(op)
    list(root)
    scan_probe = root.inner._children()[0]
    assert isinstance(scan_probe, Probe)
    # Inclusive time of the parent covers the child's inclusive time;
    # self time excludes it.
    assert root.seconds >= scan_probe.seconds
    assert root.self_seconds() <= root.seconds
    assert root.self_seconds() == pytest.approx(
        root.seconds - scan_probe.seconds
    )


def test_probe_self_stats_subtract_children():
    table = make_table()
    sort = Sort(TableScan(table), SortSpec.of("B", "A"))
    root = instrument(sort)
    list(root)
    scan_probe = root.inner._children()[0]
    # The sort did the comparisons, not the scan.
    assert root.self_stats().row_comparisons == \
        root.stats_delta.row_comparisons \
        - scan_probe.stats_delta.row_comparisons
    assert root.stats_delta.row_comparisons > 0


def test_report_shows_self_time_and_comparison_deltas():
    table = make_table()
    _rows, report = explain_analyze(Sort(TableScan(table), SortSpec.of("C")))
    sort_line = next(l for l in report.splitlines() if "Sort" in l)
    assert "(self " in sort_line
    assert "cols=" in sort_line or "codes=" in sort_line
