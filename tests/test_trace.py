"""Tests for explain_analyze plan tracing."""

from __future__ import annotations

from repro.engine import Filter, GroupBy, MergeJoin, Sort, TableScan
from repro.model import Schema, SortSpec, Table
from repro.query import Query
from repro.trace import explain_analyze, instrument
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C")
SPEC = SortSpec.of("A", "B", "C")


def make_table(n=200, seed=0) -> Table:
    return random_sorted_table(SCHEMA, SPEC, n, domains=[4, 5, 6], seed=seed)


def test_probe_is_transparent():
    table = make_table()
    plain = list(TableScan(table))
    probed = list(instrument(TableScan(table)))
    assert plain == probed


def test_explain_analyze_counts_per_operator():
    table = make_table()
    op = Filter(TableScan(table), lambda r: r[1] == 0)
    rows, report = explain_analyze(op)
    expected = [r for r in table.rows if r[1] == 0]
    assert rows == expected
    assert "Filter" in report and "TableScan" in report
    # The scan's probe saw every row; the filter's only the survivors.
    lines = report.splitlines()
    filter_line = next(l for l in lines if "Filter" in l)
    scan_line = next(l for l in lines if "TableScan" in l)
    assert f"-> {len(expected):,} rows" in filter_line
    assert f"-> {len(table):,} rows" in scan_line


def test_explain_analyze_join_tree():
    table = make_table()
    left = Sort(TableScan(table), SortSpec.of("B", "A"))
    right = Sort(TableScan(make_table(seed=1)), SortSpec.of("B", "A"))
    join = MergeJoin(left, right, ["B"], ["B"])
    rows, report = explain_analyze(join)
    assert "MergeJoin" in report
    assert report.count("TableScan") == 2
    assert "comparisons" in report.splitlines()[-1]
    assert len(rows) > 0


def test_explain_analyze_only_charges_this_run():
    table = make_table()
    op = GroupBy(TableScan(table), ["A"], [("count", None)])
    op.stats.column_comparisons = 123_456  # pre-existing spend
    _rows, report = explain_analyze(op)
    assert "123,456" not in report


def test_query_facade_integration():
    table = make_table()
    q = Query(table).order_by("A", "C", "B").group_by(["A"], [("count", None)])
    rows, report = explain_analyze(q.op)
    assert sum(r[1] for r in rows) == len(table)
    assert "GroupBy" in report and "Sort" in report
