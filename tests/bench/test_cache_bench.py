"""The order-cache bench driver: record shape, fidelity, CI gating."""

from __future__ import annotations

import json

from repro.bench.cache_bench import (
    TABLE1_CASES,
    check_cache_record,
    format_cache_cells,
    run_cache_trajectory,
    write_cache_trajectory,
)
from repro.cache import get_cache, reset_cache


def test_trajectory_record_smoke(tmp_path):
    record = run_cache_trajectory(256, seed=0, repeats=1)
    assert len(record["cells"]) == len(TABLE1_CASES)
    assert record["fidelity_ok"]
    for cell in record["cells"]:
        assert cell["fidelity_ok"]
        assert cell["cold_s"] >= 0 and cell["modify_s"] >= 0
        assert cell["hit_strategy"].startswith("cache-hit(")
    # The bench cleans the process-wide cache up after itself.
    assert get_cache() is None

    path = tmp_path / "BENCH_cache.json"
    write_cache_trajectory(str(path), record)
    assert json.loads(path.read_text())["n_rows"] == 256

    rows = format_cache_cells(record)
    assert len(rows) == len(record["cells"])
    assert "served_from_cache" not in rows[0]
    reset_cache()


def test_check_cache_record_gates():
    ok = {
        "fidelity_ok": True,
        "cells": [
            {"case": 0, "from": "A,B", "to": "A", "served_from_cache": True,
             "speedup": 2.0, "modify_s": 0.1, "cold_s": 0.2},
        ],
    }
    assert check_cache_record(ok) == []

    slow = {
        "fidelity_ok": True,
        "cells": [
            {"case": 0, "from": "A,B", "to": "A", "served_from_cache": True,
             "speedup": 0.8, "modify_s": 0.2, "cold_s": 0.16},
        ],
    }
    assert any("slower" in p for p in check_cache_record(slow))

    unserved_slow = {
        "fidelity_ok": True,
        "cells": [
            {"case": 0, "from": "A,B", "to": "A", "served_from_cache": False,
             "speedup": 0.8, "modify_s": 0.2, "cold_s": 0.16},
        ],
    }
    assert check_cache_record(unserved_slow) == []  # not cache-served

    broken = {"fidelity_ok": False, "cells": []}
    assert any("diverged" in p for p in check_cache_record(broken))
