"""The regression sentinel: green on committed records, red on slowdowns."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks import check_regression

REPO = Path(__file__).resolve().parent.parent.parent


def _committed(name: str) -> dict:
    return json.loads((REPO / name).read_text())


@pytest.fixture(autouse=True)
def _run_from_repo_root(monkeypatch):
    # The sentinel resolves committed artifacts by relative path.
    monkeypatch.chdir(REPO)


def _args(tmp_path, fastpath: dict, **extra: str) -> list[str]:
    fp = tmp_path / "fresh_fastpath.json"
    fp.write_text(json.dumps(fastpath))
    argv = ["--fresh-fastpath", str(fp), "--skip-cache", "--skip-plan"]
    for flag, value in extra.items():
        argv += [f"--{flag.replace('_', '-')}", value]
    return argv


def test_green_on_committed_artifacts(tmp_path, capsys):
    rc = check_regression.main(
        _args(tmp_path, _committed("BENCH_fastpath.json"))
        + ["--fresh-parallel", "BENCH_parallel.json",
           "--json", str(tmp_path / "report.json")]
    )
    assert rc == 0
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["ok"] is True
    assert report["problems"] == []


def test_fails_on_synthetically_slowed_record(tmp_path, capsys):
    slowed = _committed("BENCH_fastpath.json")
    for cell in slowed["cells"]:
        cell["speedup"] /= 4.0
    rc = check_regression.main(
        _args(tmp_path, slowed, json=str(tmp_path / "report.json"))
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["ok"] is False
    assert any("geomean" in p for p in report["problems"])
    assert any("fell below committed" in p for p in report["problems"])


def test_fails_when_a_cell_disappears(tmp_path):
    shrunk = _committed("BENCH_fastpath.json")
    shrunk["cells"].pop()
    rc = check_regression.main(_args(tmp_path, shrunk))
    assert rc == 1


def test_single_cell_regression_is_reported_by_label(tmp_path, capsys):
    doctored = _committed("BENCH_fastpath.json")
    victim = doctored["cells"][0]
    victim["speedup"] /= 10.0
    rc = check_regression.main(_args(tmp_path, doctored))
    assert rc == 1
    assert victim["label"] in capsys.readouterr().out


def test_noise_band_tolerates_flutter(tmp_path):
    flutter = _committed("BENCH_fastpath.json")
    for cell in flutter["cells"]:
        cell["speedup"] *= 0.9  # within the 25% default band
    rc = check_regression.main(_args(tmp_path, flutter))
    assert rc == 0


def test_cache_comparison_checks_hit_speedup(tmp_path, capsys):
    slowed = _committed("BENCH_cache.json")
    for cell in slowed["cells"]:
        cell["hit_speedup"] /= 10.0
    path = tmp_path / "fresh_cache.json"
    path.write_text(json.dumps(slowed))
    rc = check_regression.main(
        _args(tmp_path, _committed("BENCH_fastpath.json"))[:2]
        + ["--fresh-cache", str(path)]
    )
    assert rc == 1
    assert "hit_speedup" in capsys.readouterr().out


def test_plan_comparison_green_then_red_on_slowdown(tmp_path, capsys):
    base = _args(tmp_path, _committed("BENCH_fastpath.json"))[:3]
    good = tmp_path / "fresh_plan.json"
    good.write_text(json.dumps(_committed("BENCH_plan.json")))
    assert check_regression.main(base + ["--fresh-plan", str(good)]) == 0

    slowed = _committed("BENCH_plan.json")
    for cell in slowed["cells"]:
        cell["speedup"] /= 4.0
    bad = tmp_path / "slow_plan.json"
    bad.write_text(json.dumps(slowed))
    assert check_regression.main(base + ["--fresh-plan", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "plan batch" in out
    assert "plan geomean" in out


def test_plan_fidelity_failure_detected(tmp_path):
    broken = _committed("BENCH_plan.json")
    broken["fidelity_ok"] = False
    path = tmp_path / "fresh_plan.json"
    path.write_text(json.dumps(broken))
    base = _args(tmp_path, _committed("BENCH_fastpath.json"))[:3]
    assert check_regression.main(base + ["--fresh-plan", str(path)]) == 1


def test_parallel_fidelity_failure_detected(tmp_path):
    broken = _committed("BENCH_parallel.json")
    broken["fidelity_ok"] = False
    path = tmp_path / "fresh_parallel.json"
    path.write_text(json.dumps(broken))
    rc = check_regression.main(
        _args(tmp_path, _committed("BENCH_fastpath.json"))
        + ["--fresh-parallel", str(path)]
    )
    assert rc == 1


def test_overhead_gate(tmp_path):
    good = {"budget": 0.05, "ok": True,
            "disabled": {"overhead_ratio": 0.001},
            "enabled": {"overhead_ratio": 0.02}}
    bad = {"budget": 0.05, "ok": False,
           "disabled": {"overhead_ratio": 0.001},
           "enabled": {"overhead_ratio": 0.30}}
    good_path = tmp_path / "good.json"
    good_path.write_text(json.dumps(good))
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(bad))
    base = _args(tmp_path, _committed("BENCH_fastpath.json"))
    assert check_regression.main(base + ["--overhead", str(good_path)]) == 0
    assert check_regression.main(base + ["--overhead", str(bad_path)]) == 1
