"""Tests for the benchmark harness utilities and figure drivers."""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    run_fig10_cell,
    run_fig10_experiment,
    run_fig11_cell,
    run_fig11_experiment,
)
from repro.bench.harness import (
    BenchResult,
    bench_scale,
    format_table,
    time_callable,
)
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import fig10_table, fig11_table


def test_bench_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert bench_scale(10) == 1024
    monkeypatch.setenv("REPRO_SCALE", "2")
    assert bench_scale(10) == 4096
    monkeypatch.setenv("REPRO_SCALE", "-3")
    assert bench_scale(10) == 128


def test_time_callable_collects_stats_and_extras():
    def work(stats: ComparisonStats):
        stats.column_comparisons += 7
        return {"k": "v"}

    result = time_callable("label", work)
    assert result.label == "label"
    assert result.seconds >= 0
    assert result.column_comparisons == 7
    assert result.extra == {"k": "v"}
    assert result.as_row()["k"] == "v"


def test_format_table_alignment():
    text = format_table(
        [{"a": 1, "b": "xy"}, {"a": 123456, "b": "z"}], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert "123,456" in text  # thousands separators for big ints
    assert format_table([]) == "(no rows)"


def test_fig10_cell_sorted_output():
    table = fig10_table(512, 2, n_runs=8)
    out = run_fig10_cell(table, 2, use_ovc=True)
    assert out.is_sorted()
    out2 = run_fig10_cell(table, 2, use_ovc=False)
    assert out2.rows == out.rows


def test_fig11_cell_methods_agree():
    table = fig11_table(512, 4, list_len=2)
    results = {
        m: run_fig11_cell(table, m, list_len=2).rows
        for m in ("segment_sort", "merge_runs", "combined")
    }
    assert results["segment_sort"] == results["merge_runs"] == results["combined"]


def test_experiment_drivers_small():
    r10 = run_fig10_experiment(256, list_lengths=(1, 2), n_runs=8)
    assert len(r10) == 2 * 2 * 2  # decide x len x ovc
    assert all(isinstance(r, BenchResult) for r in r10)
    r11 = run_fig11_experiment(256, segment_counts=(2, 8))
    assert len(r11) == 2 * 3  # segments x methods


def test_fig11_defaults_respect_row_count():
    results = run_fig11_experiment(64)
    segments = {r.extra["segments"] for r in results}
    assert all(2 * s <= 64 for s in segments)
