"""In-sort aggregation: external sorts that collapse duplicates early."""

from __future__ import annotations

import random
from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ovc.stats import ComparisonStats
from repro.sorting.insort import external_sort_grouped
from repro.storage.pages import PageManager

rows_st = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 20)),
    max_size=80,
)


@given(rows_st, st.integers(2, 16))
@settings(max_examples=60, deadline=None)
def test_grouped_sort_matches_reference(rows, capacity):
    got, _stats, _info = external_sort_grouped(
        rows, (0, 1), [("count", None), ("sum", 2)],
        memory_capacity=capacity, fan_in=4,
    )
    counts: Counter = Counter()
    sums: dict = defaultdict(int)
    for a, b, c in rows:
        counts[(a, b)] += 1
        sums[(a, b)] += c
    expected = sorted(
        (a, b, counts[(a, b)], sums[(a, b)]) for a, b in counts
    )
    assert got == expected


@given(rows_st)
@settings(max_examples=40, deadline=None)
def test_min_max_first_last(rows):
    got, _stats, _info = external_sort_grouped(
        rows, (0,), [("min", 2), ("max", 2), ("first", 2), ("last", 2)],
        memory_capacity=8, fan_in=4,
    )
    by_key: dict = defaultdict(list)
    for row in rows:
        by_key[row[0]].append(row[2])
    expected = sorted(
        (k, min(v), max(v), v[0], v[-1]) for k, v in by_key.items()
    )
    assert got == expected


def test_early_aggregation_shrinks_levels():
    """Heavy duplication: the first level's collapse leaves only the
    distinct keys; later merge levels move a fraction of the input."""
    rng = random.Random(6)
    rows = [(rng.randrange(32), 0, 1) for _ in range(20_000)]
    pages = PageManager()
    got, stats, info = external_sort_grouped(
        rows, (0, 1), [("count", None)],
        memory_capacity=512, fan_in=4, page_manager=pages,
    )
    assert len(got) == 32
    first_level = info["rows_per_level"][0]
    assert first_level <= 32 * (len(rows) // 512 + 1)  # per-run distincts
    assert first_level < len(rows) / 10
    # Spill traffic reflects the collapsed volume, not the input.
    assert pages.stats.bytes_written < len(rows) * 24 / 4


def test_unsupported_aggregate_rejected():
    with pytest.raises(ValueError, match="cannot fold"):
        external_sort_grouped([(1, 2)], (0,), [("avg", 1)])


def test_empty_input():
    got, stats, info = external_sort_grouped([], (0,), [("count", None)])
    assert got == []
