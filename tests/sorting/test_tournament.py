"""Tests for the tree-of-losers priority queue (Figure 2)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ovc.compare import make_ovc_entry_comparator, make_plain_entry_comparator
from repro.ovc.stats import ComparisonStats
from repro.sorting.tournament import Entry, TreeOfLosers


def _entries(values, run):
    """A run of single-column rows with codes against the imaginary
    lowest row for the head and run predecessors after."""
    out = []
    prev = None
    for v in values:
        code = (1, v) if (prev is None or v != prev) else (0, 0)
        out.append(Entry((v,), code, (v,), run))
        prev = v
    return out


def test_figure2_twelve_inputs():
    """Merge 12 runs; smallest first (the figure's winner is 61 from
    input 9)."""
    firsts = [157, 87, 91, 123, 99, 200, 310, 88, 110, 61, 140, 175]
    runs = [
        _entries(sorted([f, f + 10, f + 20]), i) for i, f in enumerate(firsts)
    ]
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(r) for r in runs], make_ovc_entry_comparator(1, stats)
    )
    first = tree.pop()
    assert first.row == (61,)
    assert first.run == 9
    rest = [e.row[0] for e in tree]
    assert rest == sorted(rest)
    assert len(rest) == 35


@given(
    st.lists(
        st.lists(st.integers(0, 50), max_size=12).map(sorted),
        min_size=1,
        max_size=9,
    )
)
@settings(max_examples=50, deadline=None)
def test_merges_any_runs_with_codes(runs):
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(_entries(r, i)) for i, r in enumerate(runs)],
        make_ovc_entry_comparator(1, stats),
    )
    got = [e.row[0] for e in tree]
    assert got == sorted(v for r in runs for v in r)


@given(
    st.lists(
        st.lists(st.integers(0, 50), max_size=12).map(sorted),
        min_size=1,
        max_size=9,
    )
)
@settings(max_examples=50, deadline=None)
def test_merge_is_stable_by_run_index(runs):
    """Equal keys emerge in run-index order (stable merge)."""
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(_entries(r, i)) for i, r in enumerate(runs)],
        make_plain_entry_comparator(1, stats),
    )
    got = [(e.row[0], e.run) for e in tree]
    expected = sorted(
        ((v, i) for i, r in enumerate(runs) for v in r),
        key=lambda t: (t[0], t[1]),
    )
    assert got == expected


def test_empty_inputs():
    stats = ComparisonStats()
    tree = TreeOfLosers([], make_ovc_entry_comparator(1, stats))
    assert tree.pop() is None
    tree = TreeOfLosers([iter(())], make_ovc_entry_comparator(1, stats))
    assert tree.pop() is None


def test_single_input_passthrough():
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(_entries([1, 2, 2, 3], 0))], make_ovc_entry_comparator(1, stats)
    )
    assert [e.row[0] for e in tree] == [1, 2, 2, 3]
    assert stats.column_comparisons == 0


def test_comparison_count_near_lower_bound():
    """Merging k runs of m rows costs about n*log2(k) row comparisons."""
    import math

    k, m = 8, 64
    runs = [
        _entries(sorted(range(i, 8 * m, 8))[:m], i) for i in range(k)
    ]
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(r) for r in runs], make_ovc_entry_comparator(1, stats)
    )
    list(tree)
    n = k * m
    assert stats.row_comparisons <= n * math.log2(k) + k * math.log2(k) + k


def test_popped_codes_are_relative_to_previous_winner():
    """The stream of popped codes is exactly the output's code stream."""
    runs = [[1, 4, 7], [2, 4, 8], [3, 5, 9]]
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(_entries(r, i)) for i, r in enumerate(runs)],
        make_ovc_entry_comparator(1, stats),
    )
    out = [(e.row[0], e.code) for e in tree]
    values = [v for v, _c in out]
    assert values == sorted(values)
    for i in range(1, len(out)):
        v, code = out[i]
        if v == values[i - 1]:
            assert code == (0, 0)
        else:
            assert code == (1, v)


def test_render_shows_tree_state():
    runs = [_entries([10 * i + 1, 10 * i + 2], i) for i in range(4)]
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(r) for r in runs], make_ovc_entry_comparator(1, stats)
    )
    text = tree.render()
    assert text.startswith("winner:")
    assert "run 0" in text
    assert "level 1 losers" in text and "level 2 losers" in text
    tree.pop()
    assert "winner:" in tree.render()


def test_last_winner_defined_before_first_pop():
    """``last_winner`` is an attribute from construction, not a side
    effect of the first ``pop()`` — readers (run generation peeking at
    the base for fresh-row codes) must never hit AttributeError."""
    runs = [_entries([1, 2], 0)]
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(r) for r in runs], make_ovc_entry_comparator(1, stats)
    )
    assert tree.last_winner is None
    first = tree.pop()
    assert tree.last_winner is first
    tree.pop()
    # Drained: last_winner keeps the final real entry, not the fence.
    assert tree.pop() is None
    assert tree.last_winner is not None
    assert tree.last_winner.row == (2,)
