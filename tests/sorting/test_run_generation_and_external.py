"""Tests for run generation and the external merge sort."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ovc.derive import verify_ovcs
from repro.ovc.stats import ComparisonStats
from repro.sorting.external import ExternalMergeSort
from repro.sorting.run_generation import (
    generate_runs_load_sort,
    generate_runs_replacement_selection,
)
from repro.storage.pages import PageManager

rows_st = st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=80)


@given(rows_st, st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_replacement_selection_runs_are_sorted_and_complete(rows, capacity):
    stats = ComparisonStats()
    runs = generate_runs_replacement_selection(rows, capacity, (0, 1), stats)
    merged = sorted(r for run, _ovcs in runs for r in run)
    assert merged == sorted(rows)
    for run_rows, ovcs in runs:
        assert run_rows == sorted(run_rows)
        assert verify_ovcs(run_rows, ovcs, (0, 1))


@given(rows_st, st.integers(1, 16))
@settings(max_examples=50, deadline=None)
def test_load_sort_runs(rows, capacity):
    stats = ComparisonStats()
    runs = generate_runs_load_sort(rows, capacity, (0, 1), stats)
    assert sum(len(r) for r, _o in runs) == len(rows)
    for run_rows, ovcs in runs:
        assert len(run_rows) <= capacity
        assert run_rows == sorted(run_rows)
        assert verify_ovcs(run_rows, ovcs, (0, 1))


def test_replacement_selection_doubles_run_length():
    """On random input, replacement selection produces runs averaging
    about twice the memory capacity (the classic 2M result)."""
    rng = random.Random(3)
    rows = [(rng.randrange(10_000), 0) for _ in range(20_000)]
    capacity = 100
    stats = ComparisonStats()
    runs = generate_runs_replacement_selection(rows, capacity, (0, 1), stats)
    avg = len(rows) / len(runs)
    assert 1.6 * capacity <= avg <= 2.6 * capacity


def test_replacement_selection_sorted_input_single_run():
    rows = [(i, 0) for i in range(1000)]
    runs = generate_runs_replacement_selection(
        rows, 10, (0, 1), ComparisonStats()
    )
    assert len(runs) == 1


def test_replacement_selection_reverse_input_minimal_runs():
    rows = [(i, 0) for i in range(100, 0, -1)]
    runs = generate_runs_replacement_selection(
        rows, 10, (0, 1), ComparisonStats()
    )
    # Reverse order defeats replacement selection: runs equal capacity.
    assert len(runs) == 10


@given(rows_st, st.integers(1, 10), st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_external_sort_correct(rows, capacity, fan_in):
    sorter = ExternalMergeSort(
        (0, 1), memory_capacity=capacity, fan_in=fan_in
    )
    result = sorter.sort(rows)
    assert result.rows == sorted(rows)
    assert verify_ovcs(result.rows, result.ovcs, (0, 1))


def test_external_sort_phase_split_hypothesis3():
    """Hypothesis 3: run generation performs most comparisons when
    rows-per-run far exceeds the run count."""
    rng = random.Random(1)
    rows = [(rng.randrange(1 << 20), 0) for _ in range(4096)]
    sorter = ExternalMergeSort((0, 1), memory_capacity=256, fan_in=64)
    result = sorter.sort(rows)
    assert result.initial_runs > 1
    assert (
        result.run_generation_stats.row_comparisons
        > result.merge_stats.row_comparisons
    )


def test_external_sort_multilevel_merge():
    rng = random.Random(2)
    rows = [(rng.randrange(1000), 0) for _ in range(2000)]
    sorter = ExternalMergeSort(
        (0, 1), memory_capacity=50, fan_in=2, run_generation="load_sort"
    )
    result = sorter.sort(rows)
    assert result.rows == sorted(rows)
    assert result.merge_levels > 1


def test_external_sort_io_accounting():
    rng = random.Random(4)
    rows = [(rng.randrange(1000), 0) for _ in range(2000)]
    pages = PageManager(page_bytes=1024)
    sorter = ExternalMergeSort(
        (0, 1), memory_capacity=100, fan_in=4, page_manager=pages
    )
    result = sorter.sort(rows)
    assert result.io.pages_written > 0
    assert result.io.bytes_written >= result.io.pages_written  # > 1 B/page
    # Initial runs are written once and read once per merge level.
    assert result.io.bytes_read >= result.io.bytes_written - result.io.bytes_read / 2


def test_internal_input_no_io():
    rows = [(i, 0) for i in range(10)]
    sorter = ExternalMergeSort((0, 1), memory_capacity=100)
    result = sorter.sort(rows)
    assert result.initial_runs == 1
    assert result.merge_levels == 0
    assert result.io.pages_written == 0


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ExternalMergeSort((0,), fan_in=1)
    with pytest.raises(ValueError):
        ExternalMergeSort((0,), run_generation="bogus")
    with pytest.raises(ValueError):
        generate_runs_load_sort([], 0, (0,), ComparisonStats())
    with pytest.raises(ValueError):
        generate_runs_replacement_selection([], 0, (0,), ComparisonStats())
