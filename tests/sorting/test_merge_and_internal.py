"""Tests for k-way merging and the internal sorts."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs
from repro.ovc.stats import ComparisonStats
from repro.sorting.internal import (
    quicksort_with_stats,
    sort_baseline,
    tournament_sort,
)
from repro.sorting.merge import kway_merge, merge_tables

rows2_st = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=40)


def _as_run(rows):
    rows = sorted(rows)
    return rows, derive_ovcs(rows, (0, 1))


@given(st.lists(rows2_st, min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_kway_merge_with_codes(runs_raw):
    runs = [_as_run(r) for r in runs_raw]
    stats = ComparisonStats()
    rows, ovcs = kway_merge(runs, (0, 1), stats)
    assert rows == sorted(r for raw in runs_raw for r in raw)
    assert verify_ovcs(rows, ovcs, (0, 1))


@given(st.lists(rows2_st, min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_kway_merge_without_codes_matches(runs_raw):
    runs = [(sorted(r), None) for r in runs_raw]
    stats = ComparisonStats()
    rows, ovcs = kway_merge(runs, (0, 1), stats, use_ovc=False)
    assert rows == sorted(r for raw in runs_raw for r in raw)
    assert ovcs is None
    assert stats.ovc_comparisons == 0


@given(rows2_st)
@settings(max_examples=50, deadline=None)
def test_tournament_sort_correct_with_codes(rows):
    stats = ComparisonStats()
    got, ovcs = tournament_sort(rows, (0, 1), stats)
    assert got == sorted(rows)
    assert verify_ovcs(got, ovcs, (0, 1))


@given(rows2_st)
@settings(max_examples=30, deadline=None)
def test_sorters_agree(rows):
    stats = ComparisonStats()
    a, _ = tournament_sort(rows, (0, 1), stats)
    b = quicksort_with_stats(rows, (0, 1), ComparisonStats())
    c = sort_baseline(rows, (0, 1))
    assert a == b == c == sorted(rows)


def test_tournament_sort_comparison_bound():
    """Tournament sorting approaches log2(N!) row comparisons and the
    OVC machinery bounds column comparisons to about N x K."""
    import random

    rng = random.Random(7)
    n, k = 1024, 4
    rows = [tuple(rng.randrange(8) for _ in range(k)) for _ in range(n)]
    stats = ComparisonStats()
    got, ovcs = tournament_sort(rows, tuple(range(k)), stats)
    assert got == sorted(rows)
    lower_bound = n * math.log2(n / math.e)
    assert stats.row_comparisons <= 1.2 * n * math.log2(n)
    assert stats.row_comparisons >= lower_bound * 0.8
    assert stats.column_comparisons <= 1.5 * n * k


def test_merge_tables_roundtrip():
    schema = Schema.of("A", "B")
    spec = SortSpec.of("A", "B")
    t1 = Table(schema, [(1, 1), (3, 0)], spec)
    t2 = Table(schema, [(0, 9), (3, 0)], spec)
    merged = merge_tables([t1, t2])
    assert merged.rows == [(0, 9), (1, 1), (3, 0), (3, 0)]
    assert verify_ovcs(merged.rows, merged.ovcs, (0, 1))


def test_merge_tables_rejects_mismatched_schemas():
    import pytest

    schema = Schema.of("A", "B")
    spec = SortSpec.of("A", "B")
    t1 = Table(schema, [], spec)
    t2 = Table(Schema.of("A", "C"), [], SortSpec.of("A", "C"))
    with pytest.raises(ValueError):
        merge_tables([t1, t2])


def test_descending_direction():
    rows = [(1, 5), (2, 1), (2, 9), (0, 0)]
    stats = ComparisonStats()
    got, ovcs = tournament_sort(
        rows, (0, 1), stats, directions=(False, True)
    )
    assert got == sorted(rows, key=lambda r: (-r[0], r[1]))
    assert verify_ovcs(got, ovcs, (0, 1), (False, True))
