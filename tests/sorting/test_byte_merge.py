"""Merging runs of normalized keys with byte-level offset-value codes:
the tournament tree is agnostic to whether its keys are column tuples
or byte strings."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Schema, SortSpec
from repro.ovc.normalized import (
    NormalizedKeyCodec,
    derive_byte_ovcs,
    make_byte_entry_comparator,
)
from repro.ovc.stats import ComparisonStats
from repro.sorting.tournament import Entry, TreeOfLosers


def _byte_run(keys: list[bytes], run: int) -> list[Entry]:
    codes = derive_byte_ovcs(keys)
    return [Entry(k, c, k, run) for k, c in zip(keys, codes)]


@given(
    st.lists(
        st.lists(st.binary(max_size=5), max_size=15).map(sorted),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=80, deadline=None)
def test_byte_merge_is_correct(runs):
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(_byte_run(r, i)) for i, r in enumerate(runs)],
        make_byte_entry_comparator(stats),
    )
    got = [e.row for e in tree]
    assert got == sorted(b for r in runs for b in r)


@given(
    st.lists(
        st.lists(st.binary(min_size=1, max_size=5), max_size=15).map(sorted),
        min_size=2,
        max_size=6,
    )
)
@settings(max_examples=60, deadline=None)
def test_byte_merge_output_codes_consistent(runs):
    """Popped codes form a valid code chain for the merged output."""
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(_byte_run(r, i)) for i, r in enumerate(runs)],
        make_byte_entry_comparator(stats),
    )
    out = [(e.row, e.code) for e in tree]
    keys = [k for k, _c in out]
    fresh = derive_byte_ovcs(keys)
    # All but the very first code must match fresh derivation (the
    # first is relative to its run's base, not the imaginary lowest).
    assert [c for _k, c in out][1:] == fresh[1:]


def test_row_sorting_through_normalized_keys():
    """Sort whole rows as byte strings: encode, merge 1-row runs,
    decode positions — a full normalized-key sort."""
    schema = Schema.of("name", "score")
    codec = NormalizedKeyCodec(schema, SortSpec.of("score DESC", "name"))
    rows = [("ada", 90), ("bob", 95), ("cy", 90), ("dee", 99)]
    entries = [
        [Entry(codec.encode(r), (0, codec.encode(r)[0]), r, i)]
        for i, r in enumerate(rows)
    ]
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(e) for e in entries], make_byte_entry_comparator(stats)
    )
    got = [e.row for e in tree]
    assert got == [("dee", 99), ("bob", 95), ("ada", 90), ("cy", 90)]


def test_byte_codes_decide_most_comparisons():
    """Long shared prefixes: codes decide; bytes beyond the offset are
    never re-read."""
    prefix = b"customer/0000/"
    runs = [
        sorted(prefix + bytes([i, j]) for j in range(20))
        for i in range(4)
    ]
    stats = ComparisonStats()
    tree = TreeOfLosers(
        [iter(_byte_run(r, i)) for i, r in enumerate(runs)],
        make_byte_entry_comparator(stats),
    )
    got = [e.row for e in tree]
    assert got == sorted(b for r in runs for b in r)
    # Without codes every comparison would re-scan the 14-byte prefix:
    # >= 14 * row_comparisons byte touches.  With codes only genuine
    # resumes touch bytes.
    assert stats.column_comparisons < 14 * stats.row_comparisons / 4
