"""Governed runs are bit-identical: rows, codes, AND comparison counts.

The memory budget changes where bytes live — buffered output spills to
disk and is read back — never what work happens.  These tests run every
Table 1 case with a budget far smaller than the input and assert the
three-way identity against the ungoverned run, plus that spills really
occurred (otherwise the test proves nothing).
"""

from __future__ import annotations

import pytest

from repro.core.external_modify import modify_sort_order_external
from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec
from repro.obs import METRICS
from repro.ovc.stats import ComparisonStats
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [12, 24, 48, 8]

# The eight prototype cases of Table 1 (input order -> desired order).
TABLE1 = [
    (("A", "B"), ("A",)),
    (("A",), ("A", "B")),
    (("A", "B"), ("B",)),
    (("A", "B"), ("B", "A")),
    (("A", "B", "C"), ("A", "C")),
    (("A", "B", "C"), ("A", "C", "B")),
    (("A", "B", "C", "D"), ("A", "C", "D")),
    (("A", "B", "C", "D"), ("A", "C", "B", "D")),
]

#: Far below the footprint of the 1500-row test tables, so the governed
#: sink must spill and reload (except the pure-noop case 0 tail).
TINY_BUDGET = "2KiB"


def _table(inp, n_rows=1500, seed=3):
    return random_sorted_table(
        SCHEMA, SortSpec(inp), n_rows, domains=DOMAINS, seed=seed
    )


def _run_metered(fn):
    METRICS.enable(clear=True)
    try:
        result = fn()
        return result, METRICS.as_dict()
    finally:
        METRICS.reset()
        METRICS.disable()


@pytest.mark.parametrize(
    "inp,out", TABLE1, ids=[f"case{i}" for i in range(len(TABLE1))]
)
def test_budget_exhaustion_is_bit_identical(inp, out, tmp_path):
    table = _table(inp)
    spec = SortSpec(out)

    base_stats = ComparisonStats()
    baseline = modify_sort_order(table, spec, stats=base_stats)

    gov_stats = ComparisonStats()
    cfg = ExecutionConfig(
        memory_budget=TINY_BUDGET, spill_dir=str(tmp_path)
    )
    governed, snapshot = _run_metered(
        lambda: modify_sort_order(table, spec, stats=gov_stats, config=cfg)
    )

    assert governed.rows == baseline.rows
    assert governed.ovcs == baseline.ovcs
    assert gov_stats.as_dict() == base_stats.as_dict()
    counters = snapshot.get("counters", {})
    assert counters.get("exec.spill.runs", 0) > 0
    assert counters.get("exec.spill.bytes_written", 0) > 0
    # Spill traffic is read back in full during materialization.
    assert counters.get("exec.spill.bytes_read", 0) == counters.get(
        "exec.spill.bytes_written"
    )


@pytest.mark.parametrize("method", ["segment_sort", "combined", "full_sort"])
def test_budget_identity_per_method(method, tmp_path):
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    base_stats = ComparisonStats()
    baseline = modify_sort_order(table, spec, method=method, stats=base_stats)
    gov_stats = ComparisonStats()
    cfg = ExecutionConfig(memory_budget="1KiB", spill_dir=str(tmp_path))
    governed = modify_sort_order(
        table, spec, method=method, stats=gov_stats, config=cfg
    )
    assert governed.rows == baseline.rows
    assert governed.ovcs == baseline.ovcs
    assert gov_stats.as_dict() == base_stats.as_dict()


def test_budget_identity_fast_engine(tmp_path):
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    baseline = modify_sort_order(table, spec, config=ExecutionConfig(engine="fast"))
    cfg = ExecutionConfig(
        engine="fast", memory_budget="1KiB", spill_dir=str(tmp_path)
    )
    governed, snapshot = _run_metered(
        lambda: modify_sort_order(table, spec, config=cfg)
    )
    assert governed.rows == baseline.rows
    assert governed.ovcs == baseline.ovcs
    assert snapshot.get("counters", {}).get("exec.spill.runs", 0) > 0


def test_budget_identity_parallel(tmp_path, monkeypatch):
    import repro.parallel.planner as planner

    monkeypatch.setattr(planner, "MIN_PARALLEL_ROWS", 0)
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    baseline = modify_sort_order(table, spec)
    cfg = ExecutionConfig(
        workers=2, memory_budget="1KiB", spill_dir=str(tmp_path)
    )
    governed = modify_sort_order(table, spec, config=cfg)
    assert governed.rows == baseline.rows
    assert governed.ovcs == baseline.ovcs


def test_budget_identity_external_modify(tmp_path):
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    base_stats = ComparisonStats()
    baseline = modify_sort_order_external(
        table, spec, memory_capacity=64, stats=base_stats
    )
    gov_stats = ComparisonStats()
    cfg = ExecutionConfig(memory_budget="1KiB", spill_dir=str(tmp_path))
    governed = modify_sort_order_external(
        table, spec, memory_capacity=64, stats=gov_stats, config=cfg
    )
    assert governed.rows == baseline.rows
    assert governed.ovcs == baseline.ovcs
    assert gov_stats.as_dict() == base_stats.as_dict()


def test_env_budget_governs_bare_calls(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1KiB")
    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
    table = _table(("A", "B", "C"))
    spec = SortSpec.of("A", "C", "B")
    governed, snapshot = _run_metered(lambda: modify_sort_order(table, spec))
    monkeypatch.delenv("REPRO_MEMORY_BUDGET")
    monkeypatch.delenv("REPRO_SPILL_DIR")
    baseline = modify_sort_order(table, spec)
    assert governed.rows == baseline.rows
    assert governed.ovcs == baseline.ovcs
    assert snapshot.get("counters", {}).get("exec.spill.runs", 0) > 0
