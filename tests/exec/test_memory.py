"""MemoryAccountant, the activation scope, spill files, and the sink."""

from __future__ import annotations

import pytest

from repro.exec.buffers import GovernedSink
from repro.exec.memory import (
    MemoryAccountant,
    activate,
    current,
    rows_nbytes,
)
from repro.exec.spill import SpillManager


def test_charge_release_peak_and_categories():
    acct = MemoryAccountant(1000)
    acct.charge("a", 600)
    acct.charge("b", 300)
    assert acct.used == 900
    assert acct.peak == 900
    assert not acct.over_budget()
    acct.charge("a", 200)
    assert acct.over_budget()
    assert acct.headroom() == 0
    acct.release("a", 800)
    assert acct.used == 300
    assert acct.peak == 1100  # peak is monotone
    assert acct.by_category == {"a": 0, "b": 300}
    assert acct.headroom() == 700


def test_unlimited_budget_tracks_but_never_fires():
    acct = MemoryAccountant(None)
    acct.charge("x", 10**9)
    assert not acct.over_budget()
    assert acct.headroom() is None


def test_zero_and_negative_charges_ignored():
    acct = MemoryAccountant(100)
    acct.charge("x", 0)
    acct.charge("x", -5)
    acct.release("x", 50)  # over-release clamps at zero
    assert acct.used == 0


def test_invalid_budget_rejected():
    with pytest.raises(ValueError):
        MemoryAccountant(0)


def test_activate_scopes_and_restores():
    assert current() is None
    outer = MemoryAccountant(100)
    inner = MemoryAccountant(200)
    with activate(outer):
        assert current() is outer
        with activate(inner):
            assert current() is inner
        assert current() is outer
        with activate(None):  # no-op scope
            assert current() is outer
    assert current() is None


def test_activate_restores_on_exception():
    acct = MemoryAccountant(100)
    with pytest.raises(RuntimeError):
        with activate(acct):
            raise RuntimeError("boom")
    assert current() is None


def test_rows_nbytes_counts_rows_and_codes():
    rows = [(1, 2), (3, 4)]
    bare = rows_nbytes(rows)
    coded = rows_nbytes(rows, [(0, 1), (1, 2)])
    assert bare > 0
    assert coded == bare + 2 * 16


def test_spill_manager_round_trip(tmp_path):
    with SpillManager(str(tmp_path)) as spill:
        rows = [(i, i * 2) for i in range(100)]
        ovcs = [(0, i) for i in range(100)]
        handle = spill.spill(rows, ovcs, "test")
        got_rows, got_ovcs = handle.read()
        assert got_rows == rows
        assert got_ovcs == ovcs
        handle.release()
    # Context exit removes the spill directory's contents.
    assert not list(tmp_path.glob("repro-spill-*"))


def test_sink_spills_under_pressure_and_restores_order(tmp_path):
    acct = MemoryAccountant(256)
    with SpillManager(str(tmp_path)) as spill:
        sink = GovernedSink(acct, spill, chunk_rows=8)
        all_rows, all_ovcs = [], []
        for seg in range(10):
            rows = [(seg, i) for i in range(20)]
            ovcs = [(0 if i == 0 else 1, i) for i in range(20)]
            sink.absorb(rows, ovcs)
            all_rows.extend(rows)
            all_ovcs.extend(ovcs)
        assert sink.spill_count > 0
        assert acct.spill_count == sink.spill_count
        out_rows, out_ovcs = sink.materialize()
    assert out_rows == all_rows
    assert out_ovcs == all_ovcs
    assert acct.used == 0  # every charge released


def test_sink_without_pressure_keeps_everything_in_memory(tmp_path):
    acct = MemoryAccountant(10**9)
    with SpillManager(str(tmp_path)) as spill:
        sink = GovernedSink(acct, spill)
        sink.absorb([(1,), (2,)], [(0, 1), (1, 2)])
        assert sink.spill_count == 0
        rows, ovcs = sink.materialize()
    assert rows == [(1,), (2,)]
    assert ovcs == [(0, 1), (1, 2)]
    assert acct.used == 0
