"""Legacy-kwarg removal: ``engine=``/``workers=``/``max_fan_in=`` are gone.

The folding shim shipped one release of ``DeprecationWarning``; this
release removes the kwargs.  The contract now is a crisp ``TypeError``
whose message names the removed kwarg and shows the ``config=``
spelling that replaces it — at every entry point that used to accept
them (``modify_sort_order``, ``modify_sort_order_external``, ``Sort``,
``StreamingModify``, ``Query.order_by``).  ``parallel_modify`` keeps
``workers``/``engine``/``max_fan_in`` as first-class parameters — they
were never deprecated there.
"""

from __future__ import annotations

import pytest

from repro.core.external_modify import modify_sort_order_external
from repro.core.modify import modify_sort_order
from repro.engine.modify_op import StreamingModify
from repro.engine.scans import TableScan
from repro.engine.sort_op import Sort
from repro.exec import ExecutionConfig
from repro.exec.compat import reject_legacy_kwargs, resolve_config
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs
from repro.query import Query


def _table():
    schema = Schema.of("A", "B", "C")
    rows = sorted((a % 3, b % 4, (a + b) % 5) for a in range(6) for b in range(5))
    table = Table(schema, rows, SortSpec.of("A", "B", "C"))
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


def test_no_args_returns_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
    assert resolve_config(None) == ExecutionConfig.from_env()


def test_explicit_config_passes_through():
    cfg = ExecutionConfig(workers=2)
    assert resolve_config(cfg) is cfg


@pytest.mark.parametrize("name", ["engine", "workers", "max_fan_in"])
def test_removed_kwarg_raises_with_pointer(name):
    with pytest.raises(TypeError) as exc:
        resolve_config(None, "modify_sort_order", **{name: "x"})
    message = str(exc.value)
    assert f"{name}=" in message
    assert "removed" in message
    assert f"config=ExecutionConfig({name}=" in message


def test_unknown_kwarg_raises_plainly():
    with pytest.raises(TypeError, match="unexpected keyword argument"):
        reject_legacy_kwargs("modify_sort_order", {"bogus": 1})


def test_modify_sort_order_rejects_engine():
    with pytest.raises(TypeError, match=r"engine=.*removed.*ExecutionConfig"):
        modify_sort_order(_table(), SortSpec.of("A", "C", "B"), engine="fast")


def test_modify_sort_order_external_rejects_workers():
    with pytest.raises(TypeError, match=r"workers=.*removed"):
        modify_sort_order_external(
            _table(), SortSpec.of("A", "C", "B"),
            memory_capacity=64, workers=2,
        )


def test_sort_operator_rejects_engine():
    with pytest.raises(TypeError, match=r"engine=.*removed"):
        Sort(TableScan(_table()), SortSpec.of("A", "C", "B"), engine="fast")


def test_streaming_modify_rejects_workers():
    with pytest.raises(TypeError, match=r"workers=.*removed"):
        StreamingModify(TableScan(_table()), SortSpec.of("A", "C", "B"),
                        workers=2)


def test_query_order_by_rejects_workers():
    with pytest.raises(TypeError, match=r"workers=.*removed"):
        Query(_table()).order_by("A", "C", "B", workers=2)


def test_query_order_by_rejects_max_fan_in():
    with pytest.raises(TypeError, match=r"max_fan_in=.*removed"):
        Query(_table()).order_by("A", "C", "B", max_fan_in=4)


def test_config_spelling_still_works_everywhere():
    table = _table()
    spec = SortSpec.of("A", "C", "B")
    cfg = ExecutionConfig(engine="fast")
    ref = modify_sort_order(table, spec)
    out = modify_sort_order(table, spec, config=cfg)
    assert out.rows == ref.rows and out.ovcs == ref.ovcs
    out = Sort(TableScan(table), spec, config=cfg).to_table()
    assert out.rows == ref.rows and out.ovcs == ref.ovcs
    out = Query(table).order_by("A", "C", "B", config=cfg).to_table()
    assert out.rows == ref.rows and out.ovcs == ref.ovcs
