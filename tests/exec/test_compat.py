"""Legacy-kwarg folding: one release of DeprecationWarning, then config=."""

from __future__ import annotations

import warnings

import pytest

from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig
from repro.exec.compat import resolve_config
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs


def _table():
    schema = Schema.of("A", "B", "C")
    rows = sorted((a % 3, b % 4, (a + b) % 5) for a in range(6) for b in range(5))
    table = Table(schema, rows, SortSpec.of("A", "B", "C"))
    table.ovcs = derive_ovcs(rows, (0, 1, 2))
    return table


def test_no_args_returns_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
    assert resolve_config(None) == ExecutionConfig.from_env()


def test_explicit_config_passes_through_unwarned():
    cfg = ExecutionConfig(workers=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_config(cfg) is cfg


@pytest.mark.parametrize(
    "kwargs,field,value",
    [
        ({"engine": "reference"}, "engine", "reference"),
        ({"workers": 2}, "workers", 2),
        ({"workers": "auto"}, "workers", "auto"),
        ({"max_fan_in": 4}, "max_fan_in", 4),
    ],
)
def test_legacy_kwarg_warns_and_folds(kwargs, field, value):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        cfg = resolve_config(None, **kwargs)
    assert getattr(cfg, field) == value


def test_explicit_none_legacy_kwargs_do_not_warn():
    # engine=None / workers=None are the documented "default" spellings.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        cfg = resolve_config(None, engine=None, workers=None, max_fan_in=None)
    assert cfg.engine == "auto" and cfg.workers is None


def test_config_plus_legacy_kwarg_is_ambiguous():
    with pytest.raises(TypeError, match="not both"), warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        resolve_config(ExecutionConfig(), engine="fast")


def test_modify_sort_order_legacy_engine_warns():
    table = _table()
    with pytest.warns(DeprecationWarning, match="engine="):
        legacy = modify_sort_order(table, SortSpec.of("A", "C", "B"), engine="fast")
    modern = modify_sort_order(
        table, SortSpec.of("A", "C", "B"), config=ExecutionConfig(engine="fast")
    )
    assert legacy.rows == modern.rows
    assert legacy.ovcs == modern.ovcs


def test_modify_sort_order_config_plus_legacy_raises():
    table = _table()
    with pytest.raises(TypeError), warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        modify_sort_order(
            table, SortSpec.of("A", "C", "B"),
            engine="fast", config=ExecutionConfig(),
        )


def test_query_order_by_legacy_workers_warns():
    from repro.query import Query

    with pytest.warns(DeprecationWarning, match="workers="):
        Query(_table()).order_by("A", "C", "B", workers=2)
