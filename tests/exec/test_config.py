"""ExecutionConfig construction, validation, env parsing, and derivation."""

from __future__ import annotations

import pytest

from repro.exec import ExecutionConfig, RetryPolicy, parse_memory


# ------------------------------------------------------------ parse_memory


@pytest.mark.parametrize(
    "value,expected",
    [
        (1, 1),
        (4096, 4096),
        ("512", 512),
        ("1B", 1),
        ("1K", 1024),
        ("1KiB", 1024),
        ("1KB", 1000),
        ("1MiB", 1024 ** 2),
        ("1MB", 1000 ** 2),
        ("2GiB", 2 * 1024 ** 3),
        ("1.5MiB", int(1.5 * 1024 ** 2)),
        ("  64 kib ", 64 * 1024),
        ("1_000", 1000),
        (None, None),
        ("", None),
    ],
)
def test_parse_memory_accepts(value, expected):
    assert parse_memory(value) == expected


@pytest.mark.parametrize("value", [0, -1, "0B", "-5MiB", "1TiB", "xMiB", True])
def test_parse_memory_rejects(value):
    with pytest.raises(ValueError):
        parse_memory(value)


# --------------------------------------------------------- ExecutionConfig


def test_defaults_are_ungoverned_serial_auto():
    cfg = ExecutionConfig()
    assert cfg.engine == "auto"
    assert cfg.workers is None
    assert cfg.max_fan_in is None
    assert cfg.memory_budget is None
    assert not cfg.governed
    assert cfg.retry_policy == RetryPolicy(timeout_s=None, retries=1)


def test_memory_budget_string_is_parsed_at_construction():
    cfg = ExecutionConfig(memory_budget="1MiB")
    assert cfg.memory_budget == 1024 ** 2
    assert cfg.governed


@pytest.mark.parametrize(
    "kwargs",
    [
        {"engine": "turbo"},
        {"workers": -1},
        {"workers": 1.5},
        {"workers": True},
        {"max_fan_in": 1},
        {"memory_budget": 0},
        {"shard_timeout_s": 0},
        {"shard_retries": -1},
    ],
)
def test_invalid_fields_raise(kwargs):
    with pytest.raises(ValueError):
        ExecutionConfig(**kwargs)


def test_frozen():
    cfg = ExecutionConfig()
    with pytest.raises(Exception):
        cfg.engine = "fast"


def test_with_returns_validated_copy():
    cfg = ExecutionConfig(workers=2)
    derived = cfg.with_(memory_budget="4KiB", engine="reference")
    assert derived.workers == 2
    assert derived.memory_budget == 4096
    assert derived.engine == "reference"
    assert cfg.memory_budget is None  # original untouched
    with pytest.raises(ValueError):
        cfg.with_(engine="bogus")


def test_from_env_reads_all_fields():
    env = {
        "REPRO_ENGINE": "reference",
        "REPRO_WORKERS": "4",
        "REPRO_MAX_FAN_IN": "8",
        "REPRO_MEMORY_BUDGET": "1MiB",
        "REPRO_SPILL_DIR": "/tmp/spills",
        "REPRO_SHARD_TIMEOUT": "2.5",
        "REPRO_SHARD_RETRIES": "3",
    }
    cfg = ExecutionConfig.from_env(env)
    assert cfg.engine == "reference"
    assert cfg.workers == 4
    assert cfg.max_fan_in == 8
    assert cfg.memory_budget == 1024 ** 2
    assert cfg.spill_dir == "/tmp/spills"
    assert cfg.retry_policy == RetryPolicy(timeout_s=2.5, retries=3)


def test_from_env_auto_workers_and_empty_env():
    assert ExecutionConfig.from_env({"REPRO_WORKERS": "auto"}).workers == "auto"
    assert ExecutionConfig.from_env({}) == ExecutionConfig()


def test_default_respects_environment(monkeypatch):
    monkeypatch.setenv("REPRO_MEMORY_BUDGET", "2KiB")
    assert ExecutionConfig.default().memory_budget == 2048


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=-1)
    with pytest.raises(ValueError):
        RetryPolicy(retries=-2)


# ------------------------------------------------------------ order cache


def test_cache_defaults_off_and_validates():
    cfg = ExecutionConfig()
    assert cfg.cache == "off"
    assert cfg.cache_budget is None
    assert cfg.cache_ttl is None
    on = ExecutionConfig(cache="on", cache_budget="8MiB", cache_ttl=60.0)
    assert on.cache == "on"
    assert on.cache_budget == 8 * 1024 ** 2
    assert on.cache_ttl == 60.0
    assert ExecutionConfig(cache="auto").cache == "auto"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cache": "yes"},
        {"cache": "ON"},
        {"cache_budget": -1},
        {"cache_budget": "0B"},
        {"cache_ttl": 0},
        {"cache_ttl": -2.5},
    ],
)
def test_cache_field_rejects(kwargs):
    with pytest.raises(ValueError):
        ExecutionConfig(**kwargs)


def test_cache_from_env():
    cfg = ExecutionConfig.from_env(
        {
            "REPRO_CACHE": "on",
            "REPRO_CACHE_BUDGET": "2MiB",
            "REPRO_CACHE_TTL": "30",
        }
    )
    assert cfg.cache == "on"
    assert cfg.cache_budget == 2 * 1024 ** 2
    assert cfg.cache_ttl == 30.0
    # 1/0 spellings and case-insensitivity.
    assert ExecutionConfig.from_env({"REPRO_CACHE": "1"}).cache == "on"
    assert ExecutionConfig.from_env({"REPRO_CACHE": "0"}).cache == "off"
    assert ExecutionConfig.from_env({"REPRO_CACHE": "AUTO"}).cache == "auto"
    with pytest.raises(ValueError):
        ExecutionConfig.from_env({"REPRO_CACHE": "maybe"})


def test_cache_with_derivation():
    cfg = ExecutionConfig()
    derived = cfg.with_(cache="on", cache_budget="1KiB")
    assert derived.cache == "on"
    assert derived.cache_budget == 1024
    assert cfg.cache == "off"  # original untouched


# ----------------------------------------------------- service knobs


def test_service_defaults():
    cfg = ExecutionConfig()
    assert cfg.service_threads == 4
    assert cfg.service_queue_depth == 64
    assert cfg.service_deadline_ms is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"service_threads": 0},
        {"service_threads": True},
        {"service_threads": 1.5},
        {"service_queue_depth": 0},
        {"service_queue_depth": False},
        {"service_deadline_ms": 0},
        {"service_deadline_ms": -5},
    ],
)
def test_service_knobs_validate(kwargs):
    with pytest.raises(ValueError):
        ExecutionConfig(**kwargs)


def test_service_knobs_from_env():
    cfg = ExecutionConfig.from_env({
        "REPRO_SERVICE_THREADS": "8",
        "REPRO_SERVICE_QUEUE_DEPTH": "128",
        "REPRO_SERVICE_DEADLINE_MS": "750",
    })
    assert cfg.service_threads == 8
    assert cfg.service_queue_depth == 128
    assert cfg.service_deadline_ms == 750.0


# ------------------------------------------------- from_file + layering


def _write_config(tmp_path, obj):
    import json

    path = tmp_path / "repro.json"
    path.write_text(json.dumps(obj))
    return str(path)


def test_from_file_round_trips_fields(tmp_path):
    path = _write_config(tmp_path, {
        "workers": 4,
        "memory_budget": "64KiB",
        "cache": "on",
        "service_threads": 2,
    })
    cfg = ExecutionConfig.from_file(path)
    assert cfg.workers == 4
    assert cfg.memory_budget == 64 * 1024
    assert cfg.cache == "on"
    assert cfg.service_threads == 2


def test_from_file_rejects_unknown_keys(tmp_path):
    path = _write_config(tmp_path, {"worker_count": 4})
    with pytest.raises(ValueError, match="unknown field.*worker_count"):
        ExecutionConfig.from_file(path)


def test_from_file_rejects_non_object(tmp_path):
    path = _write_config(tmp_path, [1, 2, 3])
    with pytest.raises(ValueError, match="JSON object"):
        ExecutionConfig.from_file(path)


def test_from_file_rejects_bad_json(tmp_path):
    path = tmp_path / "repro.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        ExecutionConfig.from_file(str(path))


def test_from_file_values_are_validated(tmp_path):
    path = _write_config(tmp_path, {"service_threads": 0})
    with pytest.raises(ValueError, match="service_threads"):
        ExecutionConfig.from_file(path)


def test_precedence_file_under_env(tmp_path):
    # file < env: env wins where set, file survives where not.
    path = _write_config(tmp_path, {"workers": 2, "service_threads": 6})
    base = ExecutionConfig.from_file(path)
    cfg = ExecutionConfig.from_env({"REPRO_WORKERS": "8"}, base=base)
    assert cfg.workers == 8          # env overrode the file
    assert cfg.service_threads == 6  # file value survived

    # empty env returns the base untouched
    assert ExecutionConfig.from_env({}, base=base) is base


def test_precedence_env_under_flags(tmp_path):
    # env < flags: with_() (the flag layer) wins last.
    path = _write_config(tmp_path, {"workers": 2})
    base = ExecutionConfig.from_file(path)
    env_cfg = ExecutionConfig.from_env({"REPRO_WORKERS": "8"}, base=base)
    final = env_cfg.with_(workers=3)
    assert final.workers == 3
