"""Fault-tolerant pool: kill, hang, corrupt, error — output never wrong.

Every injected fault must end in one of two states: the shard succeeds
on a retry, or it is quarantined and executed serially in the driver.
Either way rows and codes are bit-identical to the serial engines' —
degradation is graceful, never silent corruption.
"""

from __future__ import annotations

import pytest

import repro.parallel.planner as planner
from repro.core.analysis import analyze_order_modification
from repro.core.modify import modify_sort_order
from repro.exec import ExecutionConfig, Fault, parse_faults
from repro.model import Schema, SortSpec
from repro.obs import METRICS
from repro.parallel.api import parallel_modify
from repro.workloads.generators import random_sorted_table

SCHEMA = Schema.of("A", "B", "C", "D")
DOMAINS = [12, 24, 48, 8]
SPEC_IN = SortSpec.of("A", "B", "C")
SPEC_OUT = SortSpec.of("A", "C", "B")


@pytest.fixture(autouse=True)
def _force_parallel(monkeypatch):
    monkeypatch.setattr(planner, "MIN_PARALLEL_ROWS", 0)


@pytest.fixture(autouse=True)
def _metrics():
    METRICS.enable(clear=True)
    yield
    METRICS.reset()
    METRICS.disable()


def _table(n_rows=1200, seed=0):
    return random_sorted_table(
        SCHEMA, SPEC_IN, n_rows, domains=DOMAINS, seed=seed
    )


def _run(table, workers, faults, retries=1, timeout_s=None):
    plan = analyze_order_modification(table.sort_spec, SPEC_OUT)
    cfg = ExecutionConfig(
        workers=workers, shard_retries=retries, shard_timeout_s=timeout_s
    )
    return parallel_modify(
        table, SPEC_OUT, plan, plan.strategy, workers,
        config=cfg, faults=faults,
    )


def _counters():
    return METRICS.as_dict().get("counters", {})


@pytest.mark.parametrize("workers", [2, 4])
def test_kill_first_attempt_recovers_by_retry(workers):
    table = _table()
    baseline = modify_sort_order(table, SPEC_OUT)
    result = _run(table, workers, parse_faults("kill@0x1"))
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    counters = _counters()
    assert counters.get("pool.shard_retries", 0) >= 1
    assert counters.get("pool.shard_degraded", 0) == 0


@pytest.mark.parametrize("workers", [2, 4])
def test_persistent_kill_degrades_to_serial_shard(workers):
    table = _table()
    baseline = modify_sort_order(table, SPEC_OUT)
    # times=None: the fault fires on every attempt, so retries are
    # exhausted and the shard must be quarantined in the driver.
    result = _run(table, workers, (Fault("kill", shard=0, times=None),))
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    assert _counters().get("pool.shard_degraded", 0) == 1


@pytest.mark.parametrize("workers", [2, 4])
def test_hang_times_out_and_degrades(workers):
    table = _table(n_rows=600)
    baseline = modify_sort_order(table, SPEC_OUT)
    result = _run(
        table, workers,
        (Fault("hang", shard=0, times=None, hang_s=60.0),),
        retries=0, timeout_s=0.5,
    )
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    assert _counters().get("pool.shard_degraded", 0) == 1


@pytest.mark.parametrize("workers", [2, 4])
def test_corrupt_output_is_caught_not_emitted(workers):
    table = _table()
    baseline = modify_sort_order(table, SPEC_OUT)
    # Silent truncation: the pool's row-count validation must catch it
    # on both attempts and fall back to in-driver execution.
    result = _run(table, workers, (Fault("corrupt", shard=0, times=None),))
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    assert _counters().get("pool.shard_degraded", 0) == 1


@pytest.mark.parametrize("workers", [2, 4])
def test_error_fault_retries_then_degrades(workers):
    table = _table()
    baseline = modify_sort_order(table, SPEC_OUT)
    result = _run(table, workers, (Fault("error", shard=1, times=None),))
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    counters = _counters()
    assert counters.get("pool.shard_retries", 0) >= 1
    assert counters.get("pool.shard_degraded", 0) == 1


def test_every_shard_corrupt_still_correct():
    table = _table(n_rows=800)
    baseline = modify_sort_order(table, SPEC_OUT)
    result = _run(table, 2, parse_faults("corrupt@*"))
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    assert _counters().get("pool.shard_degraded", 0) >= 2


def test_stats_survive_degradation():
    from repro.ovc.stats import ComparisonStats

    table = _table()
    base_stats = ComparisonStats()
    baseline = modify_sort_order(table, SPEC_OUT, stats=base_stats)
    plan = analyze_order_modification(table.sort_spec, SPEC_OUT)
    stats = ComparisonStats()
    cfg = ExecutionConfig(workers=2, shard_retries=0)
    result = parallel_modify(
        table, SPEC_OUT, plan, plan.strategy, 2,
        stats=stats, config=cfg,
        faults=(Fault("error", shard=0, times=None),),
    )
    assert result is not None
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    assert stats.as_dict() == base_stats.as_dict()


def test_fault_plan_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "kill@0x1")
    table = _table(n_rows=600)
    baseline = modify_sort_order(table, SPEC_OUT)
    result = modify_sort_order(
        table, SPEC_OUT, config=ExecutionConfig(workers=2)
    )
    assert result.rows == baseline.rows
    assert result.ovcs == baseline.ovcs
    assert _counters().get("pool.shard_retries", 0) >= 1


def test_parse_faults_round_trip():
    faults = parse_faults("kill@0x1, hang@2, corrupt@*x3")
    assert faults == (
        Fault("kill", shard=0, times=1),
        Fault("hang", shard=2, times=None),
        Fault("corrupt", shard=None, times=3),
    )
    assert faults[0].matches(0, 0)
    assert not faults[0].matches(0, 1)
    assert not faults[0].matches(1, 0)
    assert faults[1].matches(2, 99)
    assert faults[2].matches(7, 2)
    assert not faults[2].matches(7, 3)
    with pytest.raises(ValueError):
        parse_faults("kill")
    with pytest.raises(ValueError):
        parse_faults("vaporize@0")
