"""Seeded differential fuzzing at moderate scale.

Bigger inputs than the hypothesis suites (thousands of rows), many
seeds, every executor — the final safety net comparing each path
against Python's sort and against each other.
"""

from __future__ import annotations

import random

import pytest

from repro.core.external_modify import modify_sort_order_external
from repro.core.modify import modify_sort_order
from repro.engine.modify_op import StreamingModify
from repro.engine.scans import TableScan
from repro.exec import ExecutionConfig
from repro.model import Schema, SortSpec, Table
from repro.ovc.derive import derive_ovcs, verify_ovcs

SCHEMA = Schema.of("A", "B", "C", "D")
SPEC = SortSpec.of("A", "B", "C", "D")

ORDERS = [
    ("A", "C", "B", "D"),
    ("A", "C", "D"),
    ("B", "C", "D", "A"),
    ("A", "D", "B", "C"),
    ("C", "A"),
]


def _table(seed: int, n: int = 3000) -> Table:
    rng = random.Random(seed)
    shape = rng.choice(
        [
            (8, 8, 8, 8),       # balanced
            (2, 200, 4, 4),     # few segments, many runs
            (500, 2, 2, 2),     # tiny segments
            (1, 1, 300, 300),   # constant prefix
            (3, 3, 3, 1),       # duplicate-heavy
        ]
    )
    rows = sorted(
        tuple(rng.randrange(d) for d in shape) for _ in range(n)
    )
    table = Table(SCHEMA, rows, SPEC)
    table.ovcs = derive_ovcs(rows, (0, 1, 2, 3))
    return table


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("order", ORDERS, ids=lambda o: ",".join(o))
def test_all_paths_agree(seed, order):
    table = _table(seed)
    spec = SortSpec(order)
    key = spec.key_for(SCHEMA)
    expected = sorted(table.rows, key=key)
    positions = spec.positions(SCHEMA)

    auto = modify_sort_order(table, spec)
    assert auto.rows == expected
    assert verify_ovcs(auto.rows, auto.ovcs, positions)

    baseline = modify_sort_order(table, spec, use_ovc=False)
    assert baseline.rows == expected

    capped = modify_sort_order(table, spec, config=ExecutionConfig(max_fan_in=3))
    assert capped.rows == expected
    assert verify_ovcs(capped.rows, capped.ovcs, positions)

    # The external path's full-sort fallback (replacement selection) is
    # NOT stable, so on orders that do not totally determine the rows it
    # may legally reorder ties: compare keys and contents, not identity.
    external = modify_sort_order_external(table, spec, memory_capacity=257)
    assert [key(r) for r in external.rows] == [key(r) for r in expected]
    assert sorted(external.rows) == sorted(expected)
    assert verify_ovcs(external.rows, external.ovcs, positions)

    streamed = StreamingModify(TableScan(table), spec)
    got = [row for row, _ovc in streamed]
    assert got == expected
