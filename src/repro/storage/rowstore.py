"""Row store with prefix truncation.

In a sorted table, each row's leading sort columns that equal the
preceding row's can be suppressed — exactly the columns counted by the
row's offset-value code.  Compression and decompression therefore run
entirely on codes, with **zero column comparisons**: transposing
between this format and full rows (or run-length-encoded columns) is a
pure copy, as the paper's Section 2.1 observes.

Non-key columns are stored in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..model import Schema, SortSpec, Table, normalize_value


@dataclass(frozen=True)
class TruncatedRow:
    """One stored row: the shared-prefix length, the surviving key
    suffix, and the untouched non-key columns."""

    offset: int
    key_suffix: tuple
    rest: tuple


class PrefixTruncatedStore:
    """A sorted table held in prefix-truncated form.

    Construction consumes a :class:`Table` with codes; iteration
    reconstructs full rows *and* their codes without comparisons.
    """

    def __init__(
        self,
        schema: Schema,
        sort_spec: SortSpec,
        entries: list[TruncatedRow],
        first_values: list = None,
    ) -> None:
        self.schema = schema
        self.sort_spec = sort_spec
        self.entries = entries

    @classmethod
    def from_table(cls, table: Table) -> "PrefixTruncatedStore":
        if table.sort_spec is None:
            raise ValueError("prefix truncation requires a sorted table")
        table.with_ovcs()
        key_positions = table.sort_spec.positions(table.schema)
        key_set = set(key_positions)
        rest_positions = [
            i for i in range(len(table.schema)) if i not in key_set
        ]
        arity = table.sort_spec.arity
        entries: list[TruncatedRow] = []
        for row, (offset, _value) in zip(table.rows, table.ovcs):
            offset = min(offset, arity)
            suffix = tuple(row[key_positions[k]] for k in range(offset, arity))
            rest = tuple(row[p] for p in rest_positions)
            entries.append(TruncatedRow(offset, suffix, rest))
        return cls(table.schema, table.sort_spec, entries)

    def __len__(self) -> int:
        return len(self.entries)

    def stored_key_values(self) -> int:
        """Key column values physically stored (the compression win)."""
        return sum(len(e.key_suffix) for e in self.entries)

    def iter_rows_with_ovcs(self) -> Iterator[tuple[tuple, tuple]]:
        """Reconstruct full rows and paper-form codes — no comparisons.

        The code of each row is ``(offset, first surviving key value)``;
        reconstruction keeps a rolling full key and patches the suffix.
        """
        key_positions = self.sort_spec.positions(self.schema)
        key_set = set(key_positions)
        rest_positions = [
            i for i in range(len(self.schema)) if i not in key_set
        ]
        arity = self.sort_spec.arity
        directions = self.sort_spec.directions
        current_key: list = [None] * arity
        n_cols = len(self.schema)
        for entry in self.entries:
            for k, value in enumerate(entry.key_suffix):
                current_key[entry.offset + k] = value
            row = [None] * n_cols
            for k, pos in enumerate(key_positions):
                row[pos] = current_key[k]
            for value, pos in zip(entry.rest, rest_positions):
                row[pos] = value
            if entry.offset >= arity:
                ovc = (arity, 0)
            else:
                # Code values live in ascending comparison space, like
                # everything produced by repro.ovc.derive.
                ovc = (
                    entry.offset,
                    normalize_value(
                        current_key[entry.offset], directions[entry.offset]
                    ),
                )
            yield tuple(row), ovc

    def to_table(self) -> Table:
        rows: list[tuple] = []
        ovcs: list[tuple] = []
        for row, ovc in self.iter_rows_with_ovcs():
            rows.append(row)
            ovcs.append(ovc)
        return Table(self.schema, rows, self.sort_spec, ovcs)
