"""Partitioned b-trees (Graefe 2011/2024, referenced as [9, 12]).

A partitioned b-tree stores multiple sorted partitions inside a single
b-tree by prefixing every key with an artificial partition number —
new data lands in fresh partitions without disturbing old ones, and
queries merge across partitions, exactly like an LSM forest but inside
one storage structure.

For hypothesis 8, each partition is a pre-existing run over the full
key domain: scans per partition come straight from range scans on the
partition number, with offset-value codes supplied by the tree's
leaves (their leading artificial column shifts offsets by one).
"""

from __future__ import annotations

from typing import Iterator

from ..model import Schema, SortSpec, Table
from ..ovc.stats import ComparisonStats
from ..sorting.merge import kway_merge
from .btree import BTree

PARTITION_COLUMN = "__partition"


class PartitionedBTree:
    """One b-tree holding many sorted partitions."""

    def __init__(self, schema: Schema, sort_spec: SortSpec, order: int = 64) -> None:
        if PARTITION_COLUMN in schema:
            raise ValueError(f"{PARTITION_COLUMN} is reserved")
        self.schema = schema
        self.sort_spec = sort_spec
        self._inner_schema = Schema((PARTITION_COLUMN,) + schema.columns)
        self._inner_spec = SortSpec(
            (PARTITION_COLUMN,) + tuple(sort_spec.columns)
        )
        self._tree = BTree(self._inner_schema, self._inner_spec, order)
        self._next_partition = 0
        self._positions = sort_spec.positions(schema)

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def partition_count(self) -> int:
        return self._next_partition

    @property
    def node_reads(self) -> int:
        return self._tree.node_reads

    def ingest(
        self, rows, stats: ComparisonStats | None = None
    ) -> int:
        """Sort a batch into a fresh partition; returns its number."""
        from ..sorting.internal import tournament_sort

        stats = stats if stats is not None else ComparisonStats()
        partition = self._next_partition
        self._next_partition += 1
        sorted_rows, _ovcs = tournament_sort(
            list(rows), self._positions, stats, self.sort_spec.directions
        )
        for row in sorted_rows:
            self._tree.insert((partition,) + tuple(row), stats)
        return partition

    def partition_scan(self, partition: int) -> Iterator[tuple]:
        """Rows of one partition, in sort order (codes via
        :meth:`partition_runs`, which strips the artificial column)."""
        for inner_row in self._tree.range_scan((partition,), (partition + 1,)):
            yield inner_row[1:]

    def partition_runs(self) -> list[tuple[list[tuple], list[tuple]]]:
        """All partitions as ``(rows, ovcs)`` runs for merging.

        Codes come from the inner tree's leaf codes with the artificial
        column stripped: offsets above zero shift down by one, and each
        partition's first row re-anchors as a run head.
        """
        runs: dict[int, tuple[list[tuple], list[tuple]]] = {}
        arity = self.sort_spec.arity
        for inner_row, (offset, value) in self._tree.scan():
            partition = inner_row[0]
            row = inner_row[1:]
            rows, ovcs = runs.setdefault(partition, ([], []))
            if not rows or offset == 0:
                # Partition head (or tree head): re-anchor.
                ovcs.append((0, row[self._positions[0]]))
            elif offset > arity:
                ovcs.append((arity, 0))
            else:
                ovcs.append((offset - 1, value))
            rows.append(row)
        return [runs[p] for p in sorted(runs)]

    def scan_merged(self, stats: ComparisonStats | None = None) -> Table:
        """Merge all partitions into one sorted stream with codes."""
        stats = stats if stats is not None else ComparisonStats()
        runs = self.partition_runs()
        if not runs:
            return Table(self.schema, [], self.sort_spec, [])
        rows, ovcs = kway_merge(
            runs, self._positions, stats, self.sort_spec.directions
        )
        return Table(self.schema, rows, self.sort_spec, ovcs)

    def to_forest(self):
        """View as an LSM forest (shares the order-modification path)."""
        from .lsm import LsmForest

        forest = LsmForest(self.schema, self.sort_spec)
        for rows, ovcs in self.partition_runs():
            forest.add_partition(
                Table(self.schema, rows, self.sort_spec, ovcs)
            )
        return forest
