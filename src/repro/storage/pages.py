"""Simulated paged storage with I/O accounting.

The paper's hypothesis 7 claims that merging runs pre-existing in a
storage structure saves the I/O that an external merge sort would spend
writing and re-reading initial runs.  Our experiments run in memory, so
"I/O" is an accounting fiction: a :class:`PageManager` counts the pages
and bytes that would cross the memory/storage boundary, charged per
row according to a simple size model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass
class IoStats:
    """Pages and bytes written to / read from simulated storage."""

    pages_written: int = 0
    pages_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def reset(self) -> None:
        self.pages_written = 0
        self.pages_read = 0
        self.bytes_written = 0
        self.bytes_read = 0

    def __add__(self, other: "IoStats") -> "IoStats":
        return IoStats(
            self.pages_written + other.pages_written,
            self.pages_read + other.pages_read,
            self.bytes_written + other.bytes_written,
            self.bytes_read + other.bytes_read,
        )

    def __sub__(self, other: "IoStats") -> "IoStats":
        return IoStats(
            self.pages_written - other.pages_written,
            self.pages_read - other.pages_read,
            self.bytes_written - other.bytes_written,
            self.bytes_read - other.bytes_read,
        )

    def snapshot(self) -> "IoStats":
        return IoStats(
            self.pages_written,
            self.pages_read,
            self.bytes_written,
            self.bytes_read,
        )

    def __str__(self) -> str:
        return (
            f"IoStats(write: {self.pages_written:,} pages / "
            f"{self.bytes_written:,} B, read: {self.pages_read:,} pages / "
            f"{self.bytes_read:,} B)"
        )


def row_size_bytes(row: tuple) -> int:
    """Byte-size model: 8 bytes per integer column, actual length for
    strings/bytes, 8 bytes for anything else."""
    total = 0
    for value in row:
        if isinstance(value, str):
            total += len(value.encode("utf-8"))
        elif isinstance(value, (bytes, bytearray)):
            total += len(value)
        else:
            total += 8
    return total


class SpilledRun:
    """A sorted run written to simulated storage.

    Reading it back (iterating) charges page reads to the owning
    manager.  Rows and codes are retained in memory — only the
    accounting pretends otherwise.
    """

    def __init__(
        self,
        manager: "PageManager",
        rows: list[tuple],
        ovcs: list[tuple] | None,
        total_bytes: int,
        pages: int,
    ) -> None:
        self._manager = manager
        self.rows = rows
        self.ovcs = ovcs
        self.total_bytes = total_bytes
        self.pages = pages

    def __len__(self) -> int:
        return len(self.rows)

    def read(self) -> tuple[list[tuple], list[tuple] | None]:
        """Charge a full read of the run and return its contents."""
        self._manager.stats.pages_read += self.pages
        self._manager.stats.bytes_read += self.total_bytes
        return self.rows, self.ovcs

    def __iter__(self) -> Iterator[tuple]:
        rows, _ovcs = self.read()
        return iter(rows)


class PageManager:
    """Counts simulated page traffic; spills and reads back runs."""

    def __init__(self, page_bytes: int = 8192) -> None:
        if page_bytes < 1:
            raise ValueError("page size must be positive")
        self.page_bytes = page_bytes
        self.stats = IoStats()

    def spill_run(
        self, rows: Sequence[tuple], ovcs: Sequence[tuple] | None = None
    ) -> SpilledRun:
        """Write a sorted run out; charges page writes."""
        rows = list(rows)
        total = sum(row_size_bytes(r) for r in rows)
        pages = max(1, -(-total // self.page_bytes)) if rows else 0
        self.stats.pages_written += pages
        self.stats.bytes_written += total
        return SpilledRun(
            self, rows, list(ovcs) if ovcs is not None else None, total, pages
        )

    def charge_scan(self, rows: Sequence[tuple]) -> None:
        """Charge a read-only scan of rows living in storage."""
        total = sum(row_size_bytes(r) for r in rows)
        pages = max(1, -(-total // self.page_bytes)) if len(rows) else 0
        self.stats.pages_read += pages
        self.stats.bytes_read += total
