"""An in-memory B+-tree over multi-column keys.

The tree indexes full rows (compound keys, as in the paper's Figure 4
example of pairs sorted on ``A,B``).  Leaves keep, next to each row,
its offset-value code relative to the predecessor *in the tree* —
computed when the row is written (bulk load or insert), so ordered
scans supply codes without any comparison at read time: "scans of
b-trees with prefix truncation can readily supply offset-value codes".

Features used by the experiments:

* bulk load from a sorted table and incremental insert (with split);
* point and range search;
* full ordered scans yielding ``(row, ovc)``;
* MDAM-style *distinct-prefix cursors*: one cursor per distinct value
  of the first ``k`` key columns — exactly the pre-existing runs that
  Figure 4 merges straight out of the index;
* node-access accounting (each node touched counts as a page read).
"""

from __future__ import annotations

import bisect
from typing import Iterator

from ..model import Schema, SortSpec, Table, normalize_value
from ..ovc.stats import ComparisonStats


class _Node:
    __slots__ = ("leaf", "keys", "children", "rows", "ovcs", "next")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: list = []  # separator keys (internal) or row keys (leaf)
        self.children: list["_Node"] = []
        self.rows: list[tuple] = []  # leaf payload
        self.ovcs: list[tuple] = []  # leaf codes, parallel to rows
        self.next: "_Node | None" = None


class BTree:
    """B+-tree with linked leaves and cached offset-value codes."""

    def __init__(
        self,
        schema: Schema,
        sort_spec: SortSpec,
        order: int = 64,
    ) -> None:
        if order < 4:
            raise ValueError("order must be at least 4")
        self.schema = schema
        self.sort_spec = sort_spec
        self.order = order
        self._key_positions = sort_spec.positions(schema)
        self._directions = sort_spec.directions
        self._arity = sort_spec.arity
        self._root = _Node(leaf=True)
        self._first_leaf = self._root
        self._size = 0
        self.node_reads = 0
        self.height = 1

    # ------------------------------------------------------------------
    # Key handling

    def _key(self, row: tuple) -> tuple:
        positions = self._key_positions
        if all(self._directions):
            return tuple(row[p] for p in positions)
        return tuple(
            normalize_value(row[p], asc)
            for p, asc in zip(positions, self._directions)
        )

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def bulk_load(
        cls,
        table: Table,
        order: int = 64,
    ) -> "BTree":
        """Build from a sorted table; leaf codes come from the table's
        codes (or are derived once here)."""
        if table.sort_spec is None:
            raise ValueError("bulk load requires a sorted table")
        table.with_ovcs()
        tree = cls(table.schema, table.sort_spec, order)
        cap = order
        leaves: list[_Node] = []
        for start in range(0, len(table.rows), max(cap // 2, 1)):
            node = _Node(leaf=True)
            node.rows = list(table.rows[start : start + max(cap // 2, 1)])
            node.ovcs = list(table.ovcs[start : start + max(cap // 2, 1)])
            node.keys = [tree._key(r) for r in node.rows]
            leaves.append(node)
        if not leaves:
            return tree
        for a, b in zip(leaves, leaves[1:]):
            a.next = b
        tree._first_leaf = leaves[0]
        tree._size = len(table.rows)
        # Build internal levels bottom-up.
        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), cap):
                group = level[start : start + cap]
                parent = _Node(leaf=False)
                parent.children = group
                parent.keys = [tree._min_key(c) for c in group[1:]]
                parents.append(parent)
            level = parents
            tree.height += 1
        tree._root = level[0]
        return tree

    def _min_key(self, node: _Node) -> tuple:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # Insert

    def insert(self, row: tuple, stats: ComparisonStats | None = None) -> None:
        """Insert one row, refreshing the cached codes around it."""
        key = self._key(row)
        split = self._insert(self._root, key, row, stats)
        if split is not None:
            sep_key, right = split
            new_root = _Node(leaf=False)
            new_root.children = [self._root, right]
            new_root.keys = [sep_key]
            self._root = new_root
            self.height += 1
        self._size += 1

    def _insert(self, node: _Node, key: tuple, row: tuple, stats):
        self.node_reads += 1
        if node.leaf:
            i = bisect.bisect_right(node.keys, key)
            node.keys.insert(i, key)
            node.rows.insert(i, row)
            node.ovcs.insert(i, (0, key[0]))  # placeholder, fixed below
            self._refresh_leaf_codes(node, i, stats)
            if len(node.rows) > self.order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, row, stats)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(i, sep_key)
        node.children.insert(i + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _refresh_leaf_codes(self, node: _Node, i: int, stats) -> None:
        """Recompute the code of entry ``i`` and its successor."""
        local = stats if stats is not None else ComparisonStats()
        prev_key = self._predecessor_key(node, i)
        node.ovcs[i] = self._code_against(prev_key, node.keys[i], local)
        succ = self._successor(node, i)
        if succ is not None:
            succ_node, j = succ
            succ_node.ovcs[j] = self._code_against(
                node.keys[i], succ_node.keys[j], local
            )

    def _predecessor_key(self, node: _Node, i: int) -> tuple | None:
        if i > 0:
            return node.keys[i - 1]
        # Walk leaves from the front; fine for tests and moderate sizes.
        prev = None
        leaf = self._first_leaf
        while leaf is not None and leaf is not node:
            if leaf.keys:
                prev = leaf.keys[-1]
            leaf = leaf.next
        return prev

    def _successor(self, node: _Node, i: int):
        if i + 1 < len(node.keys):
            return node, i + 1
        nxt = node.next
        while nxt is not None and not nxt.keys:
            nxt = nxt.next
        if nxt is None:
            return None
        return nxt, 0

    def _code_against(self, prev_key, key, stats: ComparisonStats) -> tuple:
        if prev_key is None:
            return (0, key[0])
        arity = self._arity
        for k in range(arity):
            stats.column_comparisons += 1
            if prev_key[k] != key[k]:
                return (k, key[k])
        return (arity, 0)

    def _split_leaf(self, node: _Node):
        mid = len(node.rows) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.rows = node.rows[mid:]
        right.ovcs = node.ovcs[mid:]
        node.keys = node.keys[:mid]
        node.rows = node.rows[:mid]
        node.ovcs = node.ovcs[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.children) // 2
        right = _Node(leaf=False)
        sep = node.keys[mid - 1]
        right.children = node.children[mid:]
        right.keys = node.keys[mid:]
        node.children = node.children[:mid]
        node.keys = node.keys[: mid - 1]
        return sep, right

    # ------------------------------------------------------------------
    # Search and scans

    def __len__(self) -> int:
        return self._size

    def _descend_to_leaf(self, key: tuple) -> _Node:
        node = self._root
        while not node.leaf:
            self.node_reads += 1
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        self.node_reads += 1
        return node

    def search(self, row: tuple) -> bool:
        """Exact-row membership."""
        key = self._key(row)
        leaf = self._descend_to_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        return i < len(leaf.keys) and leaf.keys[i] == key

    def scan(self) -> Iterator[tuple[tuple, tuple]]:
        """Full ordered scan yielding ``(row, ovc)`` — codes are read
        from the leaves, never recomputed."""
        leaf = self._first_leaf
        while leaf is not None:
            self.node_reads += 1
            for row, ovc in zip(leaf.rows, leaf.ovcs):
                yield row, ovc
            leaf = leaf.next

    def range_scan(
        self, lower: tuple | None = None, upper: tuple | None = None
    ) -> Iterator[tuple]:
        """Rows with ``lower <= key < upper`` (either bound optional);
        bounds are raw key tuples in key-column order."""
        if lower is None:
            leaf, i = self._first_leaf, 0
        else:
            leaf = self._descend_to_leaf(lower)
            i = bisect.bisect_left(leaf.keys, tuple(lower))
        while leaf is not None:
            self.node_reads += 1
            while i < len(leaf.keys):
                if upper is not None and leaf.keys[i] >= tuple(upper):
                    return
                yield leaf.rows[i]
                i += 1
            leaf = leaf.next
            i = 0

    def _iter_leaves(self) -> Iterator[_Node]:
        leaf = self._first_leaf
        while leaf is not None:
            yield leaf
            leaf = leaf.next

    def leaf_count(self) -> int:
        return sum(1 for _ in self._iter_leaves())

    def to_table(self) -> Table:
        rows: list[tuple] = []
        ovcs: list[tuple] = []
        for row, ovc in self.scan():
            rows.append(row)
            ovcs.append(ovc)
        return Table(self.schema, rows, self.sort_spec, ovcs)

    # ------------------------------------------------------------------
    # MDAM-style skip scan (Figure 4's per-run cursors)

    def distinct_prefixes(self, prefix_len: int) -> list[tuple]:
        """Distinct values of the first ``prefix_len`` key columns,
        found by repeated seeks (not a full scan)."""
        if not 1 <= prefix_len <= self._arity:
            raise ValueError("prefix_len out of range")
        result: list[tuple] = []
        probe: tuple | None = None
        while True:
            leaf, i = self._seek_after_prefix(probe, prefix_len)
            if leaf is None:
                return result
            prefix = leaf.keys[i][:prefix_len]
            result.append(prefix)
            probe = prefix

    def _seek_after_prefix(self, prefix: tuple | None, prefix_len: int):
        """Position of the first key whose prefix exceeds ``prefix``
        (or the first key overall when prefix is None)."""
        if prefix is None:
            leaf = self._first_leaf
            while leaf is not None and not leaf.keys:
                leaf = leaf.next
            self.node_reads += 1
            return (leaf, 0) if leaf is not None else (None, 0)
        # Seek the smallest key strictly greater than every key sharing
        # the prefix: descend with an upper-bound probe.
        probe = tuple(prefix) + (_Top(),) * (self._arity - prefix_len)
        leaf = self._descend_to_leaf(probe)
        i = bisect.bisect_right(leaf.keys, probe)
        while leaf is not None and i >= len(leaf.keys):
            leaf = leaf.next
            i = 0
        if leaf is None:
            return None, 0
        return leaf, i

    def prefix_run_cursors(
        self, prefix_len: int
    ) -> list[Iterator[tuple[tuple, tuple]]]:
        """One ``(row, ovc)`` cursor per distinct prefix value — the
        pre-existing runs of Figure 4, ready for the merge logic."""

        def cursor(leaf: _Node, i: int, prefix: tuple):
            while leaf is not None:
                while i < len(leaf.keys):
                    if leaf.keys[i][:prefix_len] != prefix:
                        return
                    yield leaf.rows[i], leaf.ovcs[i]
                    i += 1
                leaf = leaf.next
                self.node_reads += 1
                i = 0

        cursors = []
        probe: tuple | None = None
        while True:
            leaf, i = self._seek_after_prefix(probe, prefix_len)
            if leaf is None:
                return cursors
            prefix = leaf.keys[i][:prefix_len]
            cursors.append(cursor(leaf, i, prefix))
            probe = prefix


class _Top:
    """Sorts above every real value (probe sentinel for skip scans)."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return not isinstance(other, _Top)

    def __le__(self, other) -> bool:
        return isinstance(other, _Top)

    def __ge__(self, other) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, _Top)

    def __hash__(self) -> int:
        return hash("_Top")
