"""Storage substrates: paged spill files, a prefix-truncated row store,
an RLE column store, a B+-tree, and an LSM-style partitioned forest.
"""

from .pages import IoStats, PageManager, SpilledRun
from .rowstore import PrefixTruncatedStore
from .colstore import ColumnStore
from .btree import BTree
from .lsm import LsmForest
from .partitioned_btree import PartitionedBTree

__all__ = [
    "IoStats",
    "PageManager",
    "SpilledRun",
    "PrefixTruncatedStore",
    "ColumnStore",
    "BTree",
    "LsmForest",
    "PartitionedBTree",
]
