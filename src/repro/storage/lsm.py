"""Log-structured merge forest / partitioned b-tree (hypothesis 8).

The forest holds multiple *partitions*, each a sorted run over the full
key domain (as in LSM-trees, stepped-merge forests, and partitioned
b-trees).  Queries merge across partitions.  For order modification
the paper's aligned-segment argument applies: segment boundaries are
distinct values of the leading key columns, the *same* in every
partition, so each segment can be sorted independently — merging the
partitions' pre-existing runs within the segment.

Cross-partition run-head code derivation is not possible (each
partition's codes chain only within that partition), so ties between
rows of different partitions fall back to actual infix comparisons —
an honest, documented deviation counted by the shared statistics.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence

from ..model import Schema, SortSpec, Table
from ..ovc.derive import derive_ovcs
from ..ovc.stats import ComparisonStats
from ..sorting.internal import tournament_sort
from ..sorting.merge import kway_merge


class LsmForest:
    """A forest of sorted partitions sharing one schema and sort order."""

    def __init__(self, schema: Schema, sort_spec: SortSpec) -> None:
        self.schema = schema
        self.sort_spec = sort_spec
        self._positions = sort_spec.positions(schema)
        self.partitions: list[Table] = []

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def ingest(
        self, rows: Sequence[tuple], stats: ComparisonStats | None = None
    ) -> Table:
        """Sort a batch into a new partition (like an LSM memtable flush)."""
        stats = stats if stats is not None else ComparisonStats()
        sorted_rows, ovcs = tournament_sort(
            list(rows), self._positions, stats, self.sort_spec.directions
        )
        partition = Table(self.schema, sorted_rows, self.sort_spec, ovcs)
        self.partitions.append(partition)
        return partition

    def add_partition(self, table: Table) -> None:
        if table.schema != self.schema or table.sort_spec != self.sort_spec:
            raise ValueError("partition must match the forest's schema and order")
        self.partitions.append(table.with_ovcs())

    def scan_merged(
        self, stats: ComparisonStats | None = None
    ) -> Table:
        """Merge all partitions into one sorted stream (a full compaction
        view); offset-value codes in every partition decide most
        comparisons."""
        stats = stats if stats is not None else ComparisonStats()
        if not self.partitions:
            return Table(self.schema, [], self.sort_spec, [])
        runs = [(p.rows, p.ovcs) for p in self.partitions]
        rows, ovcs = kway_merge(
            runs, self._positions, stats, self.sort_spec.directions
        )
        return Table(self.schema, rows, self.sort_spec, ovcs)

    def compact(self, stats: ComparisonStats | None = None) -> Table:
        """Merge all partitions and replace them with the result."""
        merged = self.scan_merged(stats)
        self.partitions = [merged] if len(merged) else []
        return merged

    def aligned_segments(self, prefix_len: int) -> list[tuple]:
        """Distinct leading-prefix values across all partitions, sorted.

        These are the aligned segment boundaries of hypothesis 8: the
        same prefix value bounds a segment in every partition.
        """
        if prefix_len < 1 or prefix_len > self.sort_spec.arity:
            raise ValueError("prefix_len out of range")
        positions = self._positions[:prefix_len]
        seen: set[tuple] = set()
        for partition in self.partitions:
            for offset, _value in _prefix_heads(partition, prefix_len):
                row = partition.rows[offset]
                seen.add(tuple(row[p] for p in positions))
        return sorted(seen)

    def segment_slices(self, prefix_len: int) -> Iterator[tuple[tuple, list[tuple]]]:
        """Per aligned segment, the ``[lo, hi)`` slice in each partition.

        Partitions without rows for a segment contribute an empty
        slice.  Slices are located by binary search on the prefix — no
        row-by-row comparisons.
        """
        positions = self._positions[:prefix_len]
        keyed: list[list[tuple]] = [
            [tuple(row[p] for p in positions) for row in part.rows]
            for part in self.partitions
        ]
        for prefix in self.aligned_segments(prefix_len):
            slices = []
            for keys in keyed:
                lo = bisect.bisect_left(keys, prefix)
                hi = bisect.bisect_right(keys, prefix)
                slices.append((lo, hi))
            yield prefix, slices

    def modify_order_segmented(
        self,
        new_order: SortSpec,
        stats: ComparisonStats | None = None,
    ) -> Table:
        """Order modification across the forest (hypothesis 8).

        Requires a shared prefix between the forest's order and the new
        order.  Processes one aligned segment at a time: the segment's
        per-partition slices are themselves sorted tables, so the slices
        merge on the new order using each partition's own codes; within
        a partition slice, pre-existing runs are exploited through the
        ordinary single-table machinery.
        """
        from ..core.modify import modify_sort_order

        stats = stats if stats is not None else ComparisonStats()
        prefix_len = self.sort_spec.common_prefix_len(new_order)
        if prefix_len == 0:
            raise ValueError(
                "aligned-segment modification needs a shared key prefix"
            )
        out_rows: list[tuple] = []
        out_ovcs: list[tuple] = []
        new_positions = new_order.positions(self.schema)
        for _prefix, slices in self.segment_slices(prefix_len):
            per_partition: list[tuple[list[tuple], list[tuple]]] = []
            for part, (lo, hi) in zip(self.partitions, slices):
                if hi <= lo:
                    continue
                slice_table = Table(
                    self.schema,
                    part.rows[lo:hi],
                    self.sort_spec,
                    _reanchor_ovcs(part, lo, hi, self._positions),
                )
                modified = modify_sort_order(
                    slice_table, new_order, stats=stats
                )
                per_partition.append((modified.rows, modified.ovcs))
            if not per_partition:
                continue
            rows, ovcs = kway_merge(
                per_partition, new_positions, stats, new_order.directions
            )
            out_rows.extend(rows)
            out_ovcs.extend(ovcs)
        # Re-anchor codes at segment boundaries: each segment's first
        # row was coded as a table head; recode it against the previous
        # segment's last row (one comparison per segment).
        table = Table(self.schema, out_rows, new_order, out_ovcs)
        _fix_boundary_codes(table, stats)
        return table


def _prefix_heads(partition: Table, prefix_len: int) -> Iterator[tuple]:
    """(row index, code) of each new distinct prefix in a partition —
    found from the partition's codes alone."""
    for i, (offset, value) in enumerate(partition.ovcs):
        if offset < prefix_len:
            yield i, (offset, value)


def _reanchor_ovcs(
    partition: Table, lo: int, hi: int, positions: Sequence[int]
) -> list[tuple]:
    """Codes for a partition slice: interior codes stay valid; the
    first row becomes a slice head coded as a fresh table head."""
    ovcs = list(partition.ovcs[lo:hi])
    if ovcs:
        first = partition.rows[lo]
        ovcs[0] = (0, first[positions[0]])
    return ovcs


def _fix_boundary_codes(table: Table, stats: ComparisonStats) -> None:
    positions = table.sort_spec.positions(table.schema)
    directions = table.sort_spec.directions
    heads = [
        i for i, (offset, _v) in enumerate(table.ovcs) if i > 0 and offset == 0
    ]
    for i in heads:
        pair = derive_ovcs(
            table.rows[i - 1 : i + 1], positions, directions, stats
        )
        table.ovcs[i] = pair[1]
