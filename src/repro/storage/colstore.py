"""Column store with run-length encoding of leading sort columns.

Figure 1's second block: within a sorted table in columnar format,
run-length encoding suppresses a column value when the row agrees with
its predecessor on that column *and all sort columns before it* — the
same values suppressed by prefix truncation in row format.  The run
boundaries therefore encode offset-value codes, and transposition in
either direction needs **no column comparisons** (hypothesis 6).

Non-key columns are stored uncompressed (one value per row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..model import Schema, SortSpec, Table, normalize_value


@dataclass(frozen=True)
class RleColumn:
    """Runs of one leading sort column: parallel value/length lists."""

    values: tuple
    lengths: tuple

    def __len__(self) -> int:
        return len(self.values)

    def expand(self) -> Iterator:
        for value, length in zip(self.values, self.lengths):
            for _ in range(length):
                yield value


class ColumnStore:
    """A sorted table in columnar format.

    Sort-key columns are run-length encoded along prefix boundaries;
    remaining columns are plain lists.
    """

    def __init__(
        self,
        schema: Schema,
        sort_spec: SortSpec,
        key_columns: list[RleColumn],
        plain_columns: dict[str, list],
        n_rows: int,
    ) -> None:
        self.schema = schema
        self.sort_spec = sort_spec
        self.key_columns = key_columns
        self.plain_columns = plain_columns
        self.n_rows = n_rows

    def __len__(self) -> int:
        return self.n_rows

    @classmethod
    def from_table(cls, table: Table) -> "ColumnStore":
        """Compress using the table's codes — no comparisons needed:
        column ``k`` starts a new run exactly where ``offset <= k``."""
        if table.sort_spec is None:
            raise ValueError("column-store compression requires a sorted table")
        table.with_ovcs()
        key_positions = table.sort_spec.positions(table.schema)
        arity = table.sort_spec.arity
        values: list[list] = [[] for _ in range(arity)]
        lengths: list[list[int]] = [[] for _ in range(arity)]
        for row, (offset, _value) in zip(table.rows, table.ovcs):
            for k in range(arity):
                if k >= offset or not lengths[k]:
                    values[k].append(row[key_positions[k]])
                    lengths[k].append(1)
                else:
                    lengths[k][-1] += 1
        key_columns = [
            RleColumn(tuple(v), tuple(l)) for v, l in zip(values, lengths)
        ]
        key_set = set(key_positions)
        plain = {
            name: [row[i] for row in table.rows]
            for i, name in enumerate(table.schema.columns)
            if i not in key_set
        }
        return cls(table.schema, table.sort_spec, key_columns, plain, len(table))

    def stored_key_values(self) -> int:
        """Key values physically stored — equals the prefix-truncation
        figure for the same table."""
        return sum(len(col) for col in self.key_columns)

    def iter_rows_with_ovcs(self) -> Iterator[tuple[tuple, tuple]]:
        """Transpose to rows plus codes, without comparisons.

        A row's offset is the first key column whose run starts at this
        row; within runs the offset is the key arity (duplicate).
        """
        arity = self.sort_spec.arity
        directions = self.sort_spec.directions
        key_positions = self.sort_spec.positions(self.schema)
        key_set = set(key_positions)
        plain_by_pos = {
            self.schema.index_of(name): col
            for name, col in self.plain_columns.items()
        }
        n_cols = len(self.schema)

        # Cursor state per key column: (run index, rows left in run).
        cursors = [[0, 0] for _ in range(arity)]
        current = [None] * arity
        for i in range(self.n_rows):
            offset = arity
            for k in range(arity - 1, -1, -1):
                run_idx, left = cursors[k]
                if left == 0:
                    offset = k
                    current[k] = self.key_columns[k].values[run_idx]
                    cursors[k][1] = self.key_columns[k].lengths[run_idx]
                    cursors[k][0] = run_idx + 1
                cursors[k][1] -= 1
            row = [None] * n_cols
            for k, pos in enumerate(key_positions):
                row[pos] = current[k]
            for pos, col in plain_by_pos.items():
                row[pos] = col[i]
            if offset >= arity:
                ovc = (arity, 0)
            else:
                ovc = (offset, normalize_value(current[offset], directions[offset]))
            yield tuple(row), ovc

    def to_table(self) -> Table:
        rows: list[tuple] = []
        ovcs: list[tuple] = []
        for row, ovc in self.iter_rows_with_ovcs():
            rows.append(row)
            ovcs.append(ovc)
        return Table(self.schema, rows, self.sort_spec, ovcs)

    def segment_boundaries(self, prefix_len: int) -> list[int]:
        """Row indices where a new distinct prefix value begins —
        straight off the leading column's run lengths (hypothesis 6)."""
        if prefix_len < 1 or prefix_len > self.sort_spec.arity:
            raise ValueError("prefix_len out of range")
        col = self.key_columns[prefix_len - 1]
        boundaries = []
        at = 0
        for length in col.lengths:
            boundaries.append(at)
            at += length
        return boundaries
