"""Query-optimization slice: interesting orderings and order enforcers.

Hypothesis 10 of the paper: interesting orderings should be expanded
beyond *using* an existing sort order — the optimizer should also plan
*modifications* of existing sort orders.  This package provides:

* :mod:`~repro.optimizer.orderings` — ordering satisfaction tests with
  reduction by constants and functional dependencies (Simmen et al.);
* :mod:`~repro.optimizer.planner` — cost-based choice of the cheapest
  order enforcer (none / segmented / merge pre-existing runs / combined
  / full sort) and merge-join planning over available indexes.
"""

from .orderings import OrderingContext, reduce_spec, satisfies_with_context
from .planner import EnforcerChoice, choose_enforcer, plan_merge_join
from .join_planning import JoinEdge, PlanNode, Relation, plan_joins
from .physical_design import RequiredOrdering, design_indexes
from .statistics import (
    OrderStatistics,
    choose_enforcer_with_statistics,
    collect_order_statistics,
)

__all__ = [
    "OrderingContext",
    "reduce_spec",
    "satisfies_with_context",
    "EnforcerChoice",
    "choose_enforcer",
    "plan_merge_join",
    "JoinEdge",
    "PlanNode",
    "Relation",
    "plan_joins",
    "RequiredOrdering",
    "design_indexes",
    "OrderStatistics",
    "choose_enforcer_with_statistics",
    "collect_order_statistics",
]
