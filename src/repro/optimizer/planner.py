"""Order-enforcer choice and merge-join planning.

The paper's hypothesis 10: query optimizers should treat "modify an
existing sort order" as a first-class enforcer next to "sort" and
"already sorted".  :func:`choose_enforcer` compares the candidates with
the core cost model; :func:`plan_merge_join` builds a merge-join plan
over streams, inserting the cheapest enforcers — the machinery behind
the enrollment example, where a single (course, student) index serves
joins on either column.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analysis import Strategy, analyze_order_modification
from ..core.cost import CostEstimate, estimate_costs
from ..engine.merge_join import MergeJoin
from ..engine.operators import Operator
from ..engine.sort_op import Sort
from ..model import SortSpec
from .orderings import OrderingContext, satisfies_with_context


@dataclass(frozen=True)
class EnforcerChoice:
    """Outcome of enforcer planning for one stream."""

    strategy: Strategy
    estimate: CostEstimate | None
    #: Sort method string to pass to the Sort operator / modify call.
    method: str

    @property
    def is_free(self) -> bool:
        return self.strategy is Strategy.NOOP


_METHOD_OF = {
    Strategy.NOOP: "noop",
    Strategy.SEGMENT_SORT: "segment_sort",
    Strategy.MERGE_RUNS: "merge_runs",
    Strategy.COMBINED: "combined",
    Strategy.FULL_SORT: "full_sort",
}


def choose_enforcer(
    provided: SortSpec | None,
    required: SortSpec,
    n_rows: int,
    n_segments: int | None = None,
    n_runs: int | None = None,
    context: OrderingContext | None = None,
    memory_capacity: int = 1 << 20,
    fan_in: int = 128,
) -> EnforcerChoice:
    """Pick the cheapest way to give a stream the required order.

    ``n_segments``/``n_runs`` are catalog statistics (distinct counts
    of the shared prefix / prefix+infix); when omitted they default to
    square-root heuristics, as a real optimizer would estimate from
    histograms.
    """
    if satisfies_with_context(provided, required, context):
        return EnforcerChoice(Strategy.NOOP, None, "noop")
    if provided is None:
        model_plan = None
    else:
        model_plan = analyze_order_modification(provided, required)
    if model_plan is None or model_plan.strategy is Strategy.FULL_SORT:
        from ..core.cost import CostModel

        estimate = CostModel(n_rows, 1, 1, memory_capacity, fan_in).full_sort()
        return EnforcerChoice(Strategy.FULL_SORT, estimate, "full_sort")
    if n_segments is None:
        n_segments = max(1, int(n_rows ** 0.5)) if model_plan.prefix_len else 1
    if n_runs is None:
        n_runs = max(n_segments, int(n_rows ** 0.5))
    estimates = estimate_costs(
        model_plan, n_rows, n_segments, n_runs, memory_capacity, fan_in
    )
    best = estimates[0]
    return EnforcerChoice(best.strategy, best, _METHOD_OF[best.strategy])


def enforce(
    child: Operator,
    required: SortSpec,
    context: OrderingContext | None = None,
    n_segments: int | None = None,
    n_runs: int | None = None,
) -> Operator:
    """Wrap ``child`` in the cheapest order enforcer (possibly none)."""
    if satisfies_with_context(child.ordering, required, context):
        return child
    # Row count unknown until execution; Sort's "auto" re-checks the
    # cost model against actual segment/run counts from the codes.
    return Sort(child, required, method="auto")


def plan_merge_join(
    left: Operator,
    right: Operator,
    left_keys: list[str],
    right_keys: list[str],
    context: OrderingContext | None = None,
) -> Operator:
    """A merge join with order enforcers inserted as needed."""
    left_spec = SortSpec(left_keys)
    right_spec = SortSpec(right_keys)
    left_in = enforce(left, left_spec, context)
    right_in = enforce(right, right_spec, context)
    return MergeJoin(left_in, right_in, left_keys, right_keys)
