"""Join ordering with interesting orderings and order modification.

Hypothesis 10: "interesting orderings in database query optimization
should be expanded beyond *using* an existing sort order — they should
also exploit techniques for *modifying* an existing sort order."

This module implements a Selinger-style dynamic program over connected
sub-plans for merge-join-only plans.  Each DP state is a set of joined
relations *plus the physical ordering of the sub-plan's output* — the
classic interesting-ordering refinement — and order enforcers between
joins are priced with the full menu: already sorted (free), segmented
sorting, merging pre-existing runs, combined, or full sort.  Disabling
order modification (``modification_allowed=False``) reduces enforcers
to sorted-or-sort, quantifying what hypothesis 10 buys.

The planner works on catalog metadata (row counts, available index
orders, join edges); it does not execute plans — pair it with
:mod:`repro.optimizer.planner` to build runnable operator trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.analysis import Strategy, analyze_order_modification
from ..core.cost import CostModel
from ..model import SortSpec


@dataclass(frozen=True)
class Relation:
    """A base table with its available physical orderings (indexes).

    ``unique_keys`` lists column sets with at-most-one row per value
    (primary/unique keys); they drive ordering propagation through
    merge joins — a join against a side unique on the join columns
    preserves the other side's full sort order, the fact behind the
    paper's three-table enrollment example.
    """

    name: str
    n_rows: int
    orderings: tuple[SortSpec, ...]
    distinct_per_column: float = 64.0
    unique_keys: tuple[frozenset[str], ...] = ()


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join between columns of two relations.

    Columns are given globally unique names (qualify them yourself,
    e.g. ``"enrollment.student"`` vs ``"student.student"``); the edge
    lists the paired column names on each side.
    """

    left: str
    right: str
    left_columns: tuple[str, ...]
    right_columns: tuple[str, ...]
    selectivity: float = 0.01


@dataclass
class PlanNode:
    """One DP entry: a joined relation set with a concrete output order."""

    relations: frozenset[str]
    ordering: SortSpec | None
    cost: float
    rows: float
    description: str
    unique_keys: tuple[frozenset[str], ...] = ()

    def explain(self) -> str:
        return f"{self.description} [cost {self.cost:,.0f}, ~{self.rows:,.0f} rows]"

    def unique_on(self, columns: Iterable[str]) -> bool:
        cols = set(columns)
        return any(key <= cols for key in self.unique_keys)


def _enforcer_cost(
    provided: SortSpec | None,
    required: SortSpec,
    n_rows: float,
    distinct: float,
    modification_allowed: bool,
) -> tuple[float, str]:
    """Cheapest way to impose ``required``; returns (cost, label)."""
    n = max(int(n_rows), 1)
    if provided is not None and provided.satisfies(required):
        return 0.0, "sorted"
    model_full = CostModel(n, 1, 1)
    full = model_full.full_sort().total
    if provided is None or not modification_allowed:
        return full, "sort"
    plan = analyze_order_modification(provided, required)
    if plan.strategy is Strategy.NOOP:
        return 0.0, "sorted"
    if plan.strategy is Strategy.FULL_SORT:
        return full, "sort"
    n_segments = max(1, int(min(distinct ** plan.prefix_len, n)))
    n_runs = max(
        n_segments,
        int(min(distinct ** (plan.prefix_len + max(plan.infix_len, 1)), n)),
    )
    estimate = CostModel(n, n_segments, n_runs).estimate(plan.strategy)
    if estimate.total < full:
        return estimate.total, f"modify({plan.strategy.value})"
    return full, "sort"


def plan_joins(
    relations: Sequence[Relation],
    edges: Sequence[JoinEdge],
    modification_allowed: bool = True,
) -> PlanNode:
    """Best merge-join plan over all bushy join orders.

    Returns the cheapest :class:`PlanNode` covering every relation.
    Cross products are not considered; the join graph must be
    connected.
    """
    if not relations:
        raise ValueError("need at least one relation")
    by_name = {r.name: r for r in relations}
    if len(by_name) != len(relations):
        raise ValueError("duplicate relation names")

    edge_map: dict[tuple[str, str], JoinEdge] = {}
    for e in edges:
        if e.left not in by_name or e.right not in by_name:
            raise ValueError(f"edge references unknown relation: {e}")
        edge_map[(e.left, e.right)] = e
        edge_map[(e.right, e.left)] = JoinEdge(
            e.right, e.left, e.right_columns, e.left_columns, e.selectivity
        )

    # DP table: relation set -> list of Pareto candidates (by ordering).
    table: dict[frozenset[str], list[PlanNode]] = {}
    for r in relations:
        singles = [
            PlanNode(
                frozenset([r.name]), spec, 0.0, r.n_rows,
                f"scan {r.name} [{spec}]", r.unique_keys,
            )
            for spec in r.orderings
        ]
        if not singles:
            singles = [
                PlanNode(
                    frozenset([r.name]), None, 0.0, r.n_rows,
                    f"scan {r.name}", r.unique_keys,
                )
            ]
        table[frozenset([r.name])] = singles

    def edges_between(left: frozenset[str], right: frozenset[str]):
        for l in left:
            for r in right:
                if (l, r) in edge_map:
                    yield edge_map[(l, r)]

    def join_candidates(a: PlanNode, b: PlanNode, edge: JoinEdge):
        left_spec = SortSpec(edge.left_columns)
        right_spec = SortSpec(edge.right_columns)
        dist = min(
            by_name[edge.left].distinct_per_column,
            by_name[edge.right].distinct_per_column,
        )
        lcost, llabel = _enforcer_cost(
            a.ordering, left_spec, a.rows, dist, modification_allowed
        )
        rcost, rlabel = _enforcer_cost(
            b.ordering, right_spec, b.rows, dist, modification_allowed
        )
        out_rows = max(a.rows * b.rows * edge.selectivity, 1.0)
        merge_cost = a.rows + b.rows + out_rows
        cost = a.cost + b.cost + lcost + rcost + merge_cost
        description = (
            f"({a.description}) MJ[{llabel}/{rlabel}] ({b.description})"
        )

        # Uniqueness propagation: joining against a side unique on the
        # join columns keeps the other side's rows 1:1 in the output,
        # so its unique keys survive.
        left_unique = a.unique_on(edge.left_columns)
        right_unique = b.unique_on(edge.right_columns)
        unique: tuple[frozenset[str], ...] = ()
        if left_unique and right_unique:
            unique = a.unique_keys + b.unique_keys
        elif left_unique:
            unique = b.unique_keys
        elif right_unique:
            unique = a.unique_keys

        # Ordering propagation.  The merge output always sorts on the
        # join key; a unique side additionally preserves the other
        # side's FULL effective order — the interesting-ordering fact
        # that lets a later join modify rather than sort (hypothesis
        # 10 / the three-table enrollment example).
        effective_a = a.ordering if lcost == 0.0 and a.ordering else left_spec
        effective_b = b.ordering if rcost == 0.0 and b.ordering else right_spec
        orderings = {left_spec}
        if left_unique:
            orderings.add(effective_b)
        if right_unique:
            orderings.add(effective_a)
        out = a.relations | b.relations
        return [
            PlanNode(out, ordering, cost, out_rows, description, unique)
            for ordering in orderings
        ]

    names = [r.name for r in relations]
    n = len(names)
    all_sets = [frozenset(s) for s in _subsets(names) if s]
    all_sets.sort(key=len)
    for subset in all_sets:
        if len(subset) == 1:
            continue
        best: dict[SortSpec | None, PlanNode] = {}
        for left in _proper_subsets(subset):
            right = subset - left
            if left not in table or right not in table:
                continue
            for edge in edges_between(left, right):
                for a in table[left]:
                    for b in table[right]:
                        for cand in join_candidates(a, b, edge):
                            cur = best.get(cand.ordering)
                            if cur is None or cand.cost < cur.cost:
                                best[cand.ordering] = cand
        if best:
            # Prune: drop candidates dominated by a cheaper one whose
            # ordering satisfies theirs.
            table[subset] = _prune(list(best.values()))

    final = table.get(frozenset(names))
    if not final:
        raise ValueError("join graph is not connected")
    return min(final, key=lambda p: p.cost)


def _prune(candidates: list[PlanNode]) -> list[PlanNode]:
    kept: list[PlanNode] = []
    for cand in sorted(candidates, key=lambda p: p.cost):
        dominated = any(
            k.cost <= cand.cost
            and k.ordering is not None
            and cand.ordering is not None
            and k.ordering.satisfies(cand.ordering)
            for k in kept
        )
        if not dominated:
            kept.append(cand)
    return kept


def _subsets(items: list[str]):
    n = len(items)
    for mask in range(1 << n):
        yield {items[i] for i in range(n) if mask & (1 << i)}


def _proper_subsets(subset: frozenset[str]):
    items = sorted(subset)
    n = len(items)
    for mask in range(1, (1 << n) - 1):
        yield frozenset(items[i] for i in range(n) if mask & (1 << i))
