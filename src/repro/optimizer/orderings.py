"""Interesting orderings: satisfaction with constants and functional
dependencies.

Classic order-optimization technique (Selinger et al. 1979; Simmen et
al. 1996): before comparing a provided ordering against a required one,
both are *reduced* —

* columns bound to a constant (by an equality predicate) never affect
  order and are removed;
* a column functionally determined by the columns ordered before it
  adds no ordering information and is removed (e.g. a primary key
  earlier in the ordering determines everything after it).

After reduction, ``provided`` satisfies ``required`` iff the reduced
required spec is a prefix of the reduced provided spec — or the
provided columns that *do* appear make the remainder constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..model import SortColumn, SortSpec


@dataclass
class OrderingContext:
    """Constants and functional dependencies known for a stream.

    ``constants`` — column names bound by equality predicates.
    ``fds`` — pairs ``(determinants, dependents)``: the set of
    determinant columns functionally determines each dependent column.
    A key constraint over columns ``K`` on a table with columns ``C``
    is declared as ``(K, C - K)``.
    """

    constants: frozenset[str] = frozenset()
    fds: tuple[tuple[frozenset[str], frozenset[str]], ...] = ()

    @staticmethod
    def of(
        constants: Iterable[str] = (),
        fds: Iterable[tuple[Iterable[str], Iterable[str]]] = (),
    ) -> "OrderingContext":
        return OrderingContext(
            frozenset(constants),
            tuple((frozenset(d), frozenset(deps)) for d, deps in fds),
        )

    def closure(self, columns: frozenset[str]) -> frozenset[str]:
        """Attribute closure of ``columns`` (plus constants) under the
        functional dependencies."""
        known = set(columns) | set(self.constants)
        changed = True
        while changed:
            changed = False
            for determinants, dependents in self.fds:
                if determinants <= known and not dependents <= known:
                    known |= dependents
                    changed = True
        return frozenset(known)


def reduce_spec(spec: SortSpec, context: OrderingContext) -> SortSpec:
    """Drop constant and functionally-determined columns from a spec."""
    kept: list[SortColumn] = []
    prefix: set[str] = set()
    for col in spec:
        if col.name in context.constants:
            continue
        if col.name in context.closure(frozenset(prefix)):
            prefix.add(col.name)
            continue
        kept.append(col)
        prefix.add(col.name)
    return SortSpec(kept)


def satisfies_with_context(
    provided: SortSpec | None,
    required: SortSpec,
    context: OrderingContext | None = None,
) -> bool:
    """Does data ordered on ``provided`` meet ``required``?

    Reduction handles the cases a naive prefix test misses: required
    columns bound to constants, and required columns determined by the
    ordering already seen.
    """
    context = context if context is not None else OrderingContext()
    required_reduced = reduce_spec(required, context)
    if required_reduced.arity == 0:
        return True
    if provided is None:
        return False
    provided_reduced = reduce_spec(provided, context)
    if provided_reduced.satisfies(required_reduced):
        return True
    # Prefix plus closure: once the shared prefix's columns determine
    # every remaining required column, the order is satisfied.
    shared = provided_reduced.common_prefix_len(required_reduced)
    prefix_cols = frozenset(c.name for c in required_reduced[:shared])
    remaining = [c.name for c in required_reduced[shared:]]
    return all(name in context.closure(prefix_cols) for name in remaining)
