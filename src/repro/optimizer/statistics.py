"""Order statistics straight from offset-value codes.

A sorted table's codes encode, for free, the statistic the cost model
needs: the number of distinct values of *every* key prefix.  A row
starts a new distinct ``k``-prefix exactly when its offset is below
``k``, so one histogram of offsets answers all prefix lengths at once —
no column is ever read:

    distinct(prefix k) = #{rows with offset < k}

This replaces the square-root guesses in
:func:`repro.optimizer.planner.choose_enforcer` with exact numbers
whenever the input is at hand (or cheap samples of it).
"""

from __future__ import annotations

from dataclasses import dataclass
from ..model import Table
from .planner import EnforcerChoice, choose_enforcer
from ..model import SortSpec


@dataclass(frozen=True)
class OrderStatistics:
    """Distinct-prefix counts of a sorted input, per prefix length.

    ``distinct[k]`` is the number of distinct values of the first ``k``
    sort columns (``distinct[0] == min(1, n)`` by convention).
    """

    n_rows: int
    distinct: tuple[int, ...]

    @property
    def arity(self) -> int:
        return len(self.distinct) - 1

    def distinct_prefix(self, k: int) -> int:
        if not 0 <= k <= self.arity:
            raise ValueError(f"prefix length {k} outside [0, {self.arity}]")
        return self.distinct[k]

    def segments_for(self, prefix_len: int) -> int:
        """Segment count when segmenting on the first ``prefix_len``
        sort columns."""
        return self.distinct_prefix(prefix_len)

    def runs_for(self, prefix_len: int, infix_len: int) -> int:
        """Pre-existing run count for the given decomposition."""
        return self.distinct_prefix(min(prefix_len + infix_len, self.arity))

    def average_segment_rows(self, prefix_len: int) -> float:
        return self.n_rows / max(self.segments_for(prefix_len), 1)

    def describe(self) -> str:
        parts = ", ".join(
            f"|prefix {k}|={d:,}" for k, d in enumerate(self.distinct) if k
        )
        return f"{self.n_rows:,} rows: {parts}"


def collect_order_statistics(table: Table) -> OrderStatistics:
    """One pass over the codes; zero column accesses."""
    if table.sort_spec is None:
        raise ValueError("statistics need a declared sort order")
    table.with_ovcs()
    arity = table.sort_spec.arity
    n = len(table.rows)
    histogram = [0] * (arity + 1)
    for offset, _value in table.ovcs:
        histogram[min(offset, arity)] += 1
    # distinct(k) = rows with offset < k; cumulative sum of histogram.
    distinct = [min(n, 1)]
    running = 0
    for k in range(arity):
        running += histogram[k]
        distinct.append(running)
    return OrderStatistics(n, tuple(distinct))


def choose_enforcer_with_statistics(
    table: Table,
    required: SortSpec,
    memory_capacity: int = 1 << 20,
    fan_in: int = 128,
) -> EnforcerChoice:
    """Enforcer choice fed by exact code-derived statistics."""
    from ..core.analysis import analyze_order_modification

    stats = collect_order_statistics(table)
    plan = analyze_order_modification(table.sort_spec, required)
    n_segments = (
        stats.segments_for(plan.prefix_len) if plan.prefix_len else 1
    )
    n_runs = stats.runs_for(plan.prefix_len, plan.infix_len)
    return choose_enforcer(
        table.sort_spec,
        required,
        len(table),
        n_segments=max(n_segments, 1),
        n_runs=max(n_runs, 1),
        memory_capacity=memory_capacity,
        fan_in=fan_in,
    )
