"""Physical database design with modifiable sort orders.

The paper's closing argument: "any many-to-many relationship can
support efficient join queries with fewer copies and fewer indexes if
case 3 in Table 1 is supported".  Traditionally, every required sort
order of a table demands its own index (or a sort at query time); with
order modification, one index *covers* every order reachable from it
cheaply — e.g. ``(course, student)`` covers ``(student, course)``.

:func:`design_indexes` chooses a small set of indexes for a workload of
required orderings: each candidate index covers the orderings it can
produce below a cost threshold (relative to a full sort), and a greedy
weighted set cover picks the cheapest index set.  This is deliberately
optimizer-grade machinery, not a full design tool — enough to quantify
the paper's "fewer copies and fewer indexes" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.analysis import Strategy, analyze_order_modification
from ..core.cost import CostModel
from ..model import SortSpec


@dataclass(frozen=True)
class RequiredOrdering:
    """One workload demand: an ordering and how often it is needed."""

    spec: SortSpec
    frequency: float = 1.0


@dataclass
class Coverage:
    """How one index serves one required ordering."""

    index: SortSpec
    required: SortSpec
    strategy: Strategy
    cost: float  # estimated row comparisons per execution

    @property
    def free(self) -> bool:
        return self.strategy is Strategy.NOOP


@dataclass
class DesignResult:
    chosen: list[SortSpec]
    assignments: dict[SortSpec, Coverage]
    total_query_cost: float
    index_cost: float

    def describe(self) -> str:
        lines = [f"indexes chosen: {len(self.chosen)}"]
        for idx in self.chosen:
            lines.append(f"  index on {idx}")
        for spec, cov in sorted(
            self.assignments.items(), key=lambda kv: repr(kv[0])
        ):
            lines.append(
                f"  {spec}  <-  {cov.index}  via {cov.strategy.value}"
                f" (cost {cov.cost:,.0f})"
            )
        return "\n".join(lines)


def coverage_cost(
    index: SortSpec,
    required: SortSpec,
    n_rows: int,
    distinct_per_column: float = 64.0,
) -> Coverage:
    """Estimated per-query cost of serving ``required`` from ``index``."""
    plan = analyze_order_modification(index, required)
    if plan.strategy is Strategy.NOOP:
        return Coverage(index, required, plan.strategy, 0.0)
    n_segments = max(
        1, int(min(distinct_per_column ** max(plan.prefix_len, 0), n_rows))
    )
    n_runs = max(
        n_segments,
        int(
            min(
                distinct_per_column
                ** (plan.prefix_len + max(plan.infix_len, 1)),
                n_rows,
            )
        ),
    )
    model = CostModel(n_rows, n_segments, n_runs)
    estimate = model.estimate(plan.strategy)
    return Coverage(index, required, plan.strategy, estimate.total)


def design_indexes(
    required: Iterable[RequiredOrdering | SortSpec],
    candidates: Sequence[SortSpec] | None = None,
    n_rows: int = 1 << 20,
    maintenance_cost: float | None = None,
    modification_allowed: bool = True,
) -> DesignResult:
    """Pick indexes covering every required ordering.

    ``candidates`` defaults to one index per required ordering (the
    traditional design's candidate set).  ``maintenance_cost`` is the
    charge per chosen index (defaults to the cost of building it:
    ``n_rows * log2(n_rows)``).  With ``modification_allowed=False``
    an index only covers orderings it satisfies outright (case 0) —
    the traditional design, for comparison.
    """
    demands: list[RequiredOrdering] = [
        d if isinstance(d, RequiredOrdering) else RequiredOrdering(d)
        for d in required
    ]
    if not demands:
        return DesignResult([], {}, 0.0, 0.0)
    if candidates is None:
        seen = set()
        candidates = []
        for d in demands:
            if d.spec not in seen:
                seen.add(d.spec)
                candidates.append(d.spec)
    if maintenance_cost is None:
        import math

        maintenance_cost = n_rows * math.log2(max(n_rows, 2))

    # Coverage matrix.
    coverages: dict[tuple[int, int], Coverage] = {}
    for i, cand in enumerate(candidates):
        for j, demand in enumerate(demands):
            cov = coverage_cost(cand, demand.spec, n_rows)
            if not modification_allowed and not cov.free:
                continue
            if cov.strategy is Strategy.FULL_SORT:
                continue  # no better than having no index at all
            coverages[(i, j)] = cov

    # Greedy weighted set cover: repeatedly pick the index with the best
    # (maintenance + query cost) per newly covered demand.
    uncovered = set(range(len(demands)))
    chosen: list[int] = []
    assignment: dict[int, Coverage] = {}
    while uncovered:
        best = None
        for i, cand in enumerate(candidates):
            covered = {
                j: coverages[(i, j)]
                for j in uncovered
                if (i, j) in coverages
            }
            if not covered:
                continue
            cost = maintenance_cost + sum(
                cov.cost * demands[j].frequency for j, cov in covered.items()
            )
            score = cost / len(covered)
            if best is None or score < best[0]:
                best = (score, i, covered)
        if best is None:
            missing = [demands[j].spec for j in sorted(uncovered)]
            raise ValueError(
                f"no candidate index can serve {missing}; add candidates"
            )
        _score, i, covered = best
        chosen.append(i)
        for j, cov in covered.items():
            assignment[j] = cov
        uncovered -= set(covered)

    total_query = sum(
        assignment[j].cost * demands[j].frequency for j in range(len(demands))
    )
    return DesignResult(
        [candidates[i] for i in chosen],
        {demands[j].spec: cov for j, cov in assignment.items()},
        total_query,
        maintenance_cost * len(chosen),
    )
