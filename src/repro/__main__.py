"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates the paper's measured artifacts as text tables:

* ``fig10`` — run time + column comparisons, A,B -> B,A (hypothesis 5);
* ``fig11`` — three methods across segment counts (hypothesis 9);
* ``table1`` — the eight prototype cases, auto strategy vs full sort;
* ``design`` — physical design + join planning with/without modification
  (hypothesis 10);
* ``bench`` — reference vs fast engine across the fig10/fig11 cells
  (``--json PATH`` writes the machine-readable trajectory artifact);
  with ``--workers 1,2,4`` it instead sweeps the parallel subsystem
  (serial vs worker pools) over the Figure 11 many-segment workload;
  with ``--cache`` it instead measures the order cache — cold sort vs
  modify-from-cached-order vs exact hit over the Table 1 order pairs —
  and fails if any cache-served cell is slower than the cold sort;
  with ``--serve`` it instead runs the duplicate-heavy closed-loop
  serving benchmark (16 threads over 4 orders by default) and fails
  unless duplicates coalesced, executions < requests, and every
  response matched serial uncached execution bit for bit;
* ``trace`` — run one Table 1 case under the span tracer and metrics
  registry (``--case N``, ``--trace-workers W``), write the trace
  artifact (Chrome trace-event JSON by default, JSON-lines for
  ``*.jsonl`` paths), validate it, and print the stitched span tree
  plus Prometheus-format metrics;
* ``serve`` — run the live telemetry endpoint (``--telemetry-port P``;
  ``/metrics``, ``/healthz``, ``/varz``) as a standalone process:
  ``--warm`` runs one small modify first so ``/metrics`` has non-zero
  series, ``--duration S`` exits after S seconds (default: serve until
  interrupted); ``--load`` instead drives an
  :class:`~repro.serve.OrderService` with the closed-loop
  duplicate-heavy mix (``--load-threads`` / ``--load-requests`` /
  ``--load-orders``) while telemetry is live, prints the coalescing
  report, and exits non-zero if the service failed to share work;
* ``all`` — everything above except ``bench``, ``trace`` and ``serve``.

Both bench modes verify bit-identical rows and codes in every cell and
exit non-zero on any fidelity failure, so CI smoke runs gate
correctness, not just completion.

Options: ``--rows 2**N`` via ``--log2-rows N`` (default 14), ``--seed``,
``--workers N[,N...]`` (bench sweep / parallel execution).
Observability: ``--trace FILE`` records spans for any experiment and
writes the artifact; ``--metrics`` embeds per-cell metric snapshots in
the bench artifacts (prints Prometheus text elsewhere);
``--telemetry-port P`` serves ``/metrics`` + ``/healthz`` + ``/varz``
live while any experiment runs (0 picks a free port); ``--profile
FILE`` samples the run's stacks and writes a collapsed-stack
(flamegraph) profile.

Resource governance (:mod:`repro.exec`): ``--memory-budget 64MiB``
caps the per-query buffered bytes (excess spills to disk, output
bit-identical), ``--spill-dir`` picks where spill files land,
``--shard-timeout-s``/``--shard-retries`` set the worker pool's fault
policy.  The order cache (:mod:`repro.cache`) is governed by
``--cache off|on|auto``, ``--cache-budget``, and ``--cache-ttl``; the
order service by ``--service-threads``, ``--service-queue-depth``,
and ``--service-deadline-ms``.  Every flag is named after the
:class:`~repro.exec.ExecutionConfig` field it sets, and the same
fields resolve with precedence **file < environment < flags**: a
``--config FILE`` JSON object is the base, ``REPRO_*`` variables
(``REPRO_MEMORY_BUDGET``, ``REPRO_SPILL_DIR``, ``REPRO_SHARD_TIMEOUT``,
``REPRO_SHARD_RETRIES``, ``REPRO_CACHE``, ``REPRO_CACHE_BUDGET``,
``REPRO_CACHE_TTL``, ``REPRO_SERVICE_THREADS``,
``REPRO_SERVICE_QUEUE_DEPTH``, ``REPRO_SERVICE_DEADLINE_MS``)
override it, and explicit command-line flags win.
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench.figures import (
    FIG10_LIST_LENGTHS,
    run_fig10_experiment,
    run_fig11_experiment,
)
from .bench.harness import format_table
from .core.modify import modify_sort_order
from .exec import ExecutionConfig
from .model import SortSpec
from .ovc.stats import ComparisonStats
from .workloads.generators import random_sorted_table
from .model import Schema


def _exec_config(args, workers: int | str | None = None) -> ExecutionConfig:
    """The run's ExecutionConfig.

    Precedence (lowest to highest): ``--config FILE`` values, then
    ``REPRO_*`` environment variables, then explicit flags — each flag
    is named after the config field it sets (``--memory-budget`` ->
    ``memory_budget``, ``--shard-timeout-s`` -> ``shard_timeout_s``,
    ``--service-threads`` -> ``service_threads``, ...).
    """
    base = (
        ExecutionConfig.from_file(args.config)
        if getattr(args, "config", None) is not None
        else None
    )
    cfg = ExecutionConfig.from_env(base=base)
    overrides: dict = {}
    if workers is not None:
        overrides["workers"] = workers
    for field in (
        "memory_budget", "spill_dir", "shard_timeout_s", "shard_retries",
        "cache", "cache_budget", "cache_ttl", "service_threads",
        "service_queue_depth", "service_deadline_ms", "plan_window_ms",
    ):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    return cfg.with_(**overrides) if overrides else cfg


def _fig10(n_rows: int, seed: int) -> None:
    results = run_fig10_experiment(n_rows, FIG10_LIST_LENGTHS, seed=seed)
    print(
        format_table(
            [r.as_row() for r in results],
            f"Figure 10: A,B -> B,A with {n_rows:,} rows "
            "(run time and comparison counts)",
        )
    )


def _fig11(n_rows: int, seed: int) -> None:
    results = run_fig11_experiment(n_rows, seed=seed)
    print(
        format_table(
            [r.as_row() for r in results],
            f"Figure 11: A,B,C -> A,C,B with {n_rows:,} rows, "
            "three methods across segment counts",
        )
    )


_TABLE1 = {
    0: (("A", "B"), ("A",)),
    1: (("A",), ("A", "B")),
    2: (("A", "B"), ("B",)),
    3: (("A", "B"), ("B", "A")),
    4: (("A", "B", "C"), ("A", "C")),
    5: (("A", "B", "C"), ("A", "C", "B")),
    6: (("A", "B", "C", "D"), ("A", "C", "D")),
    7: (("A", "B", "C", "D"), ("A", "C", "B", "D")),
}


def _table1(n_rows: int, seed: int, cfg: ExecutionConfig | None = None) -> None:
    schema = Schema.of("A", "B", "C", "D")
    domains = {"A": 32, "B": 64, "C": 256, "D": 8}
    rows_out = []
    for case, (inp, out) in _TABLE1.items():
        table = random_sorted_table(
            schema,
            SortSpec(inp),
            n_rows,
            domains=[domains[c] for c in schema.columns],
            seed=seed,
        )
        cells = {"case": case, "from": ",".join(inp), "to": ",".join(out)}
        for method in ("auto", "full_sort"):
            stats = ComparisonStats()
            start = time.perf_counter()
            modify_sort_order(
                table, SortSpec(out), method=method, stats=stats, config=cfg
            )
            cells[f"{method}_s"] = round(time.perf_counter() - start, 4)
            cells[f"{method}_colcmp"] = stats.column_comparisons
        rows_out.append(cells)
    print(
        format_table(
            rows_out,
            f"Table 1 cases: exploiting the existing order vs full sort "
            f"({n_rows:,} rows)",
        )
    )


def _design(n_rows: int) -> None:
    from .optimizer.join_planning import JoinEdge, Relation, plan_joins
    from .optimizer.physical_design import design_indexes

    roster = SortSpec.of("course", "student")
    transcript = SortSpec.of("student", "course")
    rows_out = []
    for label, allowed in (("traditional", False), ("with modification", True)):
        result = design_indexes(
            [roster, transcript], n_rows=n_rows, modification_allowed=allowed
        )
        rows_out.append(
            {
                "design": label,
                "indexes": len(result.chosen),
                "index_cost": round(result.index_cost),
                "query_cost": round(result.total_query_cost),
            }
        )
    print(
        format_table(
            rows_out,
            f"Physical design for the enrollment workload ({n_rows:,} rows)",
        )
    )
    print()

    relations = [
        Relation(
            "students", max(n_rows // 20, 4), (SortSpec.of("s.student"),),
            unique_keys=(frozenset({"s.student"}),),
        ),
        Relation(
            "courses", max(n_rows // 400, 2), (SortSpec.of("c.course"),),
            unique_keys=(frozenset({"c.course"}),),
        ),
        Relation("enrollments", n_rows, (SortSpec.of("e.course", "e.student"),)),
    ]
    edges = [
        JoinEdge("students", "enrollments", ("s.student",), ("e.student",),
                 selectivity=20 / n_rows),
        JoinEdge("courses", "enrollments", ("c.course",), ("e.course",),
                 selectivity=400 / n_rows),
    ]
    rows_out = []
    for label, allowed in (("sorted-or-sort", False), ("with modification", True)):
        plan = plan_joins(relations, edges, modification_allowed=allowed)
        rows_out.append({"planner": label, "plan_cost": round(plan.cost)})
    print(
        format_table(
            rows_out,
            "Three-table join planning (students x enrollments x courses)",
        )
    )


def _bench(
    n_rows: int, seed: int, json_path: str | None,
    collect_metrics: bool = False,
) -> int:
    from .bench.trajectory import run_trajectory, write_trajectory

    record = run_trajectory(n_rows, seed=seed, collect_metrics=collect_metrics)
    display = [
        {k: v for k, v in cell.items() if k != "metrics"}
        for cell in record["cells"]
    ]
    print(
        format_table(
            display,
            f"reference vs fast engines ({n_rows:,} rows; "
            f"min speedup {record['min_speedup']}x, "
            f"geomean {record['geomean_speedup']}x)",
        )
    )
    if json_path:
        write_trajectory(json_path, record)
        print(f"wrote {json_path}")
    if not record["fidelity_ok"]:
        print("FIDELITY FAILURE: fast engine diverged from reference")
        return 1
    return 0


def _bench_cache(n_rows: int, seed: int, json_path: str | None) -> int:
    from .bench.cache_bench import (
        check_cache_record,
        format_cache_cells,
        run_cache_trajectory,
        write_cache_trajectory,
    )

    record = run_cache_trajectory(n_rows, seed=seed)
    print(
        format_table(
            format_cache_cells(record),
            f"cold sort vs cached modify ({n_rows:,} rows; "
            f"{record['cells_served']}/{len(record['cells'])} cells "
            f"cache-served, min speedup {record['min_speedup']}x, "
            f"geomean {record['geomean_speedup']}x)",
        )
    )
    if json_path:
        write_cache_trajectory(json_path, record)
        print(f"wrote {json_path}")
    problems = check_cache_record(record)
    for problem in problems:
        print(f"CACHE BENCH FAILURE: {problem}")
    return 1 if problems else 0


def _bench_serve(
    n_rows: int, seed: int, json_path: str | None,
    cfg: ExecutionConfig, args,
) -> int:
    from .bench.serve_bench import (
        check_serve_record,
        format_serve_summary,
        run_serve_trajectory,
        write_serve_trajectory,
    )

    # The serving benchmark exercises the full sharing stack, so the
    # order cache defaults on unless the invocation said otherwise.
    config = cfg if cfg.cache != "off" else cfg.with_(cache="on")
    record = run_serve_trajectory(
        n_rows,
        seed=seed,
        threads=args.load_threads,
        requests_per_thread=args.load_requests,
        n_orders=args.load_orders,
        config=config,
    )
    print(
        format_table(
            format_serve_summary(record),
            f"order service, duplicate-heavy closed loop ({n_rows:,} rows; "
            f"{record['executions']} executions for {record['requests']} "
            f"requests, p99 {record['latency_ms']['p99']}ms)",
        )
    )
    if json_path:
        write_serve_trajectory(json_path, record)
        print(f"wrote {json_path}")
    problems = check_serve_record(record)
    for problem in problems:
        print(f"SERVE BENCH FAILURE: {problem}")
    return 1 if problems else 0


def _bench_plan(
    n_rows: int, seed: int, json_path: str | None, cfg: ExecutionConfig,
) -> int:
    from .bench.plan_bench import (
        check_plan_record,
        format_plan_summary,
        run_plan_trajectory,
        write_plan_trajectory,
    )

    # The planner's win is sharing across the batch itself; the cache
    # stays out of the measurement unless the invocation asked for it.
    record = run_plan_trajectory(n_rows, seed=seed, config=cfg)
    print(
        format_table(
            format_plan_summary(record),
            f"batched derivation vs independent execution "
            f"({n_rows:,} rows; geomean {record['geomean_speedup']}x, "
            f"min {record['min_speedup']}x)",
        )
    )
    if json_path:
        write_plan_trajectory(json_path, record)
        print(f"wrote {json_path}")
    problems = check_plan_record(record)
    for problem in problems:
        print(f"PLAN BENCH FAILURE: {problem}")
    return 1 if problems else 0


def _parse_workers(spec: str) -> list[int]:
    try:
        workers = [int(w) for w in spec.split(",") if w.strip()]
    except ValueError:
        raise SystemExit(
            f"--workers expects N or N,N,... (e.g. 1,2,4); got {spec!r}"
        )
    if not workers:
        raise SystemExit("--workers expects at least one worker count")
    return workers


def _bench_parallel(
    n_rows: int, seed: int, json_path: str | None, workers: list[int],
    collect_metrics: bool = False,
) -> int:
    from .bench.parallel_bench import (
        format_parallel_cells,
        run_parallel_trajectory,
        write_parallel_trajectory,
    )

    record = run_parallel_trajectory(
        n_rows, workers=workers, seed=seed, collect_metrics=collect_metrics
    )
    print(
        format_table(
            format_parallel_cells(record),
            f"serial vs parallel workers ({n_rows:,} rows; "
            f"{record['cpu_count']} cpus; "
            f"best speedup {record['best_speedup']}x)",
        )
    )
    if json_path:
        write_parallel_trajectory(json_path, record)
        print(f"wrote {json_path}")
    if not record["fidelity_ok"]:
        print("FIDELITY FAILURE: parallel output diverged from serial")
        return 1
    return 0


def _write_trace_artifact(path: str, records: list[dict],
                          metrics: dict | None, meta: dict) -> int:
    """Write (and for Chrome traces validate) a span artifact."""
    from .obs.exporters import (
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )

    if path.endswith(".jsonl"):
        write_jsonl(path, records, metrics=metrics, meta=meta)
        print(f"wrote {path} ({len(records)} spans, jsonl)")
        return 0
    obj = write_chrome_trace(path, records, metrics=metrics)
    errors = validate_chrome_trace(obj)
    pids = {r["pid"] for r in records}
    print(
        f"wrote {path} ({len(records)} spans from "
        f"{len(pids)} process(es), chrome trace)"
    )
    if errors:
        for err in errors:
            print(f"INVALID TRACE: {err}")
        return 1
    return 0


def _trace(
    case: int, n_rows: int, seed: int, workers: int, out: str,
    cfg: ExecutionConfig | None = None,
) -> int:
    """Trace one Table 1 case end to end and report the timeline."""
    from .obs import METRICS, TRACER
    from .obs.exporters import prometheus_text, render_tree

    if case not in _TABLE1:
        raise SystemExit(f"--case must be one of {sorted(_TABLE1)}; got {case}")
    inp, out_cols = _TABLE1[case]
    schema = Schema.of("A", "B", "C", "D")
    domains = {"A": 32, "B": 64, "C": 256, "D": 8}
    table = random_sorted_table(
        schema,
        SortSpec(inp),
        n_rows,
        domains=[domains[c] for c in schema.columns],
        seed=seed,
    )
    TRACER.enable(clear=True)
    METRICS.enable(clear=True)
    try:
        start = time.perf_counter()
        run_cfg = (cfg or ExecutionConfig.from_env()).with_(
            workers=workers if workers > 1 else None
        )
        modify_sort_order(table, SortSpec(out_cols), config=run_cfg)
        elapsed = time.perf_counter() - start
        records = TRACER.drain()
        snapshot = METRICS.as_dict()
    finally:
        TRACER.disable()
        TRACER.reset()
        METRICS.disable()
        METRICS.reset()

    print(
        f"case {case}: {','.join(inp)} -> {','.join(out_cols)}  "
        f"({n_rows:,} rows, workers={workers}, {elapsed:.4f}s)"
    )
    print()
    print(render_tree(records))
    print()
    print(prometheus_text(snapshot), end="")
    print()
    meta = {
        "case": case,
        "from": ",".join(inp),
        "to": ",".join(out_cols),
        "n_rows": n_rows,
        "workers": workers,
        "seed": seed,
    }
    return _write_trace_artifact(out, records, snapshot, meta)


def _warm_workload(cfg: ExecutionConfig) -> None:
    """One small Table 1 modify so a fresh telemetry process has
    non-zero ``modify.*``/``comparisons.*`` series to scrape."""
    from .obs import METRICS

    schema = Schema.of("A", "B", "C", "D")
    table = random_sorted_table(
        schema, SortSpec(("A", "B", "C")), 4096,
        domains=[32, 64, 256, 8], seed=0,
    )
    stats = ComparisonStats()
    modify_sort_order(table, SortSpec(("A", "C", "B")), stats=stats, config=cfg)
    METRICS.absorb_stats(stats)


def _serve(args, cfg: ExecutionConfig) -> int:
    """Run the telemetry endpoint as this process's purpose."""
    from .obs import METRICS
    from .obs.server import start_telemetry_server, stop_telemetry_server

    if not METRICS.enabled:
        METRICS.enable(clear=False)
    server = start_telemetry_server(
        port=args.telemetry_port or 0, config=cfg
    )
    print(
        f"telemetry serving on {server.url} (/metrics /healthz /varz)",
        flush=True,
    )
    if args.warm:
        _warm_workload(cfg)
        print("warmed: one Table 1 modify recorded", flush=True)
    try:
        if args.load:
            n_rows = 1 << args.log2_rows
            return _bench_serve(n_rows, args.seed, args.json, cfg, args)
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:  # pragma: no cover - interactive serve loop
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - operator Ctrl-C
        pass
    finally:
        stop_telemetry_server()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig10", "fig11", "table1", "design", "bench", "trace",
            "serve", "all",
        ],
    )
    parser.add_argument("--log2-rows", type=int, default=14)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--config",
        metavar="FILE",
        default=None,
        help="JSON file of ExecutionConfig fields; precedence is"
        " file < REPRO_* environment < explicit flags",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="with 'bench': also write the JSON trajectory artifact",
    )
    parser.add_argument(
        "--workers",
        metavar="N[,N...]",
        default=None,
        help="with 'bench': sweep the parallel subsystem at these worker"
        " counts (e.g. 1,2,4) instead of the reference-vs-fast cells",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record spans for the run and write the artifact"
        " (Chrome trace JSON, or JSON-lines for *.jsonl paths)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="with 'bench': embed per-cell metric snapshots in the"
        " artifact; otherwise print Prometheus-format metrics",
    )
    parser.add_argument(
        "--case",
        type=int,
        default=5,
        help="with 'trace': the Table 1 case to trace (default 5)",
    )
    parser.add_argument(
        "--trace-workers",
        type=int,
        default=2,
        help="with 'trace': worker processes for the traced run"
        " (default 2)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default="trace.json",
        help="with 'trace': artifact path (default trace.json)",
    )
    parser.add_argument(
        "--memory-budget",
        metavar="BYTES",
        default=None,
        help="per-query memory budget (e.g. 64MiB); buffered output"
        " beyond it spills to disk, output stays bit-identical",
    )
    parser.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="directory for budget-triggered spill files"
        " (default: system temp)",
    )
    parser.add_argument(
        "--shard-timeout-s",
        "--shard-timeout",  # legacy spelling, kept as an alias
        dest="shard_timeout_s",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-shard execution deadline for parallel runs; a shard"
        " past it is retried on a fresh worker",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        metavar="N",
        default=None,
        help="pooled attempts to retry a failed shard before it is"
        " quarantined to serial execution (default 1)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const="on",
        choices=["off", "on", "auto"],
        default=None,
        help="order-cache mode for the run; with 'bench', run the"
        " cold-sort vs cached-modify sweep over the Table 1 orders"
        " instead of the engine cells (bare --cache means on)",
    )
    parser.add_argument(
        "--cache-budget",
        metavar="BYTES",
        default=None,
        help="order-cache resident budget (e.g. 8MiB); cold entries"
        " spill to disk beyond it",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        metavar="SECONDS",
        default=None,
        help="order-cache entry lifetime (default: no expiry)",
    )
    parser.add_argument(
        "--service-threads",
        type=int,
        metavar="N",
        default=None,
        help="order-service scheduler threads (with 'serve --load' and"
        " 'bench --serve'; default 4)",
    )
    parser.add_argument(
        "--service-queue-depth",
        type=int,
        metavar="N",
        default=None,
        help="order-service admission-queue bound; a full queue rejects"
        " with ServiceOverloadError (default 64)",
    )
    parser.add_argument(
        "--service-deadline-ms",
        type=float,
        metavar="MS",
        default=None,
        help="order-service default per-request deadline"
        " (default: none)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="with 'bench': run the duplicate-heavy closed-loop serving"
        " benchmark (coalescing + latency) instead of the engine cells",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="with 'bench': run the batch derivation-planner benchmark"
        " (shared derivation tree vs independent execution) instead of"
        " the engine cells",
    )
    parser.add_argument(
        "--plan-window-ms",
        type=float,
        metavar="MS",
        default=None,
        help="order-service micro-batch window: drain the admission"
        " queue this long and plan same-source siblings as one shared"
        " derivation tree (default: off)",
    )
    parser.add_argument(
        "--load",
        action="store_true",
        help="with 'serve': drive the order service with a closed-loop"
        " duplicate-heavy load and print the report, instead of idling",
    )
    parser.add_argument(
        "--load-threads",
        type=int,
        metavar="N",
        default=16,
        help="closed-loop load: concurrent client threads (default 16)",
    )
    parser.add_argument(
        "--load-requests",
        type=int,
        metavar="N",
        default=8,
        help="closed-loop load: requests per thread (default 8)",
    )
    parser.add_argument(
        "--load-orders",
        type=int,
        metavar="N",
        default=4,
        help="closed-loop load: distinct target orders; threads spread"
        " over them round-robin, so N threads / N orders duplicates"
        " per wave (default 4)",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        metavar="PORT",
        default=None,
        help="serve /metrics, /healthz and /varz on this port while the"
        " run executes (0 picks a free port); required meaningfully by"
        " 'serve', optional alongside any experiment",
    )
    parser.add_argument(
        "--duration",
        type=float,
        metavar="SECONDS",
        default=None,
        help="with 'serve': exit after this many seconds"
        " (default: serve until interrupted)",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="with 'serve': run one small Table 1 modify first so"
        " /metrics exposes non-zero series immediately",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="sample the run's stacks (~200 Hz) and write a"
        " collapsed-stack profile to FILE (flamegraph.pl input)",
    )
    args = parser.parse_args(argv)
    n_rows = 1 << args.log2_rows
    cfg = _exec_config(args)

    if args.experiment == "serve":
        return _serve(args, cfg)

    server = None
    if args.telemetry_port is not None:
        from .obs import METRICS
        from .obs.server import start_telemetry_server

        if not METRICS.enabled:
            METRICS.enable(clear=False)
        server = start_telemetry_server(port=args.telemetry_port, config=cfg)
        print(
            f"telemetry serving on {server.url} (/metrics /healthz /varz)",
            flush=True,
        )
    profiler = None
    if args.profile is not None:
        from .obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        return _dispatch(args, n_rows, cfg)
    finally:
        if profiler is not None:
            profiler.stop()
            n = profiler.write_collapsed(args.profile)
            print(f"wrote {args.profile} ({n} samples, collapsed stacks)")
        if server is not None:
            from .obs.server import stop_telemetry_server

            stop_telemetry_server()


def _dispatch(args, n_rows: int, cfg: ExecutionConfig) -> int:
    """Run the chosen experiment; shared by every main() entry path."""
    if args.experiment == "trace":
        return _trace(
            args.case, n_rows, args.seed, args.trace_workers, args.out,
            cfg=cfg,
        )

    from .obs import METRICS, TRACER

    tracing = args.trace is not None
    if tracing:
        TRACER.enable(clear=True)
    plain_metrics = args.metrics and args.experiment != "bench"
    if plain_metrics:
        METRICS.enable(clear=True)

    if args.experiment == "bench":
        if args.serve:
            rc = _bench_serve(n_rows, args.seed, args.json, cfg, args)
        elif args.plan:
            rc = _bench_plan(n_rows, args.seed, args.json, cfg)
        elif args.cache is not None:
            rc = _bench_cache(n_rows, args.seed, args.json)
        elif args.workers:
            rc = _bench_parallel(
                n_rows, args.seed, args.json, _parse_workers(args.workers),
                collect_metrics=args.metrics,
            )
        else:
            rc = _bench(
                n_rows, args.seed, args.json, collect_metrics=args.metrics
            )
    else:
        rc = 0
        if args.experiment in ("fig10", "all"):
            _fig10(n_rows, args.seed)
            print()
        if args.experiment in ("fig11", "all"):
            _fig11(n_rows, args.seed)
            print()
        if args.experiment in ("table1", "all"):
            _table1(n_rows, args.seed, cfg=cfg)
            print()
        if args.experiment in ("design", "all"):
            _design(n_rows)

    if plain_metrics:
        from .obs.exporters import prometheus_text

        print()
        print(prometheus_text(METRICS), end="")
        METRICS.disable()
        METRICS.reset()
    if tracing:
        records = TRACER.drain()
        TRACER.disable()
        meta = {"experiment": args.experiment, "n_rows": n_rows,
                "seed": args.seed}
        rc = max(rc, _write_trace_artifact(args.trace, records, None, meta))
    return rc


if __name__ == "__main__":
    sys.exit(main())
