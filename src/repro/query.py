"""Fluent query facade over the pull-based engine.

A thin, lazy builder so downstream users compose plans without touching
operator classes directly::

    from repro.query import Query

    transcripts = (
        Query(students)
        .join(Query(enrollments).order_by("campus", "student"),
              on=[("campus", "campus"), ("student", "student")])
        .group_by(["campus", "student"], [("count", None)])
        .to_table()
    )

Everything stays order- and code-aware: ``order_by`` plans through
:func:`repro.core.modify.modify_sort_order` when the input order is
related, joins insert enforcers only when needed, and group-by /
distinct / pivot run in-stream off the codes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .engine.aggregate import Aggregate, Distinct, GroupBy
from .engine.merge_join import MergeJoin
from .engine.misc import Filter, Limit, Project, TopK
from .engine.operators import Operator
from .engine.pivot import Pivot
from .engine.scans import TableScan
from .engine.set_ops import Except, Intersect, UnionAll, UnionDistinct
from .engine.sort_op import Sort
from .exec.compat import resolve_config
from .exec.config import ExecutionConfig
from .model import SortSpec, Table
from .obs import LOG, SLOWLOG


class Query:
    """A lazily-built operator tree with a chainable interface."""

    def __init__(self, source: Table | Operator) -> None:
        if isinstance(source, Table):
            self._op: Operator = TableScan(source)
        elif isinstance(source, Operator):
            self._op = source
        else:
            raise TypeError(f"cannot query a {type(source).__name__}")

    # -------------------------------------------------------- plumbing

    @property
    def op(self) -> Operator:
        return self._op

    @property
    def schema(self):
        return self._op.schema

    @property
    def ordering(self) -> SortSpec | None:
        return self._op.ordering

    def _wrap(self, op: Operator) -> "Query":
        q = Query.__new__(Query)
        q._op = op
        return q

    # ------------------------------------------------------- operators

    def filter(self, predicate: Callable[[tuple], bool]) -> "Query":
        """Keep rows satisfying ``predicate`` (codes repaired for free)."""
        return self._wrap(Filter(self._op, predicate))

    def where(self, column: str, value) -> "Query":
        """Equality filter on one column."""
        pos = self._op.schema.index_of(column)
        return self.filter(lambda row: row[pos] == value)

    def select(self, *columns: str) -> "Query":
        """Project to the named columns."""
        return self._wrap(Project(self._op, list(columns)))

    def order_by(
        self,
        *columns: str,
        method: str = "auto",
        config: "ExecutionConfig | None" = None,
        **legacy,
    ) -> "Query":
        """Enforce a sort order, exploiting the input order if related.

        ``config`` (an :class:`~repro.exec.ExecutionConfig`) governs
        execution: ``engine="fast"`` runs the sort through the
        packed-code kernels (:mod:`repro.fastpath`) — same rows and
        codes, no comparison counts on the operator's stats;
        ``workers`` (an int or ``"auto"``) shards segment-parallel
        order modification across processes (:mod:`repro.parallel`)
        with the config's retry/timeout policy — output is
        bit-identical and small or unshardable jobs fall back to serial
        automatically; ``memory_budget`` spills buffered output to disk
        under pressure; ``cache="on"`` serves repeat orders over the
        same rows from the order cache (:mod:`repro.cache`) — exact
        repeats verbatim, related orders by modifying the best cached
        order — with the strategy shown per Sort node by
        :meth:`explain` / ``explain_analyze`` after execution.  The
        standalone ``engine=``/``workers=`` kwargs were removed after
        their deprecation release and now raise ``TypeError``.
        """
        cfg = resolve_config(config, "Query.order_by", **legacy)
        return self._wrap(
            Sort(self._op, SortSpec.of(*columns), method=method, config=cfg)
        )

    def order_by_many(
        self,
        orders: Sequence,
        *,
        config: "ExecutionConfig | None" = None,
        max_concurrency: int | None = None,
    ) -> list[Table]:
        """Materialize several sort orders of this query at once.

        ``orders`` is a sequence of targets (each a
        :class:`~repro.model.SortSpec`, a column-name string, or an
        iterable of columns).  This is a *terminal*: the plan runs
        once, and the batch derivation planner (:mod:`repro.plan`)
        derives each order from its cheapest parent — the
        materialized result, a cache-resident order when
        ``config.cache`` is on, or one of the other requested orders
        — instead of sorting from scratch N times.  Returns one
        :class:`~repro.model.Table` per target, in request order,
        each bit-identical (rows and codes) to what
        ``.order_by(...)`` would have produced; derivation counters
        merge into the plan's stats.
        """
        cfg = resolve_config(config, "Query.order_by_many")
        from .plan import derive_batch

        with LOG.query_scope():
            mark = SLOWLOG.mark()
            source = self._op.to_table()
            if not list(orders):
                self._observe(mark, "query.order_by_many", len(source.rows))
                return []
            result = derive_batch(
                source, orders, config=cfg, max_concurrency=max_concurrency
            )
            self._op.stats.merge(result.stats)
            if LOG.enabled:
                LOG.event(
                    "plan.order_by_many",
                    orders=len(result.specs),
                    sibling_edges=result.plan.sibling_edges(),
                    est_speedup=round(
                        min(result.plan.est_speedup, 1e6), 3
                    ),
                )
            self._observe(mark, "query.order_by_many", len(source.rows))
            return result.tables()

    def group_by(
        self,
        group_columns: Sequence[str],
        aggregates: Sequence[tuple] = (("count", None),),
    ) -> "Query":
        """In-stream grouping; sorts first when the order is missing."""
        child = self._op
        group_spec = SortSpec(group_columns)
        if child.ordering is None or not child.ordering.satisfies(group_spec):
            child = Sort(child, group_spec)
        return self._wrap(GroupBy(child, group_columns, aggregates))

    def aggregate(self, aggregates: Sequence[tuple]) -> "Query":
        """Whole-input aggregation to a single row."""
        return self._wrap(Aggregate(self._op, aggregates))

    def distinct(self, key_columns: Sequence[str] | None = None) -> "Query":
        child = self._op
        if key_columns is not None:
            spec = SortSpec(key_columns)
            if child.ordering is None or not child.ordering.satisfies(spec):
                child = Sort(child, spec)
        elif child.ordering is None:
            raise ValueError("distinct on unsorted input needs key columns")
        return self._wrap(Distinct(child, key_columns))

    def limit(self, n: int) -> "Query":
        return self._wrap(Limit(self._op, n))

    def top(self, k: int, *order_columns: str) -> "Query":
        return self._wrap(TopK(self._op, SortSpec.of(*order_columns), k))

    def pivot(
        self,
        group_columns: Sequence[str],
        pivot_column: str,
        value_column: str,
        pivot_values: Sequence,
        agg: str = "sum",
    ) -> "Query":
        child = self._op
        needed = SortSpec(tuple(group_columns) + (pivot_column,))
        if child.ordering is None or not child.ordering.satisfies(needed):
            child = Sort(child, needed)
        return self._wrap(
            Pivot(child, group_columns, pivot_column, value_column,
                  pivot_values, agg)
        )

    def join(
        self,
        other: "Query | Table",
        on: Sequence[tuple[str, str]],
        method: str = "auto",
    ) -> "Query":
        """Merge equi-join; both sides get order enforcers as needed."""
        right = other if isinstance(other, Query) else Query(other)
        left_keys = [l for l, _r in on]
        right_keys = [r for _l, r in on]
        left_op, right_op = self._op, right._op
        lspec, rspec = SortSpec(left_keys), SortSpec(right_keys)
        if left_op.ordering is None or not left_op.ordering.satisfies(lspec):
            left_op = Sort(left_op, lspec, method=method)
        if right_op.ordering is None or not right_op.ordering.satisfies(rspec):
            right_op = Sort(right_op, rspec, method=method)
        return self._wrap(MergeJoin(left_op, right_op, left_keys, right_keys))

    def union_all(self, other: "Query | Table") -> "Query":
        return self._wrap(UnionAll(self._op, _as_op(other)))

    def union(self, other: "Query | Table") -> "Query":
        return self._wrap(UnionDistinct(self._op, _as_op(other)))

    def intersect(self, other: "Query | Table") -> "Query":
        return self._wrap(Intersect(self._op, _as_op(other)))

    def except_(self, other: "Query | Table") -> "Query":
        return self._wrap(Except(self._op, _as_op(other)))

    # ------------------------------------------------------- terminals

    def rows(self) -> list[tuple]:
        with LOG.query_scope():
            mark = SLOWLOG.mark()
            result = self._op.rows()
            self._observe(mark, "query.rows", len(result))
            return result

    def to_table(self) -> Table:
        with LOG.query_scope():
            mark = SLOWLOG.mark()
            result = self._op.to_table()
            self._observe(mark, "query.to_table", len(result.rows))
            return result

    def _observe(self, mark, kind: str, n_rows: int) -> None:
        """Close the terminal's slowlog watch and log the execution.

        ``order_strategy`` reports every Sort node's resolved strategy
        (operators record it during iteration), joined in plan order.
        """
        if mark is None and not LOG.enabled:
            return
        strategies = _sort_strategies(self._op)
        strategy = ",".join(strategies) if strategies else None
        if LOG.enabled:
            LOG.event(kind, rows=n_rows, strategy=strategy)
        SLOWLOG.record(
            mark, kind, strategy=strategy, stats=self._op.stats, rows=n_rows
        )

    def explain(self) -> str:
        return self._op.explain()

    def __iter__(self):
        return iter(self._op)


def _sort_strategies(op: Operator) -> list[str]:
    """Every executed Sort's ``order_strategy``, depth-first plan order."""
    out: list[str] = []
    stack = [op]
    while stack:
        node = stack.pop()
        strategy = getattr(node, "order_strategy", None)
        if strategy is not None:
            out.append(strategy)
        stack.extend(reversed(node._children()))
    return out


def _as_op(other: "Query | Table") -> Operator:
    if isinstance(other, Query):
        return other._op
    if isinstance(other, Table):
        return TableScan(other)
    raise TypeError(f"cannot combine with {type(other).__name__}")
