"""Fast-path execution engine: packed codes, batch kernels, no counters.

The reference executors (:mod:`repro.core.segmented`,
:mod:`repro.core.merge_runs`) exist to *demonstrate* the paper's
comparison economics: every decision flows through a heap-allocated
:class:`~repro.sorting.tournament.Entry`, a closure-based comparator,
and a :class:`~repro.ovc.stats.ComparisonStats` counter.  That
instrumentation is the point of the reference path — and it buries the
paper's actual performance claim under per-row Python overhead.

This package is the other half of the bargain: the same algorithms with
every offset-value code folded into a **single Python int per row**
(:mod:`repro.fastpath.packed`), executed by **batch kernels** over
parallel lists (:mod:`repro.fastpath.kernels`) — stable ``sorted``
over packed keys for segment sorting, and for pre-existing runs the
same stable sort on the packed *restricted* key, which Timsort
executes as a galloping natural-run merge in C.  Outputs (rows *and*
offset-value codes)
are bit-identical to the reference engine; the differential suite in
``tests/fastpath/`` enforces that.

Select it via ``modify_sort_order(..., config=
ExecutionConfig(engine="fast"))``, or let ``engine="auto"`` pick it
whenever the caller did not ask for comparison counters.
"""

from .execute import fast_modify, fast_sort
from .packed import PackedCodec

__all__ = ["PackedCodec", "fast_modify", "fast_sort"]
