"""Packed offset-value codes: one Python int per row.

The paper's Figure 1 folds an offset-value code into a single machine
word — ``(arity - offset) * domain + value`` for the ascending encoding
(:func:`repro.ovc.codes.ascending_integer_code`) — but that needs a
bounded integer domain per column.  The runtime's canonical ascending
*tuple* code ``(arity - offset, value)`` lifted that restriction so
strings and descending columns work, at the price of a tuple allocation
and a polymorphic comparison per decision.

This codec restores the single-word form for arbitrary values: it
builds, once per executor call, a **rank dictionary** per key column —
each distinct normalized value mapped to its dense rank — and packs
codes and key ranges over ranks instead of raw values:

* ``pack_ovc((offset, value))`` is exactly the paper's ascending
  integer encoding with ``domain`` = the largest column cardinality:
  lower packed int == lower ascending tuple code.
* ``pack_range(start, stop)`` packs key columns ``[start, stop)`` of
  every row into one mixed-radix int per row; comparing two packed ints
  equals comparing the two normalized key slices lexicographically.

Rank dictionaries are built lazily per column, so kernels that only
touch the merge-key region never rank infix or tail columns.  Two
further shortcuts keep the per-call setup cheap:

* Whether a column varies at all is decided by an early-exit scan
  (:meth:`PackedCodec.varies`), not by building its rank table —
  constant columns are detected in O(n) equality checks and varying
  ones usually at the second row.
* Pure-``int`` columns pack as ``value - min`` (order-isomorphic to
  the dense rank, radix ``max - min + 1``), replacing the sort + dict
  build + per-row dict lookup with C-level ``min``/``max`` and a
  subtraction.  Python's unbounded ints absorb the sparser radix.

When every output key column is ascending, the codec can read key
values straight out of the source rows (``positions`` maps key column
-> row index), skipping the per-row key-tuple projection entirely;
normalization only matters for descending columns.
"""

from __future__ import annotations

from array import array
from typing import Sequence


def pack_codes(ovcs: Sequence[tuple]) -> tuple[array, array]:
    """Split paper-form codes into flat ``(offsets, values)`` word arrays.

    The shared-memory data plane (:mod:`repro.parallel.shm`) ships
    codes as two ``array('q')`` regions instead of a pickled tuple
    list.  Raises ``TypeError``/``OverflowError`` when a value is not a
    machine-word int (strings, ``None``, big ints) — callers fall back
    to the pickled protocol, which round-trips anything.
    """
    offsets = array("q", [o for o, _ in ovcs])
    values = array("q", [v for _, v in ovcs])
    return offsets, values


def unpack_codes(offsets, values) -> list[tuple]:
    """Inverse of :func:`pack_codes` over any two int sequences
    (typically ``memoryview`` slices of a shared-memory region)."""
    return list(zip(offsets, values))


class PackedCodec:
    """Per-column rank dictionaries over normalized key tuples.

    ``keys`` are the projected, direction-normalized sort-key tuples of
    all rows participating in one executor call (the comparison
    universe); ``arity`` is the sort key's column count.  Ranks are
    dense within that universe, which is all order preservation needs.

    ``positions`` (optional) lets ``keys`` be the source *rows*
    themselves: key column ``c`` is read as ``row[positions[c]]``.
    Only valid when no column needs direction normalization (all
    ascending).
    """

    __slots__ = ("_keys", "arity", "_pos", "_ranks", "_by_rank", "_varies")

    def __init__(
        self,
        keys: Sequence[tuple],
        arity: int,
        positions: Sequence[int] | None = None,
    ) -> None:
        self._keys = keys
        self.arity = arity
        self._pos = list(positions) if positions is not None else list(range(arity))
        self._ranks: list[dict | None] = [None] * arity
        self._by_rank: list[list | None] = [None] * arity
        self._varies: list[bool | None] = [None] * arity

    def column(self, column: int) -> list:
        """All rows' normalized values of key column ``column``."""
        pc = self._pos[column]
        return [k[pc] for k in self._keys]

    def ranks(self, column: int) -> dict:
        """value -> dense rank for ``column`` (built on first use)."""
        got = self._ranks[column]
        if got is None:
            distinct = sorted(set(self.column(column)))
            got = {v: r for r, v in enumerate(distinct)}
            self._ranks[column] = got
            self._by_rank[column] = distinct
            self._varies[column] = len(got) > 1
        return got

    def varies(self, column: int) -> bool:
        """Whether ``column`` has more than one distinct value.

        Early-exit equality scan: no rank table is built, so asking
        about a column the kernels never pack stays cheap.
        """
        got = self._varies[column]
        if got is None:
            keys = self._keys
            if not keys:
                got = False
            else:
                pc = self._pos[column]
                first = keys[0][pc]
                got = any(k[pc] != first for k in keys)
            self._varies[column] = got
        return got

    def radix(self, column: int) -> int:
        """Domain size of ``column`` in rank space (at least 1)."""
        return max(1, len(self.ranks(column)))

    @property
    def code_radix(self) -> int:
        """Uniform domain for single-code packing: the largest column
        cardinality plus one (so every rank fits strictly below it)."""
        if self.arity == 0:
            return 1
        return 1 + max(self.radix(c) for c in range(self.arity))

    def pack_ovc(self, ovc: tuple) -> int:
        """Paper-form ``(offset, value)`` -> single ascending int.

        Exact duplicates (``offset >= arity``) pack to 0, mirroring the
        paper's ascending integer encoding; otherwise the packed code is
        ``(arity - offset) * code_radix + rank(value)``.
        """
        offset, value = ovc
        if offset >= self.arity:
            return 0
        return (self.arity - offset) * self.code_radix + self.ranks(offset)[value]

    def unpack_ovc(self, packed: int) -> tuple:
        """Invert :meth:`pack_ovc` back to paper form."""
        if packed == 0:
            return (self.arity, 0)
        remaining, rank = divmod(packed, self.code_radix)
        column = self.arity - remaining
        self.ranks(column)  # ensure the inverse table exists
        return (column, self._by_rank[column][rank])

    def pack_range(self, start: int, stop: int) -> list[int]:
        """One mixed-radix int per row over key columns ``[start, stop)``.

        Works column-at-a-time so the per-row cost is a dict lookup (or
        an int subtraction) and a multiply-add inside a list
        comprehension.  Columns with a single distinct value contribute
        nothing to the packing (radix 1, rank 0) and are skipped
        outright; pure-``int`` columns pack by offset from their
        minimum instead of by rank.
        """
        packed = [0] * len(self._keys)
        for c in range(start, stop):
            if not self.varies(c):
                continue
            col = self.column(c)
            if set(map(type, col)) == {int}:
                mn = min(col)
                radix = max(col) - mn + 1
                packed = [p * radix + (v - mn) for p, v in zip(packed, col)]
            else:
                rc = self.ranks(c)
                radix = len(rc)
                packed = [p * radix + rc[v] for p, v in zip(packed, col)]
        return packed

    def varying_columns(self, start: int, stop: int) -> list[int]:
        """Key columns in ``[start, stop)`` with more than one distinct
        value — the only positions where two rows can ever differ."""
        return [c for c in range(start, stop) if self.varies(c)]
