"""Fast-path executor: strategy dispatch over the batch kernels.

:func:`fast_modify` is the uninstrumented twin of the strategy branches
in :func:`repro.core.modify.modify_sort_order`: same plan, same
segment boundaries (from code offsets alone), same output — rows *and*
offset-value codes bit-identical to the reference engine — but executed
by the kernels in :mod:`repro.fastpath.kernels` over packed codes.

The per-column rank dictionaries (:class:`~repro.fastpath.packed.
PackedCodec`) are built once per call and shared by every segment.
When every output key column is ascending, the codec and kernels read
key values straight out of the source rows; otherwise the keys are
projected and normalized up front (:func:`project_keys`).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Sequence

from ..core.analysis import ModificationPlan, Strategy
from ..core.classify import split_segments
from ..exec import memory
from ..model import SortSpec, Table
from ..obs import TRACER
from ..ovc.derive import project_ovcs
from ..sorting.merge import _key_projector
from .kernels import fast_merge_runs, fast_sort_segment
from .packed import PackedCodec


def project_keys(
    rows: Sequence[tuple],
    positions: Sequence[int],
    directions: Sequence[bool],
) -> list[tuple]:
    """All rows' normalized sort-key tuples, batch-projected.

    The all-ascending common case runs through ``operator.itemgetter``
    (no per-row Python frame); mixed directions fall back to the shared
    normalizing projector.
    """
    if all(directions):
        if len(positions) == 1:
            pos = positions[0]
            return [(row[pos],) for row in rows]
        get = itemgetter(*positions)
        return list(map(get, rows))
    project = _key_projector(positions, directions)
    return [project(row) for row in rows]


def _key_access(
    rows: Sequence[tuple],
    positions: Sequence[int],
    directions: Sequence[bool],
    arity: int,
) -> tuple:
    """``(keysrc, codec, colpos)`` for one executor call.

    All-ascending keys need no normalization, so the rows themselves
    serve as the key source (``colpos[d]`` maps key column ``d`` to its
    row index) and no per-row key tuples are built.  Any descending
    column forces the projected-tuple path (``colpos[d] == d``).
    """
    if all(directions):
        colpos = list(positions)
        return rows, PackedCodec(rows, arity, colpos), colpos
    keys = project_keys(rows, positions, directions)
    return keys, PackedCodec(keys, arity), list(range(arity))


def fast_modify(
    table: Table,
    new_spec: SortSpec,
    plan: ModificationPlan,
    strategy: Strategy,
    segments: list[tuple[int, int]] | None = None,
    sink=None,
) -> Table:
    """Execute ``strategy`` on ``table`` without instrumentation.

    The table must carry offset-value codes (the caller guarantees it;
    classification, segmenting, and code reconstruction all read them).
    ``segments`` supplies pre-computed segment boundaries (the
    dispatcher classifies once and shares them); when omitted they are
    derived here.  ``sink`` is an optional
    :class:`~repro.exec.buffers.GovernedSink` — completed per-segment
    outputs are absorbed (and spilled under budget pressure) instead of
    accumulating in one list.
    """
    rows = table.rows
    ovcs = table.ovcs
    n = len(rows)
    k_out = new_spec.arity

    if strategy is Strategy.NOOP:
        if sink is not None:
            sink.absorb_iter(list(rows), project_ovcs(ovcs, k_out))
            out_rows, out_ovcs = sink.materialize()
            return Table(table.schema, out_rows, new_spec, out_ovcs)
        return Table(table.schema, list(rows), new_spec, project_ovcs(ovcs, k_out))

    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []
    if n == 0:
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    with TRACER.span("fastpath.codec", rows=n):
        keysrc, codec, colpos = _key_access(
            rows, new_spec.positions(table.schema), new_spec.directions, k_out
        )
    pos0 = colpos[0]
    p = plan.prefix_len
    accountant = memory.current()

    def emit(run_segment, lo, hi, *extra):
        """Run one segment executor, routing output through the sink."""
        if sink is None:
            run_segment(lo, hi, out_rows, out_ovcs, *extra)
            return
        seg_rows: list[tuple] = []
        seg_ovcs: list[tuple] = []
        run_segment(lo, hi, seg_rows, seg_ovcs, *extra)
        sink.absorb(seg_rows, seg_ovcs)

    if strategy is Strategy.FULL_SORT:
        with TRACER.span("fastpath.pack", rows=n):
            packed = codec.pack_range(0, k_out)
        packed_bytes = _charge_packed(accountant, packed)
        varying = [(d, colpos[d]) for d in codec.varying_columns(0, k_out)]
        with TRACER.span("fastpath.sort", rows=n, segments=1):
            emit(
                lambda lo, hi, o_rows, o_ovcs: fast_sort_segment(
                    rows, ovcs, keysrc, packed, varying, pos0, lo, hi, 0,
                    k_out, o_rows, o_ovcs,
                ),
                0, n,
            )
    elif strategy is Strategy.SEGMENT_SORT:
        start = min(p, k_out)
        with TRACER.span("fastpath.pack", rows=n):
            packed = codec.pack_range(start, k_out)
        packed_bytes = _charge_packed(accountant, packed)
        varying = [(d, colpos[d]) for d in codec.varying_columns(start, k_out)]
        if segments is None:
            segments = split_segments(ovcs, p, n)
        with TRACER.span("fastpath.sort", rows=n) as sp:
            count = 0
            for lo, hi in segments:
                count += 1
                emit(
                    lambda lo, hi, o_rows, o_ovcs: fast_sort_segment(
                        rows, ovcs, keysrc, packed, varying, pos0, lo, hi,
                        p, k_out, o_rows, o_ovcs,
                    ),
                    lo, hi,
                )
            sp.set(segments=count)
    elif strategy is Strategy.MERGE_RUNS:
        # One pass over the whole input; runs are distinct (P, X)
        # combinations, so the restricted key starts at column 0.
        with TRACER.span("fastpath.pack", rows=n):
            packed = codec.pack_range(0, p + plan.merge_len)
        packed_bytes = _charge_packed(accountant, packed)
        varying = [(d, colpos[d]) for d in codec.varying_columns(0, k_out)]
        with TRACER.span("fastpath.merge", rows=n, segments=1):
            emit(
                lambda lo, hi, o_rows, o_ovcs: fast_merge_runs(
                    rows, ovcs, keysrc, packed, varying, pos0, lo, hi, plan,
                    o_rows, o_ovcs, respect_prefix=False,
                ),
                0, n,
            )
    else:  # COMBINED
        with TRACER.span("fastpath.pack", rows=n):
            packed = codec.pack_range(p, p + plan.merge_len)
        packed_bytes = _charge_packed(accountant, packed)
        varying = [(d, colpos[d]) for d in codec.varying_columns(p, k_out)]
        if segments is None:
            segments = split_segments(ovcs, p, n)
        with TRACER.span("fastpath.merge", rows=n) as sp:
            count = 0
            for lo, hi in segments:
                count += 1
                emit(
                    lambda lo, hi, o_rows, o_ovcs: fast_merge_runs(
                        rows, ovcs, keysrc, packed, varying, pos0, lo, hi,
                        plan, o_rows, o_ovcs, respect_prefix=True,
                    ),
                    lo, hi,
                )
            sp.set(segments=count)

    if accountant is not None:
        accountant.release("fastpath.packed", packed_bytes)
    if sink is not None:
        out_rows, out_ovcs = sink.materialize()
    return Table(table.schema, out_rows, new_spec, out_ovcs)


def fast_modify_perm(
    schema,
    rows: Sequence[tuple],
    ovcs: Sequence[tuple],
    new_spec: SortSpec,
    plan: ModificationPlan,
    strategy: Strategy,
    segments: Sequence[tuple[int, int]] | None = None,
) -> tuple[list[int], list[tuple]]:
    """Like :func:`fast_modify`, but emit a permutation, not rows.

    Returns ``(perm, out_ovcs)`` where ``perm[i]`` is the index into
    ``rows`` of the ``i``-th output row.  This is the shape the
    shared-memory data plane ships: a worker writes ``perm`` and the
    split codes into flat buffers and the driver materializes
    ``rows[perm[i]]`` lazily against its own row objects — no row ever
    crosses the process boundary.  Only the segment-parallel strategies
    are supported (the planner shards nothing else).
    """
    n = len(rows)
    k_out = new_spec.arity
    perm: list[int] = []
    out_ovcs: list[tuple] = []
    if n == 0:
        return perm, out_ovcs
    keysrc, codec, colpos = _key_access(
        rows, new_spec.positions(schema), new_spec.directions, k_out
    )
    pos0 = colpos[0]
    p = plan.prefix_len
    if segments is None:
        segments = split_segments(ovcs, p, n)

    if strategy is Strategy.SEGMENT_SORT:
        start = min(p, k_out)
        packed = codec.pack_range(start, k_out)
        varying = [(d, colpos[d]) for d in codec.varying_columns(start, k_out)]
        for lo, hi in segments:
            fast_sort_segment(
                rows, ovcs, keysrc, packed, varying, pos0, lo, hi, p,
                k_out, None, out_ovcs, out_perm=perm,
            )
    elif strategy is Strategy.COMBINED:
        packed = codec.pack_range(p, p + plan.merge_len)
        varying = [(d, colpos[d]) for d in codec.varying_columns(p, k_out)]
        for lo, hi in segments:
            fast_merge_runs(
                rows, ovcs, keysrc, packed, varying, pos0, lo, hi, plan,
                None, out_ovcs, respect_prefix=True, out_perm=perm,
            )
    else:
        raise ValueError(f"strategy {strategy} is not segment-shardable")
    return perm, out_ovcs


def _charge_packed(accountant, packed) -> int:
    """Charge a packed-code array to the active accountant (8B/code)."""
    if accountant is None:
        return 0
    n_bytes = 8 * len(packed)
    accountant.charge("fastpath.packed", n_bytes)
    return n_bytes


def fast_segment(
    seg_rows: Sequence[tuple],
    seg_ovcs: Sequence[tuple],
    plan: ModificationPlan,
    spec: SortSpec,
    positions: Sequence[int],
    strategy: Strategy,
) -> tuple[list[tuple], list[tuple]]:
    """Execute one buffered segment (the streaming operator's unit).

    Returns ``(out_rows, out_ovcs)``; the codec is built per segment,
    which is exactly this call's comparison universe.
    """
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []
    n = len(seg_rows)
    if n == 0:
        return out_rows, out_ovcs
    k_out = spec.arity
    keysrc, codec, colpos = _key_access(seg_rows, positions, spec.directions, k_out)
    pos0 = colpos[0]
    if strategy in (Strategy.MERGE_RUNS, Strategy.COMBINED):
        respect = strategy is Strategy.COMBINED
        start = plan.prefix_len if respect else 0
        packed = codec.pack_range(start, plan.prefix_len + plan.merge_len)
        varying = [(d, colpos[d]) for d in codec.varying_columns(start, k_out)]
        fast_merge_runs(
            seg_rows, seg_ovcs, keysrc, packed, varying, pos0, 0, n, plan,
            out_rows, out_ovcs, respect_prefix=respect,
        )
    else:
        p = plan.prefix_len if strategy is Strategy.SEGMENT_SORT else 0
        start = min(p, k_out)
        packed = codec.pack_range(start, k_out)
        varying = [(d, colpos[d]) for d in codec.varying_columns(start, k_out)]
        fast_sort_segment(
            seg_rows, seg_ovcs, keysrc, packed, varying, pos0, 0, n, p, k_out,
            out_rows, out_ovcs,
        )
    return out_rows, out_ovcs


def fast_sort(
    rows: Sequence[tuple],
    positions: Sequence[int],
    directions: Sequence[bool],
) -> tuple[list[tuple], list[tuple]]:
    """Stable full sort with fresh output codes — the fast twin of
    :func:`repro.sorting.internal.tournament_sort` with ``use_ovc``."""
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []
    n = len(rows)
    if n == 0:
        return out_rows, out_ovcs
    arity = len(positions)
    keysrc, codec, colpos = _key_access(rows, positions, directions, arity)
    packed = codec.pack_range(0, arity)
    varying = [(d, colpos[d]) for d in codec.varying_columns(0, arity)]
    fast_sort_segment(
        rows, None, keysrc, packed, varying, colpos[0], 0, n, 0, arity,
        out_rows, out_ovcs,
    )
    return out_rows, out_ovcs
