"""Batch kernels: segment sort and pre-existing-run merge, uncounted.

Both kernels operate on parallel lists — rows, paper-form input codes,
key values, packed key ints — with no ``Entry`` objects and no
per-comparison closures:

* :func:`fast_sort_segment` sorts one segment with ``sorted`` over the
  packed post-prefix key (stable, single-int comparisons).
* :func:`fast_merge_runs` stable-sorts the segment on the packed
  *restricted* key (output columns up to the merge-key boundary).
  That reproduces the reference tournament's order bit for bit: the
  reference resolves restricted ties by run index, runs appear in input
  order, and a stable sort preserves input order among equal keys — so
  (restricted key, run, position-in-run) is exactly what ``sorted``
  yields.  Better, CPython's Timsort *detects* the pre-existing runs as
  its natural runs and merges them with galloping in C: the paper's
  "merge pre-existing runs instead of sorting from scratch" maps onto
  the one primitive the interpreter executes at full speed.  (A
  ``heapq``-based k-way merge over the same packed codes gives the same
  bits; Timsort's galloping beats the heap's per-row tuple churn.)

Key values are read through ``keysrc`` + ``varying``: ``keysrc`` is
either the projected normalized key tuples or — in the all-ascending
case — the source rows themselves, and ``varying`` pairs each
non-constant key column ``d`` with its index ``pd`` into a ``keysrc``
entry (``pd == d`` for key tuples, ``pd == positions[d]`` for rows).
Reading rows directly skips the per-row key-tuple projection, the
largest fixed cost of small segments.

Output offset-value codes are reconstructed without the tournament:
rows that follow their own run predecessor reuse the paper's O(1) code
adjustments (offset drops by ``|X|`` for merge rows, positional mapping
for duplicate/tail rows — :mod:`repro.core.adjust`); only cross-run
adjacencies fall back to a resumed scan of the two key tuples, visiting
just the columns that vary at all in this input.  Either way the result
equals a fresh derivation against the output predecessor, which is what
the reference tournament emits (its popped winners' codes are always
relative to the previously popped winner).
"""

from __future__ import annotations

from typing import Sequence

from ..core.analysis import ModificationPlan
from ..obs import TRACER


def adjacent_ovc(
    prev_keys: tuple, keys: tuple, varying: Sequence[tuple], arity: int
) -> tuple:
    """Paper-form code of ``keys`` against ``prev_keys``.

    ``varying`` pairs each key column where any two rows of this call
    can differ with its index into the key entries; constant columns
    are skipped.
    """
    for d, pd in varying:
        if prev_keys[pd] != keys[pd]:
            return (d, keys[pd])
    return (arity, 0)


def fast_sort_segment(
    rows: Sequence[tuple],
    ovcs: Sequence[tuple] | None,
    keysrc: Sequence[tuple],
    packed: Sequence[int],
    varying: Sequence[tuple],
    pos0: int,
    lo: int,
    hi: int,
    prefix_len: int,
    output_arity: int,
    out_rows: list[tuple] | None,
    out_ovcs: list[tuple],
    out_perm: list[int] | None = None,
) -> None:
    """Sort rows ``[lo, hi)`` (one segment) on the desired order.

    ``packed`` holds each row's post-prefix output key folded into one
    int; ``keysrc``/``varying`` give access to the normalized key
    values (consulted only to reconstruct codes; ``pos0`` indexes key
    column 0).  Mirrors :func:`repro.core.segmented.sort_segment` with
    ``use_ovc=True``.

    With ``out_perm``, the kernel emits the segment's output as row
    *indices* into ``rows`` instead of materializing row objects into
    ``out_rows`` — the shared-memory data plane's output shape, where
    a worker ships a permutation and the driver materializes lazily.
    """
    if hi <= lo:
        return
    if TRACER.enabled:
        # Per-segment spans only when someone is watching: the fast
        # path's point is speed, so the disabled cost must stay at this
        # one attribute check.
        with TRACER.span("fastpath.sort_segment", rows=hi - lo):
            _fast_sort_segment(
                rows, ovcs, keysrc, packed, varying, pos0, lo, hi,
                prefix_len, output_arity, out_rows, out_ovcs, out_perm,
            )
        return
    _fast_sort_segment(
        rows, ovcs, keysrc, packed, varying, pos0, lo, hi,
        prefix_len, output_arity, out_rows, out_ovcs, out_perm,
    )


def _fast_sort_segment(
    rows, ovcs, keysrc, packed, varying, pos0, lo, hi,
    prefix_len, output_arity, out_rows, out_ovcs, out_perm=None,
) -> None:
    p = prefix_len
    k_out = output_arity

    if p >= k_out:
        # Shared prefix covers the whole desired key: all rows are
        # duplicates under the new order; copy through.
        if out_perm is not None:
            out_perm.extend(range(lo, hi))
        else:
            out_rows.extend(rows[lo:hi])
        out_ovcs.append(ovcs[lo])
        out_ovcs.extend([(k_out, 0)] * (hi - lo - 1))
        return

    order = sorted(range(lo, hi), key=packed.__getitem__)
    if out_perm is not None:
        out_perm.extend(order)
    else:
        out_rows.extend([rows[i] for i in order])

    first = order[0]
    # The segment's first output row inherits the saved segment-head
    # code; with no prefix it is coded against the imaginary lowest row.
    out_ovcs.append(ovcs[lo] if p > 0 else (0, keysrc[first][pos0]))
    append = out_ovcs.append
    duplicate = (k_out, 0)
    prev_packed = packed[first]
    prev_keys = keysrc[first]
    for i in order[1:]:
        pk = packed[i]
        if pk == prev_packed:
            # Equal packed suffix + shared segment prefix = duplicate.
            append(duplicate)
            continue
        keys = keysrc[i]
        for d, pd in varying:
            if prev_keys[pd] != keys[pd]:
                append((d, keys[pd]))
                break
        else:
            append(duplicate)
        prev_packed = pk
        prev_keys = keys


def fast_merge_runs(
    rows: Sequence[tuple],
    ovcs: Sequence[tuple],
    keysrc: Sequence[tuple],
    packed: Sequence[int],
    varying: Sequence[tuple],
    pos0: int,
    lo: int,
    hi: int,
    plan: ModificationPlan,
    out_rows: list[tuple] | None,
    out_ovcs: list[tuple],
    respect_prefix: bool = True,
    out_perm: list[int] | None = None,
) -> None:
    """Merge the pre-existing runs of rows ``[lo, hi)`` into the output.

    With ``out_perm``, output rows are emitted as indices into ``rows``
    (see :func:`fast_sort_segment`).

    ``packed`` holds each row's restricted key — output key columns
    ``[head_offset, |P|+|M|)`` — folded into one int; ``keysrc``/
    ``varying`` give access to the normalized key values of the
    non-constant output key columns at or beyond ``head_offset``
    (``pos0`` indexes key column 0).  Within the restricted region runs
    are sorted streams and run order equals input order, so the stable
    sort on packed keys reproduces the reference tournament's output
    exactly (see module docstring).  Mirrors
    :func:`repro.core.merge_runs.merge_preexisting_runs` with
    ``use_ovc=True``.
    """
    if hi <= lo:
        return
    if TRACER.enabled:
        with TRACER.span("fastpath.merge_segment", rows=hi - lo):
            _fast_merge_runs(
                rows, ovcs, keysrc, packed, varying, pos0, lo, hi, plan,
                out_rows, out_ovcs, respect_prefix, out_perm,
            )
        return
    _fast_merge_runs(
        rows, ovcs, keysrc, packed, varying, pos0, lo, hi, plan,
        out_rows, out_ovcs, respect_prefix, out_perm,
    )


def _fast_merge_runs(
    rows, ovcs, keysrc, packed, varying, pos0, lo, hi, plan,
    out_rows, out_ovcs, respect_prefix, out_perm=None,
) -> None:
    x = plan.infix_len
    k_out = plan.output_arity
    dropped = plan.infix_dropped
    head_offset = plan.prefix_len if respect_prefix else 0
    run_boundary = plan.prefix_len + x
    dup_boundary = run_boundary + plan.merge_len
    tail_boundary = dup_boundary + plan.tail_len

    # out_ovcs stays in lockstep with the emitted rows (or permutation
    # entries), so its length marks this segment's first output slot.
    first_out = len(out_ovcs)
    order = sorted(range(lo, hi), key=packed.__getitem__)
    if out_perm is not None:
        out_perm.extend(order)
    else:
        out_rows.extend([rows[i] for i in order])

    out_ovcs.append((0, keysrc[order[0]][pos0]))
    append = out_ovcs.append
    duplicate = (k_out, 0)
    prev = order[0]
    for i in order[1:]:
        offset, value = ovcs[i]
        if prev == i - 1 and offset >= run_boundary:
            # The output predecessor is this row's own run predecessor:
            # the old code adjusts without touching any column value.
            if offset < dup_boundary:
                # Merge row: the infix left its place between the
                # prefix and the merge keys; offset drops by |X|.
                append((offset - x, value))
            elif dropped or offset >= tail_boundary:
                append(duplicate)
            else:
                # Tail row: same key position in input and output.
                append((offset, value))
        else:
            prev_keys = keysrc[prev]
            keys = keysrc[i]
            for d, pd in varying:
                if prev_keys[pd] != keys[pd]:
                    append((d, keys[pd]))
                    break
            else:
                append(duplicate)
        prev = i

    if head_offset > 0:
        # The segment's first output row inherits the code saved from
        # the segment's first input row: both describe the same prefix
        # difference against the preceding segment.
        out_ovcs[first_out] = ovcs[lo]
