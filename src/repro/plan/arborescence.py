"""Minimum spanning arborescence (Chu-Liu/Edmonds).

The batch planner models one serving burst as a directed graph — nodes
are sort orders, edge ``u -> v`` is "produce order v by modifying a
materialization of order u", weighted by the cost model — plus a
virtual root with zero-cost edges to every already-materialized order.
The cheapest way to produce *all* requested orders is then exactly the
minimum spanning arborescence rooted at the virtual root: every node
gets one parent, total edge weight is minimal, and no cycles.

The graphs here are tiny (a burst of requests plus cache residents,
rarely more than a few dozen nodes), so the classic O(V*E)
Chu-Liu/Edmonds algorithm is the right tool: pick each node's cheapest
incoming edge, and while that choice contains a cycle, contract the
cycle into a supernode with reduced edge weights and recurse.
"""

from __future__ import annotations


def minimum_arborescence(
    n_nodes: int,
    root: int,
    edges: list[tuple[int, int, float]],
) -> dict[int, tuple[int, float]]:
    """Cheapest arborescence of ``edges`` rooted at ``root``.

    ``edges`` is a list of ``(u, v, weight)`` directed edges over nodes
    ``0 .. n_nodes - 1``.  Returns ``{v: (u, weight)}`` — the chosen
    parent and *original* weight for every node but the root.  Raises
    ``ValueError`` when some node has no path from the root (callers
    avoid this by always including a full-sort fallback edge).
    """
    if not 0 <= root < n_nodes:
        raise ValueError(f"root {root} out of range for {n_nodes} nodes")
    tagged = []
    for i, (u, v, w) in enumerate(edges):
        if not (0 <= u < n_nodes and 0 <= v < n_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if v != root and u != v:
            tagged.append((u, v, float(w), i))
    chosen = _solve(list(range(n_nodes)), root, tagged)
    out: dict[int, tuple[int, float]] = {}
    for e in chosen:
        u, v, _w, i = edges[e[3]][0], edges[e[3]][1], e[2], e[3]
        out[v] = (u, float(edges[i][2]))
    return out


def _solve(nodes: list[int], root: int, edges: list[tuple]) -> set:
    """Recursive Edmonds step; returns the subset of ``edges`` chosen.

    Each edge is ``(u, v, w, tag)`` in *this* level's node id space;
    ``tag`` is opaque (the original edge index at the top level, the
    parent-level edge tuple below it).  Contracted levels re-enter with
    each new edge's tag set to the edge it stands for, so unwinding one
    level of contraction is a constant-time lookup.
    """
    min_in: dict[int, tuple] = {}
    for e in edges:
        u, v, w = e[0], e[1], e[2]
        if v == root or u == v:
            continue
        best = min_in.get(v)
        if best is None or w < best[2]:
            min_in[v] = e
    missing = [v for v in nodes if v != root and v not in min_in]
    if missing:
        raise ValueError(f"nodes {missing} are unreachable from the root")

    cycle = _find_cycle(nodes, root, min_in)
    if cycle is None:
        return {min_in[v] for v in nodes if v != root}

    # Contract the cycle into one supernode; edges into it are reduced
    # by the cycle's own chosen in-edge weight (the classic reweighting
    # that makes the greedy choice optimal after expansion).
    cyc = set(cycle)
    super_id = max(nodes) + 1
    remap = {v: (super_id if v in cyc else v) for v in nodes}
    sub_nodes = [v for v in nodes if v not in cyc] + [super_id]
    sub_edges = []
    for e in edges:
        u, v, w = remap[e[0]], remap[e[1]], e[2]
        if u == v:
            continue
        if v == super_id:
            w = w - min_in[e[1]][2]
        sub_edges.append((u, v, w, e))
    chosen_sub = _solve(sub_nodes, remap[root], sub_edges)

    result = set()
    entering = None
    for f in chosen_sub:
        e = f[3]  # the level-local edge this contracted edge stands for
        result.add(e)
        if f[1] == super_id:
            entering = e
    # The cycle keeps every chosen internal edge except the one into
    # the node the entering edge now feeds.
    break_at = entering[1]
    for v in cyc:
        if v != break_at:
            result.add(min_in[v])
    return result


def _find_cycle(
    nodes: list[int], root: int, min_in: dict[int, tuple]
) -> list[int] | None:
    """A cycle in the chosen-parent graph, or ``None`` if it is a tree."""
    state: dict[int, int] = {}  # node -> walk id that first visited it
    for start in nodes:
        if start == root or start in state:
            continue
        cur = start
        while cur != root and cur not in state:
            state[cur] = start
            cur = min_in[cur][0]
        if cur != root and state.get(cur) == start:
            cycle = [cur]
            nxt = min_in[cur][0]
            while nxt != cur:
                cycle.append(nxt)
                nxt = min_in[nxt][0]
            return cycle
    return None
