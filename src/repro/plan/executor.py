"""Execute a :class:`~repro.plan.planner.DerivationPlan`.

Each requested node runs exactly the machinery an independent
``Sort(TableScan(source), spec)`` would have used for its chosen
parent — passthrough re-coding, ``modify_sort_order``, the tournament
sort, or the fastpath kernels — so rows and codes are bit-identical to
per-request execution by construction.  Results derived from a parent
other than the source are re-tie-broken against the live source's
arrival order (the same :func:`~repro.cache.dispatch._retiebreak`
contract the cache dispatcher relies on), which also makes sibling
derivation safe: within a full-key tie group the codes do not depend
on which member stands first.

Counters are per-node deltas describing the work actually performed:
a node derived straight from the source reports exactly what the solo
execution would have, a node derived from a cached or sibling order
reports its (cheaper) modification work — the same accounting the
cache's modify-from-cache serves already use.

Independent subtrees execute concurrently: nodes whose parents are
materialized start immediately, each completion releases its children.
A mispredicted parent (evicted cache entry, kernel type error) falls
back to deriving from the source, never failing the batch.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
from dataclasses import dataclass, field

from ..cache.dispatch import _names, _retiebreak, install_result
from ..cache.fingerprint import fingerprint_table
from ..core.modify import modify_sort_order
from ..exec.config import ExecutionConfig
from ..model import SortSpec, Table
from ..obs import LOG, METRICS
from ..ovc.stats import ComparisonStats
from ..sorting.internal import tournament_sort
from .planner import DerivationPlan, plan_batch


@dataclass
class NodeResult:
    """One executed node: the order, its table, and its accounting."""

    index: int
    spec: SortSpec
    table: Table
    #: Same vocabulary as ``Sort.order_strategy`` plus
    #: ``plan-derive(<parent order>)`` for sibling-derived nodes.
    label: str
    stats_delta: ComparisonStats
    #: True when the planned parent was unusable and the node was
    #: re-derived from the source.
    fallback: bool = False


@dataclass
class BatchResult:
    """Everything a batch execution produced."""

    plan: DerivationPlan
    results: dict[int, NodeResult]
    #: The request list as given (duplicates preserved).
    specs: list[SortSpec]
    #: Merged counters across every executed node.
    stats: ComparisonStats = field(default_factory=ComparisonStats)

    def result_for(self, spec: SortSpec) -> NodeResult:
        return self.results[self.plan.spec_nodes[spec]]

    def tables(self) -> list[Table]:
        """Output tables in request order."""
        return [self.result_for(spec).table for spec in self.specs]

    @property
    def fallbacks(self) -> int:
        return sum(1 for r in self.results.values() if r.fallback)


def execute_plan(
    plan: DerivationPlan,
    source: Table,
    *,
    cache=None,
    fp=None,
    config: ExecutionConfig | None = None,
    max_concurrency: int | None = None,
) -> dict[int, NodeResult]:
    """Materialize every requested node of ``plan``; see module docs."""
    cfg = config if config is not None else ExecutionConfig.default()
    modify_cfg = cfg.with_(
        engine="fast" if cfg.engine == "fast" else "reference"
    )
    results: dict[int, NodeResult] = {}

    def _install(table: Table, delta, replayable: bool) -> None:
        if cache is not None and fp is not None:
            install_result(cache, fp, table.sort_spec, table, delta,
                           replayable=replayable)

    def _from_source(node, delta, fallback=False) -> NodeResult:
        spec = node.spec
        if fallback:
            delta.reset()
            if LOG.enabled:
                LOG.event(
                    "plan.fallback", order=_names(spec),
                    planned=node.strategy,
                )
        src_spec = source.sort_spec
        if src_spec is not None and src_spec.satisfies(spec):
            arity = spec.arity
            ovcs = None
            if source.ovcs is not None:
                ovcs = [
                    (arity, 0) if o[0] >= arity else o for o in source.ovcs
                ]
            table = Table(source.schema, list(source.rows), spec, ovcs)
            return NodeResult(node.index, spec, table, "passthrough",
                              delta, fallback)
        if src_spec is not None:
            result = modify_sort_order(
                source, spec, method="auto",
                use_ovc=source.ovcs is not None,
                stats=delta, config=modify_cfg,
            )
            label = f"modify({_names(src_spec)})"
            _install(result, delta, replayable=True)
            return NodeResult(node.index, spec, result, label,
                              delta, fallback)
        rows = list(source.rows)
        if cfg.engine == "fast":
            from ..fastpath.execute import fast_sort

            sorted_rows, ovcs = fast_sort(
                rows, spec.positions(source.schema), spec.directions
            )
        else:
            sorted_rows, ovcs = tournament_sort(
                rows, spec.positions(source.schema), delta,
                spec.directions, True,
            )
        table = Table(source.schema, sorted_rows, spec, ovcs)
        _install(table, delta, replayable=True)
        return NodeResult(node.index, spec, table, "full-sort",
                          delta, fallback)

    def _run(idx: int) -> NodeResult:
        node = plan.nodes[idx]
        spec = node.spec
        delta = ComparisonStats()
        parent = plan.nodes[node.parent]
        if parent.kind == "source":
            return _from_source(node, delta)
        if parent.kind == "cached" and parent.spec == spec:
            hit = cache.lookup(fp, spec) if cache is not None else None
            if hit is None:
                return _from_source(node, delta, fallback=True)
            delta.merge(hit.stats_delta)
            return NodeResult(idx, spec, hit.as_table(source.schema),
                              f"cache-hit({_names(spec)})", delta)
        if parent.kind == "cached":
            entry = cache.fetch(fp, parent.spec) if cache is not None else None
            if entry is None:
                return _from_source(node, delta, fallback=True)
            ptable = entry.as_table(source.schema)
            label = f"modify-from-cache({_names(parent.spec)})"
        else:
            ptable = results[node.parent].table
            label = f"plan-derive({_names(parent.spec)})"
        try:
            result = modify_sort_order(
                ptable, spec, method="auto",
                use_ovc=ptable.ovcs is not None,
                stats=delta, config=modify_cfg,
            )
        except (TypeError, IndexError):
            return _from_source(node, delta, fallback=True)
        rows, ovcs = result.rows, result.ovcs
        if ovcs is not None:
            rows, ovcs = _retiebreak(rows, ovcs, spec.arity, source.rows)
        table = Table(source.schema, rows, spec, ovcs)
        _install(table, delta, replayable=False)
        return NodeResult(idx, spec, table, label, delta)

    workers = (
        max_concurrency
        if max_concurrency is not None
        else min(4, os.cpu_count() or 1)
    )
    if workers <= 1 or len(plan.order) <= 1:
        for idx in plan.order:
            results[idx] = _run(idx)
        return results

    children: dict[int, list[int]] = {}
    ready: list[int] = []
    for idx in plan.order:
        parent = plan.nodes[idx].parent
        if plan.nodes[parent].requested:
            children.setdefault(parent, []).append(idx)
        else:
            ready.append(idx)
    with cf.ThreadPoolExecutor(max_workers=workers) as pool:
        pending = {pool.submit(_run, idx): idx for idx in ready}
        while pending:
            done, _ = cf.wait(pending, return_when=cf.FIRST_COMPLETED)
            for fut in done:
                idx = pending.pop(fut)
                results[idx] = fut.result()
                for child in children.get(idx, ()):  # parents release kids
                    pending[pool.submit(_run, child)] = child
    return results


def derive_batch(
    source: Table,
    orders,
    *,
    config: ExecutionConfig | None = None,
    max_concurrency: int | None = None,
) -> BatchResult:
    """Plan and execute a batch of target orders over ``source``.

    ``orders`` accepts the same shapes as ``Query.order_by`` targets:
    :class:`SortSpec`, a column-name string, or an iterable of columns.
    Returns a :class:`BatchResult`; per-order tables come back in
    request order from :meth:`BatchResult.tables`.
    """
    cfg = config if config is not None else ExecutionConfig.default()
    specs = [_coerce(o) for o in orders]
    result = BatchResult(
        plan=DerivationPlan([], 0, [], len(source.rows), 0.0, 0.0),
        results={}, specs=specs,
    )
    if not specs:
        return result

    cache = None
    fp = None
    if cfg.cache != "off":
        from ..cache import resolve_cache

        cache = resolve_cache(cfg)
    if cache is not None:
        fp = fingerprint_table(source)

    plan = plan_batch(
        source, specs, cache=cache, fingerprint=fp, config=cfg
    )
    if LOG.enabled:
        LOG.event(
            "plan.batch",
            orders=len(plan.order),
            nodes=len(plan.nodes),
            sibling_edges=plan.sibling_edges(),
            est_independent=round(plan.est_independent),
            est_planned=round(plan.est_planned),
            est_speedup=round(min(plan.est_speedup, 1e6), 3),
        )
    results = execute_plan(
        plan, source, cache=cache, fp=fp, config=cfg,
        max_concurrency=max_concurrency,
    )
    result.plan = plan
    result.results = results
    for node_result in results.values():
        result.stats.merge(node_result.stats_delta)
    if METRICS.enabled:
        METRICS.counter("plan.batches").inc()
        METRICS.counter("plan.nodes").inc(len(results))
        METRICS.counter("plan.sibling_derivations").inc(
            plan.sibling_edges()
        )
        if result.fallbacks:
            METRICS.counter("plan.fallbacks").inc(result.fallbacks)
        METRICS.histogram("plan.batch_size").observe(len(plan.order))
        METRICS.histogram("plan.est_speedup").observe(
            min(plan.est_speedup, 1e6)
        )
    return result


def _coerce(order) -> SortSpec:
    if isinstance(order, SortSpec):
        return order
    if isinstance(order, str):
        return SortSpec.of(order)
    return SortSpec(list(order))
