"""Batch order-derivation planning (``repro.plan``).

The paper makes one sort order cheap to *modify* into a related one;
this package applies that result across a whole batch: given N target
orders over one source, it builds a minimum-cost derivation tree
(minimum spanning arborescence over cost-model edge weights, rooted at
whatever is already materialized — the source and any cache-resident
orders) and executes it, deriving each order from its cheapest parent
instead of from the source N times.  Entry points:

* :func:`derive_batch` — plan + execute in one call (what
  ``Query.order_by_many`` and the serving layer's micro-batching use);
* :func:`plan_batch` / :func:`execute_plan` — the two halves, for
  callers that want to inspect or EXPLAIN the plan first;
* :meth:`DerivationPlan.explain` — the chosen tree as text.

Every node's rows and codes are bit-identical to what an independent
``Sort`` of that order would produce; counters describe the derivation
work actually performed (exactly the solo counters when the node is
derived straight from the source).
"""

from .arborescence import minimum_arborescence
from .cardinality import CardinalityEstimator
from .executor import BatchResult, NodeResult, derive_batch, execute_plan
from .planner import DerivationPlan, PlanNode, plan_batch

__all__ = [
    "BatchResult",
    "CardinalityEstimator",
    "DerivationPlan",
    "NodeResult",
    "PlanNode",
    "derive_batch",
    "execute_plan",
    "minimum_arborescence",
    "plan_batch",
]
