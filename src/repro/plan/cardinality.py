"""Distinct-value estimation for edge costing.

The planner prices a candidate edge ``u -> v`` with
:class:`~repro.core.cost.CostModel`, which needs the number of
segments (distinct prefix values) and runs (distinct prefix+infix
values) the modification would see.  For materialized orders those
come exactly from the stored offset-count histogram; for a *planned*
parent no codes exist yet, so the planner falls back to this sampled
estimator.

The estimate is Chao1 over an evenly-strided sample: ``d = d_s +
f1^2 / (2 f2)`` where ``d_s`` is the sample's distinct count and
``f1``/``f2`` count values seen exactly once/twice.  When the sample
is the whole table the count is exact; when no doubletons exist the
singleton density is scaled linearly.  Results are clamped to
``[d_s, n]`` and memoized per column set — distinct counts do not
depend on column order or sort direction, so one probe serves every
edge that touches the same columns.
"""

from __future__ import annotations

from collections import Counter

from ..model import Schema, SortSpec


class CardinalityEstimator:
    """Sampled distinct-count estimates over one table's rows."""

    def __init__(
        self, rows: list, schema: Schema, max_sample: int = 8192
    ) -> None:
        self._rows = rows
        self._schema = schema
        n = len(rows)
        step = max(1, n // max_sample) if max_sample > 0 else 1
        self._sample = rows[::step]
        self._memo: dict[frozenset, int] = {}

    def distinct(self, names: tuple) -> int:
        """Estimated distinct count of the tuple ``names`` projects."""
        if not names:
            return 1
        key = frozenset(names)
        got = self._memo.get(key)
        if got is not None:
            return got
        n = len(self._rows)
        if n == 0:
            self._memo[key] = 1
            return 1
        positions = SortSpec(list(names)).positions(self._schema)
        seen = Counter(
            tuple(row[p] for p in positions) for row in self._sample
        )
        d_s = len(seen)
        s = len(self._sample)
        if s == n:
            d = float(d_s)
        else:
            f1 = sum(1 for c in seen.values() if c == 1)
            f2 = sum(1 for c in seen.values() if c == 2)
            if f2 > 0:
                d = d_s + (f1 * f1) / (2.0 * f2)
            elif f1 > 0:
                d = d_s * (n / s)
            else:
                d = float(d_s)
        est = max(d_s, min(int(round(d)), n))
        self._memo[key] = est
        return est
