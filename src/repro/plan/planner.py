"""Batch order-derivation planning.

Given N pending target orders over one source table, pick for every
target the cheapest parent to derive it from — the source itself, a
cache-resident order, or one of the *other* targets once it has been
produced — and return the result as a derivation tree.  Nodes are
orders, the weight of edge ``u -> v`` is the cost model's estimate of
producing ``v`` by modifying a materialization of ``u`` (vs. a full
sort), and the optimal assignment is the minimum spanning arborescence
rooted at a virtual node with zero-cost edges to everything already
materialized.

Edge pricing mirrors the cache dispatcher: exact offset-count
histograms when the parent is materialized with codes, the sampled
:class:`~repro.plan.cardinality.CardinalityEstimator` when the parent
is itself only planned, and the dispatcher's ``WIN_MARGIN`` applied as
a selection bias so near-ties resolve toward deriving straight from
the source (estimates are noisy; the source is the safe parent).
Reported costs are always the unbiased estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.analysis import Strategy, analyze_order_modification
from ..core.cost import CostModel, counts_to_structure
from ..cache.dispatch import WIN_MARGIN, _names
from ..cache.store import _offset_counts
from ..model import SortSpec, Table
from .arborescence import minimum_arborescence
from .cardinality import CardinalityEstimator


@dataclass
class PlanNode:
    """One order in the derivation graph."""

    index: int
    #: The node's sort order; ``None`` for an unordered source.
    spec: SortSpec | None
    #: ``"source"``, ``"cached"``, or ``"requested"``.
    kind: str
    #: True when this order was asked for (only these are executed).
    requested: bool
    #: Chosen parent node index (``None`` for materialized nodes).
    parent: int | None = None
    #: Unbiased cost estimate of the chosen edge into this node.
    edge_cost: float = 0.0
    #: Cost of deriving this node straight from the source.
    baseline_cost: float = 0.0
    #: Planned execution path: ``passthrough``, ``full-sort``,
    #: ``modify``, ``cache-hit``, ``modify-from-cache``, ``derive``.
    strategy: str = ""


@dataclass
class DerivationPlan:
    """The chosen arborescence plus its cost accounting."""

    nodes: list[PlanNode]
    source_index: int
    #: Requested node indexes in execution order (parents first).
    order: list[int]
    n_rows: int
    #: Estimated comparisons if every target derived from the source.
    est_independent: float
    #: Estimated comparisons along the chosen edges.
    est_planned: float
    #: Requested spec -> node index (specs are deduplicated).
    spec_nodes: dict[SortSpec, int] = field(default_factory=dict)

    @property
    def est_speedup(self) -> float:
        if self.est_planned > 0:
            return self.est_independent / self.est_planned
        return float("inf") if self.est_independent > 0 else 1.0

    def sibling_edges(self) -> int:
        """Edges whose parent is itself a requested (planned) order."""
        return sum(
            1
            for n in self.nodes
            if n.requested
            and n.parent is not None
            and self.nodes[n.parent].requested
        )

    def explain(self) -> str:
        """Human-readable tree of the chosen arborescence."""
        children: dict[int | None, list[int]] = {}
        for n in self.nodes:
            if n.requested:
                children.setdefault(n.parent, []).append(n.index)

        def label(n: PlanNode) -> str:
            if n.kind == "source":
                order = _names(n.spec) if n.spec is not None else "unordered"
                return f"source({order})"
            if n.kind == "cached":
                return f"cached({_names(n.spec)})"
            return (
                f"{_names(n.spec)}  [{n.strategy}]"
                f"  est={n.edge_cost:.0f} vs solo={n.baseline_cost:.0f}"
            )

        lines = [
            f"derivation plan: {sum(n.requested for n in self.nodes)}"
            f" order(s) over {self.n_rows} rows,"
            f" est {self.est_speedup:.2f}x vs independent"
        ]

        def walk(idx: int, prefix: str) -> None:
            kids = children.get(idx, [])
            for i, child in enumerate(kids):
                last = i == len(kids) - 1
                branch = "└─ " if last else "├─ "
                lines.append(prefix + branch + label(self.nodes[child]))
                walk(child, prefix + ("   " if last else "│  "))

        roots = [
            n.index
            for n in self.nodes
            if not n.requested and (n.index in children or n.kind == "source")
        ]
        for idx in roots:
            lines.append(label(self.nodes[idx]))
            walk(idx, "")
        return "\n".join(lines)


def plan_batch(
    source: Table,
    specs: list[SortSpec],
    *,
    cache=None,
    fingerprint=None,
    config=None,
) -> DerivationPlan:
    """Plan the cheapest derivation of ``specs`` from ``source``.

    ``cache``/``fingerprint`` (both optional) bring the cache's
    resident orders for this source in as candidate parents.  The
    returned plan's :attr:`~DerivationPlan.order` lists requested
    nodes parents-first, ready for :func:`~repro.plan.execute_plan`.
    """
    n = len(source.rows)
    deduped = list(dict.fromkeys(specs))

    nodes = [PlanNode(0, source.sort_spec, "source", False)]
    offset_counts: dict[int, tuple | None] = {0: None}
    if source.sort_spec is not None and source.ovcs is not None:
        offset_counts[0] = _offset_counts(source.ovcs, source.sort_spec.arity)
    if cache is not None and fingerprint is not None:
        for cand in cache.candidates(fingerprint):
            if source.sort_spec is not None and cand.spec == source.sort_spec:
                continue
            idx = len(nodes)
            nodes.append(PlanNode(idx, cand.spec, "cached", False))
            offset_counts[idx] = cand.offset_counts
    spec_nodes: dict[SortSpec, int] = {}
    for spec in deduped:
        idx = len(nodes)
        nodes.append(PlanNode(idx, spec, "requested", True))
        spec_nodes[spec] = idx

    estimator: list[CardinalityEstimator | None] = [None]

    def _distinct(names: tuple) -> int:
        if estimator[0] is None:
            estimator[0] = CardinalityEstimator(source.rows, source.schema)
        return estimator[0].distinct(names)

    def _pair_cost(u: int, child_spec: SortSpec) -> float:
        parent_spec = nodes[u].spec
        if parent_spec is None:
            return CostModel(n, 1, 1).full_sort().total
        mplan = analyze_order_modification(parent_spec, child_spec)
        if mplan.strategy is Strategy.NOOP:
            return 0.0
        counts = offset_counts.get(u)
        if counts is not None:
            segs, runs = counts_to_structure(
                counts, mplan.prefix_len, mplan.infix_len
            )
        else:
            names = mplan.input_spec.names
            segs = _distinct(names[: mplan.prefix_len])
            runs = max(
                segs, _distinct(names[: mplan.prefix_len + mplan.infix_len])
            )
        model = CostModel(n, segs, runs)
        if mplan.strategy is Strategy.FULL_SORT:
            return model.full_sort().total
        return model.modify_from(mplan).total

    root = len(nodes)
    edges: list[tuple[int, int, float]] = []
    true_cost: dict[tuple[int, int], float] = {}
    for node in nodes:
        if not node.requested:
            edges.append((root, node.index, 0.0))
    for node in nodes:
        if not node.requested:
            continue
        v = node.index
        for parent in nodes:
            u = parent.index
            if u == v:
                continue
            w = _pair_cost(u, node.spec)
            true_cost[(u, v)] = w
            # Bias selection toward the source parent on near-ties —
            # same philosophy as the dispatcher's WIN_MARGIN: a cached
            # or planned parent must *clearly* beat deriving from the
            # source before we stake the request's latency on it.
            edges.append((u, v, w if u == 0 else w / WIN_MARGIN))
        node.baseline_cost = true_cost[(0, v)]

    chosen = minimum_arborescence(len(nodes) + 1, root, edges)
    for node in nodes:
        if not node.requested:
            continue
        parent = chosen[node.index][0]
        node.parent = parent
        node.edge_cost = true_cost[(parent, node.index)]
        node.strategy = _strategy_label(nodes[parent], node)

    children: dict[int, list[int]] = {}
    ready: list[int] = []
    for node in nodes:
        if not node.requested:
            continue
        if nodes[node.parent].requested:
            children.setdefault(node.parent, []).append(node.index)
        else:
            ready.append(node.index)
    order: list[int] = []
    while ready:
        idx = ready.pop(0)
        order.append(idx)
        ready.extend(children.get(idx, []))

    return DerivationPlan(
        nodes=nodes,
        source_index=0,
        order=order,
        n_rows=n,
        est_independent=sum(x.baseline_cost for x in nodes if x.requested),
        est_planned=sum(x.edge_cost for x in nodes if x.requested),
        spec_nodes=spec_nodes,
    )


def _strategy_label(parent: PlanNode, node: PlanNode) -> str:
    if parent.kind == "source":
        if parent.spec is None:
            return "full-sort"
        if parent.spec.satisfies(node.spec):
            return "passthrough"
        return "modify"
    if parent.kind == "cached":
        if parent.spec == node.spec:
            return "cache-hit"
        return "modify-from-cache"
    return "derive"
