"""repro — reproduction of *Modifying an existing sort order with
offset-value codes* (Graefe, Kuhrt, Seeger; EDBT 2025).

Quick start::

    from repro import Schema, SortSpec, modify_sort_order
    from repro.workloads import random_sorted_table

    table = random_sorted_table(schema=Schema.of("A", "B", "C"),
                                sort_spec=SortSpec.of("A", "B", "C"),
                                n_rows=10_000, seed=42)
    result = modify_sort_order(table, SortSpec.of("A", "C", "B"))
    assert result.is_sorted()

Concurrent serving::

    from repro import ExecutionConfig, OrderService

    with OrderService(ExecutionConfig(cache="on")) as svc:
        resp = svc.order_by(table, "A", "C", "B")

**This namespace is the stable public API** — everything in
``__all__`` below follows the compatibility contract spelled out in
``docs/API.md`` (model types, the modification entry points, the
``Query``/``Sort`` operators, ``ExecutionConfig``, the order service
and its error types, and the order-cache controls).  Anything imported
from a submodule *not* re-exported here is internal and may change
without notice; the examples and docs import only public names, and a
test (``tests/serve/test_facade.py``) enforces that.
"""

from .model import Desc, Schema, SortColumn, SortSpec, Table
from .ovc.stats import ComparisonStats
from .core.analysis import ModificationPlan, Strategy, analyze_order_modification
from .core.modify import modify_sort_order
from .core.external_modify import modify_sort_order_external
from .exec import ExecutionConfig, RetryPolicy
from .cache import OrderCache, configure_cache, reset_cache
from .engine.sort_op import Sort
from .engine.modify_op import StreamingModify
from .parallel.api import parallel_modify, resolve_workers
from .query import Query
from .serve import (
    DeadlineExceededError,
    OrderResponse,
    OrderService,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from .trace import explain_analyze

__version__ = "1.1.0"

__all__ = [
    # model
    "Desc",
    "Schema",
    "SortColumn",
    "SortSpec",
    "Table",
    "ComparisonStats",
    # order modification
    "ModificationPlan",
    "Strategy",
    "analyze_order_modification",
    "modify_sort_order",
    "modify_sort_order_external",
    # execution
    "ExecutionConfig",
    "RetryPolicy",
    "parallel_modify",
    "resolve_workers",
    # query & operators
    "Query",
    "Sort",
    "StreamingModify",
    "explain_analyze",
    # order cache
    "OrderCache",
    "configure_cache",
    "reset_cache",
    # serving
    "OrderService",
    "OrderResponse",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "__version__",
]
