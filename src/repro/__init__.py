"""repro — reproduction of *Modifying an existing sort order with
offset-value codes* (Graefe, Kuhrt, Seeger; EDBT 2025).

Quick start::

    from repro import Schema, SortSpec, Table, modify_sort_order
    from repro.workloads import random_sorted_table

    table = random_sorted_table(schema=Schema.of("A", "B", "C"),
                                sort_spec=SortSpec.of("A", "B", "C"),
                                n_rows=10_000, seed=42)
    result = modify_sort_order(table, SortSpec.of("A", "C", "B"))
    assert result.is_sorted()

The top-level namespace re-exports the model types, the order
modification entry point, and the statistics container; subsystems live
in :mod:`repro.ovc`, :mod:`repro.sorting`, :mod:`repro.core`,
:mod:`repro.storage`, :mod:`repro.engine`, :mod:`repro.optimizer`,
:mod:`repro.workloads`, and :mod:`repro.bench`.
"""

from .model import Desc, Schema, SortColumn, SortSpec, Table
from .ovc.stats import ComparisonStats
from .core.analysis import ModificationPlan, Strategy, analyze_order_modification
from .core.modify import modify_sort_order
from .core.external_modify import modify_sort_order_external
from .exec import ExecutionConfig, RetryPolicy
from .parallel.api import parallel_modify, resolve_workers
from .query import Query
from .trace import explain_analyze

__version__ = "1.0.0"

__all__ = [
    "Desc",
    "Schema",
    "SortColumn",
    "SortSpec",
    "Table",
    "ComparisonStats",
    "ModificationPlan",
    "Strategy",
    "analyze_order_modification",
    "modify_sort_order",
    "modify_sort_order_external",
    "ExecutionConfig",
    "RetryPolicy",
    "parallel_modify",
    "resolve_workers",
    "Query",
    "explain_analyze",
    "__version__",
]
