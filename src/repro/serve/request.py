"""Request/response shapes of the order service.

An :class:`~repro.serve.OrderService` request is "enforce this sort
order on this table"; the response carries exactly what a direct
:class:`~repro.engine.sort_op.Sort` execution would have produced —
the sorted :class:`~repro.model.Table` (rows *and* offset-value
codes), the resolved order strategy, and the comparison counters —
plus serving metadata (was this request coalesced onto another
execution, how long did it wait).  Bit-identity with serial uncached
execution is the service's core contract; the serving tests assert it
field by field.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..model import SortSpec, Table
from ..ovc.stats import ComparisonStats


@dataclass
class OrderResponse:
    """One answered order request."""

    #: The sorted output (rows and offset-value codes), bit-identical
    #: to what a serial uncached execution would produce.
    table: Table
    #: The executed Sort's resolved strategy (``full-sort``,
    #: ``modify(...)``, ``cache-hit(...)``, ...).
    label: str | None
    #: The comparison counters of the (shared) execution, replayed
    #: per-waiter: every coalesced response reports the same counts a
    #: solo execution would have.
    stats: ComparisonStats
    #: True when this request rode on another request's execution.
    coalesced: bool
    #: Tenant the request was accounted to.
    tenant: str
    #: Submit-to-response wall-clock seconds for this request.
    latency_s: float


class Inflight:
    """One admitted execution and the waiters sharing it.

    Created by the service at admission, keyed in the in-flight
    registry by ``(source_key, sequence, spec)``.  The leader's
    execution fills :attr:`table` / :attr:`label` / :attr:`stats_delta`
    (or :attr:`error`) and sets :attr:`done`; every ticket then builds
    its own response from the shared result.  ``deadline_at`` is the
    *most generous* waiter deadline (``None`` once any waiter has no
    deadline): the scheduler skips execution only when nobody could
    still use the result.
    """

    __slots__ = (
        "key", "source", "spec", "tenant", "submitted_at", "deadline_at",
        "unbounded", "waiters", "nbytes", "done", "table", "label",
        "stats_delta", "error",
    )

    def __init__(
        self,
        key: tuple,
        source: Table,
        spec: SortSpec,
        tenant: str,
        submitted_at: float,
        deadline_at: float | None,
    ) -> None:
        self.key = key
        self.source = source
        self.spec = spec
        self.tenant = tenant
        self.submitted_at = submitted_at
        self.deadline_at = deadline_at
        self.unbounded = deadline_at is None
        self.waiters = 1
        #: Accounted queue/in-flight bytes (source rows + codes).
        self.nbytes = 0
        self.done = threading.Event()
        self.table: Table | None = None
        self.label: str | None = None
        self.stats_delta: ComparisonStats | None = None
        self.error: BaseException | None = None

    def add_waiter(self, deadline_at: float | None) -> None:
        """Attach one more request to this execution (registry lock held)."""
        self.waiters += 1
        if deadline_at is None:
            self.unbounded = True
            self.deadline_at = None
        elif not self.unbounded and (
            self.deadline_at is None or deadline_at > self.deadline_at
        ):
            self.deadline_at = deadline_at

    def expired(self, now: float) -> bool:
        """True when no waiter could still use a result produced now."""
        return not self.unbounded and (
            self.deadline_at is not None and now > self.deadline_at
        )
