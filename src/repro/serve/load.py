"""Closed-loop load driver for the order service.

Drives an :class:`~repro.serve.OrderService` with a duplicate-heavy
mix — ``threads`` worker threads, each bound to one of ``orders``
distinct target orders, all requesting the *same* source table — and
measures what the serving layer is for: with 16 threads spread over 4
orders, a perfect service runs one execution per order per wave and
coalesces the other three duplicates onto it.

The driver is closed-loop (each thread waits for its response before
issuing the next request), so offered load adapts to service speed and
the interesting ratio is **executions per request** rather than
throughput alone.  The report is a plain JSON-friendly dict; the bench
harness snapshots it into ``BENCH_serve.json`` and the CLI prints it
for ``serve --load``.
"""

from __future__ import annotations

import threading
import time

from ..model import SortSpec, Table
from .errors import DeadlineExceededError, ServiceOverloadError
from .service import OrderService


def _percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    if not sorted_vals:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_vals)) // 100))  # ceil(q*n/100)
    return sorted_vals[min(rank, len(sorted_vals)) - 1]


def default_orders(table: Table, n: int) -> list[SortSpec]:
    """``n`` distinct single-leading-column orders over ``table``.

    Rotations of the column list (``B,C,...,A`` etc.), so every order
    disagrees in its leading column — no accidental prefix sharing.
    """
    cols = list(table.schema.columns)
    if n > len(cols):
        raise ValueError(
            f"need {n} distinct orders but table has {len(cols)} columns"
        )
    return [SortSpec(cols[i:] + cols[:i]) for i in range(n)]


def run_load(
    service: OrderService,
    table: Table,
    orders: list[SortSpec],
    *,
    threads: int = 16,
    requests_per_thread: int = 8,
    tenant_per_order: bool = True,
    timeout: float | None = 60.0,
) -> dict:
    """Run the closed-loop duplicate-heavy load; return the report dict.

    Thread *t* issues every request against ``orders[t % len(orders)]``,
    so each order is requested by ``threads / len(orders)`` concurrent
    threads — the coalescing-friendly worst case for a naive server.  A
    barrier aligns each wave to maximise overlap.  Rejections and
    deadline misses are counted, not raised.
    """
    if threads < 1 or requests_per_thread < 1:
        raise ValueError("threads and requests_per_thread must be >= 1")
    if not orders:
        raise ValueError("need at least one target order")
    before = service.counters()
    lock = threading.Lock()
    latencies: list[float] = []
    outcomes = {"ok": 0, "coalesced": 0, "rejected": 0,
                "deadline_exceeded": 0, "errors": 0}
    barrier = threading.Barrier(threads)

    def _worker(t: int) -> None:
        spec = orders[t % len(orders)]
        tenant = f"order-{t % len(orders)}" if tenant_per_order else "load"
        for _ in range(requests_per_thread):
            barrier.wait()
            try:
                resp = service.order_by(
                    table, spec, tenant=tenant, timeout=timeout
                )
            except ServiceOverloadError:
                with lock:
                    outcomes["rejected"] += 1
            except DeadlineExceededError:
                with lock:
                    outcomes["deadline_exceeded"] += 1
            except Exception:  # noqa: BLE001 - counted, report stays whole
                with lock:
                    outcomes["errors"] += 1
            else:
                with lock:
                    outcomes["ok"] += 1
                    latencies.append(resp.latency_s)
                    if resp.coalesced:
                        outcomes["coalesced"] += 1

    t0 = time.perf_counter()
    workers = [
        threading.Thread(target=_worker, args=(t,), name=f"load-{t}")
        for t in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall_s = time.perf_counter() - t0

    after = service.counters()
    requests = after["requests"] - before["requests"]
    executions = after["executions"] - before["executions"]
    latencies.sort()
    lat_ms = [v * 1000.0 for v in latencies]
    return {
        "threads": threads,
        "requests_per_thread": requests_per_thread,
        "orders": [",".join(str(c) for c in o.columns) for o in orders],
        "rows": len(table.rows),
        "requests": requests,
        "executions": executions,
        "executions_per_request": (
            round(executions / requests, 4) if requests else 0.0
        ),
        "coalesced_requests": after["coalesced"] - before["coalesced"],
        "rejected": outcomes["rejected"],
        "deadline_exceeded": outcomes["deadline_exceeded"],
        "errors": outcomes["errors"],
        "completed": outcomes["ok"],
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(outcomes["ok"] / wall_s, 2) if wall_s else 0.0,
        "latency_ms": {
            "p50": round(_percentile(lat_ms, 50), 3),
            "p95": round(_percentile(lat_ms, 95), 3),
            "p99": round(_percentile(lat_ms, 99), 3),
            "mean": round(sum(lat_ms) / len(lat_ms), 3) if lat_ms else 0.0,
            "max": round(lat_ms[-1], 3) if lat_ms else 0.0,
        },
        "service": {
            "threads": service.config.service_threads,
            "queue_depth": service.config.service_queue_depth,
            "deadline_ms": service.config.service_deadline_ms,
            "cache": service.config.cache,
            "plan_window_ms": service.config.plan_window_ms,
        },
    }
