"""Bounded admission queue with per-tenant fair dequeuing.

The service's backpressure point.  Two properties matter:

* **Bounded** — at most ``depth`` pending executions; :meth:`AdmissionQueue.put`
  refuses (returns ``False``) when full, and the service turns that
  refusal into :class:`~repro.serve.ServiceOverloadError`.  Nothing in
  the serving layer ever buffers an unbounded number of requests.
* **Tenant-fair** — dequeuing round-robins over the tenants that have
  pending work, so one chatty tenant can fill its own backlog but
  cannot starve another tenant's single request behind it.  Within a
  tenant, order is FIFO.

The queue stores opaque items (the service's in-flight entries); it
knows nothing about coalescing or execution.  All operations are
thread-safe behind one condition variable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any


class AdmissionQueue:
    """A depth-bounded multi-tenant FIFO with round-robin dequeue."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._cond = threading.Condition()
        #: tenant -> FIFO of pending items; key order is the round-robin
        #: rotation (the front tenant serves next).
        self._tenants: "OrderedDict[str, deque]" = OrderedDict()
        self._size = 0
        self._closed = False

    def put(self, item: Any, tenant: str) -> bool:
        """Enqueue ``item`` for ``tenant``; ``False`` when full or closed.

        Never blocks: admission control means rejecting at the door,
        not making the caller wait for space.
        """
        with self._cond:
            if self._closed or self._size >= self.depth:
                return False
            pending = self._tenants.get(tenant)
            if pending is None:
                pending = self._tenants[tenant] = deque()
            pending.append(item)
            self._size += 1
            self._cond.notify()
            return True

    def get(self, timeout: float | None = None) -> Any | None:
        """Dequeue the next item fairly; ``None`` on timeout or close.

        Pops from the front tenant of the rotation and moves that
        tenant to the back (if it still has pending work), so K tenants
        with backlogs are served 1/K each regardless of arrival rates.
        """
        with self._cond:
            while self._size == 0:
                if self._closed or not self._cond.wait(timeout=timeout):
                    return None
            tenant, pending = next(iter(self._tenants.items()))
            item = pending.popleft()
            if pending:
                self._tenants.move_to_end(tenant)
            else:
                del self._tenants[tenant]
            self._size -= 1
            return item

    def close(self) -> None:
        """Refuse new work and wake every blocked :meth:`get`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return self._size

    def tenants(self) -> list[str]:
        """Tenants with pending work, in current rotation order."""
        with self._cond:
            return list(self._tenants)
