"""Concurrent serving layer for order-by workloads.

This package is the **stable serving API** (re-exported from
:mod:`repro`): an in-process :class:`OrderService` that admits
concurrent ``order_by`` requests through a bounded queue, coalesces
duplicates onto shared executions, enforces per-request deadlines, and
dequeues fairly across tenants — while every response stays
bit-identical (rows, offset-value codes, comparison counters) to what
a serial uncached execution would return.

Typical use::

    from repro import ExecutionConfig, OrderService

    cfg = ExecutionConfig(cache="on", service_threads=4)
    with OrderService(cfg) as svc:
        resp = svc.order_by(table, "A", "C", "B")
        resp.table      # sorted rows + offset-value codes
        resp.stats      # comparison counters, as if run solo
        resp.coalesced  # True when served by another request's run

Module map: :mod:`.service` (OrderService/Ticket), :mod:`.queue`
(bounded multi-tenant admission), :mod:`.registry` (in-flight
coalescing), :mod:`.request` (response/in-flight shapes),
:mod:`.normalize` (unique-prefix order normalization),
:mod:`.errors` (failure contract), :mod:`.load` (closed-loop load
driver behind ``serve --load`` and ``BENCH_serve.json``).

With ``ExecutionConfig.plan_window_ms`` set, scheduler threads drain
the queue in micro-batches and execute same-source groups as one
shared derivation tree through :mod:`repro.plan`.
"""

from .errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from .load import default_orders, run_load
from .normalize import SpecNormalizer
from .queue import AdmissionQueue
from .registry import InflightRegistry
from .request import OrderResponse
from .service import OrderService, Ticket, current_service

__all__ = [
    "OrderService",
    "OrderResponse",
    "Ticket",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "AdmissionQueue",
    "InflightRegistry",
    "SpecNormalizer",
    "current_service",
    "run_load",
    "default_orders",
]
