"""OrderService: the concurrent order-by serving layer.

One in-process service owns the workload-level concerns that a solo
``Query.order_by`` call cannot see:

* **Admission control** — a bounded queue
  (:class:`~repro.serve.queue.AdmissionQueue`, depth =
  ``config.service_queue_depth``); a full queue raises
  :class:`~repro.serve.ServiceOverloadError` at submit instead of
  buffering unboundedly.
* **Duplicate coalescing** — an in-flight registry keyed by the order
  cache's content fingerprint plus the target order: N concurrent
  identical requests cost *one* execution, whose result fans out to
  every waiter with the execution's comparison counters replayed — so
  each response is bit-identical (rows, codes, counters) to a solo
  serial uncached run.
* **Deadlines** — per-request deadlines (default
  ``config.service_deadline_ms``); requests that expire in the queue
  are skipped without execution, and waiters that outlive their
  deadline fail with :class:`~repro.serve.DeadlineExceededError`.
* **Tenant fairness** — the queue round-robins across tenants, so one
  tenant's backlog cannot starve another's single request.
* **Order normalization** — submitted orders are truncated to their
  shortest row-unique prefix (:mod:`repro.serve.normalize`), so
  trivially equivalent targets (trailing keys implied by a unique
  prefix) coalesce instead of executing separately.
* **Micro-batch planning** — with ``config.plan_window_ms`` set, a
  scheduler thread holds its first request for that window, drains
  concurrently pending work, and hands same-source groups of
  *distinct-but-related* orders to the batch derivation planner
  (:mod:`repro.plan`) as one shared derivation tree; rows and codes
  stay bit-identical per request, at a fraction of the comparisons.

Executions run on ``config.service_threads`` scheduler threads, each
through the ordinary :class:`~repro.engine.sort_op.Sort` operator with
the service's :class:`~repro.exec.ExecutionConfig` — which means the
order cache (``config.cache``), the parallel pool, governance, and all
telemetry engage exactly as they would for a direct call.  Queue and
in-flight source buffers are charged to the service's
:class:`~repro.exec.memory.MemoryAccountant` under the
``serve.inflight`` category.

Observability: ``serve.*`` counters/gauges/histograms in the metrics
registry, decision-grade ``serve.*`` structured-log events, and a
``service`` health check on ``/healthz``.
"""

from __future__ import annotations

import threading
import time

from ..cache.fingerprint import fingerprint_table
from ..engine.scans import TableScan
from ..engine.sort_op import Sort
from ..exec.config import ExecutionConfig
from ..exec.memory import MemoryAccountant, rows_nbytes
from ..model import SortSpec, Table
from ..obs import LOG, METRICS
from ..ovc.stats import ComparisonStats
from .errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadError,
)
from .normalize import SpecNormalizer
from .queue import AdmissionQueue
from .registry import InflightRegistry
from .request import Inflight, OrderResponse

#: Sentinel: "use the service's default deadline" (``None`` means
#: explicitly no deadline, so it cannot double as the default).
_DEFAULT_DEADLINE = object()

#: The most recently created, not-yet-closed service (for /healthz).
_CURRENT: "OrderService | None" = None


def current_service() -> "OrderService | None":
    """The live service this process most recently created, if any."""
    return _CURRENT


class Ticket:
    """A submitted request's handle; :meth:`result` blocks for the answer."""

    __slots__ = (
        "_service", "_entry", "tenant", "submitted_at", "deadline_at",
        "coalesced", "_deadline_counted",
    )

    def __init__(
        self,
        service: "OrderService",
        entry: Inflight,
        tenant: str,
        submitted_at: float,
        deadline_at: float | None,
        coalesced: bool,
    ) -> None:
        self._service = service
        self._entry = entry
        self.tenant = tenant
        self.submitted_at = submitted_at
        self.deadline_at = deadline_at
        self.coalesced = coalesced
        self._deadline_counted = False

    @property
    def done(self) -> bool:
        return self._entry.done.is_set()

    def _count_deadline_once(self) -> None:
        if not self._deadline_counted:
            self._deadline_counted = True
            self._service._count("deadline_exceeded")
            if METRICS.enabled:
                METRICS.counter("serve.deadline_exceeded").inc()

    def _deadline_exceeded(self, detail: str) -> DeadlineExceededError:
        self._count_deadline_once()
        return DeadlineExceededError(detail)

    def result(self, timeout: float | None = None) -> OrderResponse:
        """Wait for the shared execution and build this waiter's response.

        Raises :class:`DeadlineExceededError` past the request's
        deadline, ``TimeoutError`` past an explicit ``timeout``, or the
        execution's own error.  On success the response replays the
        execution's comparison counters into a fresh
        :class:`~repro.ovc.stats.ComparisonStats`, so every coalesced
        waiter reads the counts its own solo execution would have
        produced.
        """
        entry = self._entry
        clock = self._service._clock
        if self.deadline_at is not None:
            remaining = max(self.deadline_at - clock(), 0.0)
            wait = remaining if timeout is None else min(timeout, remaining)
        else:
            wait = timeout
        finished = entry.done.wait(wait)
        now = clock()
        if not finished:
            if self.deadline_at is not None and now >= self.deadline_at:
                raise self._deadline_exceeded(
                    f"no result within the request deadline "
                    f"({(self.deadline_at - self.submitted_at) * 1000:.0f}ms)"
                )
            raise TimeoutError(f"no result within timeout={timeout}s")
        if entry.error is not None:
            if isinstance(entry.error, DeadlineExceededError):
                self._count_deadline_once()
            raise entry.error
        if self.deadline_at is not None and now > self.deadline_at:
            raise self._deadline_exceeded(
                "execution completed after the request deadline"
            )
        stats = ComparisonStats()
        stats.merge(entry.stats_delta)
        latency = now - self.submitted_at
        if METRICS.enabled:
            METRICS.histogram("serve.latency_ms").observe(latency * 1000.0)
        return OrderResponse(
            table=entry.table,
            label=entry.label,
            stats=stats,
            coalesced=self.coalesced,
            tenant=self.tenant,
            latency_s=latency,
        )


class OrderService:
    """Concurrent order-by service: submit sorts, share work, shed load.

    Parameters
    ----------
    config:
        The :class:`~repro.exec.ExecutionConfig` governing both the
        service shape (``service_threads`` / ``service_queue_depth`` /
        ``service_deadline_ms``) and every execution it runs (engine,
        workers, cache, memory budget, ...).  ``None`` uses the
        environment-aware default.
    clock:
        Injectable monotonic clock for deadline tests.

    Usage::

        from repro import OrderService

        with OrderService(config) as svc:
            resp = svc.order_by(table, "A", "C", "B")
            # or: ticket = svc.submit(table, spec); resp = ticket.result()
    """

    def __init__(
        self,
        config: ExecutionConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        global _CURRENT
        self._config = config if config is not None else ExecutionConfig.from_env()
        self._clock = clock
        self._queue = AdmissionQueue(self._config.service_queue_depth)
        self._registry = InflightRegistry()
        #: Byte ledger for queued/in-flight source buffers
        #: (category ``serve.inflight``); attribution, not admission —
        #: the queue depth is the admission bound.
        self.accountant = MemoryAccountant(None)
        self._closed = False
        self._stats_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "executions": 0,
            "coalesced": 0,
            "rejected": 0,
            "deadline_exceeded": 0,
            "errors": 0,
            "planned": 0,
            "planned_batches": 0,
        }
        self._normalizer = SpecNormalizer()
        self._executing = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(self._config.service_threads)
        ]
        for t in self._threads:
            t.start()
        _CURRENT = self
        if LOG.enabled:
            LOG.event(
                "serve.started",
                threads=self._config.service_threads,
                queue_depth=self._config.service_queue_depth,
            )

    # ------------------------------------------------------------ plumbing

    @property
    def config(self) -> ExecutionConfig:
        return self._config

    @property
    def closed(self) -> bool:
        return self._closed

    def _count(self, name: str, n: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] += n

    def counters(self) -> dict[str, int]:
        """Snapshot of the service's own event counters."""
        with self._stats_lock:
            out = dict(self._counters)
        out["queued"] = len(self._queue)
        out["inflight"] = len(self._registry)
        out["inflight_bytes"] = self.accountant.used
        return out

    def _publish_levels(self) -> None:
        if METRICS.enabled:
            METRICS.gauge("serve.queue_depth").set(len(self._queue))
            METRICS.gauge("serve.inflight").set(len(self._registry))
            METRICS.gauge("serve.inflight_bytes").set(self.accountant.used)

    # ----------------------------------------------------------- admission

    def submit(
        self,
        source: Table,
        order: SortSpec | str | tuple,
        *more_columns: str,
        tenant: str = "default",
        deadline_ms: object = _DEFAULT_DEADLINE,
    ) -> Ticket:
        """Admit one order request; returns a :class:`Ticket`.

        ``order`` is a :class:`~repro.model.SortSpec` or column names.
        Duplicate in-flight requests (same row multiset, same
        arrangement, same target order) coalesce onto one execution.
        Raises :class:`ServiceOverloadError` when the admission queue
        is full and :class:`ServiceClosedError` after :meth:`close`.
        """
        if self._closed:
            raise ServiceClosedError("OrderService is closed")
        if not isinstance(source, Table):
            raise TypeError(f"cannot serve a {type(source).__name__}")
        if isinstance(order, SortSpec):
            spec = order
        elif more_columns:
            spec = SortSpec.of(order, *more_columns)
        elif isinstance(order, (tuple, list)):
            spec = SortSpec(order)
        else:
            spec = SortSpec.of(order)
        if deadline_ms is _DEFAULT_DEADLINE:
            deadline_ms = self._config.service_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")

        self._count("requests")
        if METRICS.enabled:
            METRICS.counter("serve.requests").inc()
        now = self._clock()
        deadline_at = (
            None if deadline_ms is None else now + deadline_ms / 1000.0
        )
        fp = fingerprint_table(source)
        normalized = self._normalizer.normalize(fp, source, spec)
        if normalized is not spec:
            if METRICS.enabled:
                METRICS.counter("serve.normalized_orders").inc()
            if LOG.enabled:
                LOG.event(
                    "serve.normalize", tenant=tenant,
                    order=",".join(str(c) for c in spec.columns),
                    normalized=",".join(str(c) for c in normalized.columns),
                )
            spec = normalized
        key = (fp.source_key, fp.sequence, spec)

        def _create() -> Inflight:
            entry = Inflight(key, source, spec, tenant, now, deadline_at)
            if not self._queue.put(entry, tenant):
                if self._closed or self._queue.closed:
                    raise ServiceClosedError("OrderService is closed")
                self._count("rejected")
                if METRICS.enabled:
                    METRICS.counter("serve.rejected_overload").inc()
                if LOG.enabled:
                    LOG.event(
                        "serve.reject", tenant=tenant,
                        queue_depth=self._queue.depth,
                    )
                raise ServiceOverloadError(
                    f"admission queue full "
                    f"({self._queue.depth} pending executions)"
                )
            entry.nbytes = rows_nbytes(source.rows, source.ovcs)
            self.accountant.charge("serve.inflight", entry.nbytes)
            return entry

        entry, created = self._registry.attach_or_create(
            key, deadline_at, _create
        )
        if not created:
            self._count("coalesced")
            if METRICS.enabled:
                METRICS.counter("serve.coalesced_requests").inc()
            if LOG.enabled:
                LOG.event(
                    "serve.coalesce", tenant=tenant,
                    order=",".join(str(c) for c in spec.columns),
                    waiters=entry.waiters,
                )
        self._publish_levels()
        return Ticket(self, entry, tenant, now, deadline_at, not created)

    def order_by(
        self,
        source: Table,
        order: SortSpec | str | tuple,
        *more_columns: str,
        tenant: str = "default",
        deadline_ms: object = _DEFAULT_DEADLINE,
        timeout: float | None = None,
    ) -> OrderResponse:
        """Blocking convenience: :meth:`submit` + :meth:`Ticket.result`."""
        return self.submit(
            source, order, *more_columns,
            tenant=tenant, deadline_ms=deadline_ms,
        ).result(timeout=timeout)

    # ----------------------------------------------------------- execution

    def _worker(self) -> None:
        window = self._config.plan_window_ms
        while True:
            entry = self._queue.get(timeout=0.1)
            if entry is None:
                if self._closed and len(self._queue) == 0:
                    return
                continue
            if window is None:
                self._execute(entry)
            else:
                self._execute_batch(self._drain_batch(entry, window / 1000.0))

    def _drain_batch(self, first: Inflight, window_s: float) -> list:
        """Hold ``first`` for up to ``window_s`` while draining the
        queue, collecting a micro-batch of concurrently pending work."""
        entries = [first]
        deadline = self._clock() + window_s
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                return entries
            entry = self._queue.get(timeout=remaining)
            if entry is not None:
                entries.append(entry)
            elif self._closed:
                return entries

    def _execute_batch(self, entries: list) -> None:
        """Execute one drained micro-batch: same-source groups of two
        or more go through the derivation planner as one shared tree,
        everything else takes the ordinary solo path."""
        groups: dict[tuple, list] = {}
        for entry in entries:
            groups.setdefault(entry.key[:2], []).append(entry)
        for group in groups.values():
            if len(group) == 1:
                self._execute(group[0])
            else:
                self._plan_group(group)

    def _plan_group(self, group: list) -> None:
        from ..plan import derive_batch

        now = self._clock()
        live = []
        for entry in group:
            if entry.expired(now):
                entry.error = DeadlineExceededError(
                    f"request expired in queue after "
                    f"{(now - entry.submitted_at) * 1000:.0f}ms"
                )
                if LOG.enabled:
                    LOG.event(
                        "serve.expired", tenant=entry.tenant,
                        waiters=entry.waiters,
                        queued_ms=round(
                            (now - entry.submitted_at) * 1000, 1
                        ),
                    )
                self._finish(entry)
            else:
                live.append(entry)
        if len(live) < 2:
            for entry in live:
                self._execute(entry)
            return
        with self._stats_lock:
            self._executing += len(live)
        try:
            with LOG.query_scope():
                result = derive_batch(
                    live[0].source, [e.spec for e in live],
                    config=self._config,
                )
            for entry in live:
                node = result.result_for(entry.spec)
                entry.table = node.table
                entry.label = node.label
                entry.stats_delta = node.stats_delta
            self._count("executions", len(live))
            self._count("planned", len(live))
            self._count("planned_batches")
            if METRICS.enabled:
                METRICS.counter("serve.executions").inc(len(live))
                METRICS.counter("serve.planned_requests").inc(len(live))
                METRICS.counter("serve.planned_batches").inc()
                for entry in live:
                    METRICS.histogram("serve.fanout").observe(entry.waiters)
            if LOG.enabled:
                LOG.event(
                    "serve.batch",
                    orders=len(live),
                    sibling_edges=result.plan.sibling_edges(),
                    est_speedup=round(
                        min(result.plan.est_speedup, 1e6), 3
                    ),
                    fallbacks=result.fallbacks,
                )
        except BaseException as exc:  # noqa: BLE001 - solo path recovers
            with self._stats_lock:
                self._executing -= len(live)
            if LOG.enabled:
                LOG.event(
                    "serve.batch_fallback", orders=len(live),
                    error=repr(exc),
                )
            for entry in live:
                self._execute(entry)
            return
        with self._stats_lock:
            self._executing -= len(live)
        for entry in live:
            self._finish(entry)

    def _execute(self, entry: Inflight) -> None:
        now = self._clock()
        if entry.expired(now):
            # Shed the work; the deadline_exceeded counters are bumped
            # per ticket (once each) when waiters observe the failure.
            entry.error = DeadlineExceededError(
                f"request expired in queue after "
                f"{(now - entry.submitted_at) * 1000:.0f}ms"
            )
            if LOG.enabled:
                LOG.event(
                    "serve.expired", tenant=entry.tenant,
                    waiters=entry.waiters,
                    queued_ms=round((now - entry.submitted_at) * 1000, 1),
                )
            self._finish(entry)
            return
        with self._stats_lock:
            self._executing += 1
        try:
            with LOG.query_scope():
                op = Sort(TableScan(entry.source), entry.spec,
                          config=self._config)
                table = op.to_table()
            entry.table = table
            entry.label = op.order_strategy
            entry.stats_delta = op.stats
            self._count("executions")
            if METRICS.enabled:
                METRICS.counter("serve.executions").inc()
                METRICS.histogram("serve.fanout").observe(entry.waiters)
            if LOG.enabled:
                LOG.event(
                    "serve.execute", tenant=entry.tenant,
                    order=",".join(str(c) for c in entry.spec.columns),
                    strategy=op.order_strategy, rows=len(table.rows),
                    waiters=entry.waiters,
                    queued_ms=round((now - entry.submitted_at) * 1000, 1),
                )
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            entry.error = exc
            self._count("errors")
            if METRICS.enabled:
                METRICS.counter("serve.errors").inc()
            if LOG.enabled:
                LOG.event(
                    "serve.error", tenant=entry.tenant, error=repr(exc)
                )
        finally:
            with self._stats_lock:
                self._executing -= 1
            self._finish(entry)

    def _finish(self, entry: Inflight) -> None:
        """Publish the result: retire the key first, then wake waiters.

        Removal-before-set means a duplicate arriving after completion
        starts a fresh entry instead of attaching to a finished one —
        the order cache, not the registry, serves *sequential* repeats.
        """
        self._registry.remove(entry.key)
        if entry.nbytes:
            self.accountant.release("serve.inflight", entry.nbytes)
        entry.done.set()
        self._publish_levels()

    # ------------------------------------------------------------ shutdown

    def close(self, drain: bool = True) -> None:
        """Stop admitting work; by default finish what was admitted.

        ``drain=False`` fails still-queued entries with
        :class:`ServiceClosedError` instead of executing them
        (executions already running always complete).
        """
        global _CURRENT
        if self._closed:
            return
        self._closed = True
        if not drain:
            while True:
                entry = self._queue.get(timeout=0)
                if entry is None:
                    break
                entry.error = ServiceClosedError(
                    "OrderService closed before execution"
                )
                self._finish(entry)
        self._queue.close()
        for t in self._threads:
            t.join(timeout=30)
        if _CURRENT is self:
            _CURRENT = None
        if LOG.enabled:
            LOG.event("serve.closed", **self.counters())

    def __enter__(self) -> "OrderService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.counters()
        return (
            f"OrderService(threads={self._config.service_threads}, "
            f"queue={c['queued']}/{self._config.service_queue_depth}, "
            f"requests={c['requests']}, executions={c['executions']}, "
            f"coalesced={c['coalesced']})"
        )

    # ---------------------------------------------------------- inspection

    def health(self) -> dict:
        """The service's /healthz check: status plus the numbers judged."""
        c = self.counters()
        degraded = c["rejected"] > 0 or c["deadline_exceeded"] > 0
        return {
            "status": "degraded" if degraded else "ok",
            "closed": self._closed,
            "threads": self._config.service_threads,
            "queue_depth": self._config.service_queue_depth,
            **c,
        }
