"""Target-order normalization for the serving layer.

Two requests for ``(A, B)`` and ``(A, C)`` over the same source are
*the same request* when column ``A`` alone is row-unique: a unique
prefix fully determines the row order, every trailing key is dead
weight, and the produced rows **and codes** are identical — with no
duplicate prefixes, adjacent rows always differ inside the prefix, so
every offset-value code lands strictly before the truncation point and
the exact-duplicate sentinel never fires.

The service therefore truncates each submitted order to its shortest
row-unique prefix before building the coalescing key, so trivially
equivalent variants attach to one in-flight execution (and one cache
entry) instead of racing each other.  Uniqueness is a property of the
source's row *multiset* and the prefix's column *set* — independent of
arrangement, key order, and sort direction — so probes are memoized
per ``(source_key, column set)``.
"""

from __future__ import annotations

import threading

from ..model import SortSpec, Table


class SpecNormalizer:
    """Truncates sort specs to their shortest row-unique prefix."""

    def __init__(self, max_entries: int = 256) -> None:
        self._memo: dict[tuple, bool] = {}
        self._max = max_entries
        self._lock = threading.Lock()

    def normalize(self, fp, source: Table, spec: SortSpec) -> SortSpec:
        """``spec`` truncated after its first row-unique prefix, or
        ``spec`` itself when no proper prefix determines the order."""
        for k in range(1, spec.arity):
            if self._unique(fp, source, spec, k):
                return spec.prefix(k)
        return spec

    def _unique(self, fp, source: Table, spec: SortSpec, k: int) -> bool:
        key = (fp.source_key, frozenset(spec.names[:k]))
        with self._lock:
            got = self._memo.get(key)
        if got is not None:
            return got
        positions = spec.prefix(k).positions(source.schema)
        seen = set()
        unique = True
        for row in source.rows:
            value = tuple(row[p] for p in positions)
            if value in seen:
                unique = False
                break
            seen.add(value)
        with self._lock:
            if len(self._memo) >= self._max:
                self._memo.clear()
            self._memo[key] = unique
        return unique
