"""In-flight registry: duplicate-request coalescing.

The serving layer's work-sharing point.  Requests are keyed by the
order cache's content identity — the order-insensitive ``source_key``
of the row multiset, the order-sensitive ``sequence`` hash (stable
sorts make tie-group output a function of arrival order, so two
requests share an execution only when their inputs are
arrangement-identical — that is what makes the fan-out bit-identical
for *every* waiter), and the target :class:`~repro.model.SortSpec`.

A submit either *creates* the in-flight entry for its key (becoming
the leader whose dequeue executes the sort) or *attaches* to an
existing one (a coalesced waiter: zero queue slots, zero executions —
it just shares the leader's result and replays its counters).  The
entry leaves the registry the moment its result is published, so a
request arriving after completion starts a fresh execution — which the
order cache, not the registry, is then free to serve cheaply.
"""

from __future__ import annotations

import threading

from .request import Inflight


class InflightRegistry:
    """Thread-safe map of in-flight executions, keyed by content+order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[tuple, Inflight] = {}

    def attach_or_create(
        self, key: tuple, deadline_at: float | None, create
    ) -> tuple[Inflight, bool]:
        """Join the in-flight execution for ``key``, or start one.

        ``create`` is a zero-argument factory building the new
        :class:`Inflight` (called under the lock, so creation and
        registration are atomic against concurrent duplicates).
        Returns ``(entry, created)``: ``created=False`` means the
        caller was coalesced onto an existing execution.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.add_waiter(deadline_at)
                return entry, False
            entry = create()
            self._inflight[key] = entry
            return entry, True

    def remove(self, key: tuple) -> None:
        """Retire an entry (idempotent); new duplicates then re-execute."""
        with self._lock:
            self._inflight.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)
