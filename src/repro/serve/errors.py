"""Service-level errors: what a request can fail with.

These are part of the stable public API (re-exported from
:mod:`repro` and :mod:`repro.serve`): a caller of
:class:`~repro.serve.OrderService` handles exactly three failure
shapes — the service shed load at admission, the request missed its
deadline, or the service was shut down — plus whatever the underlying
execution raises (those propagate unwrapped, so a bad sort spec fails
the same way it would on a direct :class:`~repro.engine.sort_op.Sort`).
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for order-service failures."""


class ServiceOverloadError(ServiceError):
    """Admission rejected: the bounded queue is full.

    This is the service's load-shedding contract — a full queue rejects
    *immediately* instead of buffering unboundedly or deadlocking, so
    callers can back off, retry elsewhere, or degrade.  The message
    carries the queue depth that was hit.
    """


class DeadlineExceededError(ServiceError):
    """The request could not be answered within its deadline.

    Raised both for requests that expired while still queued (the
    scheduler skips their execution entirely) and for waiters whose
    deadline passed before the shared execution completed.
    """


class ServiceClosedError(ServiceError):
    """The service has been closed; no new requests are admitted."""
