"""The order cache's store: a thread-safe LRU/TTL map of sorted orders.

One entry is one previously produced sort order — the output rows of a
``Sort`` *with their offset-value codes* — keyed by the content
fingerprint of the source multiset plus the :class:`~repro.model.
SortSpec` that was enforced.  The store is deliberately dumb about
*how* entries get used: exact-hit serving, candidate selection, and
the modify-from-cached-order dispatch all live in
:mod:`repro.cache.dispatch`; here live the mechanics every policy
shares:

* **Thread safety** — one re-entrant lock around every map operation;
  readers get immutable snapshots (:class:`CachedOrder`) assembled
  under the lock, so a concurrent eviction can never tear an entry.
* **Memory accounting** — resident bytes are charged to a
  :class:`~repro.exec.memory.MemoryAccountant` (category
  ``cache.entries``); exceeding the budget triggers the pressure loop.
* **Spill / rehydrate** — under pressure, cold entries are written
  through a :class:`~repro.exec.spill.SpillManager` and their lists
  released; a later hit rehydrates them bit-identically.  With
  spilling disabled (no budget relief possible) cold entries are
  evicted outright.
* **TTL** — entries older than ``ttl`` seconds are expired lazily on
  access and on install.

Counters (``hits``, ``misses``, ``installs``, ``evictions``,
``expirations``, ``spills``, ``rehydrates``) are maintained under the
same lock, so ``hits + misses`` always equals the number of exact
lookups — the monotonic-consistency property the concurrency tests
pin down.  When the global metrics registry is enabled the same
events are published under ``cache.*`` names.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..exec.memory import MemoryAccountant, rows_nbytes
from ..exec.spill import SpillHandle, SpillManager
from ..model import Schema, SortSpec, Table
from ..obs import METRICS
from ..ovc.stats import ComparisonStats
from .fingerprint import Fingerprint

#: Accounting category for resident entry bytes.
CATEGORY = "cache.entries"


@dataclass(frozen=True)
class CachedOrder:
    """Immutable reader snapshot of one cache entry.

    ``rows`` / ``ovcs`` are the entry's lists, shared (never copied) —
    treat them as frozen.  ``offset_counts[k]`` is the number of codes
    with offset exactly ``k`` (length ``arity + 1``), from which the
    dispatcher derives segment and run counts without rescanning.
    ``stats_delta`` is the comparison work the producing execution
    spent; ``replayable`` marks entries whose producing execution was
    identical to what an uncached ``Sort`` would have run, i.e. whose
    delta can be replayed for exact count parity with ``cache=off``.
    """

    spec: SortSpec
    rows: list
    ovcs: list
    stats_delta: ComparisonStats
    offset_counts: tuple
    tie_free: bool
    sequence: int
    replayable: bool
    #: Accounted size — reusable as the install hint for any result
    #: whose rows are a permutation of this entry's.
    nbytes: int

    def as_table(self, schema: Schema) -> Table:
        return Table(schema, self.rows, self.spec, self.ovcs)


class _Entry:
    __slots__ = (
        "source_key", "spec", "rows", "ovcs", "stats_delta",
        "offset_counts", "tie_free", "sequence", "replayable",
        "nbytes", "built_at", "handle",
    )

    def __init__(self, source_key, spec, rows, ovcs, stats_delta,
                 offset_counts, tie_free, sequence, replayable,
                 nbytes, built_at) -> None:
        self.source_key = source_key
        self.spec = spec
        self.rows = rows
        self.ovcs = ovcs
        self.stats_delta = stats_delta
        self.offset_counts = offset_counts
        self.tie_free = tie_free
        self.sequence = sequence
        self.replayable = replayable
        self.nbytes = nbytes
        self.built_at = built_at
        #: Spill handle while non-resident (rows/ovcs are then None).
        self.handle: SpillHandle | None = None

    @property
    def resident(self) -> bool:
        return self.rows is not None

    def snapshot(self) -> CachedOrder:
        return CachedOrder(
            self.spec, self.rows, self.ovcs, self.stats_delta,
            self.offset_counts, self.tie_free, self.sequence,
            self.replayable, self.nbytes,
        )


def _offset_counts(ovcs: list, arity: int) -> tuple:
    """Per-offset code counts (offsets past the arity fold into it)."""
    counts = [0] * (arity + 1)
    for off, _v in ovcs:
        counts[min(off, arity)] += 1
    return tuple(counts)


class OrderCache:
    """In-process cache of sorted outputs, LRU + TTL + budget-governed.

    Parameters
    ----------
    budget:
        Resident-byte budget (``parse_memory`` already applied by the
        config layer; here an int or ``None`` for unlimited).
    ttl:
        Entry lifetime in seconds (``None`` = no expiry).
    spill_dir:
        Parent directory for the spill manager (system temp when
        ``None``).
    spill:
        Whether budget pressure spills cold entries (default) or
        evicts them outright.
    max_entries:
        Hard cap on stored orders (spilled ones included); the LRU
        entry is evicted beyond it.
    clock:
        Injectable monotonic clock for TTL tests.
    """

    def __init__(
        self,
        budget: int | None = None,
        ttl: float | None = None,
        spill_dir: str | None = None,
        spill: bool = True,
        max_entries: int | None = None,
        clock=time.monotonic,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.accountant = MemoryAccountant(budget)
        self.ttl = ttl
        self.spill_enabled = spill
        self.max_entries = max_entries
        self._clock = clock
        self._spill_dir = spill_dir
        self._spill: SpillManager | None = None
        # Event counters (all mutated under the lock).
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.evictions = 0
        self.expirations = 0
        self.spills = 0
        self.rehydrates = 0
        self.rejected = 0

    # ----------------------------------------------------------- helpers

    def _spill_manager(self) -> SpillManager:
        if self._spill is None:
            self._spill = SpillManager(self._spill_dir)
        return self._spill

    def _expired(self, entry: _Entry, now: float) -> bool:
        return self.ttl is not None and now - entry.built_at > self.ttl

    def _publish_levels(self) -> None:
        if METRICS.enabled:
            METRICS.gauge("cache.bytes_resident").set(self.accountant.used)
            METRICS.gauge("cache.entries").set(len(self._entries))

    def _count(self, name: str) -> None:
        if METRICS.enabled:
            METRICS.counter("cache." + name).inc()

    def _drop(self, key: tuple, entry: _Entry, reason: str) -> None:
        """Remove one entry entirely (lock held)."""
        del self._entries[key]
        if entry.resident:
            self.accountant.release(CATEGORY, entry.nbytes)
            entry.rows = entry.ovcs = None
        if entry.handle is not None:
            entry.handle.release()
            entry.handle = None
        if reason == "expired":
            self.expirations += 1
            self._count("expirations")
        else:
            self.evictions += 1
            self._count("evictions")
        self._publish_levels()

    def _spill_entry(self, key: tuple, entry: _Entry) -> None:
        """Write a resident entry out and release its lists (lock held)."""
        entry.handle = self._spill_manager().spill(
            entry.rows, entry.ovcs, category="cache"
        )
        entry.rows = entry.ovcs = None
        self.accountant.release(CATEGORY, entry.nbytes)
        self.spills += 1
        self._count("spills")
        self._publish_levels()

    def _rehydrate(self, entry: _Entry) -> None:
        """Load a spilled entry back in (lock held)."""
        rows, ovcs = entry.handle.read()
        entry.handle.release()
        entry.handle = None
        entry.rows, entry.ovcs = rows, ovcs
        self.accountant.charge(CATEGORY, entry.nbytes)
        self.rehydrates += 1
        self._count("rehydrates")

    def _pressure(self, protect: tuple | None = None) -> None:
        """Spill (or evict) LRU-first until back under budget (lock held)."""
        while self.accountant.over_budget():
            victim_key = None
            for key, entry in self._entries.items():  # LRU order
                if key != protect and entry.resident:
                    victim_key = key
                    break
            if victim_key is None:
                break
            entry = self._entries[victim_key]
            if self.spill_enabled:
                self._spill_entry(victim_key, entry)
            else:
                self._drop(victim_key, entry, "evicted")
        self._publish_levels()

    def _purge_expired(self, now: float) -> None:
        for key in [
            k for k, e in self._entries.items() if self._expired(e, now)
        ]:
            self._drop(key, self._entries[key], "expired")

    # ------------------------------------------------------------- reads

    def lookup(self, fp: Fingerprint, spec: SortSpec) -> CachedOrder | None:
        """Exact lookup: the requested order for this row multiset.

        A valid entry must be unexpired and *sequence-safe*: an output
        containing full-key duplicates depends on the source sequence,
        so it is reusable verbatim only when the live source's sequence
        hash matches the one it was built from (tie-free entries are
        reusable from any arrangement).  Sequence-unsafe entries are
        reported as misses here; the dispatcher may still reuse them as
        modify candidates, re-breaking ties against the live sequence.
        """
        key = (fp.source_key, spec)
        with self._lock:
            entry = self._entries.get(key)
            now = self._clock()
            if entry is not None and self._expired(entry, now):
                self._drop(key, entry, "expired")
                entry = None
            if entry is not None and not entry.tie_free \
                    and entry.sequence != fp.sequence:
                entry = None
            if entry is None:
                self.misses += 1
                self._count("misses")
                return None
            if not entry.resident:
                self._rehydrate(entry)
            self._entries.move_to_end(key)
            snap = entry.snapshot()
            self.hits += 1
            self._count("hits")
            self._pressure(protect=key)
            return snap

    def candidates(
        self, fp: Fingerprint, exclude: SortSpec | None = None
    ) -> list[CachedOrder]:
        """Every unexpired order cached for this row multiset.

        Metadata-only snapshots for cost estimation: spilled entries
        are *not* rehydrated (their ``rows`` are ``None``); call
        :meth:`fetch` once a candidate is chosen.
        """
        out: list[CachedOrder] = []
        with self._lock:
            now = self._clock()
            self._purge_expired(now)
            for (src, spec), entry in self._entries.items():
                if src != fp.source_key or spec == exclude:
                    continue
                out.append(entry.snapshot())
        return out

    def fetch(self, fp: Fingerprint, spec: SortSpec) -> CachedOrder | None:
        """Materialize one order for use as a modify source (LRU touch,
        rehydrating if spilled; no hit/miss accounting)."""
        key = (fp.source_key, spec)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry, self._clock()):
                return None
            if not entry.resident:
                self._rehydrate(entry)
            self._entries.move_to_end(key)
            snap = entry.snapshot()
            self._pressure(protect=key)
            return snap

    # ------------------------------------------------------------ writes

    def install(
        self,
        fp: Fingerprint,
        spec: SortSpec,
        rows: list,
        ovcs: list,
        stats_delta: ComparisonStats,
        replayable: bool = True,
        nbytes: int | None = None,
    ) -> bool:
        """Insert (or refresh) the sorted output for ``(fp, spec)``.

        ``nbytes`` is an optional pre-measured size (a result modified
        from a cached entry is a permutation of that entry's rows, so
        its accounted size carries over without an O(n) re-measure).
        Returns False when the entry cannot be admitted (codes missing,
        or it alone exceeds the whole budget).
        """
        if ovcs is None:
            return False
        if nbytes is None:
            nbytes = rows_nbytes(rows, ovcs)
        budget = self.accountant.budget
        if budget is not None and nbytes > budget and not self.spill_enabled:
            with self._lock:
                self.rejected += 1
                self._count("rejected")
            return False
        arity = spec.arity
        counts = _offset_counts(ovcs, arity)
        tie_free = len(rows) <= 1 or counts[arity] == 0
        key = (fp.source_key, spec)
        with self._lock:
            now = self._clock()
            self._purge_expired(now)
            old = self._entries.get(key)
            if old is not None:
                self._drop(key, old, "evicted")
            entry = _Entry(
                fp.source_key, spec, rows, ovcs, stats_delta.snapshot(),
                counts, tie_free, fp.sequence, replayable, nbytes, now,
            )
            self._entries[key] = entry
            self.accountant.charge(CATEGORY, nbytes)
            self.installs += 1
            self._count("installs")
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    k = next(iter(self._entries))
                    if k == key:
                        break
                    self._drop(k, self._entries[k], "evicted")
            self._pressure(protect=key)
        return True

    def invalidate(self, source_key: tuple | None = None) -> int:
        """Drop every entry (or every entry of one source); returns the
        number removed."""
        with self._lock:
            keys = [
                k for k in self._entries
                if source_key is None or k[0] == source_key
            ]
            for k in keys:
                self._drop(k, self._entries[k], "evicted")
            return len(keys)

    def close(self) -> None:
        """Invalidate everything and remove the spill directory."""
        with self._lock:
            self.invalidate()
            if self._spill is not None:
                self._spill.cleanup()
                self._spill = None

    def __enter__(self) -> "OrderCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------- inspection

    @property
    def bytes_resident(self) -> int:
        return self.accountant.used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> dict[str, int]:
        """Snapshot of the event counters (one consistent read)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "installs": self.installs,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "spills": self.spills,
                "rehydrates": self.rehydrates,
                "rejected": self.rejected,
                "entries": len(self._entries),
                "bytes_resident": self.accountant.used,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.counters()
        return (
            f"OrderCache(entries={c['entries']}, "
            f"resident={c['bytes_resident']:,}B, hits={c['hits']}, "
            f"misses={c['misses']}, spills={c['spills']})"
        )
