"""Content fingerprints: the order cache's keying scheme.

A cache that answers "I have already sorted *this data* on *that
order*" needs a key naming the data independently of how it happens to
be arranged right now — the whole point is that one multiset of rows,
cached sorted on order A, can serve a request for order B.  The
fingerprint is therefore **order-insensitive**: a commutative combine
(count, sum, xor) of per-row hashes, so every permutation of the same
rows maps to the same :attr:`Fingerprint.source_key`.

Ties need one more bit of information.  Sorting here is stable, so
rows *equal under the whole sort key* leave a sort in their arrival
order — an output containing such duplicates is a function of the
input's *sequence*, not just its multiset.  The fingerprint carries an
order-sensitive :attr:`Fingerprint.sequence` hash alongside the
content key; the store uses it to decide when a cached output with
duplicates may be reused verbatim, and the dispatcher re-breaks ties
against the live input sequence otherwise (see
:mod:`repro.cache.dispatch`).

Hashes are Python ``hash()`` values: stable within a process, which is
exactly the cache's lifetime (it never persists fingerprints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..model import Table

_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class Fingerprint:
    """Identity of one row multiset (plus its current arrangement).

    ``schema`` / ``n_rows`` / ``content_sum`` / ``content_xor`` are
    order-insensitive and form :attr:`source_key`; ``sequence`` hashes
    the actual row sequence and only matters for outputs containing
    full-key duplicates.
    """

    schema: tuple[str, ...]
    n_rows: int
    content_sum: int
    content_xor: int
    sequence: int

    @property
    def source_key(self) -> tuple:
        """The order-insensitive cache key for this row multiset."""
        return (self.schema, self.n_rows, self.content_sum, self.content_xor)


def fingerprint_rows(
    rows: Sequence[tuple], schema_columns: tuple[str, ...]
) -> Fingerprint:
    """Fingerprint a row sequence (one pass, two hashes per row)."""
    total = 0
    xor = 0
    seq = len(rows)
    for row in rows:
        h = hash(row) & _MASK
        total = (total + h) & _MASK
        xor ^= h
        seq = hash((seq, h))
    return Fingerprint(schema_columns, len(rows), total, xor, seq)


def fingerprint_table(table: Table) -> Fingerprint:
    """Fingerprint a table's rows (sort order deliberately ignored)."""
    return fingerprint_rows(table.rows, table.schema.columns)
