"""Order cache: serve repeat ``order_by`` traffic by modifying cached
sort orders instead of re-sorting.

The paper's thesis is that a sort order plus its offset-value codes is
a reusable asset — producing a *related* order from it costs far less
than sorting from scratch.  Within one :func:`~repro.core.modify.
modify_sort_order` call the repo has exploited that since PR 1; this
package exploits it **across requests**: every executed ``Sort``
installs its output (rows *and* codes) into an in-process
:class:`OrderCache` keyed by a content fingerprint of the source rows
plus the requested :class:`~repro.model.SortSpec`, and later requests
against the same data are answered from the cache — verbatim for the
same order, or through the paper's order-modification machinery for a
related one (:mod:`repro.cache.dispatch` picks the cheapest cached
starting point with the cost model).

Usage is governed by :class:`~repro.exec.ExecutionConfig`:

* ``cache="off"`` (default) — never touch the cache;
* ``cache="on"`` — use the process-wide cache, creating it on first
  use with the config's ``cache_budget`` / ``cache_ttl`` /
  ``spill_dir``;
* ``cache="auto"`` — use the process-wide cache only if something
  already created it (mirrors the ``trace``/``metrics`` tri-state).

Environment: ``REPRO_CACHE`` / ``REPRO_CACHE_BUDGET`` /
``REPRO_CACHE_TTL``.  Observability: ``cache.hits`` / ``cache.misses``
/ ``cache.installs`` / ``cache.evictions`` / ``cache.expirations`` /
``cache.spills`` / ``cache.rehydrates`` / ``cache.modify_serves`` /
``cache.comparisons_saved`` counters, ``cache.bytes_resident`` /
``cache.entries`` gauges, and a per-hit
``cache.hit_comparisons_saved`` histogram.
"""

from __future__ import annotations

import atexit
import threading

from ..exec.config import ExecutionConfig
from .dispatch import ServeOutcome, install_result, serve
from .fingerprint import Fingerprint, fingerprint_rows, fingerprint_table
from .store import CachedOrder, OrderCache

__all__ = [
    "CachedOrder",
    "Fingerprint",
    "OrderCache",
    "ServeOutcome",
    "configure_cache",
    "fingerprint_rows",
    "fingerprint_table",
    "get_cache",
    "install_result",
    "reset_cache",
    "resolve_cache",
    "serve",
]

_LOCK = threading.RLock()
_CACHE: OrderCache | None = None


def get_cache() -> OrderCache | None:
    """The process-wide order cache, if one has been created."""
    return _CACHE


def configure_cache(
    budget: int | None = None,
    ttl: float | None = None,
    spill_dir: str | None = None,
    spill: bool = True,
    max_entries: int | None = None,
) -> OrderCache:
    """Create (replacing any previous) the process-wide order cache."""
    global _CACHE
    with _LOCK:
        if _CACHE is not None:
            _CACHE.close()
        _CACHE = OrderCache(
            budget=budget, ttl=ttl, spill_dir=spill_dir, spill=spill,
            max_entries=max_entries,
        )
        return _CACHE


def reset_cache() -> None:
    """Close and discard the process-wide cache (idempotent)."""
    global _CACHE
    with _LOCK:
        if _CACHE is not None:
            _CACHE.close()
            _CACHE = None


def resolve_cache(config: ExecutionConfig) -> OrderCache | None:
    """The cache a given config asks for (``None`` = stay cold).

    ``"on"`` lazily creates the process-wide cache from the config's
    ``cache_budget`` / ``cache_ttl`` / ``spill_dir`` the first time;
    an existing cache is reused as-is (first configuration wins —
    reconfigure explicitly via :func:`configure_cache`).
    """
    if config.cache == "off":
        return None
    if config.cache == "auto":
        return _CACHE
    with _LOCK:
        if _CACHE is None:
            return configure_cache(
                budget=config.cache_budget,
                ttl=config.cache_ttl,
                spill_dir=config.spill_dir,
            )
        return _CACHE


atexit.register(reset_cache)
