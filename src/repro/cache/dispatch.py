"""Cost-based serving: exact hits, modify-from-best-cached-order, or cold.

This is the cache's brain.  Given the live source table and a desired
order, :func:`serve` decides between three outcomes:

* **Exact hit** — the requested order is cached for this row multiset:
  the entry's rows and codes are returned as-is, and the comparison
  counters its producing execution recorded are *replayed* into the
  caller's :class:`~repro.ovc.stats.ComparisonStats`.  Replay keeps the
  engine's instrumentation deterministic — a plan reads the same with
  and without the cache whenever the entry was produced by an
  uncached-identical execution — while the actually avoided work is
  published as ``cache.comparisons_saved``.
* **Modify from the best cached order** — the requested order is not
  cached, but sibling orders of the same multiset are: each candidate
  is priced with :meth:`repro.core.cost.CostModel.modify_from` (segment
  and run counts read from the candidate's stored code-offset
  histogram, no data scan) and compared against the uncached baseline
  (modifying the live input's own order, or a full sort when the input
  is unordered).  A candidate that wins by a clear margin is fed —
  rows and codes, zero copies — straight into
  :func:`~repro.core.modify.modify_sort_order`; the result is
  re-tie-broken against the live input sequence (sorting here is
  stable, so equal-key rows must leave in *arrival* order for the
  output to stay bit-identical to uncached execution) and installed as
  a new entry.
* **Miss** — nothing cached is worth using; the caller executes its
  normal path and registers the output via :func:`install_result`.

Everything returned to callers is bit-identical — rows *and* codes —
to what the uncached execution would have produced.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from ..core.analysis import Strategy, analyze_order_modification
from ..core.cost import CostModel, counts_to_structure
from ..exec.config import ExecutionConfig
from ..model import SortSpec, Table
from ..obs import LOG, METRICS, TRACER
from ..ovc.stats import ComparisonStats
from .fingerprint import Fingerprint, fingerprint_table
from .store import CachedOrder, OrderCache, _offset_counts

#: A cached candidate must beat the uncached baseline estimate by this
#: factor before the dispatcher prefers it: close calls stay on the
#: uncached-identical path, whose comparison counters the cache can
#: later replay exactly.
WIN_MARGIN = 0.9


@dataclass
class ServeOutcome:
    """What :func:`serve` decided (and the fingerprint it computed)."""

    fingerprint: Fingerprint
    #: The served result, or ``None`` for a miss (caller executes cold).
    table: Table | None = None
    #: ``"cache-hit(<order>)"`` or ``"modify-from-cache(<order>)"``.
    label: str | None = None


def _names(spec: SortSpec) -> str:
    return ",".join(str(c) for c in spec.columns)


def _estimate(
    existing: SortSpec,
    desired: SortSpec,
    n_rows: int,
    offset_counts: tuple,
) -> float:
    """Estimated cost of producing ``desired`` by modifying ``existing``."""
    plan = analyze_order_modification(existing, desired)
    if plan.strategy is Strategy.NOOP:
        return 0.0
    n_segments, n_runs = counts_to_structure(
        offset_counts, plan.prefix_len, plan.infix_len
    )
    model = CostModel(n_rows, n_segments, n_runs)
    if plan.strategy is Strategy.FULL_SORT:
        return model.full_sort().total
    return model.modify_from(plan).total


def serve(
    cache: OrderCache,
    source: Table,
    spec: SortSpec,
    *,
    stats: ComparisonStats,
    config: ExecutionConfig,
) -> ServeOutcome:
    """Try to answer ``Sort(source, spec)`` from the cache.

    ``source`` is the materialized child table (ordered with codes, or
    unordered).  ``stats`` is the operator's counter set: exact hits
    replay the entry's recorded delta into it; a modify-from-cache
    execution counts its real work into it.
    """
    fp = fingerprint_table(source)
    outcome = ServeOutcome(fp)

    hit = cache.lookup(fp, spec)
    if hit is not None:
        stats.merge(hit.stats_delta)
        if METRICS.enabled:
            saved = hit.stats_delta.column_comparisons
            METRICS.counter("cache.comparisons_saved").inc(saved)
            METRICS.histogram("cache.hit_comparisons_saved").observe(saved)
        outcome.table = hit.as_table(source.schema)
        outcome.label = f"cache-hit({_names(spec)})"
        if LOG.enabled:
            LOG.event(
                "cache.serve", decision="hit", order=_names(spec),
                rows=len(source.rows),
            )
        return outcome

    candidates = cache.candidates(fp)
    if not candidates:
        if LOG.enabled:
            LOG.event(
                "cache.serve", decision="miss", order=_names(spec),
                rows=len(source.rows), reason="no-candidates",
            )
        return outcome

    n = len(source.rows)
    if source.sort_spec is not None and source.ovcs is not None:
        baseline = _estimate(
            source.sort_spec, spec, n,
            _offset_counts(source.ovcs, source.sort_spec.arity),
        )
    else:
        baseline = CostModel(n, 1, 1).full_sort().total

    best: CachedOrder | None = None
    best_cost = WIN_MARGIN * baseline
    for cand in candidates:
        cost = _estimate(cand.spec, spec, n, cand.offset_counts)
        if cost < best_cost:
            best, best_cost = cand, cost
    if best is None:
        if LOG.enabled:
            LOG.event(
                "cache.serve", decision="miss", order=_names(spec),
                rows=n, reason="no-candidate-beats-baseline",
                baseline_cost=round(baseline, 1),
                candidates=len(candidates),
            )
        return outcome

    chosen = cache.fetch(fp, best.spec)
    if chosen is None:  # evicted or expired since the scan
        if LOG.enabled:
            LOG.event(
                "cache.serve", decision="miss", order=_names(spec),
                rows=n, reason="candidate-evicted",
            )
        return outcome

    result = _modify_from(cache, fp, source, chosen, spec, stats, config)
    if result is None:
        if LOG.enabled:
            LOG.event(
                "cache.serve", decision="miss", order=_names(spec),
                rows=n, reason="modify-from-cache-failed",
                candidate=_names(best.spec),
            )
        return outcome
    outcome.table = result
    outcome.label = f"modify-from-cache({_names(best.spec)})"
    if LOG.enabled:
        LOG.event(
            "cache.serve", decision="modify-from-cache",
            order=_names(spec), candidate=_names(best.spec), rows=n,
            est_cost=round(best_cost, 1), baseline_cost=round(baseline, 1),
        )
    return outcome


def _modify_from(
    cache: OrderCache,
    fp: Fingerprint,
    source: Table,
    chosen: CachedOrder,
    spec: SortSpec,
    stats: ComparisonStats,
    config: ExecutionConfig,
) -> Table | None:
    """Produce ``spec`` from a cached sibling order; ``None`` on failure
    (counters rolled back, caller falls through to cold execution)."""
    from ..core.modify import modify_sort_order

    before = stats.snapshot()
    try:
        with TRACER.span(
            "cache.modify_from",
            rows=len(chosen.rows),
            source=_names(chosen.spec),
            target=_names(spec),
        ):
            result = modify_sort_order(
                chosen.as_table(source.schema), spec,
                method="auto", use_ovc=True, stats=stats, config=config,
            )
            rows, ovcs = _retiebreak(
                result.rows, result.ovcs, spec.arity, source.rows
            )
            result = Table(source.schema, rows, spec, ovcs)
    except (TypeError, IndexError):
        # TypeError: a forced fast engine met unpackable keys.
        # IndexError: the tie-break found a row missing from the live
        # source — a fingerprint collision delivered foreign data.
        # Either way the cold path is the answer; undo the partial
        # counter damage.
        stats.reset()
        stats.merge(before)
        return None
    if METRICS.enabled:
        METRICS.counter("cache.modify_serves").inc()
    cache.install(
        fp, spec, result.rows, result.ovcs, stats - before,
        replayable=False, nbytes=chosen.nbytes,
    )
    return result


def install_result(
    cache: OrderCache,
    fp: Fingerprint,
    spec: SortSpec,
    table: Table,
    stats_delta: ComparisonStats,
    replayable: bool = True,
) -> bool:
    """Register a cold execution's output (must carry codes)."""
    if table.ovcs is None:
        return False
    return cache.install(
        fp, spec, table.rows, table.ovcs, stats_delta, replayable=replayable
    )


def _retiebreak(
    rows: list,
    ovcs: list,
    arity: int,
    source_rows: list,
) -> tuple[list, list]:
    """Reorder full-key duplicates into live-source arrival order.

    Stable sorting leaves rows equal under the entire sort key in input
    order; a result modified from a *cached* order therefore carries
    the cache entry's arrival order inside such tie groups, while the
    uncached execution would carry the live child's.  Codes are
    untouched — every row in a tie group agrees on all sort columns,
    so the group's codes do not depend on which member stands first.
    """
    n = len(rows)
    groups: list[tuple[int, int]] = []
    i = 1
    while i < n:
        if ovcs[i][0] >= arity:
            start = i - 1
            while i < n and ovcs[i][0] >= arity:
                i += 1
            groups.append((start, i))
        else:
            i += 1
    if not groups:
        return rows, ovcs
    tied = {row for s, e in groups for row in rows[s:e]}
    where: dict = defaultdict(deque)
    for idx, row in enumerate(source_rows):
        if row in tied:
            where[row].append(idx)
    out = list(rows)
    for s, e in groups:
        tagged = sorted((where[row].popleft(), row) for row in out[s:e])
        out[s:e] = [row for _i, row in tagged]
    return out, ovcs
