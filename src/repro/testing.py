"""Validation helpers for users and tests.

Offset-value codes are caches: if they lie, every consumer silently
produces garbage — so this module gives downstream code cheap,
explicit ways to check invariants at trust boundaries:

* :func:`assert_table_valid` — the table is sorted as claimed and its
  codes equal fresh derivation;
* :func:`assert_sorted_on` — a row sequence satisfies a spec;
* :func:`comparison_budget` — a context manager asserting an upper
  bound on column comparisons performed inside the block (regression
  guard for "this path must not compare columns").
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from .model import SortSpec, Table
from .ovc.derive import derive_ovcs
from .ovc.stats import ComparisonStats


class ValidationError(AssertionError):
    """A table or stream violated a declared invariant."""


def assert_sorted_on(
    rows: Sequence[tuple], spec: SortSpec, schema
) -> None:
    """Raise :class:`ValidationError` unless ``rows`` satisfy ``spec``."""
    key = spec.key_for(schema)
    prev = None
    for i, row in enumerate(rows):
        k = key(row)
        if prev is not None and k < prev:
            raise ValidationError(
                f"rows not sorted on {spec}: row {i} {row!r} sorts before "
                f"its predecessor"
            )
        prev = k


def assert_table_valid(table: Table) -> None:
    """Full validation: declared order holds and codes are authentic."""
    if table.sort_spec is None:
        raise ValidationError("table declares no sort order")
    assert_sorted_on(table.rows, table.sort_spec, table.schema)
    if table.ovcs is None:
        return
    if len(table.ovcs) != len(table.rows):
        raise ValidationError(
            f"{len(table.ovcs)} codes for {len(table.rows)} rows"
        )
    positions = table.sort_spec.positions(table.schema)
    fresh = derive_ovcs(table.rows, positions, table.sort_spec.directions)
    for i, (got, want) in enumerate(zip(table.ovcs, fresh)):
        if tuple(got) != tuple(want):
            raise ValidationError(
                f"code mismatch at row {i}: stored {got}, derived {want}"
            )


@contextmanager
def comparison_budget(
    stats: ComparisonStats,
    column_comparisons: int | None = None,
    row_comparisons: int | None = None,
) -> Iterator[ComparisonStats]:
    """Assert comparison counts inside the block stay within bounds.

    ::

        stats = ComparisonStats()
        with comparison_budget(stats, column_comparisons=0):
            modify_sort_order(table, spec, stats=stats)
    """
    before = stats.snapshot()
    yield stats
    spent = stats - before
    if (
        column_comparisons is not None
        and spent.column_comparisons > column_comparisons
    ):
        raise ValidationError(
            f"column comparison budget exceeded: "
            f"{spent.column_comparisons} > {column_comparisons}"
        )
    if row_comparisons is not None and spent.row_comparisons > row_comparisons:
        raise ValidationError(
            f"row comparison budget exceeded: "
            f"{spent.row_comparisons} > {row_comparisons}"
        )
