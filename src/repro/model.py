"""Core data model: schemas, sort specifications, and sorted tables.

The paper's rows are tuples of column values; each row may carry an
offset-value code (OVC) describing its difference from the preceding row
in the table's sort order.  This module defines the user-facing bundles:

* :class:`Schema` — named columns with positional lookup.
* :class:`SortSpec` — an ordered list of sort columns, each ascending or
  descending.  The *arity* of the spec is the number of sort columns; the
  paper's "lists of columns" (``A``, ``B``, ...) are simply contiguous
  column groups inside one spec.
* :class:`Table` — rows plus (optionally) a sort spec and per-row OVCs.

Offset-value codes are represented throughout the library in two
equivalent forms:

* the *paper form* ``(offset, value)`` — the row agrees with its
  predecessor on the first ``offset`` sort columns and its column at
  position ``offset`` holds ``value``; an exact duplicate has
  ``offset == arity`` and value ``0``;
* the *comparable form* ``(arity - offset, value)`` — a plain Python
  tuple whose natural ascending order is exactly the ascending
  offset-value code order of the paper (lower code wins).  This form
  needs no domain bound and works for integers and strings alike.

Conversions between the two forms live in :mod:`repro.ovc.codes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence


class Desc:
    """Order-reversing wrapper for non-numeric column values.

    Integer columns sorted descending are normalized by negation; values
    without a cheap negation (strings, tuples) are wrapped in ``Desc``,
    whose comparisons invert the wrapped value's order.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "Desc") -> bool:
        return other.value < self.value

    def __le__(self, other: "Desc") -> bool:
        return other.value <= self.value

    def __gt__(self, other: "Desc") -> bool:
        return other.value > self.value

    def __ge__(self, other: "Desc") -> bool:
        return other.value >= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Desc) and other.value == self.value

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("Desc", self.value))

    def __repr__(self) -> str:
        return f"Desc({self.value!r})"


def normalize_value(value: Any, ascending: bool) -> Any:
    """Map a column value into ascending comparison space.

    Ascending columns pass through; descending integer (and float)
    columns negate; anything else is wrapped in :class:`Desc`.
    """
    if ascending:
        return value
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float)):
        return -value
    return Desc(value)


def denormalize_value(value: Any, ascending: bool) -> Any:
    """Invert :func:`normalize_value`."""
    if ascending:
        return value
    if isinstance(value, Desc):
        return value.value
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float)):
        return -value
    return value


@dataclass(frozen=True)
class Schema:
    """Named columns of a table, with name -> position lookup."""

    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in schema: {self.columns}")

    def index_of(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in schema {self.columns}") from None

    def indices_of(self, names: Sequence[str]) -> tuple[int, ...]:
        return tuple(self.index_of(n) for n in names)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self.columns

    @staticmethod
    def of(*names: str) -> "Schema":
        return Schema(tuple(names))

    @staticmethod
    def numbered(prefix: str, count: int) -> "Schema":
        """A schema of ``count`` columns named ``prefix0 .. prefixN-1``."""
        return Schema(tuple(f"{prefix}{i}" for i in range(count)))


@dataclass(frozen=True)
class SortColumn:
    """One component of a sort key: a column name plus direction."""

    name: str
    ascending: bool = True

    def reversed(self) -> "SortColumn":
        return SortColumn(self.name, not self.ascending)

    def __repr__(self) -> str:
        return self.name if self.ascending else f"{self.name} DESC"


class SortSpec:
    """An ordered list of sort columns.

    Construction accepts plain names (ascending), names suffixed with
    `` DESC``, or :class:`SortColumn` instances::

        SortSpec.of("A", "B DESC", SortColumn("C"))
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Iterable[SortColumn | str]) -> None:
        resolved: list[SortColumn] = []
        for col in columns:
            if isinstance(col, SortColumn):
                resolved.append(col)
            elif isinstance(col, str):
                stripped = col.strip()
                if stripped.upper().endswith(" DESC"):
                    resolved.append(SortColumn(stripped[:-5].strip(), ascending=False))
                elif stripped.upper().endswith(" ASC"):
                    resolved.append(SortColumn(stripped[:-4].strip(), ascending=True))
                else:
                    resolved.append(SortColumn(stripped))
            else:
                raise TypeError(f"cannot build SortColumn from {col!r}")
        names = [c.name for c in resolved]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate sort columns: {names}")
        self.columns = tuple(resolved)

    @staticmethod
    def of(*columns: SortColumn | str) -> "SortSpec":
        return SortSpec(columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def directions(self) -> tuple[bool, ...]:
        return tuple(c.ascending for c in self.columns)

    def positions(self, schema: Schema) -> tuple[int, ...]:
        """Physical column positions of the sort columns in ``schema``."""
        return schema.indices_of(self.names)

    def prefix(self, length: int) -> "SortSpec":
        return SortSpec(self.columns[:length])

    def suffix(self, start: int) -> "SortSpec":
        return SortSpec(self.columns[start:])

    def key_for(self, schema: Schema):
        """A callable projecting a row to its normalized sort key tuple.

        Suitable for ``sorted(rows, key=...)`` — descending columns are
        normalized so plain tuple order matches the spec.
        """
        positions = self.positions(schema)
        directions = self.directions
        if all(directions):
            return lambda row: tuple(row[p] for p in positions)
        pairs = tuple(zip(positions, directions))
        return lambda row: tuple(normalize_value(row[p], asc) for p, asc in pairs)

    def common_prefix_len(self, other: "SortSpec") -> int:
        n = 0
        for a, b in zip(self.columns, other.columns):
            if a != b:
                break
            n += 1
        return n

    def satisfies(self, required: "SortSpec") -> bool:
        """True if data sorted on ``self`` is also sorted on ``required``.

        Without functional-dependency information this holds exactly when
        ``required`` is a prefix of ``self`` (Table 1 case 0).
        """
        return self.common_prefix_len(required) == required.arity

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[SortColumn]:
        return iter(self.columns)

    def __getitem__(self, item):
        got = self.columns[item]
        if isinstance(item, slice):
            return SortSpec(got)
        return got

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortSpec) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.columns)
        return f"SortSpec({inner})"


#: Paper-form offset-value code: (offset, value).  Exact duplicates use
#: (arity, 0).  See module docstring.
OVC = tuple


@dataclass
class Table:
    """Rows plus optional sort order and per-row offset-value codes.

    ``ovcs`` is parallel to ``rows`` and holds paper-form
    ``(offset, value)`` pairs relative to the preceding row under
    ``sort_spec``; the first row's code is ``(0, first sort column)``,
    mirroring Figure 5 of the paper.
    """

    schema: Schema
    rows: list[tuple]
    sort_spec: SortSpec | None = None
    ovcs: list[OVC] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.ovcs is not None and len(self.ovcs) != len(self.rows):
            raise ValueError(
                f"{len(self.ovcs)} ovcs for {len(self.rows)} rows"
            )
        if self.sort_spec is not None:
            for name in self.sort_spec.names:
                if name not in self.schema:
                    raise KeyError(f"sort column {name!r} not in schema")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def column(self, name: str) -> list:
        p = self.schema.index_of(name)
        return [row[p] for row in self.rows]

    def with_ovcs(self) -> "Table":
        """Return self, deriving offset-value codes first if absent."""
        if self.ovcs is None:
            from .ovc.derive import derive_table_ovcs

            self.ovcs = derive_table_ovcs(self)
        return self

    def is_sorted(self) -> bool:
        """Check the claimed sort order by scanning adjacent rows."""
        if self.sort_spec is None:
            raise ValueError("table has no sort spec to verify")
        key = self.sort_spec.key_for(self.schema)
        rows = self.rows
        return all(key(rows[i - 1]) <= key(rows[i]) for i in range(1, len(rows)))

    def validate(self) -> "Table":
        """Assert order and code authenticity; returns self.

        Raises :class:`repro.testing.ValidationError` on any violation —
        use at trust boundaries before relying on cached codes.
        """
        from .testing import assert_table_valid

        assert_table_valid(self)
        return self

    def head(self, n: int = 10) -> list[tuple]:
        return self.rows[:n]

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering for examples and debugging."""
        header = list(self.schema.columns)
        show_ovc = self.ovcs is not None
        if show_ovc:
            header += ["offset", "value"]
        body: list[list[str]] = []
        for i, row in enumerate(self.rows[:limit]):
            cells = [str(v) for v in row]
            if show_ovc:
                off, val = self.ovcs[i]
                cells += [str(off), str(val)]
            body.append(cells)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in body)) if body else len(header[c])
            for c in range(len(header))
        ]
        lines = [
            "  ".join(h.rjust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for cells in body:
            lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
