"""Streaming order modification: one segment in memory at a time.

The paper's Section 3.5 notes that the run-time step "may materialize
the input in memory or on storage, either entirely or one segment at a
time".  :class:`StreamingModify` implements the segment-at-a-time
variant as a pull-based operator: it buffers only the current segment
(detected from input codes without comparisons), flushes its merged
rows downstream, and moves on — memory stays bounded by the largest
segment instead of the whole input, which is precisely how segmented
sorting turns one external sort into many internal ones (hypothesis 1).

For plans without a shared prefix (cases 2/3) the whole input is one
segment and this operator degenerates to the materializing path.

``config.engine == "fast"`` flushes each buffered segment through the
packed-code kernels (:func:`repro.fastpath.execute.fast_segment`)
instead of the instrumented executors: same rows and codes, no
comparison counts.  ``auto`` keeps the reference path — a streaming
operator's counters are part of its contract.

``config.workers`` pipelines segment execution across worker processes
while preserving the streaming contract: consecutive segments are
batched into shards, dispatched to the pool as the input is consumed,
and re-emitted in segment order by the bounded ordered collector
(:mod:`repro.parallel`), so memory stays bounded by the shard size
times the in-flight cap rather than the whole input.  Reference-path
worker counters are merged into the operator's stats at end of stream.
"""

from __future__ import annotations

from typing import Iterator

from ..core.analysis import ModificationPlan, Strategy, analyze_order_modification
from ..core.merge_runs import merge_preexisting_runs
from ..core.segmented import sort_segment
from ..exec import faults as faults_mod
from ..exec.compat import resolve_config
from ..exec.config import ExecutionConfig
from ..model import SortSpec
from ..obs import METRICS, TRACER
from ..ovc.derive import project_ovcs
from ..sorting.merge import _key_projector
from .operators import Operator


class StreamingModify(Operator):
    """Modify the child's sort order, one prefix segment at a time.

    The child must be ordered and coded.  Peak buffered rows are
    exposed as :attr:`peak_segment_rows` after execution.
    """

    def __init__(
        self,
        child: Operator,
        spec: SortSpec,
        shard_rows: int = 4096,
        config: "ExecutionConfig | None" = None,
        **legacy,
    ) -> None:
        if child.ordering is None:
            raise ValueError("streaming modification needs an ordered input")
        super().__init__(child.schema, spec, child.stats)
        self._config = resolve_config(config, "StreamingModify", **legacy)
        self._child = child
        self._spec = spec
        self._engine = self._config.engine
        self._workers = self._config.workers
        self._shard_rows = shard_rows
        self.plan: ModificationPlan = analyze_order_modification(
            child.ordering, spec
        )
        if self.plan.backward:
            raise ValueError(
                "backward plans need the whole input; use the Sort operator"
            )
        self.peak_segment_rows = 0

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        plan = self.plan
        spec = self._spec
        schema = self.schema
        out_positions = spec.positions(schema)
        out_project = _key_projector(out_positions, spec.directions)
        in_spec = self._child.ordering
        in_project = _key_projector(
            in_spec.positions(schema), in_spec.directions
        )

        if plan.strategy is Strategy.NOOP:
            arity = spec.arity
            for row, ovc in self._child:
                if ovc is None:
                    yield row, None
                else:
                    yield row, project_ovcs([ovc], arity)[0]
            self.peak_segment_rows = 1
            return

        boundary = plan.prefix_len if plan.strategy is not Strategy.FULL_SORT else 0

        if (
            self._workers not in (None, 0, 1)
            and boundary > 0
            and plan.strategy in (Strategy.SEGMENT_SORT, Strategy.COMBINED)
        ):
            from ..parallel.api import resolve_workers

            n_workers = resolve_workers(self._workers)
            if n_workers > 1:
                yield from self._iter_parallel(plan, spec, boundary, n_workers)
                return

        seg_rows: list[tuple] = []
        seg_ovcs: list[tuple] = []

        def flush() -> Iterator[tuple[tuple, tuple | None]]:
            if not seg_rows:
                return
            self.peak_segment_rows = max(self.peak_segment_rows, len(seg_rows))
            if METRICS.enabled:
                METRICS.gauge("streaming.buffered_rows").set(len(seg_rows))
            out_rows: list[tuple] = []
            out_ovcs: list[tuple] = []
            with TRACER.span(
                "streaming.segment", rows=len(seg_rows), engine=self._engine
            ):
                if self._engine == "fast":
                    from ..fastpath.execute import fast_segment

                    out_rows, out_ovcs = fast_segment(
                        seg_rows, seg_ovcs, plan, spec, out_positions,
                        plan.strategy,
                    )
                elif plan.strategy in (Strategy.MERGE_RUNS, Strategy.COMBINED):
                    merge_preexisting_runs(
                        seg_rows, seg_ovcs, 0, len(seg_rows), plan,
                        out_project, in_project, self.stats, out_rows,
                        out_ovcs, use_ovc=True,
                        respect_prefix=plan.strategy is Strategy.COMBINED,
                    )
                else:
                    sort_segment(
                        seg_rows, seg_ovcs, 0, len(seg_rows), plan.prefix_len,
                        spec.arity, out_project, self.stats, out_rows,
                        out_ovcs, use_ovc=True,
                    )
            yield from zip(out_rows, out_ovcs)
            seg_rows.clear()
            seg_ovcs.clear()

        for row, ovc in self._child:
            if ovc is None:
                raise ValueError(
                    "streaming modification requires offset-value codes"
                )
            if seg_rows and boundary > 0 and ovc[0] < boundary:
                yield from flush()
            seg_rows.append(row)
            seg_ovcs.append(ovc)
        yield from flush()

    def _iter_parallel(
        self, plan: ModificationPlan, spec: SortSpec, boundary: int,
        n_workers: int,
    ) -> Iterator[tuple[tuple, tuple]]:
        """Pipeline segments through the worker pool, in segment order.

        Consecutive segments accumulate into shards of at least
        ``shard_rows`` rows (whole segments only) so tiny segments do
        not drown the pool in per-task IPC; the ordered collector then
        streams shard outputs back in global order.
        """
        from ..parallel.pool import ShardExecutor
        from ..parallel.worker import ShardContext

        ctx = ShardContext(
            schema=self.schema,
            input_spec=self._child.ordering,
            output_spec=spec,
            plan=plan,
            strategy=plan.strategy,
            use_fast=self._engine == "fast",
            collect_stats=self._engine != "fast",
            trace=TRACER.enabled,
            collect_metrics=METRICS.enabled,
            faults=faults_mod.from_env(),
        )
        shard_rows = max(1, self._shard_rows)

        def shards() -> Iterator[tuple[list[tuple], list[tuple]]]:
            buf_rows: list[tuple] = []
            buf_ovcs: list[tuple] = []
            seg_start = 0
            for row, ovc in self._child:
                if ovc is None:
                    raise ValueError(
                        "streaming modification requires offset-value codes"
                    )
                if buf_rows and ovc[0] < boundary:
                    self.peak_segment_rows = max(
                        self.peak_segment_rows, len(buf_rows) - seg_start
                    )
                    if len(buf_rows) >= shard_rows:
                        yield buf_rows, buf_ovcs
                        buf_rows, buf_ovcs = [], []
                    seg_start = len(buf_rows)
                buf_rows.append(row)
                buf_ovcs.append(ovc)
            if buf_rows:
                self.peak_segment_rows = max(
                    self.peak_segment_rows, len(buf_rows) - seg_start
                )
                yield buf_rows, buf_ovcs

        executor = ShardExecutor(
            ctx, n_workers, retry_policy=self._config.retry_policy
        )
        with TRACER.span(
            "streaming.parallel", workers=n_workers, engine=self._engine
        ):
            for rows_chunk, ovcs_chunk in executor.run(shards()):
                yield from zip(rows_chunk, ovcs_chunk)
        if executor.stats is not None:
            self.stats.merge(executor.stats)
        from ..parallel.api import stitch_telemetry

        stitch_telemetry(executor.telemetry)

    def _children(self) -> list[Operator]:
        return [self._child]
