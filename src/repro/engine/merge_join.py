"""Merge join with offset-value code support.

Both inputs must be sorted on their join keys.  The classic algorithm
advances two cursors and cross-products matching groups; offset-value
codes contribute twice (Graefe & Do, EDBT 2023):

* *within* an input, a row with code offset >= join arity equals its
  predecessor on the join key — group membership costs no comparison;
* *across* inputs, only one key comparison per group pair is needed.

The output is ordered on the join key and carries codes for it,
max-folded from the left input's codes (again comparison-free).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..model import Schema, SortSpec
from ..ovc.codes import max_merge
from ..ovc.compare import compare_plain
from .operators import Operator


class MergeJoin(Operator):
    """Inner equi-join of two streams sorted on their join keys."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        right_prefix: str = "r_",
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ValueError("join key lists must have equal length")
        for op, keys, side in ((left, left_keys, "left"), (right, right_keys, "right")):
            if op.ordering is None or not op.ordering.satisfies(SortSpec(keys)):
                raise ValueError(
                    f"{side} input must be sorted on its join keys {list(keys)}"
                )
        left_names = list(left.schema.columns)
        used = set(left_names)
        right_names = []
        for name in right.schema.columns:
            while name in used:
                name = f"{right_prefix}{name}"
            used.add(name)
            right_names.append(name)
        schema = Schema(tuple(left_names + right_names))
        ordering = SortSpec(left_keys)
        super().__init__(schema, ordering, left.stats)
        self._left = left
        self._right = right
        self._lpos = left.schema.indices_of(left_keys)
        self._rpos = right.schema.indices_of(right_keys)
        self._arity = len(left_keys)

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        arity = self._arity
        lpos, rpos = self._lpos, self._rpos
        stats = self.stats

        left_groups = _groups(self._left, lpos, arity, stats)
        right_groups = _groups(self._right, rpos, arity, stats)

        lgroup = next(left_groups, None)
        rgroup = next(right_groups, None)
        pending_code: tuple | None = None  # folded left code since last emit
        first = True
        while lgroup is not None and rgroup is not None:
            lkey, lrows, lcode = lgroup
            rkey, rrows, _rcode = rgroup
            relation = compare_plain(lkey, rkey, stats)
            if relation < 0:
                pending_code = _fold(pending_code, lcode)
                lgroup = next(left_groups, None)
            elif relation > 0:
                rgroup = next(right_groups, None)
            else:
                folded = _fold(pending_code, lcode) if lcode is not None else None
                pending_code = None
                emitted = False
                for lrow in lrows:
                    for rrow in rrows:
                        if folded is None:
                            ovc = None
                        elif first:
                            # First output row convention: offset 0,
                            # value of the first join key column.
                            ovc = (0, lkey[0])
                        elif not emitted:
                            ovc = (arity - folded[0], folded[1])
                        else:
                            ovc = (arity, 0)
                        first = False
                        emitted = True
                        yield lrow + rrow, ovc
                lgroup = next(left_groups, None)
                rgroup = next(right_groups, None)

    def _children(self) -> list[Operator]:
        return [self._left, self._right]


def _fold(pending: tuple | None, code: tuple | None) -> tuple | None:
    if code is None:
        return None
    return code if pending is None else max_merge(pending, code)


def _groups(source: Operator, positions, arity: int, stats):
    """Yield ``(key, rows, folded-code)`` per distinct join key.

    Group boundaries come from codes when present (offset < arity) and
    from counted key comparisons otherwise.  The folded code is the
    group head's code clamped to the join arity, in ascending form.
    """
    key = None
    rows: list[tuple] = []
    code: tuple | None = None
    have_codes = True
    prev_key = None
    for row, ovc in source:
        rkey = tuple(row[p] for p in positions)
        if ovc is None:
            have_codes = False
        if key is None:
            new_group = True
        elif have_codes:
            new_group = ovc[0] < arity
        else:
            new_group = compare_plain(prev_key, rkey, stats) != 0
        if new_group:
            if key is not None:
                yield key, rows, code
            key = rkey
            rows = [row]
            code = _clamp_code(ovc, arity) if ovc is not None else None
        else:
            rows.append(row)
        prev_key = rkey
    if key is not None:
        yield key, rows, code


def _clamp_code(ovc: tuple, arity: int) -> tuple:
    """Paper-form code -> ascending form under the join-key prefix."""
    offset, value = ovc
    if offset >= arity:
        return (0, 0)
    return (arity - offset, value)
