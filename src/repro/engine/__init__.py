"""Pull-based query execution engine with offset-value-code support.

Operators are iterables of ``(row, ovc)`` pairs — the code slot is
``None`` when a stream carries no order information.  Every operator
exposes its output ``schema`` and ``ordering`` so order requirements
can be planned (see :mod:`repro.optimizer`), and threads a shared
:class:`~repro.ovc.stats.ComparisonStats`.
"""

from .operators import Operator
from .scans import BTreeScan, ColumnStoreScan, TableScan
from .misc import Filter, Limit, Project, TopK
from .sort_op import Sort
from .merge_join import MergeJoin
from .aggregate import Aggregate, Distinct, GroupBy
from .set_ops import Except, Intersect, UnionAll, UnionDistinct
from .pivot import Pivot
from .modify_op import StreamingModify

__all__ = [
    "Operator",
    "TableScan",
    "BTreeScan",
    "ColumnStoreScan",
    "Filter",
    "Project",
    "Limit",
    "TopK",
    "Sort",
    "MergeJoin",
    "Aggregate",
    "GroupBy",
    "Distinct",
    "UnionAll",
    "UnionDistinct",
    "Intersect",
    "Except",
    "Pivot",
    "StreamingModify",
]
