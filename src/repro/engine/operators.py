"""Operator base class for the pull-based engine.

Mirrors the paper's system context: "All operators in this engine are
pull-based, resulting in simple and clean interfaces.  Each row consists
of its column values and a special (non-columnar) field holding the
offset-value code."  Here a stream element is the pair ``(row, ovc)``
with ``ovc`` in paper form relative to the stream predecessor under
``self.ordering`` (or ``None`` for unordered streams).
"""

from __future__ import annotations

from typing import Iterator

from ..model import Schema, SortSpec, Table
from ..ovc.stats import ComparisonStats


class Operator:
    """Base class: an iterable of ``(row, ovc)`` with order metadata."""

    def __init__(
        self,
        schema: Schema,
        ordering: SortSpec | None,
        stats: ComparisonStats | None = None,
    ) -> None:
        self.schema = schema
        self.ordering = ordering
        self.stats = stats if stats is not None else ComparisonStats()

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        raise NotImplementedError

    # Convenience terminals -------------------------------------------------

    def rows(self) -> list[tuple]:
        return [row for row, _ovc in self]

    def to_table(self) -> Table:
        rows: list[tuple] = []
        ovcs: list[tuple] = []
        carries_codes = True
        for row, ovc in self:
            rows.append(row)
            if ovc is None:
                carries_codes = False
            else:
                ovcs.append(ovc)
        return Table(
            self.schema,
            rows,
            self.ordering,
            ovcs if carries_codes and self.ordering is not None else None,
        )

    def explain(self, indent: int = 0) -> str:
        """One-line-per-operator plan rendering."""
        pad = "  " * indent
        line = f"{pad}{self.__class__.__name__}{self._explain_detail()}"
        children = "".join(
            "\n" + c.explain(indent + 1) for c in self._children()
        )
        return line + children

    def _explain_detail(self) -> str:
        if self.ordering is not None:
            return f" [ordered on {', '.join(map(repr, self.ordering))}]"
        return ""

    def _children(self) -> list["Operator"]:
        return []
