"""Leaf operators: scans of tables, b-trees, and column stores.

All three deliver offset-value codes with their rows at no comparison
cost — the codes were cached when the data was written (table codes
are derived once and stored; b-tree leaves and column-store run
lengths encode them structurally).
"""

from __future__ import annotations

from typing import Iterator

from ..model import Table
from ..ovc.stats import ComparisonStats
from ..storage.btree import BTree
from ..storage.colstore import ColumnStore
from .operators import Operator


class TableScan(Operator):
    """Scan an in-memory table; codes come from the table."""

    def __init__(self, table: Table, stats: ComparisonStats | None = None) -> None:
        if table.sort_spec is not None:
            table.with_ovcs()
        super().__init__(table.schema, table.sort_spec, stats)
        self._table = table

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        table = self._table
        if table.ovcs is None:
            for row in table.rows:
                yield row, None
        else:
            yield from zip(table.rows, table.ovcs)

    def _explain_detail(self) -> str:
        return f"({len(self._table)} rows)" + super()._explain_detail()


class BTreeScan(Operator):
    """Ordered scan of a b-tree; leaf prefix truncation supplies codes."""

    def __init__(self, tree: BTree, stats: ComparisonStats | None = None) -> None:
        super().__init__(tree.schema, tree.sort_spec, stats)
        self._tree = tree

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        yield from self._tree.scan()

    def _explain_detail(self) -> str:
        return f"({len(self._tree)} rows)" + super()._explain_detail()


class ColumnStoreScan(Operator):
    """Transposing scan of an RLE column store (hypothesis 6): rows and
    codes materialize from run boundaries without comparisons."""

    def __init__(
        self, store: ColumnStore, stats: ComparisonStats | None = None
    ) -> None:
        super().__init__(store.schema, store.sort_spec, stats)
        self._store = store

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        yield from self._store.iter_rows_with_ovcs()

    def _explain_detail(self) -> str:
        return f"({len(self._store)} rows)" + super()._explain_detail()
