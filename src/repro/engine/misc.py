"""Stateless stream operators: filter, project, limit, top-k.

The interesting one is :class:`Filter`: dropping rows breaks the
code-to-predecessor chain, but the max-theorem repairs it for free —
the code of a surviving row relative to the last *emitted* row is the
maximum of the codes along the skipped stretch.  No column values are
touched to keep the output stream fully coded.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Sequence

from ..model import Schema, SortSpec
from ..ovc.codes import max_merge, ovc_to_code, code_to_ovc
from ..sorting.merge import _key_projector
from .operators import Operator


class Filter(Operator):
    """Keep rows satisfying a predicate; repair codes via max-folding."""

    def __init__(self, child: Operator, predicate: Callable[[tuple], bool]) -> None:
        super().__init__(child.schema, child.ordering, child.stats)
        self._child = child
        self._predicate = predicate

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        arity = self.ordering.arity if self.ordering is not None else 0
        pending: tuple | None = None  # folded code of the skipped stretch
        for row, ovc in self._child:
            if ovc is None or self.ordering is None:
                if self._predicate(row):
                    yield row, None
                continue
            code = ovc_to_code(ovc, arity)
            folded = code if pending is None else max_merge(pending, code)
            if self._predicate(row):
                yield row, code_to_ovc(folded, arity)
                pending = None
            else:
                pending = folded

    def _children(self) -> list[Operator]:
        return [self._child]


class Project(Operator):
    """Keep a subset of columns (optionally renamed).

    The output stays ordered — with its codes intact — exactly when the
    surviving columns include a prefix of the input ordering; the
    ordering is truncated to that prefix and codes are clamped the same
    way :func:`repro.ovc.derive.project_ovcs` does.
    """

    def __init__(self, child: Operator, columns: Sequence[str]) -> None:
        positions = child.schema.indices_of(columns)
        ordering = None
        if child.ordering is not None:
            kept = 0
            for col in child.ordering:
                if col.name in columns:
                    kept += 1
                else:
                    break
            if kept > 0:
                ordering = child.ordering.prefix(kept)
        super().__init__(Schema(tuple(columns)), ordering, child.stats)
        self._child = child
        self._positions = positions

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        positions = self._positions
        if self.ordering is None:
            for row, _ovc in self._child:
                yield tuple(row[p] for p in positions), None
            return
        arity = self.ordering.arity
        for row, ovc in self._child:
            out = tuple(row[p] for p in positions)
            if ovc is None:
                yield out, None
            elif ovc[0] >= arity:
                yield out, (arity, 0)
            else:
                yield out, ovc

    def _children(self) -> list[Operator]:
        return [self._child]


class Limit(Operator):
    """Emit the first ``n`` rows of the child stream."""

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise ValueError("limit must be non-negative")
        super().__init__(child.schema, child.ordering, child.stats)
        self._child = child
        self._n = n

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        if self._n == 0:
            return
        for i, pair in enumerate(self._child):
            yield pair
            if i + 1 >= self._n:
                return

    def _children(self) -> list[Operator]:
        return [self._child]


class TopK(Operator):
    """Smallest ``k`` rows under a key — "top" via a bounded heap.

    On an input already ordered by the key this degenerates to
    :class:`Limit`; on unordered input it keeps a size-``k`` max-heap
    (in-sort "top" logic).  Output is ordered by the key but uncoded.
    """

    def __init__(self, child: Operator, key: SortSpec, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        super().__init__(child.schema, key, child.stats)
        self._child = child
        self._key = key
        self._k = k

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        if self._k == 0:
            return
        if self._child.ordering is not None and self._child.ordering.satisfies(
            self._key
        ):
            yield from Limit(self._child, self._k)
            return
        project = _key_projector(
            self._key.positions(self.schema), self._key.directions
        )
        heap: list = []
        for seq, (row, _ovc) in enumerate(self._child):
            # Negated sequence keeps ties stable: among equal keys the
            # earliest row survives and sorts first.
            item = (_Reverse(project(row)), -seq, row)
            if len(heap) < self._k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
        for item in sorted(heap, reverse=True):
            yield item[2], None

    def _children(self) -> list[Operator]:
        return [self._child]


class _Reverse:
    """Inverts comparisons so heapq's min-heap acts as a max-heap."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reverse") -> bool:
        return other.value < self.value

    def __gt__(self, other: "_Reverse") -> bool:
        return other.value > self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reverse) and other.value == self.value
