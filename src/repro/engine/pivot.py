"""Sort-based PIVOT with offset-value codes.

Pivot spreads one column's values into output columns, aggregating a
value column per (group, pivot value) cell.  Over an input sorted on
``group_columns + (pivot_column,)``, the in-sort logic is a single
streaming pass: group boundaries and pivot-value boundaries both fall
out of the codes' offsets — the "pivot" entry in the companion paper's
list of sort-based operations sped up by offset-value codes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..model import Schema, SortSpec
from ..ovc.compare import compare_plain
from .aggregate import _AGG_FINISH, _AGG_INIT, _AGG_STEP, _clamp
from .operators import Operator


class Pivot(Operator):
    """Rotate ``pivot_column``'s values into columns.

    Output schema: the group columns followed by one column per entry
    of ``pivot_values`` (named ``{pivot_column}_{value}``).  Cells with
    no input rows hold ``None``; pivot values outside ``pivot_values``
    raise (declare the domain you expect).
    """

    def __init__(
        self,
        child: Operator,
        group_columns: Sequence[str],
        pivot_column: str,
        value_column: str,
        pivot_values: Sequence,
        agg: str = "sum",
    ) -> None:
        full_spec = SortSpec(tuple(group_columns) + (pivot_column,))
        if child.ordering is None or not child.ordering.satisfies(full_spec):
            raise ValueError(
                "pivot needs input sorted on group columns + pivot column"
            )
        if agg not in _AGG_INIT:
            raise ValueError(f"unknown aggregate {agg!r}")
        if len(set(pivot_values)) != len(pivot_values):
            raise ValueError("pivot values must be distinct")
        names = tuple(group_columns) + tuple(
            f"{pivot_column}_{v}" for v in pivot_values
        )
        super().__init__(Schema(names), SortSpec(group_columns), child.stats)
        self._child = child
        self._group_positions = child.schema.indices_of(group_columns)
        self._pivot_position = child.schema.index_of(pivot_column)
        self._value_position = child.schema.index_of(value_column)
        self._pivot_index = {v: i for i, v in enumerate(pivot_values)}
        self._agg = agg
        self._group_arity = len(group_columns)

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        arity = self._group_arity
        agg = self._agg
        stats = self.stats
        key: tuple | None = None
        head_ovc: tuple | None = None
        cells: list | None = None
        prev_key: tuple | None = None

        def finish() -> tuple:
            row = list(key)
            for slot in cells:
                row.append(None if slot is None else _AGG_FINISH[agg](slot))
            return tuple(row)

        for row, ovc in self._child:
            rkey = tuple(row[p] for p in self._group_positions)
            if key is None:
                new_group = True
            elif ovc is not None:
                # Codes: offset below the group arity means a new group;
                # offset at the pivot column means a new pivot value
                # within the group; deeper offsets change neither.
                new_group = ovc[0] < arity
            else:
                new_group = compare_plain(prev_key, rkey, stats) != 0
            if new_group:
                if key is not None:
                    yield finish(), head_ovc
                key = rkey
                head_ovc = _clamp(ovc, arity)
                cells = [None] * len(self._pivot_index)
            pivot_value = row[self._pivot_position]
            try:
                column = self._pivot_index[pivot_value]
            except KeyError:
                raise ValueError(
                    f"unexpected pivot value {pivot_value!r}; declare it "
                    "in pivot_values"
                ) from None
            if cells[column] is None:
                cells[column] = _AGG_INIT[agg]()
            _AGG_STEP[agg](cells[column], row[self._value_position])
            prev_key = rkey
        if key is not None:
            yield finish(), head_ovc

    def _children(self) -> list[Operator]:
        return [self._child]
