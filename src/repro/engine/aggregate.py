"""Sort-based aggregation: in-stream group-by, distinct, and scalar
aggregates — all exploiting offset-value codes where the input carries
them.

On a stream sorted (and coded) on the grouping columns, a new group
begins exactly where a row's code offset drops below the group arity;
"group by" and "distinct" therefore run without a single column
comparison — the in-stream logic of Graefe & Do (EDBT 2023) that this
paper builds on.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..aggregates import AGG_FINISH as _AGG_FINISH
from ..aggregates import AGG_INIT as _AGG_INIT
from ..aggregates import AGG_STEP as _AGG_STEP
from ..model import Schema, SortSpec
from ..ovc.compare import compare_plain
from .operators import Operator

#: Aggregate spec: (function, column) with function in
#: {"count", "sum", "min", "max", "avg", "first", "last"};
#: "count" takes no column: ("count", None).
AggSpec = tuple


class GroupBy(Operator):
    """In-stream grouping over a sorted input.

    The child must be ordered on (at least) ``group_columns`` as its
    leading sort columns.  Output columns: the group columns followed
    by one column per aggregate, named ``f"{fn}_{col}"`` (or ``count``).
    """

    def __init__(
        self,
        child: Operator,
        group_columns: Sequence[str],
        aggregates: Sequence[AggSpec] = (("count", None),),
    ) -> None:
        group_spec = SortSpec(group_columns)
        if child.ordering is None or not child.ordering.satisfies(group_spec):
            raise ValueError(
                f"in-stream group-by needs input sorted on {list(group_columns)}"
            )
        names = list(group_columns)
        for fn, col in aggregates:
            if fn not in _AGG_INIT:
                raise ValueError(f"unknown aggregate {fn!r}")
            names.append(fn if col is None else f"{fn}_{col}")
        super().__init__(Schema(tuple(names)), group_spec, child.stats)
        self._child = child
        self._group_positions = child.schema.indices_of(group_columns)
        self._arity = len(group_columns)
        self._aggs = [
            (fn, None if col is None else child.schema.index_of(col))
            for fn, col in aggregates
        ]

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        arity = self._arity
        positions = self._group_positions
        stats = self.stats
        state: list | None = None
        key: tuple | None = None
        head_ovc: tuple | None = None
        prev_key: tuple | None = None

        for row, ovc in self._child:
            rkey = tuple(row[p] for p in positions)
            if key is None:
                new_group = True
            elif ovc is not None:
                new_group = ovc[0] < arity
            else:
                new_group = compare_plain(prev_key, rkey, stats) != 0
            if new_group:
                if key is not None:
                    yield self._finish(key, state), head_ovc
                key = rkey
                state = [_AGG_INIT[fn]() for fn, _c in self._aggs]
                head_ovc = _clamp(ovc, arity)
            for slot, (fn, col) in zip(state, self._aggs):
                _AGG_STEP[fn](slot, None if col is None else row[col])
            prev_key = rkey
        if key is not None:
            yield self._finish(key, state), head_ovc

    def _finish(self, key: tuple, state: list) -> tuple:
        return key + tuple(
            _AGG_FINISH[fn](slot) for slot, (fn, _c) in zip(state, self._aggs)
        )

    def _children(self) -> list[Operator]:
        return [self._child]


class Aggregate(Operator):
    """Scalar (whole-input) aggregation; output is a single row."""

    def __init__(self, child: Operator, aggregates: Sequence[AggSpec]) -> None:
        names = tuple(
            fn if col is None else f"{fn}_{col}" for fn, col in aggregates
        )
        super().__init__(Schema(names), None, child.stats)
        self._child = child
        self._aggs = [
            (fn, None if col is None else child.schema.index_of(col))
            for fn, col in aggregates
        ]

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        state = [_AGG_INIT[fn]() for fn, _c in self._aggs]
        for row, _ovc in self._child:
            for slot, (fn, col) in zip(state, self._aggs):
                _AGG_STEP[fn](slot, None if col is None else row[col])
        yield tuple(
            _AGG_FINISH[fn](slot) for slot, (fn, _c) in zip(state, self._aggs)
        ), None


class Distinct(Operator):
    """Duplicate removal over the child's sort order.

    With codes, a duplicate is any row whose offset equals the key
    arity — dropped without comparisons.  ``key_columns`` defaults to
    the child's full ordering and must be a prefix of it.
    """

    def __init__(
        self, child: Operator, key_columns: Sequence[str] | None = None
    ) -> None:
        if child.ordering is None:
            raise ValueError("in-stream distinct needs a sorted input")
        spec = (
            child.ordering
            if key_columns is None
            else SortSpec(key_columns)
        )
        if not child.ordering.satisfies(spec):
            raise ValueError("distinct key must be a prefix of the input order")
        super().__init__(child.schema, spec, child.stats)
        self._child = child
        self._positions = child.schema.indices_of(spec.names)
        self._arity = spec.arity

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        arity = self._arity
        positions = self._positions
        stats = self.stats
        prev_key: tuple | None = None
        for row, ovc in self._child:
            if ovc is not None:
                if ovc[0] >= arity:
                    continue
                yield row, ovc
            else:
                rkey = tuple(row[p] for p in positions)
                if prev_key is not None and compare_plain(prev_key, rkey, stats) == 0:
                    prev_key = rkey
                    continue
                prev_key = rkey
                yield row, None

    def _children(self) -> list[Operator]:
        return [self._child]


def _clamp(ovc: tuple | None, arity: int) -> tuple | None:
    if ovc is None:
        return None
    offset, value = ovc
    if offset >= arity:
        return (arity, 0)
    return (offset, value)


