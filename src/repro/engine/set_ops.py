"""Sort-based set operations with offset-value codes.

Union (all/distinct), intersection, and difference of streams sorted on
the same key ride the merge machinery: codes decide duplicate detection
within each input for free (offset >= key arity), and one key
comparison per group pair aligns the two inputs — the "set operations
such as intersection" listed among sort-based algorithms by the
companion EDBT 2023 paper.

Output codes: INTERSECT and EXCEPT emit subsequences of the *left*
input, so their codes are repaired by max-folding the skipped left
group-head codes (exact duplicates inside a group carry the minimal
code and never affect the fold).  UNION interleaves both inputs, whose
code chains do not compose; ``UnionAll`` merges with full codes via the
tournament machinery, while ``UnionDistinct`` emits uncoded rows (pipe
through ``UnionAll`` + ``Distinct`` when codes matter downstream).

Inputs must share a schema and be sorted on identical orderings.
"""

from __future__ import annotations

from typing import Iterator

from ..ovc.codes import code_to_ovc, max_merge, ovc_to_code
from ..ovc.compare import compare_plain
from ..sorting.merge import _key_projector, kway_merge
from .operators import Operator


def _check_inputs(left: Operator, right: Operator) -> None:
    if left.schema != right.schema:
        raise ValueError("set operations need identical schemas")
    if left.ordering is None or left.ordering != right.ordering:
        raise ValueError("set operations need both inputs sorted alike")


class UnionAll(Operator):
    """Merge two sorted streams, keeping duplicates (a 2-way merge)."""

    def __init__(self, left: Operator, right: Operator) -> None:
        _check_inputs(left, right)
        super().__init__(left.schema, left.ordering, left.stats)
        self._left = left
        self._right = right

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        spec = self.ordering
        positions = spec.positions(self.schema)
        runs = []
        for source in (self._left, self._right):
            rows, ovcs, coded = [], [], True
            for row, ovc in source:
                rows.append(row)
                if ovc is None:
                    coded = False
                else:
                    ovcs.append(ovc)
            runs.append((rows, ovcs if coded else None))
        use_ovc = all(ovcs is not None for _rows, ovcs in runs)
        out_rows, out_ovcs = kway_merge(
            runs, positions, self.stats, spec.directions, use_ovc
        )
        if out_ovcs is None:
            for row in out_rows:
                yield row, None
        else:
            yield from zip(out_rows, out_ovcs)

    def _children(self) -> list[Operator]:
        return [self._left, self._right]


class _GroupCursor:
    """Step through a sorted stream one distinct key at a time.

    Yields ``(normalized_key, head_row, head_code)`` where ``head_code``
    is the group head's ascending code (or None on uncoded streams);
    rows after the head are exact duplicates detected from codes when
    available, by counted comparisons otherwise.
    """

    def __init__(self, source: Operator, project, arity: int, stats) -> None:
        self._iter = iter(source)
        self._project = project
        self._arity = arity
        self._stats = stats
        self._pending = next(self._iter, None)

    def next_group(self):
        if self._pending is None:
            return None
        head, head_ovc = self._pending
        key = self._project(head)
        while True:
            nxt = next(self._iter, None)
            if nxt is None:
                self._pending = None
                break
            row, ovc = nxt
            if ovc is not None:
                same = ovc[0] >= self._arity
            else:
                same = compare_plain(key, self._project(row), self._stats) == 0
            if not same:
                self._pending = nxt
                break
        code = None if head_ovc is None else ovc_to_code(head_ovc, self._arity)
        return key, head, code


class _SetOpBase(Operator):
    def __init__(self, left: Operator, right: Operator) -> None:
        _check_inputs(left, right)
        super().__init__(left.schema, left.ordering, left.stats)
        self._left = left
        self._right = right

    def _aligned_groups(self):
        """Yield ``(relation, left_group, right_group)`` pairs.

        relation: -1 left-only key, 0 both, 1 right-only key.
        Exhausted sides surface as -1/1 with the other group None.
        """
        spec = self.ordering
        project = _key_projector(spec.positions(self.schema), spec.directions)
        arity = spec.arity
        lg = _GroupCursor(self._left, project, arity, self.stats)
        rg = _GroupCursor(self._right, project, arity, self.stats)
        a, b = lg.next_group(), rg.next_group()
        while a is not None and b is not None:
            relation = compare_plain(a[0], b[0], self.stats)
            yield relation, a, b
            if relation <= 0:
                a = lg.next_group()
            if relation >= 0:
                b = rg.next_group()
        while a is not None:
            yield -1, a, None
            a = lg.next_group()
        while b is not None:
            yield 1, None, b
            b = rg.next_group()

    def _children(self) -> list[Operator]:
        return [self._left, self._right]


class _LeftSubsequenceOp(_SetOpBase):
    """Common machinery for ops emitting a subsequence of left keys."""

    def _emit(self, relations) -> Iterator[tuple[tuple, tuple | None]]:
        arity = self.ordering.arity
        fold: tuple | None = None
        broken = False  # stream lost its codes somewhere
        for relation, a, _b in self._aligned_groups():
            if a is None:
                continue
            _key, head, code = a
            if code is None:
                broken = True
            elif not broken:
                fold = code if fold is None else max_merge(fold, code)
            if relation in relations:
                yield head, None if broken else code_to_ovc(fold, arity)
                fold = None


class Intersect(_LeftSubsequenceOp):
    """Distinct keys present in both inputs (INTERSECT)."""

    def __iter__(self):
        return self._emit(relations=(0,))


class Except(_LeftSubsequenceOp):
    """Distinct keys of the left input absent from the right (EXCEPT)."""

    def __iter__(self):
        return self._emit(relations=(-1,))


class UnionDistinct(_SetOpBase):
    """Distinct keys present in either input (UNION).

    Output rows interleave both inputs, so no code chain survives; use
    ``Distinct(UnionAll(left, right))`` for a coded union.
    """

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        for relation, a, b in self._aligned_groups():
            head = a[1] if relation <= 0 and a is not None else b[1]
            yield head, None
