"""The Sort operator: the engine's order enforcer.

Given a required output order, Sort inspects the child's declared
ordering and offset-value codes and picks the cheapest path through the
paper's machinery:

* child already satisfies the order -> pass through (case 0, possibly
  re-coding onto the shorter key);
* related order -> :func:`repro.core.modify.modify_sort_order`
  (segmented sorting / merging pre-existing runs / combined);
* unordered child -> internal tournament sort, or external merge sort
  when a memory budget is configured and exceeded.

An :class:`~repro.exec.ExecutionConfig` selects how the in-memory
paths execute.  ``config.engine``: ``auto`` keeps the instrumented
reference executors (an operator's comparison counters are part of its
contract, so ``auto`` here means "reference"); ``fast`` routes order
modification and the internal sort through the packed-code kernels of
:mod:`repro.fastpath` — bit-identical rows and codes, counters left
untouched.  The external merge sort has no fast twin (spill accounting
is its point) and always runs the reference path.

``config.workers`` forwards to the order-modification path's parallel
subsystem (:mod:`repro.parallel`): segment-parallel strategies shard
across processes (with the config's retry/timeout policy), with worker
counters merged back into the operator's stats; everything else stays
serial automatically.  ``config.memory_budget`` governs the order
modification's buffered output (spill-to-disk under pressure).  The
standalone ``engine=``/``workers=`` kwargs were removed after their
deprecation release and now raise ``TypeError``.

``config.cache`` plugs the operator into the order cache
(:mod:`repro.cache`): before sorting, the cache is consulted for this
exact (source rows, order) pair — a hit serves the cached rows and
codes verbatim (recorded comparison counters replayed) — or for a
*related* cached order that the cost model prices cheaper to modify
than the uncached execution; either way the served output is
bit-identical to an uncached run.  Every executed sort installs its
output for future requests.  The strategy actually used is recorded in
:attr:`Sort.order_strategy` and shown by ``EXPLAIN`` after execution
(``full-sort``, ``modify(<order>)``, ``cache-hit(<order>)``,
``modify-from-cache(<order>)``, ...).  The cache engages only on the
in-memory ``method="auto"`` + ``use_ovc`` paths.
"""

from __future__ import annotations

from typing import Iterator

from ..exec.compat import resolve_config
from ..exec.config import ExecutionConfig
from ..model import SortSpec, Table
from ..obs import LOG, SLOWLOG
from ..core.modify import modify_sort_order
from ..sorting.external import ExternalMergeSort
from ..sorting.internal import tournament_sort
from .operators import Operator


class Sort(Operator):
    """Enforce ``spec`` on the child stream."""

    def __init__(
        self,
        child: Operator,
        spec: SortSpec,
        method: str = "auto",
        use_ovc: bool = True,
        memory_capacity: int | None = None,
        fan_in: int = 16,
        config: ExecutionConfig | None = None,
        **legacy,
    ) -> None:
        super().__init__(child.schema, spec, child.stats)
        self._config = resolve_config(config, "Sort", **legacy)
        if self._config.engine == "fast" and not use_ovc:
            raise ValueError(
                "the fast engine requires offset-value codes (use_ovc=True)"
            )
        self._child = child
        self._spec = spec
        self._method = method
        self._use_ovc = use_ovc
        self._memory_capacity = memory_capacity
        self._fan_in = fan_in
        self._engine = self._config.engine
        #: Strategy actually executed, for tests and EXPLAIN output.
        self.executed: str | None = None
        #: Human-readable order strategy for EXPLAIN: ``passthrough``,
        #: ``full-sort``, ``external-sort``, ``modify(<order>)``,
        #: ``cache-hit(<order>)``, or ``modify-from-cache(<order>)``.
        self.order_strategy: str | None = None
        #: Fingerprint of the source rows when the cache was consulted.
        self._cache_fp = None

    def _cache(self):
        """The order cache this sort may use, or ``None``.

        The cache engages only where its bit-identical contract is
        provable: the in-memory auto-method path with offset-value
        codes requested.  Forced methods, ``use_ovc=False``, and the
        external-sort configuration stay cold.
        """
        if (
            self._config.cache == "off"
            or self._method != "auto"
            or not self._use_ovc
            or self._memory_capacity is not None
        ):
            return None
        from ..cache import resolve_cache

        return resolve_cache(self._config)

    def _serve(self, cache, table: Table) -> Table | None:
        """Ask the cache for this (source, order); remember the
        fingerprint so a cold execution can install its result."""
        from ..cache import serve

        outcome = serve(
            cache, table, self._spec, stats=self.stats, config=self._config
        )
        self._cache_fp = outcome.fingerprint
        if outcome.table is None:
            return None
        self.executed = "cache"
        self.order_strategy = outcome.label
        return outcome.table

    def _install(self, cache, result: Table, delta) -> None:
        from ..cache import install_result

        if cache is not None and self._cache_fp is not None:
            install_result(
                cache, self._cache_fp, self._spec, result, delta
            )

    def _observe(self, mark, before) -> None:
        """Close this sort's slowlog watch and log the decision.

        Called once per executed (non-passthrough) path, after the
        heavy work and before emission — what the threshold times is
        the sort, not the consumer.
        """
        if LOG.enabled:
            LOG.event(
                "sort.executed",
                executed=self.executed,
                strategy=self.order_strategy,
            )
        SLOWLOG.record(
            mark, "sort", strategy=self.order_strategy,
            stats=self.stats - before,
        )

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        child = self._child
        if child.ordering is not None and child.ordering.satisfies(self._spec):
            self.executed = "passthrough"
            self.order_strategy = "passthrough"
            arity = self._spec.arity
            for row, ovc in child:
                if ovc is None:
                    yield row, None
                elif ovc[0] >= arity:
                    yield row, (arity, 0)
                else:
                    yield row, ovc
            return

        mark = SLOWLOG.mark()
        mark_before = self.stats.snapshot()
        cache = self._cache()

        if child.ordering is not None:
            table = child.to_table()
            if cache is not None and table.ovcs is not None:
                served = self._serve(cache, table)
                if served is not None:
                    self._observe(mark, mark_before)
                    yield from _emit(served)
                    return
            before = self.stats.snapshot()
            result = modify_sort_order(
                table,
                self._spec,
                method=self._method,
                use_ovc=self._use_ovc and table.ovcs is not None,
                stats=self.stats,
                config=self._config.with_(
                    engine="fast" if self._engine == "fast" else "reference"
                ),
            )
            self.executed = "modify_sort_order"
            self.order_strategy = (
                f"modify({','.join(str(c) for c in child.ordering)})"
            )
            self._install(cache, result, self.stats - before)
            self._observe(mark, mark_before)
            yield from _emit(result)
            return

        rows = [row for row, _ovc in child]
        if (
            self._memory_capacity is not None
            and len(rows) > self._memory_capacity
        ):
            sorter = ExternalMergeSort(
                self._spec.positions(self.schema),
                memory_capacity=self._memory_capacity,
                fan_in=self._fan_in,
                use_ovc=self._use_ovc,
                directions=self._spec.directions,
            )
            result = sorter.sort(rows)
            self.executed = "external_sort"
            self.order_strategy = "external-sort"
            self.stats.merge(result.total_stats)
            self._observe(mark, mark_before)
            yield from zip(result.rows, result.ovcs or (None,) * len(result.rows))
            return

        if cache is not None:
            served = self._serve(cache, Table(self.schema, rows))
            if served is not None:
                self._observe(mark, mark_before)
                yield from _emit(served)
                return

        if self._engine == "fast":
            from ..fastpath.execute import fast_sort

            sorted_rows, ovcs = fast_sort(
                rows, self._spec.positions(self.schema), self._spec.directions
            )
            self.executed = "internal_sort"
            self.order_strategy = "full-sort"
            from ..ovc.stats import ComparisonStats

            self._install(
                cache,
                Table(self.schema, sorted_rows, self._spec, ovcs),
                ComparisonStats(),
            )
            self._observe(mark, mark_before)
            yield from zip(sorted_rows, ovcs)
            return

        before = self.stats.snapshot()
        sorted_rows, ovcs = tournament_sort(
            rows,
            self._spec.positions(self.schema),
            self.stats,
            self._spec.directions,
            self._use_ovc,
        )
        self.executed = "internal_sort"
        self.order_strategy = "full-sort"
        if ovcs is not None:
            self._install(
                cache,
                Table(self.schema, sorted_rows, self._spec, ovcs),
                self.stats - before,
            )
        self._observe(mark, mark_before)
        if ovcs is None:
            for row in sorted_rows:
                yield row, None
        else:
            yield from zip(sorted_rows, ovcs)

    def _children(self) -> list[Operator]:
        return [self._child]

    def _explain_detail(self) -> str:
        base = super()._explain_detail()
        if self.order_strategy is not None:
            return f"{base} [strategy: {self.order_strategy}]"
        return base


def _emit(table: Table) -> Iterator[tuple[tuple, tuple | None]]:
    if table.ovcs is None:
        for row in table.rows:
            yield row, None
    else:
        yield from zip(table.rows, table.ovcs)
