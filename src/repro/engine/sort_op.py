"""The Sort operator: the engine's order enforcer.

Given a required output order, Sort inspects the child's declared
ordering and offset-value codes and picks the cheapest path through the
paper's machinery:

* child already satisfies the order -> pass through (case 0, possibly
  re-coding onto the shorter key);
* related order -> :func:`repro.core.modify.modify_sort_order`
  (segmented sorting / merging pre-existing runs / combined);
* unordered child -> internal tournament sort, or external merge sort
  when a memory budget is configured and exceeded.

An :class:`~repro.exec.ExecutionConfig` selects how the in-memory
paths execute.  ``config.engine``: ``auto`` keeps the instrumented
reference executors (an operator's comparison counters are part of its
contract, so ``auto`` here means "reference"); ``fast`` routes order
modification and the internal sort through the packed-code kernels of
:mod:`repro.fastpath` — bit-identical rows and codes, counters left
untouched.  The external merge sort has no fast twin (spill accounting
is its point) and always runs the reference path.

``config.workers`` forwards to the order-modification path's parallel
subsystem (:mod:`repro.parallel`): segment-parallel strategies shard
across processes (with the config's retry/timeout policy), with worker
counters merged back into the operator's stats; everything else stays
serial automatically.  ``config.memory_budget`` governs the order
modification's buffered output (spill-to-disk under pressure).  The
standalone ``engine=``/``workers=`` kwargs are the config fields'
deprecated spellings.
"""

from __future__ import annotations

from typing import Iterator

from ..exec.compat import resolve_config
from ..exec.config import ExecutionConfig
from ..model import SortSpec, Table
from ..core.modify import modify_sort_order
from ..sorting.external import ExternalMergeSort
from ..sorting.internal import tournament_sort
from .operators import Operator


class Sort(Operator):
    """Enforce ``spec`` on the child stream."""

    def __init__(
        self,
        child: Operator,
        spec: SortSpec,
        method: str = "auto",
        use_ovc: bool = True,
        memory_capacity: int | None = None,
        fan_in: int = 16,
        engine: str | None = None,
        workers: int | str | None = None,
        config: ExecutionConfig | None = None,
    ) -> None:
        super().__init__(child.schema, spec, child.stats)
        self._config = resolve_config(config, engine=engine, workers=workers)
        if self._config.engine == "fast" and not use_ovc:
            raise ValueError(
                "the fast engine requires offset-value codes (use_ovc=True)"
            )
        self._child = child
        self._spec = spec
        self._method = method
        self._use_ovc = use_ovc
        self._memory_capacity = memory_capacity
        self._fan_in = fan_in
        self._engine = self._config.engine
        #: Strategy actually executed, for tests and EXPLAIN output.
        self.executed: str | None = None

    def __iter__(self) -> Iterator[tuple[tuple, tuple | None]]:
        child = self._child
        if child.ordering is not None and child.ordering.satisfies(self._spec):
            self.executed = "passthrough"
            arity = self._spec.arity
            for row, ovc in child:
                if ovc is None:
                    yield row, None
                elif ovc[0] >= arity:
                    yield row, (arity, 0)
                else:
                    yield row, ovc
            return

        if child.ordering is not None:
            table = child.to_table()
            result = modify_sort_order(
                table,
                self._spec,
                method=self._method,
                use_ovc=self._use_ovc and table.ovcs is not None,
                stats=self.stats,
                config=self._config.with_(
                    engine="fast" if self._engine == "fast" else "reference"
                ),
            )
            self.executed = "modify_sort_order"
            yield from _emit(result)
            return

        rows = [row for row, _ovc in child]
        if (
            self._memory_capacity is not None
            and len(rows) > self._memory_capacity
        ):
            sorter = ExternalMergeSort(
                self._spec.positions(self.schema),
                memory_capacity=self._memory_capacity,
                fan_in=self._fan_in,
                use_ovc=self._use_ovc,
                directions=self._spec.directions,
            )
            result = sorter.sort(rows)
            self.executed = "external_sort"
            self.stats.merge(result.total_stats)
            yield from zip(result.rows, result.ovcs or (None,) * len(result.rows))
            return

        if self._engine == "fast":
            from ..fastpath.execute import fast_sort

            sorted_rows, ovcs = fast_sort(
                rows, self._spec.positions(self.schema), self._spec.directions
            )
            self.executed = "internal_sort"
            yield from zip(sorted_rows, ovcs)
            return

        sorted_rows, ovcs = tournament_sort(
            rows,
            self._spec.positions(self.schema),
            self.stats,
            self._spec.directions,
            self._use_ovc,
        )
        self.executed = "internal_sort"
        if ovcs is None:
            for row in sorted_rows:
                yield row, None
        else:
            yield from zip(sorted_rows, ovcs)

    def _children(self) -> list[Operator]:
        return [self._child]


def _emit(table: Table) -> Iterator[tuple[tuple, tuple | None]]:
    if table.ovcs is None:
        for row in table.rows:
            yield row, None
    else:
        yield from zip(table.rows, table.ovcs)
