"""Offset-value code adjustment — the paper's novel arithmetic.

All functions here transform cached codes; none compares column values.
The rules (Section 3.4, Figures 7-9):

* **Merge rows** ("other rows"): the infix leaves its place between the
  prefix and the merge keys, so the offset simply drops by ``|X|``
  while the value part is retained.
* **Run heads**: the old code (which describes the difference to the
  *previous run*, in infix space) is saved for later derivation, and
  the row enters the merge coded ``(|P|, value of its first merge
  column)`` — the one place a column value must be extracted.
* **Duplicate/tail rows**: bypass the merge; their codes map
  positionally (unchanged, or clamped to "duplicate" where the output
  key ends earlier than the input key).
* **New duplicates in the merge keys**: when the merge finds rows from
  different runs equal through all merge keys, the loser's output code
  is *derived* from the saved run-head codes via the max-theorem and
  shifted behind the merge keys — no infix column is ever compared.
"""

from __future__ import annotations

from ..obs import METRICS
from ..ovc.codes import max_merge


def adjust_merge_row(ovc: tuple, infix_len: int) -> tuple:
    """Old code of an "other row" -> code for the new sort order."""
    offset, value = ovc
    return (offset - infix_len, value)


def map_bypass_ovc(
    ovc: tuple,
    prefix_len: int,
    infix_len: int,
    merge_len: int,
    tail_len: int,
    output_arity: int,
    infix_dropped: bool,
) -> tuple:
    """Output code for a duplicate/tail row that bypasses the merge.

    With a retained infix, a tail column occupies the same key position
    in input and output, so codes within the tail are unchanged; codes
    beyond the output key clamp to the duplicate code.  With a dropped
    infix every bypass row is an exact duplicate under the output key.
    """
    offset, value = ovc
    if infix_dropped:
        return (output_arity, 0)
    boundary = prefix_len + infix_len + merge_len
    if offset < boundary + tail_len:
        return (offset, value)
    return (output_arity, 0)


class RunHeadChain:
    """Saved run-head codes and cross-run code derivation.

    ``saved[j]`` is run ``j``'s head's *old* ascending code (input
    arity space) — relative to the last row of run ``j-1``; the
    segment head's code (run 0) is relative to whatever preceded the
    segment.  Because those offsets lie inside the prefix+infix region,
    the codes are insensitive to the base row's merge-key and tail
    columns, so they chain with the max-theorem:

        code(head_j | any row of run_i) = max(saved[i+1 .. j])

    Derived codes are then shifted into output positions: offsets
    inside the infix move behind the merge keys (``+|M|``); offsets
    inside the prefix (possible only when runs span segments, i.e. the
    merge-without-segmenting method) stay put.
    """

    def __init__(
        self,
        input_arity: int,
        output_arity: int,
        prefix_len: int,
        merge_len: int,
    ) -> None:
        self._saved: list[tuple] = []
        self._in_arity = input_arity
        self._out_arity = output_arity
        self._prefix_len = prefix_len
        self._merge_len = merge_len

    def __len__(self) -> int:
        return len(self._saved)

    def save(self, ovc: tuple) -> None:
        """Record the next run's head code (paper form, input arity)."""
        if METRICS.enabled:
            METRICS.counter("adjust.saved_run_heads").inc()
        offset, value = ovc
        remaining = self._in_arity - offset if offset < self._in_arity else 0
        self._saved.append((remaining, value))

    def head_ovc(self, run: int) -> tuple:
        """The saved paper-form code of run ``run``'s head."""
        remaining, value = self._saved[run]
        if remaining == 0:
            return (self._in_arity, 0)
        return (self._in_arity - remaining, value)

    def derive_output_code(self, winner_run: int, loser_run: int) -> tuple:
        """Ascending output-arity code of a loser equal to the winner
        through all merge keys, without comparing infix columns."""
        if not winner_run < loser_run:
            raise ValueError(
                f"derivation needs winner run {winner_run} < loser run {loser_run}"
            )
        if METRICS.enabled:
            # Each derivation is one cross-run tie resolved without
            # touching an infix column — the paper's Section 3.4 win.
            METRICS.counter("adjust.derived_codes").inc()
        code = self._saved[winner_run + 1]
        for j in range(winner_run + 2, loser_run + 1):
            code = max_merge(code, self._saved[j])
        remaining, value = code
        offset_in = self._in_arity - remaining
        if offset_in >= self._prefix_len:
            # Infix position: shifts behind the merge keys.
            offset_out = offset_in + self._merge_len
        else:
            # Prefix position (merge-without-segmenting): unchanged.
            offset_out = offset_in
        return (self._out_arity - offset_out, value)


def run_head_entry_code(
    prefix_len: int, first_merge_value, output_arity: int
) -> tuple:
    """Ascending code with which a run head enters the merge:
    offset ``|P|``, value extracted from the first merge column."""
    return (output_arity - prefix_len, first_merge_value)
