"""Run-time executor: merging pre-existing runs (Sections 3.2-3.4).

Given one segment (rows sharing the prefix ``P``) of an input sorted on
``P, X, M, T``, the rows with equal infix ``X`` form pre-existing runs
already sorted on the desired order ``P, M, X, T``.  This module
classifies rows via their old codes, adjusts codes for the new order,
merges the runs on a tournament tree, and emits output rows with valid
new codes — in the best case without a single column value comparison.

The same executor covers:

* cases 2/3 (no shared prefix — the whole input is one segment),
* the merge phase of cases 4-7 (driven per segment by
  :mod:`repro.core.modify`),
* the paper's Figure 11 "method 2" (merge without segmenting: runs are
  distinct ``P,X`` combinations over the whole input), via
  ``respect_prefix=False``,
* the instrumented no-code baseline of Figure 10 via ``use_ovc=False``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..obs import METRICS, TRACER
from ..ovc.codes import DUPLICATE, code_to_ovc
from ..ovc.compare import (
    make_ovc_entry_comparator,
    make_plain_entry_comparator,
)
from ..ovc.stats import ComparisonStats
from ..sorting.tournament import Entry, TreeOfLosers
from .adjust import RunHeadChain, map_bypass_ovc
from .analysis import ModificationPlan


def merge_preexisting_runs(
    rows: Sequence[tuple],
    ovcs: Sequence[tuple] | None,
    lo: int,
    hi: int,
    plan: ModificationPlan,
    out_project: Callable[[tuple], tuple],
    in_project: Callable[[tuple], tuple],
    stats: ComparisonStats,
    out_rows: list[tuple],
    out_ovcs: list[tuple] | None,
    use_ovc: bool = True,
    respect_prefix: bool = True,
    max_fan_in: int | None = None,
) -> None:
    """Merge the pre-existing runs of rows ``[lo, hi)`` into the output.

    ``out_project``/``in_project`` map a row to its normalized output /
    input key tuple.  With ``use_ovc`` the input must carry codes
    (``ovcs``); without, runs are detected by comparing infix columns
    of adjacent rows and the merge compares merge-key columns — the
    paper's baseline.  ``respect_prefix=False`` treats prefix changes
    as ordinary run boundaries (Figure 11's merge-only method).

    ``max_fan_in`` enables the paper's *graceful degradation*: when the
    input holds more pre-existing runs than a single merge step should
    carry, runs merge in waves of at most ``max_fan_in``, producing
    intermediate runs whose codes already live in the output key space
    (so later waves may compare infix columns — exactly the extra cost
    the paper accepts for multi-step merges).
    """
    if hi <= lo:
        return
    p = plan.prefix_len
    x = plan.infix_len
    m = plan.merge_len
    t = plan.tail_len
    k_in = plan.input_arity
    k_out = plan.output_arity
    dropped = plan.infix_dropped
    head_offset = p if respect_prefix else 0
    dup_boundary = p + x + m
    if max_fan_in is not None and max_fan_in < 2:
        raise ValueError("max_fan_in must be at least 2")

    with TRACER.span("segment.merge_runs", rows=hi - lo, use_ovc=use_ovc):
        if use_ovc:
            if ovcs is None:
                raise ValueError(
                    "offset-value codes required when use_ovc is set"
                )
            _merge_with_codes(
                rows, ovcs, lo, hi, plan, out_project, stats, out_rows,
                out_ovcs, p, x, m, t, k_in, k_out, dropped, head_offset,
                dup_boundary, max_fan_in,
            )
        else:
            _merge_baseline(
                rows, lo, hi, out_project, in_project, stats, out_rows,
                p, x, m, k_out, head_offset,
            )


def _merge_with_codes(
    rows, ovcs, lo, hi, plan, out_project, stats, out_rows, out_ovcs,
    p, x, m, t, k_in, k_out, dropped, head_offset, dup_boundary,
    max_fan_in=None,
):
    run_boundary = p + x
    chain = RunHeadChain(k_in, k_out, p, m)

    runs: list[list[Entry]] = []
    current: list[Entry] | None = None
    segment_head_ovc = ovcs[lo]

    for idx in range(lo, hi):
        row = rows[idx]
        offset, value = ovcs[idx]
        if idx == lo or offset < run_boundary:
            # First row in segment or in run: save the old code, enter
            # the merge with offset |P| and a value extracted from the
            # first merge column.
            chain.save((offset, value))
            okeys = out_project(row)
            stats.key_extractions += 1
            code = (k_out - head_offset, okeys[head_offset])
            current = []
            runs.append(current)
            current.append(Entry(okeys, code, row, len(runs) - 1))
        elif offset < dup_boundary:
            # Other row: offset drops by |X|, value retained.
            okeys = out_project(row)
            new_offset = offset - x
            current.append(
                Entry(okeys, (k_out - new_offset, value), row, len(runs) - 1)
            )
        else:
            # Duplicate/tail row: bypasses the merge glued to its
            # predecessor; its output code maps positionally.
            mapped = map_bypass_ovc(
                (offset, value), p, x, m, t, k_out, dropped
            )
            entry = current[-1]
            if entry.extra is None:
                entry.extra = []
            entry.extra.append((row, mapped))

    TRACER.annotate(runs=len(runs))
    if METRICS.enabled:
        # Fan-in of this merge plus the pre-existing run length
        # distribution — the work shape behind Figure 11's method 2/3.
        METRICS.histogram("merge.fan_in").observe(len(runs))
        run_rows = METRICS.histogram("merge.run_rows")
        for run_entries in runs:
            run_rows.observe(len(run_entries))

    def restricted_comparator(batch_base: int):
        def on_restricted_tie(a: Entry, b: Entry, a_wins: bool) -> tuple:
            # Rows from different runs, equal through all merge keys.
            # With a dropped infix they are new duplicates; otherwise
            # the loser's code describes the runs' infix difference,
            # derived from saved run-head codes without comparing any
            # infix column.
            if dropped:
                return DUPLICATE
            winner, loser = (a, b) if a_wins else (b, a)
            return chain.derive_output_code(
                batch_base + winner.run, batch_base + loser.run
            )

        limit = p + m if p + m < k_out else None
        return make_ovc_entry_comparator(
            k_out, stats, limit=limit, on_restricted_tie=on_restricted_tie
        )

    def merge_batch(batch: list[list[Entry]], compare) -> list[Entry]:
        for local, run_entries in enumerate(batch):
            for e in run_entries:
                e.run = local
        tree = TreeOfLosers([iter(r) for r in batch], compare)
        out = list(tree)
        # Every wave moves its rows once — the real cost of graceful
        # degradation (comparisons stay near n*log2(total runs)).
        stats.rows_moved += len(out)
        return out

    if max_fan_in is not None and len(runs) > max_fan_in:
        # Graceful degradation: merge waves of runs into intermediate
        # runs.  The first wave still never touches infix columns (the
        # run-head chain covers its batches); later waves hold codes in
        # full output-key space, so plain code comparison applies.
        if METRICS.enabled:
            METRICS.counter("merge.degraded_merges").inc()
        level: list[list[Entry]] = []
        for base in range(0, len(runs), max_fan_in):
            batch = runs[base : base + max_fan_in]
            level.append(merge_batch(batch, restricted_comparator(base)))
        while len(level) > max_fan_in:
            nxt: list[list[Entry]] = []
            plain = make_ovc_entry_comparator(k_out, stats)
            for base in range(0, len(level), max_fan_in):
                nxt.append(merge_batch(level[base : base + max_fan_in], plain))
            level = nxt
        final = merge_batch(level, make_ovc_entry_comparator(k_out, stats))
    else:
        final = merge_batch(runs, restricted_comparator(0))

    first_out = len(out_rows)
    for entry in final:
        out_rows.append(entry.row)
        out_ovcs.append(code_to_ovc(entry.code, k_out))
        if entry.extra is not None:
            for dup_row, dup_ovc in entry.extra:
                out_rows.append(dup_row)
                out_ovcs.append(dup_ovc)
                stats.rows_moved += 1
    if head_offset > 0 and len(out_rows) > first_out:
        # The segment's first output row inherits the code saved from
        # the segment's first input row: both describe the same prefix
        # difference against the preceding segment.
        out_ovcs[first_out] = segment_head_ovc


def _merge_baseline(
    rows, lo, hi, out_project, in_project, stats, out_rows,
    p, x, m, k_out, head_offset,
):
    """Merge pre-existing runs without codes (the paper's baseline).

    Run boundaries are found by comparing each row's prefix+infix
    columns with its predecessor's; the merge compares merge-key
    columns and resolves ties by run index (runs are infix-ordered, so
    this is both stable and correct for a retained infix).
    """
    run_boundary = p + x
    runs: list[list[Entry]] = []
    prev_ikeys: tuple | None = None
    current: list[Entry] | None = None
    for idx in range(lo, hi):
        row = rows[idx]
        ikeys = in_project(row)
        is_head = idx == lo
        if not is_head:
            stats.row_comparisons += 1
            boundary_at = run_boundary
            for c in range(run_boundary):
                stats.column_comparisons += 1
                if ikeys[c] != prev_ikeys[c]:
                    boundary_at = c
                    break
            is_head = boundary_at < run_boundary
        if is_head:
            current = []
            runs.append(current)
        current.append(Entry(out_project(row), None, row, len(runs) - 1))
        prev_ikeys = ikeys

    compare = make_plain_entry_comparator(p + m, stats, start=head_offset)
    tree = TreeOfLosers([iter(r) for r in runs], compare)
    for entry in tree:
        out_rows.append(entry.row)
        stats.rows_moved += 1
