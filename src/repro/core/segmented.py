"""Run-time executor: segmented sorting (Section 3.1, Figure 3).

The shared prefix partitions the input into segments; each segment is
sorted independently on the remaining desired columns, treating its
rows as unsorted.  Old codes contribute twice (hypothesis 2): segment
boundaries are detected from offsets alone, and every row enters the
segment sort with the code ``(|P|, value of the first post-prefix
desired column)`` — so comparisons inside the sort never touch the
prefix columns.

This is also Figure 11's "method 1": sort segments directly with a
tournament tree, disregarding pre-existing runs (each row is a run of
size one).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..obs import METRICS, TRACER
from ..ovc.codes import code_to_ovc
from ..ovc.compare import (
    make_ovc_entry_comparator,
    make_plain_entry_comparator,
)
from ..ovc.stats import ComparisonStats
from ..sorting.tournament import Entry, TreeOfLosers


def sort_segment(
    rows: Sequence[tuple],
    ovcs: Sequence[tuple] | None,
    lo: int,
    hi: int,
    prefix_len: int,
    output_arity: int,
    out_project: Callable[[tuple], tuple],
    stats: ComparisonStats,
    out_rows: list[tuple],
    out_ovcs: list[tuple] | None,
    use_ovc: bool = True,
    skip_prefix: bool = True,
) -> None:
    """Sort rows ``[lo, hi)`` (one segment) on the desired order.

    With ``use_ovc`` every row enters coded ``(|P|, first post-prefix
    value)`` and the tournament maintains codes from there; the output
    rows land in ``out_rows`` with fresh codes in ``out_ovcs`` and the
    segment's first output row inherits the saved segment-head code.

    Without codes, the baseline compares column values; ``skip_prefix``
    selects whether the baseline is smart enough to skip the constant
    prefix columns (both variants appear in the paper's hypothesis 2
    discussion).
    """
    if hi <= lo:
        return
    if METRICS.enabled:
        METRICS.histogram("segment.rows").observe(hi - lo)
    with TRACER.span("segment.sort", rows=hi - lo, prefix_len=prefix_len):
        _sort_segment(
            rows, ovcs, lo, hi, prefix_len, output_arity, out_project,
            stats, out_rows, out_ovcs, use_ovc, skip_prefix,
        )


def _sort_segment(
    rows, ovcs, lo, hi, prefix_len, output_arity, out_project,
    stats, out_rows, out_ovcs, use_ovc, skip_prefix,
) -> None:
    p = prefix_len
    k_out = output_arity

    if p >= k_out:
        # The shared prefix covers the whole desired key: all rows of
        # the segment are duplicates under the new order; copy through.
        out_rows.extend(rows[lo:hi])
        if use_ovc:
            out_ovcs.append(ovcs[lo])
            out_ovcs.extend([(k_out, 0)] * (hi - lo - 1))
        return

    if use_ovc:
        if ovcs is None:
            raise ValueError("offset-value codes required when use_ovc is set")
        segment_head_ovc = ovcs[lo]
        entries = []
        for run, idx in enumerate(range(lo, hi)):
            row = rows[idx]
            okeys = out_project(row)
            stats.key_extractions += 1
            entries.append(Entry(okeys, (k_out - p, okeys[p]), row, run))
        compare = make_ovc_entry_comparator(k_out, stats)
        tree = TreeOfLosers([iter((e,)) for e in entries], compare)
        first_out = len(out_rows)
        for entry in tree:
            out_rows.append(entry.row)
            out_ovcs.append(code_to_ovc(entry.code, k_out))
            stats.rows_moved += 1
        if p > 0:
            out_ovcs[first_out] = segment_head_ovc
        # With p == 0 the first popped entry still carries its initial
        # code (0, first key value) — it never lost a match — which is
        # exactly the whole-output first-row convention.
        return

    start = p if skip_prefix else 0
    entries = [
        Entry(out_project(rows[idx]), None, rows[idx], run)
        for run, idx in enumerate(range(lo, hi))
    ]
    compare = make_plain_entry_comparator(k_out, stats, start=start)
    tree = TreeOfLosers([iter((e,)) for e in entries], compare)
    for entry in tree:
        out_rows.append(entry.row)
        stats.rows_moved += 1
