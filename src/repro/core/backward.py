"""Backward scans of sorted data (Section 3.5's generalization).

A table sorted on ``(A, B DESC)`` read *backwards* is sorted on
``(A DESC, B)`` — every direction flips.  Crucially, the offset-value
codes survive the reversal without any comparison: the code of row
``i`` in the reversed stream describes its difference from the old row
``i+1``, whose *offset* is exactly the old code of row ``i+1`` (shared
prefixes are symmetric); only the value must be re-extracted from the
row itself (and re-normalized for the flipped direction).

This turns, e.g., an existing order ``A DESC, B DESC`` into usable
structure for a desired order ``A, C, B`` — first reverse, then apply
the ordinary machinery.
"""

from __future__ import annotations

from ..model import SortSpec, Table, normalize_value
from ..ovc.stats import ComparisonStats


def reversed_spec(spec: SortSpec) -> SortSpec:
    """The sort order of the same data read back to front."""
    return SortSpec(tuple(col.reversed() for col in spec.columns))


def reverse_table(table: Table, stats: ComparisonStats | None = None) -> Table:
    """Reverse a sorted, coded table — zero column comparisons.

    The result is sorted (and coded) on :func:`reversed_spec` of the
    input's order.  Each output code costs at most one key-column
    extraction; exact duplicates cost nothing.
    """
    if table.sort_spec is None:
        raise ValueError("backward scan requires a sorted table")
    table.with_ovcs()
    stats = stats if stats is not None else ComparisonStats()

    spec = table.sort_spec
    new_spec = reversed_spec(spec)
    positions = spec.positions(table.schema)
    new_directions = new_spec.directions
    arity = spec.arity
    n = len(table.rows)

    new_rows = list(reversed(table.rows))
    new_ovcs: list[tuple] = []
    for j, row in enumerate(new_rows):
        if j == 0:
            offset = 0
        else:
            # The difference between reversed rows j-1 and j is the
            # difference between original rows i+1 and i — recorded in
            # the original code of row i+1 = new row j-1.
            i_plus_1 = n - j  # original index of new row j-1
            offset = table.ovcs[i_plus_1][0]
        if offset >= arity:
            new_ovcs.append((arity, 0))
            continue
        value = row[positions[offset]]
        stats.key_extractions += 1
        new_ovcs.append((offset, normalize_value(value, new_directions[offset])))
    return Table(table.schema, new_rows, new_spec, new_ovcs)
