"""Cost model for choosing an order-modification method (Section 3.5).

The compile-time decision "exploit the pre-existing sort order or just
sort?" is cost-based, driven by segment and run counts (counts of
distinct prefix/infix values).  Comparison counts follow the classic
tournament-tree bound — about ``n * log2(k)`` comparisons to merge
``n`` rows from ``k`` inputs, and ``n * log2(n/e)`` to sort ``n`` rows
outright — plus I/O terms when the data exceeds sort memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .analysis import ModificationPlan, Strategy


def _nlogk(n: float, k: float) -> float:
    if n <= 0 or k <= 1:
        return 0.0
    return n * math.log2(k)


def sort_comparisons(n: float) -> float:
    """Lower-bound-ish comparisons for sorting n rows from scratch."""
    if n <= 1:
        return 0.0
    return n * math.log2(n / math.e)


@dataclass(frozen=True)
class CostEstimate:
    strategy: Strategy
    row_comparisons: float
    io_pages: float

    @property
    def total(self) -> float:
        # A page transfer is charged like a few hundred comparisons —
        # crude, but only relative order matters for the decision.
        return self.row_comparisons + 256.0 * self.io_pages


@dataclass
class CostModel:
    """Estimates for the four executable strategies.

    Parameters are data statistics the optimizer would know from
    catalog information: row count, distinct prefix values (segments)
    and distinct prefix+infix values (runs), plus the sort memory and
    merge fan-in of the execution engine.
    """

    n_rows: int
    n_segments: int
    n_runs: int
    memory_capacity: int = 1 << 20
    fan_in: int = 128
    page_rows: int = 256

    def _external_io(self, rows_to_sort: float, runs: float) -> float:
        """Pages written+read across merge levels for an external sort."""
        if rows_to_sort <= self.memory_capacity or runs <= 1:
            return 0.0
        levels = math.ceil(math.log(max(runs, 2), self.fan_in))
        return 2.0 * levels * rows_to_sort / self.page_rows

    def full_sort(self) -> CostEstimate:
        n = self.n_rows
        comparisons = sort_comparisons(n)
        initial_runs = max(1.0, n / max(self.memory_capacity, 1))
        io = self._external_io(n, initial_runs)
        if initial_runs > 1:
            comparisons += _nlogk(n, initial_runs)
        return CostEstimate(Strategy.FULL_SORT, comparisons, io)

    def segment_sort(self) -> CostEstimate:
        n, s = self.n_rows, max(self.n_segments, 1)
        per_segment = n / s
        comparisons = s * sort_comparisons(per_segment)
        io = s * self._external_io(per_segment, per_segment / max(self.memory_capacity, 1))
        return CostEstimate(Strategy.SEGMENT_SORT, comparisons, io)

    def merge_runs(self) -> CostEstimate:
        n, r = self.n_rows, max(self.n_runs, 1)
        comparisons = _nlogk(n, r)
        # Graceful degradation: extra merge levels beyond the fan-in.
        if r > self.fan_in:
            levels = math.ceil(math.log(r, self.fan_in))
            comparisons = levels * _nlogk(n, self.fan_in)
        return CostEstimate(Strategy.MERGE_RUNS, comparisons, 0.0)

    def combined(self) -> CostEstimate:
        n = self.n_rows
        s = max(self.n_segments, 1)
        runs_per_segment = max(self.n_runs / s, 1.0)
        per_segment = n / s
        comparisons = s * _nlogk(per_segment, runs_per_segment)
        if runs_per_segment > self.fan_in:
            levels = math.ceil(math.log(runs_per_segment, self.fan_in))
            comparisons = s * levels * _nlogk(per_segment, self.fan_in)
        return CostEstimate(Strategy.COMBINED, comparisons, 0.0)

    def modify_from(self, plan: ModificationPlan) -> CostEstimate:
        """Cheapest way to reach ``plan.output_spec`` by *modifying* an
        existing order described by ``plan`` — the order cache's
        candidate estimate (vs. :meth:`full_sort`).

        Only the structural strategies the plan's decomposition
        supports compete; a plan with no exploitable structure prices
        as a full sort, so callers can compare candidates and the
        from-scratch baseline through one method.
        """
        if plan.strategy is Strategy.NOOP:
            return CostEstimate(Strategy.NOOP, 0.0, 0.0)
        candidates: list[CostEstimate] = []
        if plan.prefix_len > 0:
            candidates.append(self.segment_sort())
        if plan.merge_len > 0:
            candidates.append(self.merge_runs())
            if plan.prefix_len > 0:
                candidates.append(self.combined())
        if not candidates:
            return self.full_sort()
        return min(candidates, key=lambda c: c.total)

    def estimate(self, strategy: Strategy) -> CostEstimate:
        if strategy is Strategy.FULL_SORT:
            return self.full_sort()
        if strategy is Strategy.SEGMENT_SORT:
            return self.segment_sort()
        if strategy is Strategy.MERGE_RUNS:
            return self.merge_runs()
        if strategy is Strategy.COMBINED:
            return self.combined()
        return CostEstimate(Strategy.NOOP, 0.0, 0.0)


def counts_to_structure(
    offset_counts: Sequence[int], prefix_len: int, infix_len: int
) -> tuple[int, int]:
    """Segment and run counts from a per-offset code histogram.

    ``offset_counts[k]`` is the number of codes with offset exactly
    ``k`` in some sorted order (the order cache stores one histogram
    per entry at install time).  A code with offset below ``p`` starts
    a new distinct value of the first ``p`` columns, so the counts of
    distinct prefix values (segments) and distinct prefix+infix values
    (pre-existing runs) fall out by prefix summation — and distinct
    counts are direction-independent, so backward plans price the same.
    """
    n_segments = max(1, sum(offset_counts[:prefix_len]))
    n_runs = max(n_segments, sum(offset_counts[: prefix_len + infix_len]))
    return n_segments, n_runs


def estimate_costs(
    plan: ModificationPlan,
    n_rows: int,
    n_segments: int,
    n_runs: int,
    memory_capacity: int = 1 << 20,
    fan_in: int = 128,
) -> list[CostEstimate]:
    """All strategies applicable to ``plan``, cheapest first.

    The structural strategies are only offered when the plan's
    decomposition supports them; a full sort is always possible.
    """
    model = CostModel(n_rows, n_segments, n_runs, memory_capacity, fan_in)
    candidates = [model.full_sort()]
    if plan.strategy is Strategy.NOOP:
        return [CostEstimate(Strategy.NOOP, 0.0, 0.0)]
    if plan.prefix_len > 0:
        candidates.append(model.segment_sort())
    if plan.merge_len > 0:
        candidates.append(model.merge_runs())
        if plan.prefix_len > 0:
            candidates.append(model.combined())
    return sorted(candidates, key=lambda c: c.total)
