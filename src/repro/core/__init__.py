"""The paper's contribution: modifying an existing sort order.

Pipeline:

1. :mod:`~repro.core.analysis` (compile time) — compare the existing
   and desired sort orders; decompose into shared prefix, infix (run
   definer), merge keys, and common tail; pick a Table 1 case and an
   execution strategy.
2. :mod:`~repro.core.classify` — split the input into segments and
   pre-existing runs purely from old offset-value codes.
3. :mod:`~repro.core.adjust` — rewrite old codes into codes for the new
   sort order (offset arithmetic, run-head derivation via the
   max-theorem) without column comparisons.
4. :mod:`~repro.core.merge_runs`, :mod:`~repro.core.segmented` —
   run-time executors; :mod:`~repro.core.modify` dispatches.
5. :mod:`~repro.core.cost` — cost model backing the ``auto`` method.
"""

from .analysis import ModificationPlan, Strategy, analyze_order_modification
from .classify import RowClass, classify_row, split_segments
from .modify import modify_sort_order
from .external_modify import modify_sort_order_external
from .backward import reverse_table, reversed_spec
from .cost import CostModel, estimate_costs

__all__ = [
    "ModificationPlan",
    "Strategy",
    "analyze_order_modification",
    "RowClass",
    "classify_row",
    "split_segments",
    "modify_sort_order",
    "modify_sort_order_external",
    "reverse_table",
    "reversed_spec",
    "CostModel",
    "estimate_costs",
]
