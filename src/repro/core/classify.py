"""Row classification from old offset-value codes (Figure 6).

Within one segment, the paper classifies each input row purely by its
old code's offset — no column value is ever inspected:

* ``offset < |P|`` — **first row in segment** (only the segment's
  first row qualifies);
* ``|P| <= offset < |P|+|X|`` — **first row in run** (a new distinct
  infix value starts a pre-existing run);
* ``|P|+|X| <= offset < |P|+|X|+|M|`` — **other row**: already in
  merge order behind its run predecessor;
* ``offset >= |P|+|X|+|M|`` — **duplicate/tail row**: equal to its
  predecessor through the merge keys; it bypasses the merge logic and
  immediately follows its predecessor into the output.
"""

from __future__ import annotations

import enum
from typing import Iterator, Sequence


class RowClass(enum.Enum):
    SEGMENT_HEAD = "first row in segment"
    RUN_HEAD = "first row in run"
    MERGE_ROW = "other row"
    DUPLICATE = "duplicate row"


def classify_row(
    offset: int, prefix_len: int, infix_len: int, merge_len: int
) -> RowClass:
    """Classify one row by its old code offset (segment-relative)."""
    if offset < prefix_len:
        return RowClass.SEGMENT_HEAD
    if offset < prefix_len + infix_len:
        return RowClass.RUN_HEAD
    if offset < prefix_len + infix_len + merge_len:
        return RowClass.MERGE_ROW
    return RowClass.DUPLICATE


def split_segments(
    ovcs: Sequence[tuple], prefix_len: int, n_rows: int | None = None
) -> Iterator[tuple[int, int]]:
    """Yield ``[start, end)`` row ranges of segments, from codes alone.

    A segment starts wherever the old code's offset drops below the
    shared prefix length.  With ``prefix_len == 0`` the whole input is
    one segment.
    """
    n = len(ovcs) if n_rows is None else n_rows
    if n == 0:
        return
    if prefix_len == 0:
        yield (0, n)
        return
    start = 0
    for i in range(1, n):
        if ovcs[i][0] < prefix_len:
            yield (start, i)
            start = i
    yield (start, n)
