"""Public entry point: modify a table's sort order.

:func:`modify_sort_order` analyzes the existing vs. desired sort
orders, picks (or is told) a strategy, and executes it:

* ``noop`` — the existing order satisfies the request; codes are
  projected onto the (possibly shorter) new key without comparisons.
* ``segment_sort`` — segmented sorting (Figure 11 method 1).
* ``merge_runs`` — merge pre-existing runs over the whole input,
  ignoring any shared prefix (Figure 11 method 2).
* ``combined`` — segments from the prefix, pre-existing runs merged
  within each segment (Figure 11 method 3).
* ``full_sort`` — tournament sort from scratch, the honest fallback.
* ``auto`` — compile-time analysis plus the cost model decide.

Orthogonal to the strategy, an :class:`~repro.exec.ExecutionConfig`
selects *how* the chosen strategy executes — engine (reference vs.
packed-code fast path), worker processes, merge fan-in cap, memory
budget with spill-to-disk, and the pool's retry/timeout policy::

    from repro.exec import ExecutionConfig

    cfg = ExecutionConfig(workers=4, memory_budget="64MiB")
    result = modify_sort_order(table, new_order, config=cfg)

The pre-4 ``engine=`` / ``workers=`` / ``max_fan_in=`` kwargs are
gone after their one-release deprecation cycle; a stale call site gets
a ``TypeError`` naming the config field (:mod:`repro.exec.compat`).

With a memory budget, buffered output runs are charged to a
:class:`~repro.exec.memory.MemoryAccountant` and spill to disk
whenever the budget is exceeded; governed runs return bit-identical
rows, codes, *and* comparison counts — the budget changes where bytes
live, never what work happens.
"""

from __future__ import annotations

from typing import Sequence

from ..exec.buffers import GovernedSink
from ..exec.compat import resolve_config
from ..exec.config import ExecutionConfig
from ..exec.memory import MemoryAccountant, activate
from ..exec.spill import SpillManager
from ..model import SortSpec, Table
from ..obs import LOG, METRICS, SLOWLOG, TRACER
from ..ovc.derive import project_ovcs
from ..ovc.stats import ComparisonStats
from ..sorting.merge import _key_projector
from .analysis import ModificationPlan, Strategy, analyze_order_modification
from .classify import split_segments
from .cost import estimate_costs
from .merge_runs import merge_preexisting_runs
from .segmented import sort_segment

_METHODS = {
    "auto",
    "noop",
    "segment_sort",
    "merge_runs",
    "combined",
    "full_sort",
}


def modify_sort_order(
    table: Table,
    new_order: SortSpec | Sequence[str],
    method: str = "auto",
    use_ovc: bool = True,
    stats: ComparisonStats | None = None,
    config: ExecutionConfig | None = None,
    **legacy,
) -> Table:
    """Return ``table``'s rows sorted on ``new_order``.

    The input table must be sorted (per its ``sort_spec``); with
    ``use_ovc`` it must carry offset-value codes (derived on demand via
    :meth:`Table.with_ovcs`).  The result carries fresh codes for the
    new order when ``use_ovc`` is set.

    ``method`` forces a strategy; ``auto`` uses the compile-time
    analysis and, where the decomposition leaves a choice, the cost
    model.  Stable strategies preserve the input order among rows equal
    under the new key.

    ``config`` governs execution (see :class:`repro.exec.
    ExecutionConfig`); when omitted, the environment-aware default
    applies.  Its fields:

    * ``engine`` — ``reference`` (instrumented), ``fast`` (packed-code
      kernels, bit-identical output, no counters), or ``auto`` — fast
      exactly when no ``stats`` collector was passed, ``use_ovc`` is
      set, and no fan-in cap is configured.  A forced ``fast`` engine
      leaves any passed ``stats`` untouched and executes a fan-in cap
      as a single-wave merge.  With ``engine="auto"``, key columns the
      packed codec cannot rank (mixed value types, ``None``) fall back
      to the reference executors — reusing the already-computed segment
      boundaries, so classification runs exactly once per call; a
      forced ``fast`` engine propagates the ``TypeError``.
    * ``workers`` — shards segment-parallel strategies across processes
      (:mod:`repro.parallel`) with the config's retry/timeout policy;
      output stays bit-identical, and tiny inputs, single-segment jobs,
      and unshardable strategies fall back to serial automatically.
    * ``max_fan_in`` — caps the runs merged per step (graceful
      degradation to multi-step merges beyond it).
    * ``memory_budget`` / ``spill_dir`` — buffered output runs spill to
      disk whenever live charges exceed the budget; rows, codes, and
      comparison counts are unaffected.

    The standalone ``engine=`` / ``workers=`` / ``max_fan_in=`` kwargs
    were removed after their deprecation release; passing one raises a
    ``TypeError`` naming the config field to use instead.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(_METHODS)}")
    cfg = resolve_config(config, "modify_sort_order", **legacy)
    if cfg.engine == "fast" and not use_ovc:
        raise ValueError("the fast engine requires offset-value codes (use_ovc=True)")
    if table.sort_spec is None:
        raise ValueError("input table must declare its sort order")
    new_spec = new_order if isinstance(new_order, SortSpec) else SortSpec(new_order)
    with LOG.query_scope():
        mark = SLOWLOG.mark()
        with TRACER.span(
            "modify",
            rows=len(table.rows),
            method=method,
            engine=cfg.engine,
            use_ovc=use_ovc,
            governed=cfg.governed,
        ):
            if not cfg.governed:
                result = _modify(table, new_spec, method, use_ovc, stats, cfg, None)
            else:
                accountant = MemoryAccountant(cfg.memory_budget)
                with SpillManager(cfg.spill_dir) as spill, activate(accountant):
                    sink = GovernedSink(accountant, spill)
                    result = _modify(
                        table, new_spec, method, use_ovc, stats, cfg, sink
                    )
        if mark is not None:
            # Slow path only: the structural strategy is a cheap pure
            # function of the two specs.
            strategy = method
            if method == "auto":
                plan = analyze_order_modification(table.sort_spec, new_spec)
                strategy = plan.strategy.name.lower()
            SLOWLOG.record(
                mark, "modify", strategy=strategy, stats=stats,
                rows=len(table.rows),
            )
        return result


def _modify(
    table: Table,
    new_spec: SortSpec,
    method: str,
    use_ovc: bool,
    stats: ComparisonStats | None,
    cfg: ExecutionConfig,
    sink: GovernedSink | None,
) -> Table:
    plan = analyze_order_modification(table.sort_spec, new_spec)
    max_fan_in = cfg.max_fan_in
    use_fast = cfg.engine == "fast" or (
        cfg.engine == "auto" and use_ovc and stats is None and max_fan_in is None
    )
    caller_stats = stats
    stats = stats if stats is not None else ComparisonStats()

    if plan.backward:
        # Read the input back to front (comparison-free, codes kept)
        # and re-plan against the reversed order.
        from .backward import reverse_table, reversed_spec

        with TRACER.span("modify.backward", rows=len(table.rows)):
            if use_ovc:
                table = reverse_table(table.with_ovcs(), stats)
            else:
                table = Table(
                    table.schema,
                    list(reversed(table.rows)),
                    reversed_spec(table.sort_spec),
                )
        plan = analyze_order_modification(
            table.sort_spec, new_spec, allow_backward=False
        )

    if use_ovc:
        table.with_ovcs()

    strategy = _resolve_strategy(plan, method, table, stats)
    TRACER.annotate(strategy=strategy.name.lower())
    if LOG.enabled:
        LOG.event(
            "modify.strategy",
            strategy=strategy.name.lower(),
            method=method,
            rows=len(table.rows),
            engine=cfg.engine,
            prefix_len=plan.prefix_len,
            merge_len=plan.merge_len,
        )

    rows, ovcs = table.rows, table.ovcs
    n = len(rows)
    out_positions = new_spec.positions(table.schema)
    out_project = _key_projector(out_positions, new_spec.directions)
    in_positions = table.sort_spec.positions(table.schema)
    in_project = _key_projector(in_positions, table.sort_spec.directions)

    # Segment boundaries are computed exactly once per call and shared
    # by every executor — the shard planner, the fast path, and the
    # reference path (including the engine="auto" TypeError fallback,
    # which must not re-classify the input it already classified).
    boundaries: list[tuple[int, int]] | None = None
    if strategy in (Strategy.SEGMENT_SORT, Strategy.COMBINED):
        boundaries = _segments(table, plan, use_ovc, in_project, stats)

    if cfg.workers not in (None, 0, 1) and use_ovc:
        from ..parallel.api import parallel_modify

        result = parallel_modify(
            table, new_spec, plan, strategy, cfg.workers,
            stats=caller_stats, config=cfg, segments=boundaries, sink=sink,
        )
        if result is not None:
            return result

    if use_fast:
        from ..fastpath.execute import fast_modify

        try:
            return fast_modify(
                table, new_spec, plan, strategy,
                segments=boundaries, sink=sink,
            )
        except TypeError:
            if cfg.engine == "fast":
                raise
            # engine="auto" met key values the packed codec cannot rank
            # (mixed types in one column, None): the reference
            # executors below compare only values that actually meet in
            # a tournament, so they can still succeed — on the segment
            # boundaries already computed above.

    out_rows: list[tuple] = []
    out_ovcs: list[tuple] | None = [] if use_ovc else None

    if strategy is Strategy.NOOP:
        if sink is not None:
            sink.absorb_iter(
                list(rows), project_ovcs(ovcs, new_spec.arity) if use_ovc else None
            )
            out_rows, out_ovcs = _materialized(sink, use_ovc)
            return Table(table.schema, out_rows, new_spec, out_ovcs)
        out_rows = list(rows)
        if use_ovc:
            out_ovcs = project_ovcs(ovcs, new_spec.arity)
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    if strategy is Strategy.FULL_SORT:
        with TRACER.span("modify.full_sort", rows=n):
            for lo, hi in ((0, n),) if n else ():
                sort_segment(
                    rows, ovcs, lo, hi, 0, new_spec.arity, out_project,
                    stats, out_rows, out_ovcs, use_ovc,
                )
        if sink is not None:
            sink.absorb_iter(out_rows, out_ovcs)
            out_rows, out_ovcs = _materialized(sink, use_ovc)
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    if strategy is Strategy.SEGMENT_SORT:
        with TRACER.span("modify.segment_sort", segments=len(boundaries)):
            for lo, hi in boundaries:
                if sink is not None:
                    seg_rows: list[tuple] = []
                    seg_ovcs: list[tuple] | None = [] if use_ovc else None
                    sort_segment(
                        rows, ovcs, lo, hi, plan.prefix_len, new_spec.arity,
                        out_project, stats, seg_rows, seg_ovcs, use_ovc,
                    )
                    sink.absorb(seg_rows, seg_ovcs)
                else:
                    sort_segment(
                        rows, ovcs, lo, hi, plan.prefix_len, new_spec.arity,
                        out_project, stats, out_rows, out_ovcs, use_ovc,
                    )
        if sink is not None:
            out_rows, out_ovcs = _materialized(sink, use_ovc)
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    if strategy is Strategy.MERGE_RUNS:
        # One pass over the whole input; prefix columns (if any) join
        # the infix in defining runs.
        with TRACER.span("modify.merge_runs", rows=n):
            if n:
                merge_preexisting_runs(
                    rows, ovcs, 0, n, plan, out_project, in_project,
                    stats, out_rows, out_ovcs, use_ovc, respect_prefix=False,
                    max_fan_in=max_fan_in,
                )
        if sink is not None:
            sink.absorb_iter(out_rows, out_ovcs)
            out_rows, out_ovcs = _materialized(sink, use_ovc)
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    # COMBINED: segments from the prefix, merge runs within each.
    with TRACER.span("modify.combined", segments=len(boundaries)):
        for lo, hi in boundaries:
            if sink is not None:
                seg_rows = []
                seg_ovcs = [] if use_ovc else None
                merge_preexisting_runs(
                    rows, ovcs, lo, hi, plan, out_project, in_project,
                    stats, seg_rows, seg_ovcs, use_ovc, respect_prefix=True,
                    max_fan_in=max_fan_in,
                )
                sink.absorb(seg_rows, seg_ovcs)
            else:
                merge_preexisting_runs(
                    rows, ovcs, lo, hi, plan, out_project, in_project,
                    stats, out_rows, out_ovcs, use_ovc, respect_prefix=True,
                    max_fan_in=max_fan_in,
                )
    if sink is not None:
        out_rows, out_ovcs = _materialized(sink, use_ovc)
    return Table(table.schema, out_rows, new_spec, out_ovcs)


def _materialized(sink, use_ovc):
    """Materialize the sink, preserving the ungoverned empty-input
    contract: codes requested -> an empty list, never ``None``."""
    out_rows, out_ovcs = sink.materialize()
    if use_ovc and out_ovcs is None:
        out_ovcs = []
    return out_rows, out_ovcs


def _resolve_strategy(
    plan: ModificationPlan, method: str, table: Table, stats: ComparisonStats
) -> Strategy:
    if method == "noop":
        if plan.strategy is not Strategy.NOOP:
            raise ValueError(
                "noop requested but the existing order does not satisfy "
                f"the desired order ({plan.describe()})"
            )
        return Strategy.NOOP
    if method == "full_sort":
        return Strategy.FULL_SORT
    if method == "segment_sort":
        if plan.prefix_len == 0 and plan.strategy is not Strategy.NOOP:
            raise ValueError("segment_sort requires a shared key prefix")
        return Strategy.SEGMENT_SORT
    if method == "merge_runs":
        if plan.merge_len == 0:
            raise ValueError(
                "merge_runs requires pre-existing runs "
                f"(plan: {plan.describe()})"
            )
        return Strategy.MERGE_RUNS
    if method == "combined":
        if plan.merge_len == 0 or plan.prefix_len == 0:
            raise ValueError(
                "combined requires both a shared prefix and merge keys "
                f"(plan: {plan.describe()})"
            )
        return Strategy.COMBINED
    # auto: trust the structural analysis; consult the cost model when
    # several structural strategies apply.
    if plan.strategy in (Strategy.NOOP, Strategy.FULL_SORT):
        return plan.strategy
    if plan.strategy is Strategy.SEGMENT_SORT:
        return plan.strategy
    if plan.strategy is Strategy.MERGE_RUNS:
        return plan.strategy
    # COMBINED decompositions admit all four methods; estimate quickly.
    n = len(table)
    if n == 0:
        return plan.strategy
    ovcs = table.ovcs
    if ovcs is not None:
        p, px = plan.prefix_len, plan.prefix_len + plan.infix_len
        n_segments = sum(1 for off, _v in ovcs if off < p)
        n_runs = sum(1 for off, _v in ovcs if off < px)
    else:
        n_segments = max(1, int(n ** 0.5))
        n_runs = n_segments
    estimates = {e.strategy: e for e in estimate_costs(plan, n, n_segments, n_runs)}
    # Exploiting both structures is the paper's consistent winner
    # (Figure 11); the cost-based decision of Section 3.5 is whether to
    # exploit the pre-existing order at all, so only a clear margin for
    # sorting from scratch overrides the structural plan.
    planned = estimates[Strategy.COMBINED]
    if estimates[Strategy.FULL_SORT].total < 0.5 * planned.total:
        return Strategy.FULL_SORT
    return Strategy.COMBINED


def _segments(table, plan, use_ovc, in_project, stats):
    """Segment boundaries — from codes when available, else by
    comparing prefix columns of adjacent rows (counted)."""
    with TRACER.span("modify.classify", prefix_len=plan.prefix_len) as sp:
        boundaries = _segment_boundaries(table, plan, use_ovc, in_project, stats)
        sp.set(segments=len(boundaries))
    if METRICS.enabled:
        hist = METRICS.histogram("modify.segment_rows")
        for lo, hi in boundaries:
            hist.observe(hi - lo)
    return boundaries


def _segment_boundaries(table, plan, use_ovc, in_project, stats):
    n = len(table.rows)
    if use_ovc:
        return list(split_segments(table.ovcs, plan.prefix_len, n))
    p = plan.prefix_len
    if p == 0 or n == 0:
        return [(0, n)] if n else []
    boundaries = []
    start = 0
    prev = in_project(table.rows[0])
    for i in range(1, n):
        cur = in_project(table.rows[i])
        stats.row_comparisons += 1
        for c in range(p):
            stats.column_comparisons += 1
            if cur[c] != prev[c]:
                boundaries.append((start, i))
                start = i
                break
        prev = cur
    boundaries.append((start, n))
    return boundaries
