"""Public entry point: modify a table's sort order.

:func:`modify_sort_order` analyzes the existing vs. desired sort
orders, picks (or is told) a strategy, and executes it:

* ``noop`` — the existing order satisfies the request; codes are
  projected onto the (possibly shorter) new key without comparisons.
* ``segment_sort`` — segmented sorting (Figure 11 method 1).
* ``merge_runs`` — merge pre-existing runs over the whole input,
  ignoring any shared prefix (Figure 11 method 2).
* ``combined`` — segments from the prefix, pre-existing runs merged
  within each segment (Figure 11 method 3).
* ``full_sort`` — tournament sort from scratch, the honest fallback.
* ``auto`` — compile-time analysis plus the cost model decide.

Orthogonal to the strategy, ``engine`` selects *how* the chosen
strategy executes:

* ``reference`` — the instrumented executors (tournament trees,
  per-comparison counters): the path that demonstrates the paper's
  comparison economics.
* ``fast`` — the packed-code batch kernels of :mod:`repro.fastpath`:
  bit-identical rows and codes, no counters, several times faster.
* ``auto`` — ``fast`` whenever the caller did not ask for anything
  only the reference path provides: no ``stats`` collector was passed,
  codes are in use, and no ``max_fan_in`` cap was requested.
"""

from __future__ import annotations

from typing import Sequence

from ..model import SortSpec, Table
from ..obs import METRICS, TRACER
from ..ovc.derive import project_ovcs
from ..ovc.stats import ComparisonStats
from ..sorting.merge import _key_projector
from .analysis import ModificationPlan, Strategy, analyze_order_modification
from .classify import split_segments
from .cost import estimate_costs
from .merge_runs import merge_preexisting_runs
from .segmented import sort_segment

_METHODS = {
    "auto",
    "noop",
    "segment_sort",
    "merge_runs",
    "combined",
    "full_sort",
}

_ENGINES = {"auto", "reference", "fast"}


def modify_sort_order(
    table: Table,
    new_order: SortSpec | Sequence[str],
    method: str = "auto",
    use_ovc: bool = True,
    stats: ComparisonStats | None = None,
    max_fan_in: int | None = None,
    engine: str = "auto",
    workers: int | str | None = None,
) -> Table:
    """Return ``table``'s rows sorted on ``new_order``.

    The input table must be sorted (per its ``sort_spec``); with
    ``use_ovc`` it must carry offset-value codes (derived on demand via
    :meth:`Table.with_ovcs`).  The result carries fresh codes for the
    new order when ``use_ovc`` is set.

    ``method`` forces a strategy; ``auto`` uses the compile-time
    analysis and, where the decomposition leaves a choice, the cost
    model.  Stable strategies preserve the input order among rows equal
    under the new key.  ``max_fan_in`` caps the runs merged per step
    (graceful degradation to multi-step merges beyond it).

    ``engine`` picks the executor: ``reference`` (instrumented),
    ``fast`` (packed-code kernels, bit-identical output, no counters),
    or ``auto`` — fast exactly when no ``stats`` collector was passed,
    ``use_ovc`` is set, and ``max_fan_in`` is unset.  A forced ``fast``
    engine leaves any passed ``stats`` untouched and executes
    ``max_fan_in`` as a single-wave merge (the capped reference merge
    produces the same rows and codes, only its counters differ).
    With ``engine="auto"``, key columns the packed codec cannot rank
    (mixed value types, ``None``) silently fall back to the reference
    executors; a forced ``fast`` engine propagates the ``TypeError``.

    ``workers`` shards segment-parallel strategies across processes
    (:mod:`repro.parallel`): an int, ``"auto"`` (CPU count), or
    ``None``/``1`` for serial.  Output stays bit-identical; tiny
    inputs, single-segment jobs, and unshardable strategies fall back
    to serial execution automatically.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(_METHODS)}")
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {sorted(_ENGINES)}")
    if engine == "fast" and not use_ovc:
        raise ValueError("the fast engine requires offset-value codes (use_ovc=True)")
    if table.sort_spec is None:
        raise ValueError("input table must declare its sort order")
    new_spec = new_order if isinstance(new_order, SortSpec) else SortSpec(new_order)
    with TRACER.span(
        "modify",
        rows=len(table.rows),
        method=method,
        engine=engine,
        use_ovc=use_ovc,
    ):
        return _modify(
            table, new_spec, method, use_ovc, stats, max_fan_in, engine, workers
        )


def _modify(
    table: Table,
    new_spec: SortSpec,
    method: str,
    use_ovc: bool,
    stats: ComparisonStats | None,
    max_fan_in: int | None,
    engine: str,
    workers: int | str | None,
) -> Table:
    plan = analyze_order_modification(table.sort_spec, new_spec)
    use_fast = engine == "fast" or (
        engine == "auto" and use_ovc and stats is None and max_fan_in is None
    )
    caller_stats = stats
    stats = stats if stats is not None else ComparisonStats()

    if plan.backward:
        # Read the input back to front (comparison-free, codes kept)
        # and re-plan against the reversed order.
        from .backward import reverse_table, reversed_spec

        with TRACER.span("modify.backward", rows=len(table.rows)):
            if use_ovc:
                table = reverse_table(table.with_ovcs(), stats)
            else:
                table = Table(
                    table.schema,
                    list(reversed(table.rows)),
                    reversed_spec(table.sort_spec),
                )
        plan = analyze_order_modification(
            table.sort_spec, new_spec, allow_backward=False
        )

    if use_ovc:
        table.with_ovcs()

    strategy = _resolve_strategy(plan, method, table, stats)
    TRACER.annotate(strategy=strategy.name.lower())

    if workers not in (None, 0, 1) and use_ovc:
        from ..parallel.api import parallel_modify

        result = parallel_modify(
            table, new_spec, plan, strategy, workers,
            engine=engine, stats=caller_stats, max_fan_in=max_fan_in,
        )
        if result is not None:
            return result

    if use_fast:
        from ..fastpath.execute import fast_modify

        try:
            return fast_modify(table, new_spec, plan, strategy)
        except TypeError:
            if engine == "fast":
                raise
            # engine="auto" met key values the packed codec cannot rank
            # (mixed types in one column, None): the reference
            # executors below compare only values that actually meet in
            # a tournament, so they can still succeed.

    rows, ovcs = table.rows, table.ovcs
    n = len(rows)
    out_positions = new_spec.positions(table.schema)
    out_project = _key_projector(out_positions, new_spec.directions)
    in_positions = table.sort_spec.positions(table.schema)
    in_project = _key_projector(in_positions, table.sort_spec.directions)

    out_rows: list[tuple] = []
    out_ovcs: list[tuple] | None = [] if use_ovc else None

    if strategy is Strategy.NOOP:
        out_rows = list(rows)
        if use_ovc:
            out_ovcs = project_ovcs(ovcs, new_spec.arity)
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    if strategy is Strategy.FULL_SORT:
        with TRACER.span("modify.full_sort", rows=n):
            for lo, hi in ((0, n),) if n else ():
                sort_segment(
                    rows, ovcs, lo, hi, 0, new_spec.arity, out_project,
                    stats, out_rows, out_ovcs, use_ovc,
                )
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    if strategy is Strategy.SEGMENT_SORT:
        boundaries = _segments(table, plan, use_ovc, in_project, stats)
        with TRACER.span("modify.segment_sort", segments=len(boundaries)):
            for lo, hi in boundaries:
                sort_segment(
                    rows, ovcs, lo, hi, plan.prefix_len, new_spec.arity,
                    out_project, stats, out_rows, out_ovcs, use_ovc,
                )
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    if strategy is Strategy.MERGE_RUNS:
        # One pass over the whole input; prefix columns (if any) join
        # the infix in defining runs.
        with TRACER.span("modify.merge_runs", rows=n):
            if n:
                merge_preexisting_runs(
                    rows, ovcs, 0, n, plan, out_project, in_project,
                    stats, out_rows, out_ovcs, use_ovc, respect_prefix=False,
                    max_fan_in=max_fan_in,
                )
        return Table(table.schema, out_rows, new_spec, out_ovcs)

    # COMBINED: segments from the prefix, merge runs within each.
    boundaries = _segments(table, plan, use_ovc, in_project, stats)
    with TRACER.span("modify.combined", segments=len(boundaries)):
        for lo, hi in boundaries:
            merge_preexisting_runs(
                rows, ovcs, lo, hi, plan, out_project, in_project,
                stats, out_rows, out_ovcs, use_ovc, respect_prefix=True,
                max_fan_in=max_fan_in,
            )
    return Table(table.schema, out_rows, new_spec, out_ovcs)


def _resolve_strategy(
    plan: ModificationPlan, method: str, table: Table, stats: ComparisonStats
) -> Strategy:
    if method == "noop":
        if plan.strategy is not Strategy.NOOP:
            raise ValueError(
                "noop requested but the existing order does not satisfy "
                f"the desired order ({plan.describe()})"
            )
        return Strategy.NOOP
    if method == "full_sort":
        return Strategy.FULL_SORT
    if method == "segment_sort":
        if plan.prefix_len == 0 and plan.strategy is not Strategy.NOOP:
            raise ValueError("segment_sort requires a shared key prefix")
        return Strategy.SEGMENT_SORT
    if method == "merge_runs":
        if plan.merge_len == 0:
            raise ValueError(
                "merge_runs requires pre-existing runs "
                f"(plan: {plan.describe()})"
            )
        return Strategy.MERGE_RUNS
    if method == "combined":
        if plan.merge_len == 0 or plan.prefix_len == 0:
            raise ValueError(
                "combined requires both a shared prefix and merge keys "
                f"(plan: {plan.describe()})"
            )
        return Strategy.COMBINED
    # auto: trust the structural analysis; consult the cost model when
    # several structural strategies apply.
    if plan.strategy in (Strategy.NOOP, Strategy.FULL_SORT):
        return plan.strategy
    if plan.strategy is Strategy.SEGMENT_SORT:
        return plan.strategy
    if plan.strategy is Strategy.MERGE_RUNS:
        return plan.strategy
    # COMBINED decompositions admit all four methods; estimate quickly.
    n = len(table)
    if n == 0:
        return plan.strategy
    ovcs = table.ovcs
    if ovcs is not None:
        p, px = plan.prefix_len, plan.prefix_len + plan.infix_len
        n_segments = sum(1 for off, _v in ovcs if off < p)
        n_runs = sum(1 for off, _v in ovcs if off < px)
    else:
        n_segments = max(1, int(n ** 0.5))
        n_runs = n_segments
    estimates = {e.strategy: e for e in estimate_costs(plan, n, n_segments, n_runs)}
    # Exploiting both structures is the paper's consistent winner
    # (Figure 11); the cost-based decision of Section 3.5 is whether to
    # exploit the pre-existing order at all, so only a clear margin for
    # sorting from scratch overrides the structural plan.
    planned = estimates[Strategy.COMBINED]
    if estimates[Strategy.FULL_SORT].total < 0.5 * planned.total:
        return Strategy.FULL_SORT
    return Strategy.COMBINED


def _segments(table, plan, use_ovc, in_project, stats):
    """Segment boundaries — from codes when available, else by
    comparing prefix columns of adjacent rows (counted)."""
    with TRACER.span("modify.classify", prefix_len=plan.prefix_len) as sp:
        boundaries = _segment_boundaries(table, plan, use_ovc, in_project, stats)
        sp.set(segments=len(boundaries))
    if METRICS.enabled:
        hist = METRICS.histogram("modify.segment_rows")
        for lo, hi in boundaries:
            hist.observe(hi - lo)
    return boundaries


def _segment_boundaries(table, plan, use_ovc, in_project, stats):
    n = len(table.rows)
    if use_ovc:
        return list(split_segments(table.ovcs, plan.prefix_len, n))
    p = plan.prefix_len
    if p == 0 or n == 0:
        return [(0, n)] if n else []
    boundaries = []
    start = 0
    prev = in_project(table.rows[0])
    for i in range(1, n):
        cur = in_project(table.rows[i])
        stats.row_comparisons += 1
        for c in range(p):
            stats.column_comparisons += 1
            if cur[c] != prev[c]:
                boundaries.append((start, i))
                start = i
                break
        prev = cur
    boundaries.append((start, n))
    return boundaries
