"""Memory-bounded order modification with spill accounting.

Hypothesis 1 made executable: with a memory budget, a whole-input sort
of a large table must spill runs (external merge sort), while segmented
execution sorts one segment at a time — if every segment fits in
memory, *no* spill happens at all ("segmented sorting can save a merge
level, even turning external merge sort into internal sorting").

:func:`modify_sort_order_external` wraps the in-memory executors:

* segments that fit in memory run exactly as in
  :func:`repro.core.modify.modify_sort_order`;
* an oversized segment under ``segment_sort`` falls back to a true
  external merge sort of that segment (runs spilled and merged with
  the configured fan-in);
* an oversized segment under ``combined``/``merge_runs`` merges its
  pre-existing runs in waves of ``fan_in`` (graceful degradation),
  charging intermediate wave outputs to the page manager.

All spill traffic lands in the supplied :class:`PageManager`.

Two memory models coexist here deliberately.  ``memory_capacity`` is
the *simulated* sort-memory size (in rows) whose spill economics the
paper's hypotheses are about; an :class:`~repro.exec.ExecutionConfig`
``memory_budget`` is the *actual* byte budget of this process — when
set, buffered output spills to real disk via the governed sink, run
generation and merge buffers are charged to the accountant, and merge
waves shrink (never below binary) while the budget is exceeded.
"""

from __future__ import annotations

from typing import Sequence

from ..exec.buffers import GovernedSink
from ..exec.compat import resolve_config
from ..exec.config import ExecutionConfig
from ..exec.memory import MemoryAccountant, activate
from ..exec.spill import SpillManager
from ..model import SortSpec, Table
from ..obs import METRICS
from ..ovc.stats import ComparisonStats
from ..sorting.external import ExternalMergeSort
from ..sorting.merge import _key_projector
from ..storage.pages import PageManager
from .analysis import Strategy, analyze_order_modification
from .classify import split_segments
from .merge_runs import merge_preexisting_runs
from .modify import modify_sort_order
from .segmented import sort_segment


def modify_sort_order_external(
    table: Table,
    new_order: SortSpec | Sequence[str],
    memory_capacity: int,
    fan_in: int = 16,
    page_manager: PageManager | None = None,
    method: str = "auto",
    stats: ComparisonStats | None = None,
    run_generation: str = "replacement",
    config: ExecutionConfig | None = None,
    **legacy,
) -> Table:
    """Modify ``table``'s sort order within a row-count memory budget.

    Returns the re-sorted table; spill I/O (if any) accumulates in
    ``page_manager``.  With segments smaller than ``memory_capacity``
    the operation is fully internal — the hypothesis 1 scenario.

    ``config`` carries the execution knobs (engine, workers, byte
    budget, retry policy — see :class:`repro.exec.ExecutionConfig`);
    the removed standalone ``engine=``/``workers=`` kwargs raise a
    ``TypeError``.  ``config.engine == "fast"`` executes the in-memory
    segments through the packed-code kernels (:mod:`repro.fastpath`) —
    same rows and codes, no comparison counts.  Oversized segments
    always take the reference path: spill accounting and capped merge
    waves are the point of this function, and the fast kernels do not
    model them.  ``auto`` keeps everything on the instrumented
    reference path.

    ``config.workers`` shards the segment loop across processes
    (:mod:`repro.parallel`) when *every* segment fits in memory — the
    hypothesis 1 regime, where execution is fully internal and spill
    accounting has nothing to record.  Any oversized segment keeps the
    whole job on the serial path so its spills are charged faithfully.

    ``config.memory_budget`` (bytes, the *process* budget — distinct
    from the simulated row-count ``memory_capacity``) activates real
    governance: buffered output spills to disk when the budget is
    exceeded, and oversized-segment merge waves shrink to half the
    configured ``fan_in`` (never below 2) while under pressure.

    Stability: the structural strategies (merge/segment paths) are
    stable like their in-memory counterparts; segments or inputs that
    fall back to a true external sort inherit replacement selection's
    lack of stability, as in classic external merge sorts.
    """
    if memory_capacity < 2:
        raise ValueError("memory capacity must allow at least two rows")
    cfg = resolve_config(config, "modify_sort_order_external", **legacy)
    if table.sort_spec is None:
        raise ValueError("input table must declare its sort order")
    new_spec = new_order if isinstance(new_order, SortSpec) else SortSpec(new_order)
    stats = stats if stats is not None else ComparisonStats()
    pages = page_manager if page_manager is not None else PageManager()
    table.with_ovcs()

    plan = analyze_order_modification(table.sort_spec, new_spec)
    if plan.backward or plan.strategy is Strategy.NOOP:
        # Backward scans and no-ops never need memory beyond the scan;
        # delegate wholesale (modify_sort_order applies the governance
        # itself, so no double activation here).
        return modify_sort_order(
            table, new_spec, method=method, stats=stats,
            config=cfg.with_(
                engine="fast" if cfg.engine == "fast" else "reference"
            ),
        )

    if not cfg.governed:
        return _modify_external(
            table, new_spec, memory_capacity, fan_in, pages, method,
            stats, run_generation, cfg, None, None,
        )
    accountant = MemoryAccountant(cfg.memory_budget)
    with SpillManager(cfg.spill_dir) as spill, activate(accountant):
        sink = GovernedSink(accountant, spill, category="extmodify.output")
        return _modify_external(
            table, new_spec, memory_capacity, fan_in, pages, method,
            stats, run_generation, cfg, accountant, sink,
        )


def _modify_external(
    table: Table,
    new_spec: SortSpec,
    memory_capacity: int,
    fan_in: int,
    pages: PageManager,
    method: str,
    stats: ComparisonStats,
    run_generation: str,
    cfg: ExecutionConfig,
    accountant: MemoryAccountant | None,
    sink: GovernedSink | None,
) -> Table:
    plan = analyze_order_modification(table.sort_spec, new_spec)

    if plan.strategy is Strategy.FULL_SORT or method == "full_sort":
        sorter = ExternalMergeSort(
            new_spec.positions(table.schema),
            memory_capacity=memory_capacity,
            fan_in=fan_in,
            run_generation=run_generation,
            directions=new_spec.directions,
            page_manager=pages,
        )
        result = sorter.sort(table.rows)
        stats.merge(result.total_stats)
        if sink is not None:
            sink.absorb_iter(result.rows, result.ovcs)
            out_rows, out_ovcs = sink.materialize()
            return Table(table.schema, out_rows, new_spec, out_ovcs)
        return Table(table.schema, result.rows, new_spec, result.ovcs)

    out_positions = new_spec.positions(table.schema)
    out_project = _key_projector(out_positions, new_spec.directions)
    in_positions = table.sort_spec.positions(table.schema)
    in_project = _key_projector(in_positions, table.sort_spec.directions)

    rows, ovcs = table.rows, table.ovcs
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []

    use_merge = plan.strategy in (Strategy.COMBINED, Strategy.MERGE_RUNS) and (
        method in ("auto", "combined", "merge_runs")
    )
    prefix_for_segments = plan.prefix_len if plan.strategy is not Strategy.MERGE_RUNS else 0

    if cfg.workers not in (None, 0, 1) and prefix_for_segments > 0:
        segments = list(split_segments(ovcs, prefix_for_segments, len(rows)))
        if segments and max(hi - lo for lo, hi in segments) <= memory_capacity:
            # Fully internal execution: every segment fits, no spills to
            # account for, so the in-memory parallel path applies as-is.
            from ..parallel.api import parallel_modify

            exec_strategy = (
                Strategy.COMBINED if use_merge else Strategy.SEGMENT_SORT
            )
            result = parallel_modify(
                table, new_spec, plan, exec_strategy, cfg.workers,
                stats=stats, segments=segments, sink=sink,
                config=cfg.with_(
                    engine="fast" if cfg.engine == "fast" else "reference"
                ),
            )
            if result is not None:
                return result

    for lo, hi in split_segments(ovcs, prefix_for_segments, len(rows)):
        size = hi - lo
        seg_rows: list[tuple] = out_rows if sink is None else []
        seg_ovcs: list[tuple] = out_ovcs if sink is None else []
        if size <= memory_capacity:
            if cfg.engine == "fast":
                from ..fastpath.execute import fast_segment

                if use_merge:
                    strategy = (
                        Strategy.COMBINED
                        if plan.strategy is Strategy.COMBINED
                        else Strategy.MERGE_RUNS
                    )
                else:
                    strategy = Strategy.SEGMENT_SORT
                fast_rows, fast_ovcs = fast_segment(
                    rows[lo:hi], ovcs[lo:hi], plan, new_spec, out_positions,
                    strategy,
                )
                seg_rows.extend(fast_rows)
                seg_ovcs.extend(fast_ovcs)
            elif use_merge:
                merge_preexisting_runs(
                    rows, ovcs, lo, hi, plan, out_project, in_project,
                    stats, seg_rows, seg_ovcs,
                    respect_prefix=plan.strategy is Strategy.COMBINED,
                )
            else:
                sort_segment(
                    rows, ovcs, lo, hi, plan.prefix_len, new_spec.arity,
                    out_project, stats, seg_rows, seg_ovcs,
                )
            if sink is not None:
                sink.absorb(seg_rows, seg_ovcs)
            continue
        # Oversized segment.
        if use_merge:
            # Pre-existing runs merge in waves of the fan-in; every
            # intermediate wave writes its output and reads it back.
            # Under byte-budget pressure the wave width halves (never
            # below binary), trading extra merge levels for footprint.
            import math

            effective_fan_in = fan_in
            if accountant is not None and accountant.over_budget():
                effective_fan_in = max(2, fan_in // 2)
                if METRICS.enabled:
                    METRICS.counter("exec.fan_in_reduced").inc()
            run_boundary = plan.prefix_len + plan.infix_len
            n_runs = sum(
                1 for i in range(lo + 1, hi) if ovcs[i][0] < run_boundary
            ) + 1
            if n_runs > effective_fan_in:
                levels = math.ceil(math.log(n_runs, effective_fan_in))
                for _ in range(max(levels - 1, 0)):
                    pages.spill_run(rows[lo:hi]).read()
            merge_preexisting_runs(
                rows, ovcs, lo, hi, plan, out_project, in_project,
                stats, seg_rows, seg_ovcs,
                respect_prefix=plan.strategy is Strategy.COMBINED,
                max_fan_in=effective_fan_in,
            )
        else:
            head_ovc = ovcs[lo]
            sorter = ExternalMergeSort(
                out_positions,
                memory_capacity=memory_capacity,
                fan_in=fan_in,
                run_generation=run_generation,
                directions=new_spec.directions,
                page_manager=pages,
            )
            result = sorter.sort(rows[lo:hi])
            stats.merge(result.total_stats)
            seg_rows.extend(result.rows)
            sorted_ovcs = list(result.ovcs)
            if sorted_ovcs and plan.prefix_len > 0:
                sorted_ovcs[0] = head_ovc
            seg_ovcs.extend(sorted_ovcs)
        if sink is not None:
            sink.absorb(seg_rows, seg_ovcs)
    if sink is not None:
        out_rows, out_ovcs = sink.materialize()
        if out_ovcs is None:
            out_ovcs = []  # empty governed input: match the ungoverned contract
    return Table(table.schema, out_rows, new_spec, out_ovcs)
