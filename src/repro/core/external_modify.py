"""Memory-bounded order modification with spill accounting.

Hypothesis 1 made executable: with a memory budget, a whole-input sort
of a large table must spill runs (external merge sort), while segmented
execution sorts one segment at a time — if every segment fits in
memory, *no* spill happens at all ("segmented sorting can save a merge
level, even turning external merge sort into internal sorting").

:func:`modify_sort_order_external` wraps the in-memory executors:

* segments that fit in memory run exactly as in
  :func:`repro.core.modify.modify_sort_order`;
* an oversized segment under ``segment_sort`` falls back to a true
  external merge sort of that segment (runs spilled and merged with
  the configured fan-in);
* an oversized segment under ``combined``/``merge_runs`` merges its
  pre-existing runs in waves of ``fan_in`` (graceful degradation),
  charging intermediate wave outputs to the page manager.

All spill traffic lands in the supplied :class:`PageManager`.
"""

from __future__ import annotations

from typing import Sequence

from ..model import SortSpec, Table
from ..ovc.stats import ComparisonStats
from ..sorting.external import ExternalMergeSort
from ..sorting.merge import _key_projector
from ..storage.pages import PageManager
from .analysis import Strategy, analyze_order_modification
from .classify import split_segments
from .merge_runs import merge_preexisting_runs
from .modify import modify_sort_order
from .segmented import sort_segment


def modify_sort_order_external(
    table: Table,
    new_order: SortSpec | Sequence[str],
    memory_capacity: int,
    fan_in: int = 16,
    page_manager: PageManager | None = None,
    method: str = "auto",
    stats: ComparisonStats | None = None,
    run_generation: str = "replacement",
    engine: str = "auto",
    workers: int | str | None = None,
) -> Table:
    """Modify ``table``'s sort order within a row-count memory budget.

    Returns the re-sorted table; spill I/O (if any) accumulates in
    ``page_manager``.  With segments smaller than ``memory_capacity``
    the operation is fully internal — the hypothesis 1 scenario.

    ``engine="fast"`` executes the in-memory segments through the
    packed-code kernels (:mod:`repro.fastpath`) — same rows and codes,
    no comparison counts.  Oversized segments always take the
    reference path: spill accounting and capped merge waves are the
    point of this function, and the fast kernels do not model them.
    ``auto`` keeps everything on the instrumented reference path.

    ``workers`` shards the segment loop across processes
    (:mod:`repro.parallel`) when *every* segment fits in memory — the
    hypothesis 1 regime, where execution is fully internal and spill
    accounting has nothing to record.  Any oversized segment keeps the
    whole job on the serial path so its spills are charged faithfully.

    Stability: the structural strategies (merge/segment paths) are
    stable like their in-memory counterparts; segments or inputs that
    fall back to a true external sort inherit replacement selection's
    lack of stability, as in classic external merge sorts.
    """
    if memory_capacity < 2:
        raise ValueError("memory capacity must allow at least two rows")
    if engine not in ("auto", "reference", "fast"):
        raise ValueError(
            f"unknown engine {engine!r}; choose from"
            " ['auto', 'fast', 'reference']"
        )
    if table.sort_spec is None:
        raise ValueError("input table must declare its sort order")
    new_spec = new_order if isinstance(new_order, SortSpec) else SortSpec(new_order)
    stats = stats if stats is not None else ComparisonStats()
    pages = page_manager if page_manager is not None else PageManager()
    table.with_ovcs()

    plan = analyze_order_modification(table.sort_spec, new_spec)
    if plan.backward or plan.strategy is Strategy.NOOP:
        # Backward scans and no-ops never need memory beyond the scan.
        return modify_sort_order(
            table, new_spec, method=method, stats=stats,
            engine="fast" if engine == "fast" else "reference",
            workers=workers,
        )

    if plan.strategy is Strategy.FULL_SORT or method == "full_sort":
        sorter = ExternalMergeSort(
            new_spec.positions(table.schema),
            memory_capacity=memory_capacity,
            fan_in=fan_in,
            run_generation=run_generation,
            directions=new_spec.directions,
            page_manager=pages,
        )
        result = sorter.sort(table.rows)
        stats.merge(result.total_stats)
        return Table(table.schema, result.rows, new_spec, result.ovcs)

    out_positions = new_spec.positions(table.schema)
    out_project = _key_projector(out_positions, new_spec.directions)
    in_positions = table.sort_spec.positions(table.schema)
    in_project = _key_projector(in_positions, table.sort_spec.directions)

    rows, ovcs = table.rows, table.ovcs
    out_rows: list[tuple] = []
    out_ovcs: list[tuple] = []

    use_merge = plan.strategy in (Strategy.COMBINED, Strategy.MERGE_RUNS) and (
        method in ("auto", "combined", "merge_runs")
    )
    prefix_for_segments = plan.prefix_len if plan.strategy is not Strategy.MERGE_RUNS else 0

    if workers not in (None, 0, 1) and prefix_for_segments > 0:
        segments = list(split_segments(ovcs, prefix_for_segments, len(rows)))
        if segments and max(hi - lo for lo, hi in segments) <= memory_capacity:
            # Fully internal execution: every segment fits, no spills to
            # account for, so the in-memory parallel path applies as-is.
            from ..parallel.api import parallel_modify

            exec_strategy = (
                Strategy.COMBINED if use_merge else Strategy.SEGMENT_SORT
            )
            result = parallel_modify(
                table, new_spec, plan, exec_strategy, workers,
                engine="fast" if engine == "fast" else "reference",
                stats=stats,
            )
            if result is not None:
                return result

    for lo, hi in split_segments(ovcs, prefix_for_segments, len(rows)):
        size = hi - lo
        if size <= memory_capacity:
            if engine == "fast":
                from ..fastpath.execute import fast_segment

                if use_merge:
                    strategy = (
                        Strategy.COMBINED
                        if plan.strategy is Strategy.COMBINED
                        else Strategy.MERGE_RUNS
                    )
                else:
                    strategy = Strategy.SEGMENT_SORT
                seg_rows, seg_ovcs = fast_segment(
                    rows[lo:hi], ovcs[lo:hi], plan, new_spec, out_positions,
                    strategy,
                )
                out_rows.extend(seg_rows)
                out_ovcs.extend(seg_ovcs)
            elif use_merge:
                merge_preexisting_runs(
                    rows, ovcs, lo, hi, plan, out_project, in_project,
                    stats, out_rows, out_ovcs,
                    respect_prefix=plan.strategy is Strategy.COMBINED,
                )
            else:
                sort_segment(
                    rows, ovcs, lo, hi, plan.prefix_len, new_spec.arity,
                    out_project, stats, out_rows, out_ovcs,
                )
            continue
        # Oversized segment.
        if use_merge:
            # Pre-existing runs merge in waves of the fan-in; every
            # intermediate wave writes its output and reads it back.
            import math

            run_boundary = plan.prefix_len + plan.infix_len
            n_runs = sum(
                1 for i in range(lo + 1, hi) if ovcs[i][0] < run_boundary
            ) + 1
            if n_runs > fan_in:
                levels = math.ceil(math.log(n_runs, fan_in))
                for _ in range(max(levels - 1, 0)):
                    pages.spill_run(rows[lo:hi]).read()
            merge_preexisting_runs(
                rows, ovcs, lo, hi, plan, out_project, in_project,
                stats, out_rows, out_ovcs,
                respect_prefix=plan.strategy is Strategy.COMBINED,
                max_fan_in=fan_in,
            )
        else:
            head_ovc = ovcs[lo]
            sorter = ExternalMergeSort(
                out_positions,
                memory_capacity=memory_capacity,
                fan_in=fan_in,
                run_generation=run_generation,
                directions=new_spec.directions,
                page_manager=pages,
            )
            result = sorter.sort(rows[lo:hi])
            stats.merge(result.total_stats)
            out_rows.extend(result.rows)
            seg_ovcs = list(result.ovcs)
            if seg_ovcs and plan.prefix_len > 0:
                seg_ovcs[0] = head_ovc
            out_ovcs.extend(seg_ovcs)
    return Table(table.schema, out_rows, new_spec, out_ovcs)
