"""Compile-time analysis: from (existing, desired) sort orders to a plan.

This is the paper's Section 3.5 first step: compare the existing and
the desired sort order — including ascending/descending directions —
and decompose the desired order into

* a shared **prefix** ``P`` that defines segments,
* **merge keys** ``M``: the next desired columns, found *later* in the
  existing order,
* an **infix** ``X``: the intervening existing columns, whose distinct
  values define pre-existing runs,
* a common **tail** ``T`` after both.

Supported shapes (letters are column lists; Table 1 of the paper):

====  ======================  =========================
case  existing                desired
====  ======================  =========================
0     ``A,B``                 ``A`` (or identical)
1     ``A``                   ``A,B``
2     ``A,B``                 ``B``
3     ``A,B``                 ``B,A``
4     ``A,B,C``               ``A,C``
5     ``A,B,C``               ``A,C,B``
6     ``A,B,C,D``             ``A,C,D``
7     ``A,B,C,D``             ``A,C,B,D``
====  ======================  =========================

Desired orders outside these shapes degrade gracefully: a shared prefix
still enables segmented sorting (sort each segment from scratch), and
with no shared structure at all the plan falls back to a full sort.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..model import SortSpec


class Strategy(enum.Enum):
    """Execution strategy chosen at compile time."""

    #: The existing order already satisfies the desired order.
    NOOP = "noop"
    #: Segments from the shared prefix; full sort inside each segment.
    SEGMENT_SORT = "segment_sort"
    #: Pre-existing runs merged; no shared prefix (cases 2/3).
    MERGE_RUNS = "merge_runs"
    #: Segments from the shared prefix and pre-existing runs merged
    #: inside each segment (cases 4-7).
    COMBINED = "combined"
    #: No exploitable structure: ordinary (internal/external) sort.
    FULL_SORT = "full_sort"


@dataclass(frozen=True)
class ModificationPlan:
    """Everything the run-time executors need, in column positions.

    All column lists are given as *positions within the desired sort
    key's column order* resolved against the schema separately; here we
    keep the :class:`SortSpec` views plus the derived sizes.
    """

    input_spec: SortSpec
    output_spec: SortSpec
    strategy: Strategy
    #: Shared prefix length ``|P|`` (columns).
    prefix_len: int
    #: Infix ``X`` — existing columns displaced behind the merge keys
    #: (or dropped entirely); its distinct values define runs.
    infix: SortSpec
    #: Merge keys ``M`` — desired columns already sorted within runs.
    merge_keys: SortSpec
    #: Common tail ``T`` present at the end of both orders.
    tail: SortSpec
    #: True when the infix does not appear in the desired order
    #: (cases 2/4/6): the merge may discover *new duplicates*.
    infix_dropped: bool
    #: Closest Table 1 case (0-7), or None outside the taxonomy.
    case_id: int | None
    #: True when the decomposition applies to the input read *backwards*
    #: (all directions flipped) — Section 3.5's backward-scan
    #: generalization.  ``input_spec`` is then already the reversed spec.
    backward: bool = False

    @property
    def infix_len(self) -> int:
        return self.infix.arity

    @property
    def merge_len(self) -> int:
        return self.merge_keys.arity

    @property
    def tail_len(self) -> int:
        return self.tail.arity

    @property
    def input_arity(self) -> int:
        return self.input_spec.arity

    @property
    def output_arity(self) -> int:
        return self.output_spec.arity

    def describe(self) -> str:
        parts = [
            f"strategy={self.strategy.value}",
            f"case={self.case_id if self.case_id is not None else '-'}",
            f"P={self.input_spec.names[: self.prefix_len]}",
            f"X={self.infix.names}",
            f"M={self.merge_keys.names}",
            f"T={self.tail.names}",
        ]
        if self.infix_dropped:
            parts.append("infix dropped")
        return ", ".join(parts)


def _empty_spec() -> SortSpec:
    return SortSpec(())


def _table1_case(
    prefix_len: int,
    infix_len: int,
    merge_len: int,
    tail_len: int,
    infix_dropped: bool,
    strategy: Strategy,
) -> int | None:
    if strategy is Strategy.NOOP:
        return 0
    if strategy is Strategy.SEGMENT_SORT:
        return 1
    if strategy is Strategy.MERGE_RUNS:
        return 2 if infix_dropped else 3
    if strategy is Strategy.COMBINED:
        if infix_dropped:
            # Case 6 extends case 4 with the extra trailing column(s)
            # folded into the merge keys.
            return 4 if merge_len == 1 else 6
        return 5 if tail_len == 0 else 7
    return None


def analyze_order_modification(
    input_spec: SortSpec, output_spec: SortSpec, allow_backward: bool = True
) -> ModificationPlan:
    """Decompose the desired order against the existing order.

    Runs entirely on key metadata — no data access — and therefore
    belongs in query optimization, where its output also informs the
    cost model (:mod:`repro.core.cost`).

    With ``allow_backward`` (the default), an order with no usable
    forward structure is retried against the input read back to front
    (all directions flipped); a successful plan comes back with
    ``backward=True`` and ``input_spec`` replaced by the reversed spec.
    """
    p = input_spec.common_prefix_len(output_spec)

    if p == output_spec.arity:
        # Case 0: desired order is a prefix of (or equals) the existing.
        return ModificationPlan(
            input_spec,
            output_spec,
            Strategy.NOOP,
            p,
            _empty_spec(),
            _empty_spec(),
            _empty_spec(),
            False,
            0,
        )

    rest_in = input_spec.columns[p:]
    rest_out = output_spec.columns[p:]

    if not rest_in:
        # Case 1: existing key is a proper prefix of the desired key —
        # segments are sorted on the remaining desired columns.
        return ModificationPlan(
            input_spec,
            output_spec,
            Strategy.SEGMENT_SORT,
            p,
            _empty_spec(),
            _empty_spec(),
            _empty_spec(),
            False,
            1,
        )

    # Look for the P + X + M + T <-> P + M + X + T decomposition, or the
    # infix-dropped variant P + X + M(+extra) <-> P + M.  The smallest
    # infix is preferred (most pre-existing runs, cheapest merge).
    #
    # With a *retained* infix, desired columns after M + X (the tail T)
    # bypass the merge glued to their predecessors, because the infix
    # breaks ties before the tail is reached.  With a *dropped* infix
    # nothing breaks ties before the tail, so any desired columns after
    # M must be folded into M itself — hence the dropped variant
    # requires the whole remaining desired order to be one contiguous
    # block of the existing order.  Existing columns beyond the desired
    # key only add harmless extra sortedness in either variant.
    best: tuple[int, int, int, bool] | None = None
    for x in range(1, len(rest_in)):
        infix_block = rest_in[:x]
        # Dropped variant: rest_out is a contiguous block right after X.
        if (
            len(rest_out) <= len(rest_in) - x
            and rest_in[x : x + len(rest_out)] == rest_out
        ):
            best = (x, len(rest_out), 0, True)
            break
        # Retained variant: rest_out == M + X + T' with T' a prefix of
        # the existing order's tail after M.
        for m in range(1, len(rest_in) - x + 1):
            if rest_out[:m] != rest_in[x : x + m]:
                break  # M is a block: longer m cannot match either.
            if rest_out[m : m + x] != infix_block:
                continue
            t_block = rest_out[m + x :]
            if t_block == rest_in[x + m : x + m + len(t_block)]:
                best = (x, m, len(t_block), False)
                break
        if best is not None:
            break

    if best is not None:
        x, m, t, dropped = best
        strategy = Strategy.COMBINED if p > 0 else Strategy.MERGE_RUNS
        infix = SortSpec(rest_in[:x])
        merge_keys = SortSpec(rest_in[x : x + m])
        tail = SortSpec(rest_out[m + x : m + x + t]) if not dropped else _empty_spec()
        return ModificationPlan(
            input_spec,
            output_spec,
            strategy,
            p,
            infix,
            merge_keys,
            tail,
            dropped,
            _table1_case(p, x, m, t, dropped, strategy),
        )

    if p > 0:
        # Shared prefix only: segmented sorting with full sorts inside.
        return ModificationPlan(
            input_spec,
            output_spec,
            Strategy.SEGMENT_SORT,
            p,
            _empty_spec(),
            _empty_spec(),
            _empty_spec(),
            False,
            1 if not rest_in else None,
        )

    if allow_backward:
        # No forward structure at all: would reading the input back to
        # front (all directions flipped) expose any?
        from .backward import reversed_spec
        import dataclasses

        rev = reversed_spec(input_spec)
        plan = analyze_order_modification(rev, output_spec, allow_backward=False)
        if plan.strategy is not Strategy.FULL_SORT:
            return dataclasses.replace(plan, backward=True)

    return ModificationPlan(
        input_spec,
        output_spec,
        Strategy.FULL_SORT,
        0,
        _empty_spec(),
        _empty_spec(),
        _empty_spec(),
        False,
        None,
    )
