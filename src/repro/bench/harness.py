"""Timing, scaling, and table rendering for the experiment drivers.

The paper runs at 2^20 rows on a C++ engine; pure Python pays a large
constant factor, so benchmarks default to 2^16 rows and scale up via
the ``REPRO_SCALE`` environment variable (the exponent delta:
``REPRO_SCALE=4`` restores the paper's 2^20).  Comparison *counts* are
scale-dependent but machine-independent; run-time *shapes* (who wins,
where crossovers fall) are preserved at the default scale.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..ovc.stats import ComparisonStats


def bench_scale(base_exponent: int = 16) -> int:
    """Row count for benchmarks: ``2 ** (base + REPRO_SCALE)``."""
    delta = int(os.environ.get("REPRO_SCALE", "0"))
    return 1 << (base_exponent + delta)


@dataclass
class BenchResult:
    """One experiment cell: wall time plus the work counters."""

    label: str
    seconds: float
    stats: ComparisonStats = field(default_factory=ComparisonStats)
    extra: dict = field(default_factory=dict)

    @property
    def column_comparisons(self) -> int:
        return self.stats.column_comparisons

    @property
    def row_comparisons(self) -> int:
        return self.stats.row_comparisons

    def as_row(self) -> dict:
        row = {
            "label": self.label,
            "seconds": round(self.seconds, 4),
            "row_cmp": self.stats.row_comparisons,
            "col_cmp": self.stats.column_comparisons,
            "ovc_cmp": self.stats.ovc_comparisons,
        }
        row.update(self.extra)
        return row


def time_callable(label: str, fn: Callable[[ComparisonStats], dict | None]) -> BenchResult:
    """Run ``fn(stats)`` once, timing it; ``fn`` may return extras."""
    stats = ComparisonStats()
    start = time.perf_counter()
    extra = fn(stats)
    elapsed = time.perf_counter() - start
    return BenchResult(label, elapsed, stats, extra or {})


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Fixed-width table like the ones a paper appendix would print."""
    if not rows:
        return title or "(no rows)"
    headers = list(rows[0].keys())
    cells = [[_fmt(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)
