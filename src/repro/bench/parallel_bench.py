"""Serial-vs-parallel benchmark trajectory: ``BENCH_parallel.json``.

Times the Figure 11 many-segment workload (the regime the parallel
subsystem targets: many independent segments to shard) with the serial
engine and with worker pools of each requested size, on the *same*
generated table.  Every parallel run is checked for bit-identical rows
and codes against the serial result and recorded as ``fidelity_ok``;
drivers exit non-zero when any check fails.

Wall-clock speedup is hardware-dependent — the record carries
``cpu_count`` and the multiprocessing start method so a committed
artifact is interpretable.  On a single-core machine the parallel
runs measure pure sharding/IPC overhead (speedup < 1 by construction);
the ≥ 1.8x-at-4-workers target applies on hosts with ≥ 4 cores.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import time
from typing import Sequence

from ..core.modify import modify_sort_order
from ..exec import ExecutionConfig
from ..obs import METRICS
from ..workloads.generators import fig11_output_spec, fig11_table

#: (n_segments, method) cells — many segments, both shardable methods.
PARALLEL_CELLS = tuple(
    (n_segments, method)
    for n_segments in (512, 4096)
    for method in ("segment_sort", "combined")
)

DEFAULT_WORKERS = (1, 2, 4, "auto")

#: Phase counters lifted from the pool's metrics into each bench cell,
#: so the artifact shows where parallel wall-clock goes (compute vs
#: data-plane packing vs residual IPC/coordination).
_PHASE_COUNTERS = (
    ("pack_seconds", "pool.pack_seconds"),
    ("compute_seconds", "pool.compute_seconds"),
    ("ipc_seconds", "pool.ipc_seconds"),
    ("ipc_bytes", "pool.ipc_bytes"),
    ("shm_blocks", "pool.shm_blocks"),
)


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _snapshot_run(run) -> tuple:
    """Run ``run()`` with metrics on; return ``(result, snapshot)``.

    Only untimed verification runs go through here, so the registry's
    bookkeeping (including the worker telemetry shipping it triggers)
    never touches the timed measurements.
    """
    was_enabled = METRICS.enabled
    METRICS.enable(clear=True)
    try:
        result = run()
        return result, METRICS.as_dict()
    finally:
        METRICS.reset()
        if not was_enabled:
            METRICS.disable()


def _phases(snapshot: dict) -> dict:
    """Per-phase breakdown of one parallel run, from the pool counters."""
    counters = snapshot.get("counters", {})
    phases = {}
    for name, counter in _PHASE_COUNTERS:
        value = counters.get(counter, 0)
        phases[name] = round(value, 4) if isinstance(value, float) else value
    return phases


def _cell(
    label: str, table, spec, method: str,
    workers: Sequence, repeats: int,
    collect_metrics: bool = False,
) -> dict:
    if collect_metrics:
        serial, serial_metrics = _snapshot_run(
            lambda: modify_sort_order(table, spec, method=method)
        )
    else:
        serial = modify_sort_order(table, spec, method=method)
        serial_metrics = None
    serial_s = _time(
        lambda: modify_sort_order(table, spec, method=method), repeats
    )
    cell = {
        "label": label,
        "serial_seconds": round(serial_s, 4),
        "workers": {},
        "fidelity_ok": True,
    }
    if serial_metrics is not None:
        cell["metrics"] = serial_metrics
    for w in workers:
        if isinstance(w, int) and w < 2:
            continue
        cfg = ExecutionConfig(workers=w)
        # Untimed instrumented run: fidelity check plus the per-phase
        # breakdown (metric bookkeeping never touches the timed runs).
        parallel, par_metrics = _snapshot_run(
            lambda: modify_sort_order(table, spec, method=method, config=cfg)
        )
        fidelity = (
            parallel.rows == serial.rows and parallel.ovcs == serial.ovcs
        )
        cell["fidelity_ok"] = cell["fidelity_ok"] and fidelity
        par_s = _time(
            lambda: modify_sort_order(table, spec, method=method, config=cfg),
            repeats,
        )
        phases = _phases(par_metrics)
        # "auto" may legitimately stay serial (adaptive dispatch); the
        # pool's phase counters only exist when the pool actually ran.
        engaged = "pool.pack_seconds" in par_metrics.get("counters", {})
        entry = {
            "seconds": round(par_s, 4),
            "speedup": round(serial_s / par_s, 2),
            "fidelity_ok": fidelity,
            "pool_engaged": engaged,
        }
        if engaged:
            entry["phases"] = phases
        if collect_metrics:
            entry["metrics"] = par_metrics
        cell["workers"][str(w)] = entry
    return cell


def run_parallel_trajectory(
    n_rows: int,
    workers: Sequence[int] = DEFAULT_WORKERS,
    seed: int = 0,
    repeats: int = 3,
    cells: Sequence[tuple] = PARALLEL_CELLS,
    collect_metrics: bool = False,
) -> dict:
    """The serial-vs-workers sweep; returns the JSON-ready record.

    The dispatcher's tiny-input threshold is suspended for the sweep so
    the pool is *always* exercised for explicit worker counts — the
    point is to measure sharding and IPC cost (or win) at the requested
    scale, not the dispatcher's decision to avoid it.  A ``"auto"``
    entry keeps its adaptive behavior (core count + calibration) and
    documents what the default dispatch actually does on this host;
    its ``pool_engaged`` flag records whether the pool ran at all.
    """
    from ..parallel import planner

    out = []
    spec = fig11_output_spec(8)
    saved_threshold = planner.MIN_PARALLEL_ROWS
    planner.MIN_PARALLEL_ROWS = 0
    try:
        for n_segments, method in cells:
            n_segments = min(n_segments, max(n_rows // 2, 1))
            table = fig11_table(n_rows, n_segments, seed=seed)
            out.append(
                _cell(
                    f"fig11 s={n_segments} {method}",
                    table, spec, method, workers, repeats,
                    collect_metrics=collect_metrics,
                )
            )
    finally:
        planner.MIN_PARALLEL_ROWS = saved_threshold
    best = 0.0
    for cell in out:
        for entry in cell["workers"].values():
            best = max(best, entry["speedup"])
    return {
        "n_rows": n_rows,
        "seed": seed,
        "repeats": repeats,
        "workers": [w for w in workers],
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "start_method": os.environ.get(
            "REPRO_PARALLEL_START_METHOD",
            multiprocessing.get_start_method(allow_none=True) or "default",
        ),
        "fidelity_ok": all(c["fidelity_ok"] for c in out),
        "best_speedup": best,
        "cells": out,
    }


def format_parallel_cells(record: dict) -> list[dict]:
    """Flatten the record into rows for the text-table renderer."""
    rows = []
    for cell in record["cells"]:
        flat = {
            "label": cell["label"],
            "serial_s": cell["serial_seconds"],
        }
        for w, entry in cell["workers"].items():
            flat[f"w{w}_s"] = entry["seconds"]
            flat[f"w{w}_speedup"] = entry["speedup"]
        flat["fidelity"] = "ok" if cell["fidelity_ok"] else "DIVERGED"
        rows.append(flat)
    return rows


def write_parallel_trajectory(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
