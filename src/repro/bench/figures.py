"""Experiment drivers for Figures 10 and 11.

Each driver regenerates one cell (one bar) or the full series of a
figure and returns :class:`~repro.bench.harness.BenchResult` objects,
so the pytest benchmarks, the examples, and EXPERIMENTS.md all report
identical numbers.
"""

from __future__ import annotations

from typing import Sequence

from ..core.modify import modify_sort_order
from ..exec import ExecutionConfig
from ..model import Table
from ..ovc.stats import ComparisonStats
from ..workloads.generators import (
    fig10_output_spec,
    fig10_table,
    fig11_output_spec,
    fig11_table,
)
from .harness import BenchResult, time_callable

FIG10_LIST_LENGTHS = (1, 2, 4, 8, 16)
FIG11_SEGMENT_COUNTS = tuple(4 ** k * 2 for k in range(0, 10))  # 2 .. 2^19


def run_fig10_cell(
    table: Table,
    list_len: int,
    use_ovc: bool,
    stats: ComparisonStats | None = None,
    engine: str = "reference",
) -> Table:
    """One Figure 10 bar: modify ``A,B -> B,A`` with/without codes.

    This is Table 1 case 3: merging the pre-existing runs defined by
    distinct values of ``A``.  ``engine`` defaults to the instrumented
    reference executors — the figure reports comparison counts; pass
    ``"fast"`` to time the packed-code kernels instead (counters stay
    zero).
    """
    return modify_sort_order(
        table,
        fig10_output_spec(list_len),
        method="merge_runs",
        use_ovc=use_ovc,
        stats=stats if stats is not None else ComparisonStats(),
        config=ExecutionConfig(engine=engine),
    )


def run_fig10_experiment(
    n_rows: int,
    list_lengths: Sequence[int] = FIG10_LIST_LENGTHS,
    n_runs: int = 512,
    seed: int = 0,
) -> list[BenchResult]:
    """The full Figure 10 grid: {first,last} x {with,without codes} x
    list lengths; returns one result per cell."""
    results: list[BenchResult] = []
    for decide in ("first", "last"):
        for list_len in list_lengths:
            table = fig10_table(
                n_rows, list_len, decide=decide, n_runs=min(n_runs, n_rows), seed=seed
            )
            for use_ovc in (False, True):
                label = (
                    f"fig10 {decide}-decides len={list_len} "
                    f"{'ovc' if use_ovc else 'no-ovc'}"
                )

                def cell(stats, table=table, list_len=list_len, use_ovc=use_ovc):
                    run_fig10_cell(table, list_len, use_ovc, stats)
                    return {
                        "decide": decide,
                        "list_len": list_len,
                        "ovc": use_ovc,
                    }

                results.append(time_callable(label, cell))
    return results


FIG11_METHODS = ("segment_sort", "merge_runs", "combined")


def run_fig11_cell(
    table: Table,
    method: str,
    stats: ComparisonStats | None = None,
    list_len: int = 8,
    engine: str = "reference",
) -> Table:
    """One Figure 11 bar: ``A,B,C -> A,C,B`` with one of the three
    methods, all using the input's offset-value codes.  ``engine`` as
    in :func:`run_fig10_cell`."""
    return modify_sort_order(
        table,
        fig11_output_spec(list_len),
        method=method,
        use_ovc=True,
        stats=stats if stats is not None else ComparisonStats(),
        config=ExecutionConfig(engine=engine),
    )


def run_fig11_experiment(
    n_rows: int,
    segment_counts: Sequence[int] | None = None,
    methods: Sequence[str] = FIG11_METHODS,
    list_len: int = 8,
    seed: int = 0,
) -> list[BenchResult]:
    """The full Figure 11 sweep over segment counts and methods."""
    if segment_counts is None:
        segment_counts = [s for s in FIG11_SEGMENT_COUNTS if s * 2 <= n_rows]
    results: list[BenchResult] = []
    for n_segments in segment_counts:
        table = fig11_table(n_rows, n_segments, list_len=list_len, seed=seed)
        for method in methods:

            def cell(stats, table=table, method=method):
                run_fig11_cell(table, method, stats, list_len)
                return {"segments": n_segments, "method": method}

            results.append(
                time_callable(f"fig11 s={n_segments} {method}", cell)
            )
    return results
